"""Shared fixtures for the test-suite.

Everything here is deliberately tiny (dozens of nodes, 16×16 crossbars) so
individual tests run in milliseconds; the benchmark harness exercises the
realistic sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.datasets import synthetic_graph
from repro.hardware.config import ReRAMConfig
from repro.hardware.faults import FaultMap, FaultModel
from repro.hardware.quantization import FixedPointFormat


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_config() -> ReRAMConfig:
    """A miniature accelerator: 16×16 crossbars, 8 per tile, 2 tiles."""
    return ReRAMConfig(
        crossbar_rows=16,
        crossbar_cols=16,
        crossbars_per_tile=8,
        num_tiles=2,
    )


@pytest.fixture
def small_config() -> ReRAMConfig:
    """A small accelerator: 32×32 crossbars, 48 crossbars total."""
    return ReRAMConfig(
        crossbar_rows=32,
        crossbar_cols=32,
        crossbars_per_tile=24,
        num_tiles=2,
    )


@pytest.fixture
def fmt() -> FixedPointFormat:
    return FixedPointFormat(total_bits=16, max_value=4.0, bits_per_cell=2)


@pytest.fixture
def fault_model() -> FaultModel:
    return FaultModel(fault_density=0.05, sa0_sa1_ratio=(9.0, 1.0), seed=7)


@pytest.fixture
def small_fault_map(rng) -> FaultMap:
    """A 16×16 fault map with a handful of SA0 and SA1 faults."""
    fmap = FaultMap.empty(16, 16)
    cells = rng.choice(16 * 16, size=12, replace=False)
    for i, flat in enumerate(cells):
        r, c = divmod(int(flat), 16)
        if i < 8:
            fmap.sa0[r, c] = True
        else:
            fmap.sa1[r, c] = True
    return fmap


@pytest.fixture
def tiny_graph():
    """A 60-node community graph, single-label, 4 classes."""
    return synthetic_graph(
        num_nodes=60,
        num_communities=4,
        num_features=12,
        num_classes=4,
        avg_degree=6.0,
        name="tiny",
        seed=3,
    )


@pytest.fixture
def tiny_multilabel_graph():
    """A 48-node multi-label graph (PPI-style)."""
    return synthetic_graph(
        num_nodes=48,
        num_communities=4,
        num_features=10,
        num_classes=5,
        avg_degree=6.0,
        multilabel=True,
        name="tiny-ppi",
        seed=5,
    )
