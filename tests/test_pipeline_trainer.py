"""Tests for the faulty training loop (FaultyTrainer)."""

import numpy as np
import pytest

from repro.core.strategies import build_strategy
from repro.hardware.endurance import PostDeploymentSchedule
from repro.hardware.faults import FaultModel
from repro.pipeline.mapping_engine import HardwareEnvironment
from repro.pipeline.trainer import FaultyTrainer, TrainingConfig, TrainingResult


@pytest.fixture
def trainer_config():
    return TrainingConfig(
        epochs=2,
        learning_rate=0.02,
        hidden_features=8,
        dropout=0.0,
        num_parts=4,
        batch_clusters=2,
        seed=0,
    )


def make_hardware(tiny_config, density=0.05, ratio=(9.0, 1.0), seed=0):
    model = FaultModel(density, ratio, seed=seed) if density > 0 else None
    return HardwareEnvironment(config=tiny_config, fault_model=model, weight_fraction=0.5)


class TestTrainingConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=0)
        with pytest.raises(ValueError):
            TrainingConfig(num_parts=2, batch_clusters=4)
        with pytest.raises(ValueError):
            TrainingConfig(optimizer="rmsprop")


class TestFaultFreeTraining:
    def test_runs_and_reports(self, tiny_graph, trainer_config):
        trainer = FaultyTrainer(
            tiny_graph, "gcn", build_strategy("fault_free"), trainer_config, hardware=None
        )
        result = trainer.train()
        assert isinstance(result, TrainingResult)
        assert result.epochs_run == 2
        assert len(result.train_accuracy_history) == 2
        assert len(result.loss_history) == 2
        assert 0.0 <= result.final_test_accuracy <= 1.0
        assert result.fault_density == 0.0

    def test_loss_decreases(self, tiny_graph):
        config = TrainingConfig(epochs=6, hidden_features=8, dropout=0.0, num_parts=4, batch_clusters=4, seed=0)
        trainer = FaultyTrainer(tiny_graph, "gcn", build_strategy("fault_free"), config)
        result = trainer.train()
        assert result.loss_history[-1] < result.loss_history[0]

    def test_multilabel_graph(self, tiny_multilabel_graph, trainer_config):
        trainer = FaultyTrainer(
            tiny_multilabel_graph, "gcn", build_strategy("fault_free"), trainer_config
        )
        result = trainer.train()
        assert 0.0 <= result.final_test_accuracy <= 1.0

    def test_hardware_required_for_faulty_strategy(self, tiny_graph, trainer_config):
        with pytest.raises(ValueError):
            FaultyTrainer(tiny_graph, "gcn", build_strategy("fare"), trainer_config, hardware=None)


@pytest.mark.parametrize("strategy_name", ["fault_unaware", "nr", "clipping", "fare"])
class TestFaultyTraining:
    def test_strategy_runs(self, strategy_name, tiny_graph, trainer_config, tiny_config):
        hardware = make_hardware(tiny_config)
        trainer = FaultyTrainer(
            tiny_graph,
            "gcn",
            build_strategy(strategy_name),
            trainer_config,
            hardware=hardware,
        )
        result = trainer.train()
        assert result.strategy == strategy_name
        assert result.fault_density > 0
        assert result.counters["num_batches"] == 2
        assert result.counters["num_weight_crossbars"] >= 1
        assert result.counters["block_write_events"] > 0


class TestDeterminism:
    def test_same_seed_same_result(self, tiny_graph, tiny_config, trainer_config):
        def run():
            hardware = make_hardware(tiny_config, seed=3)
            trainer = FaultyTrainer(
                tiny_graph, "gcn", build_strategy("fare"), trainer_config, hardware=hardware
            )
            return trainer.train()

        a, b = run(), run()
        assert a.final_test_accuracy == b.final_test_accuracy
        np.testing.assert_allclose(a.loss_history, b.loss_history)


class TestPostDeployment:
    def test_fault_density_grows(self, tiny_graph, tiny_config, trainer_config):
        hardware = make_hardware(tiny_config, density=0.02)
        before = hardware.overall_fault_density()
        schedule = PostDeploymentSchedule(total_extra_density=0.05, num_epochs=trainer_config.epochs)
        trainer = FaultyTrainer(
            tiny_graph,
            "gcn",
            build_strategy("fare"),
            trainer_config,
            hardware=hardware,
            post_deployment=schedule,
        )
        trainer.train()
        assert hardware.overall_fault_density() > before
        # BIST re-scanned at the end of every epoch plus the initial scan.
        assert hardware.bist.scan_count == 1 + trainer_config.epochs

    def test_no_post_deployment_no_rescan(self, tiny_graph, tiny_config, trainer_config):
        hardware = make_hardware(tiny_config, density=0.02)
        trainer = FaultyTrainer(
            tiny_graph, "gcn", build_strategy("fare"), trainer_config, hardware=hardware
        )
        trainer.train()
        assert hardware.bist.scan_count == 1

    def test_engine_counters_surface_in_training_result(
        self, tiny_graph, tiny_config, trainer_config
    ):
        hardware = make_hardware(tiny_config)
        strategy = build_strategy("fare")
        # Shrink the result cache so evictions actually happen during the run
        # and the counter is proven live end-to-end, not just key-present.
        strategy.mapper.cost_engine.cache_size = 1
        trainer = FaultyTrainer(
            tiny_graph, "gcn", strategy, trainer_config, hardware=hardware
        )
        result = trainer.train()
        assert result.counters["mapping_cache_evictions"] > 0
        assert "mapping_delta_plans" in result.counters

    def test_replan_on_rescan_matches_pi_refresh_free_accuracy(
        self, tiny_graph, tiny_config, trainer_config
    ):
        """Trainer-level delta equivalence: a warm re-plan after each BIST
        re-scan must produce exactly the plans a cold-planning strategy
        computes on the same fault maps (same RNG stream on both paths)."""

        def run(use_delta, replan):
            hardware = make_hardware(tiny_config, density=0.02, seed=5)
            schedule = PostDeploymentSchedule(
                total_extra_density=0.05, num_epochs=trainer_config.epochs
            )
            trainer = FaultyTrainer(
                tiny_graph,
                "gcn",
                build_strategy("fare", use_delta_planning=use_delta),
                trainer_config,
                hardware=hardware,
                post_deployment=schedule,
                replan_on_rescan=replan,
            )
            result = trainer.train()
            return trainer, result

        delta_trainer, delta_result = run(use_delta=True, replan=True)
        cold_trainer, cold_result = run(use_delta=False, replan=True)
        assert delta_result.final_test_accuracy == cold_result.final_test_accuracy
        np.testing.assert_allclose(delta_result.loss_history, cold_result.loss_history)
        for ref, got in zip(cold_trainer.plans, delta_trainer.plans):
            assert ref.pruned_crossbars == got.pruned_crossbars
            assert ref.relaxed_blocks == got.relaxed_blocks
            for a, b in zip(ref.blocks, got.blocks):
                assert a.block_index == b.block_index
                assert a.crossbar_index == b.crossbar_index
                assert a.cost == b.cost
                np.testing.assert_array_equal(a.row_permutation, b.row_permutation)
        assert (
            delta_trainer.strategy.mapping_engine_stats()["mapping_delta_plans"] > 0
        )


class TestEvaluation:
    def test_evaluate_splits(self, tiny_graph, tiny_config, trainer_config):
        hardware = make_hardware(tiny_config)
        trainer = FaultyTrainer(
            tiny_graph, "gcn", build_strategy("clipping"), trainer_config, hardware=hardware
        )
        trainer.train()
        for split in ("train", "val", "test"):
            assert 0.0 <= trainer.evaluate(split) <= 1.0
        with pytest.raises(ValueError):
            trainer.evaluate("bogus")

    def test_eval_mode_restored(self, tiny_graph, trainer_config):
        trainer = FaultyTrainer(tiny_graph, "gcn", build_strategy("fault_free"), trainer_config)
        trainer.evaluate("test")
        assert trainer.model.training


class TestAccuracyHistoryPadding:
    """Epochs before the first eval_every boundary carry a real evaluation."""

    @staticmethod
    def _run(tiny_graph, eval_every, epochs=4):
        config = TrainingConfig(
            epochs=epochs,
            hidden_features=8,
            dropout=0.0,
            num_parts=4,
            batch_clusters=2,
            eval_every=eval_every,
            seed=0,
        )
        trainer = FaultyTrainer(tiny_graph, "gcn", build_strategy("fault_free"), config)
        return trainer.train()

    def test_first_epochs_not_zero_padded(self, tiny_graph):
        every_epoch = self._run(tiny_graph, eval_every=1)
        sparse = self._run(tiny_graph, eval_every=2)
        # Training is identical, so the first recorded epoch is a real
        # evaluation of the same model state — not the old 0.0 padding …
        assert sparse.train_accuracy_history[0] == every_epoch.train_accuracy_history[0]
        assert sparse.test_accuracy_history[0] == every_epoch.test_accuracy_history[0]
        # … and values at / after the first boundary are unchanged: epoch 2
        # is an eval boundary, epoch 3 carries it forward, epoch 4 is final.
        assert sparse.test_accuracy_history[1] == every_epoch.test_accuracy_history[1]
        assert sparse.test_accuracy_history[2] == sparse.test_accuracy_history[1]
        assert sparse.test_accuracy_history[3] == every_epoch.test_accuracy_history[3]
