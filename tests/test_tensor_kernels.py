"""Tests for the segment-reduce sparse kernel layer.

Covers three contracts:

* **kernel correctness/equivalence** — the reduceat-driven kernels reproduce
  the seed ``np.add.at`` / ``from_coo`` implementations (bit-identical for
  the structural kernels, tight-tolerance for the reassociated float
  reductions);
* **gradients** — finite-difference checks for ``spmm``,
  ``scatter_add_rows``, ``gather_rows`` and the new ``edge_softmax`` op
  against dense references;
* **laziness** — ``spmm`` builds no transpose in eval/no-grad forwards and
  memoises it on the ``CSRMatrix`` once backward runs.
"""

import numpy as np
import pytest

from repro.graph.sparse import CSRMatrix
from repro.tensor import kernels, ops
from repro.tensor.tensor import Tensor, no_grad


def random_csr(rows=12, cols=10, density=0.3, seed=0):
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=(rows, cols)) * (rng.random((rows, cols)) < density)
    dense[3] = 0.0  # guarantee an empty row
    return CSRMatrix.from_dense(dense), dense


def numerical_gradient(fn, values, eps=1e-6):
    values = np.asarray(values, dtype=np.float64)
    grad = np.zeros_like(values)
    flat = values.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(values)
        flat[i] = original - eps
        minus = fn(values)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build_loss, shape, seed=0, atol=1e-5):
    rng = np.random.default_rng(seed)
    values = rng.normal(size=shape)

    def scalar_fn(vals):
        with no_grad():
            return build_loss(Tensor(vals)).item()

    tensor = Tensor(values.copy(), requires_grad=True)
    loss = build_loss(tensor)
    loss.backward()
    numeric = numerical_gradient(scalar_fn, values.copy())
    np.testing.assert_allclose(tensor.grad, numeric, atol=atol, rtol=1e-4)


class TestSegmentSum:
    def test_matches_add_at_unsorted(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=(200, 4))
        ids = rng.integers(0, 23, size=200)
        seed_out = np.zeros((23, 4))
        np.add.at(seed_out, ids, values)
        np.testing.assert_allclose(
            kernels.segment_sum(values, ids, 23), seed_out, rtol=1e-13, atol=1e-13
        )

    def test_sorted_fast_path(self):
        values = np.arange(12.0).reshape(6, 2)
        ids = np.array([0, 0, 2, 2, 2, 5])
        before = kernels.COUNTERS.segment_sum_sorted_fast_path
        out = kernels.segment_sum(values, ids, 7)
        assert kernels.COUNTERS.segment_sum_sorted_fast_path == before + 1
        expected = np.zeros((7, 2))
        np.add.at(expected, ids, values)
        np.testing.assert_array_equal(out, expected)

    def test_empty_segments_stay_zero(self):
        out = kernels.segment_sum(np.ones((3, 2)), np.array([1, 1, 4]), 6)
        np.testing.assert_array_equal(out[[0, 2, 3, 5]], 0.0)
        np.testing.assert_array_equal(out[1], [2.0, 2.0])

    def test_no_values(self):
        out = kernels.segment_sum(np.zeros((0, 3)), np.zeros(0, dtype=int), 4)
        assert out.shape == (4, 3)
        assert not out.any()

    def test_1d_values(self):
        values = np.array([1.0, 2.0, 4.0])
        np.testing.assert_array_equal(
            kernels.segment_sum(values, np.array([2, 0, 2]), 3), [2.0, 0.0, 5.0]
        )

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            kernels.segment_sum(np.ones(2), np.array([0, 5]), 3)
        with pytest.raises(ValueError):
            kernels.segment_sum(np.ones(2), np.array([-1, 0]), 3)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            kernels.segment_sum(np.ones((3, 2)), np.array([0, 1]), 3)

    def test_precomputed_plan_matches_inline(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=(60, 3))
        ids = rng.integers(0, 9, size=60)
        plan = kernels.segment_plan(ids, 9)
        inline = kernels.segment_sum(values, ids, 9)
        planned = kernels.segment_sum(values, ids, 9, plan=plan)
        np.testing.assert_array_equal(planned, inline)
        # Plan reuse counts as the sorted fast path (no argsort this call).
        before = kernels.COUNTERS.segment_sum_sorted_fast_path
        kernels.segment_sum(values, ids, 9, plan=plan)
        assert kernels.COUNTERS.segment_sum_sorted_fast_path == before + 1

    def test_mismatched_plan_rejected(self):
        plan = kernels.segment_plan(np.array([0, 1]), 3)
        with pytest.raises(ValueError):
            kernels.segment_sum(np.ones(4), np.array([0, 1, 2, 2]), 3, plan=plan)
        with pytest.raises(ValueError):
            kernels.segment_sum(np.ones(2), np.array([0, 1]), 5, plan=plan)
        # Same length and segment count but different ids must not silently
        # scatter through the wrong plan.
        with pytest.raises(ValueError):
            kernels.segment_sum(np.ones(2), np.array([1, 0]), 3, plan=plan)

    def test_plan_accepts_equal_content_ids(self):
        ids = np.array([2, 0, 2])
        plan = kernels.segment_plan(ids, 3)
        out = kernels.segment_sum(np.ones(3), ids.copy(), 3, plan=plan)
        np.testing.assert_array_equal(out, [1.0, 0.0, 2.0])


class TestCSRKernels:
    def test_matmat_matches_dense(self):
        mat, dense = random_csr(seed=1)
        x = np.random.default_rng(2).normal(size=(10, 5))
        np.testing.assert_allclose(mat.dot(x), dense @ x, rtol=1e-12, atol=1e-12)

    def test_matmat_matches_seed_scatter(self):
        """Same entries, same per-row visit order as the seed np.add.at."""
        mat, _ = random_csr(seed=3)
        x = np.random.default_rng(4).normal(size=(10, 3))
        seed_out = np.zeros((12, 3))
        rows = np.repeat(np.arange(12), np.diff(mat.indptr))
        np.add.at(seed_out, rows, mat.data[:, None] * x[mat.indices])
        np.testing.assert_allclose(mat.dot(x), seed_out, rtol=1e-13, atol=1e-13)

    def test_matmat_empty_matrix(self):
        mat = CSRMatrix.zeros((4, 6))
        np.testing.assert_array_equal(mat.dot(np.ones((6, 2))), np.zeros((4, 2)))

    def test_row_sums_match_dense(self):
        mat, dense = random_csr(seed=5)
        np.testing.assert_allclose(
            mat.row_sums(), dense.sum(axis=1), rtol=1e-13, atol=1e-13
        )

    def test_transpose_bit_identical_to_seed(self):
        """The counting transpose reproduces the seed from_coo round-trip."""
        mat, _ = random_csr(rows=15, cols=9, seed=6)
        rows = np.repeat(np.arange(15), np.diff(mat.indptr))
        seed_t = CSRMatrix.from_coo(
            mat.indices, rows, mat.data, (9, 15), sum_duplicates=False
        )
        transposed = mat.transpose()
        np.testing.assert_array_equal(transposed.indptr, seed_t.indptr)
        np.testing.assert_array_equal(transposed.indices, seed_t.indices)
        np.testing.assert_array_equal(transposed.data, seed_t.data)

    def test_transpose_memoised_and_symmetric(self):
        mat, dense = random_csr(seed=7)
        misses = kernels.COUNTERS.transpose_cache_misses
        hits = kernels.COUNTERS.transpose_cache_hits
        t1 = mat.T
        assert kernels.COUNTERS.transpose_cache_misses == misses + 1
        t2 = mat.T
        assert t2 is t1
        assert kernels.COUNTERS.transpose_cache_hits == hits + 1
        # Involution: the memo is installed both ways.
        assert t1.T is mat
        np.testing.assert_allclose(t1.to_dense(), dense.T)

    def test_extract_block_bit_identical(self):
        mat, dense = random_csr(rows=20, cols=20, seed=8)
        for (r0, r1, c0, c1) in [(0, 20, 0, 20), (3, 11, 5, 17), (4, 4, 2, 9), (0, 5, 18, 20)]:
            np.testing.assert_array_equal(
                mat.extract_block(r0, r1, c0, c1), dense[r0:r1, c0:c1]
            )

    def test_submatrix_bit_identical(self):
        mat, dense = random_csr(rows=20, cols=20, seed=9)
        for ids in [np.array([0, 4, 5, 13, 19]), np.arange(20), np.array([7])]:
            np.testing.assert_array_equal(
                mat.submatrix(ids).to_dense(), dense[np.ix_(ids, ids)]
            )

    def test_submatrix_empty(self):
        assert CSRMatrix.identity(5).submatrix(np.array([], dtype=np.int64)).shape == (0, 0)


class TestEdgeSoftmaxKernel:
    def _edges(self, mask):
        csr = CSRMatrix.from_dense(mask.astype(float))
        return csr.indptr, csr.indices

    def test_matches_dense_masked_softmax(self):
        rng = np.random.default_rng(0)
        mask = rng.random((9, 9)) < 0.4
        np.fill_diagonal(mask, True)  # every row non-empty
        indptr, cols = self._edges(mask)
        row_ids = kernels.csr_row_ids(indptr)
        scores = rng.normal(size=indptr[-1])
        alpha = kernels.edge_softmax(scores, indptr)
        logits = np.full((9, 9), -1e9)
        logits[row_ids, cols] = scores
        shifted = logits - logits.max(axis=1, keepdims=True)
        exps = np.exp(shifted)
        dense_soft = exps / exps.sum(axis=1, keepdims=True)
        np.testing.assert_allclose(alpha, dense_soft[row_ids, cols], rtol=1e-14)
        # Each row's attention sums to one.
        sums = kernels.segment_sum(alpha, row_ids, 9)
        np.testing.assert_allclose(sums, 1.0, rtol=1e-14)

    def test_multihead_scores(self):
        rng = np.random.default_rng(1)
        mask = np.eye(5, dtype=bool)
        mask[0, 3] = mask[3, 0] = True
        indptr, _ = self._edges(mask)
        scores = rng.normal(size=(int(indptr[-1]), 3))
        alpha = kernels.edge_softmax(scores, indptr)
        row_ids = kernels.csr_row_ids(indptr)
        sums = kernels.segment_sum(alpha, row_ids, 5)
        np.testing.assert_allclose(sums, 1.0, rtol=1e-14)

    def test_single_edge_rows_are_one(self):
        indptr = np.array([0, 1, 2])
        alpha = kernels.edge_softmax(np.array([13.0, -40.0]), indptr)
        np.testing.assert_array_equal(alpha, [1.0, 1.0])

    def test_empty_edge_list(self):
        out = kernels.edge_softmax(np.zeros(0), np.zeros(4, dtype=np.int64))
        assert out.shape == (0,)

    def test_score_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            kernels.edge_softmax(np.zeros(3), np.array([0, 1, 2]))


class TestGradients:
    def test_spmm_gradient_sparse(self):
        mat, dense = random_csr(rows=6, cols=5, seed=10)
        check_gradient(lambda x: (ops.spmm(mat, x) ** 2).sum(), (5, 3))

    def test_spmm_gradient_matches_dense_adjacency(self):
        mat, dense = random_csr(rows=6, cols=5, seed=11)
        rng = np.random.default_rng(12)
        values = rng.normal(size=(5, 3))
        sparse_x = Tensor(values.copy(), requires_grad=True)
        dense_x = Tensor(values.copy(), requires_grad=True)
        (ops.spmm(mat, sparse_x) ** 2).sum().backward()
        (ops.spmm(dense, dense_x) ** 2).sum().backward()
        np.testing.assert_allclose(sparse_x.grad, dense_x.grad, rtol=1e-12)

    def test_scatter_add_rows_gradient(self):
        index = np.array([2, 0, 2, 1, 0, 2])
        check_gradient(
            lambda x: (ops.scatter_add_rows(x, index, 4) ** 2).sum(), (6, 3)
        )

    def test_gather_rows_gradient(self):
        index = np.array([0, 0, 3, 1, 3])
        check_gradient(lambda x: (ops.gather_rows(x, index) ** 2).sum(), (4, 2))

    def test_edge_softmax_gradient(self):
        indptr = np.array([0, 3, 3, 5, 6])
        weights = np.arange(1.0, 7.0)[:, None]
        check_gradient(
            lambda s: (ops.edge_softmax(s, indptr) * weights).sum() ** 2,
            (6, 1),
            atol=1e-6,
        )

    def test_edge_softmax_gradient_matches_dense_softmax(self):
        """Same Jacobian-vector product as the dense masked softmax."""
        rng = np.random.default_rng(13)
        mask = rng.random((7, 7)) < 0.5
        np.fill_diagonal(mask, True)
        csr = CSRMatrix.from_dense(mask.astype(float))
        indptr, cols = csr.indptr, csr.indices
        row_ids = kernels.csr_row_ids(indptr)
        scores = rng.normal(size=int(indptr[-1]))
        downstream = rng.normal(size=int(indptr[-1]))

        sparse_in = Tensor(scores.copy(), requires_grad=True)
        (ops.edge_softmax(sparse_in, indptr) * downstream).sum().backward()

        dense_logits = np.full((7, 7), -1e9)
        dense_logits[row_ids, cols] = scores
        dense_grad_out = np.zeros((7, 7))
        dense_grad_out[row_ids, cols] = downstream
        dense_in = Tensor(dense_logits, requires_grad=True)
        (ops.softmax(dense_in, axis=1) * dense_grad_out).sum().backward()
        np.testing.assert_allclose(
            sparse_in.grad, dense_in.grad[row_ids, cols], rtol=1e-9, atol=1e-12
        )


class TestSpmmLaziness:
    def test_no_grad_forward_builds_no_transpose(self):
        mat, _ = random_csr(seed=14)
        misses = kernels.COUNTERS.transpose_cache_misses
        with no_grad():
            ops.spmm(mat, Tensor(np.ones((10, 2)), requires_grad=True))
        assert kernels.COUNTERS.transpose_cache_misses == misses
        assert mat._transpose is None

    def test_constant_input_builds_no_transpose(self):
        mat, _ = random_csr(seed=15)
        out = ops.spmm(mat, Tensor(np.ones((10, 2))))
        assert mat._transpose is None
        assert not out.requires_grad

    def test_backward_populates_memo_once(self):
        mat, _ = random_csr(seed=16)
        x = Tensor(np.ones((10, 2)), requires_grad=True)
        ops.spmm(mat, x).sum().backward()
        first = mat._transpose
        assert first is not None
        hits = kernels.COUNTERS.transpose_cache_hits
        y = Tensor(np.ones((10, 2)), requires_grad=True)
        ops.spmm(mat, y).sum().backward()
        assert mat._transpose is first
        assert kernels.COUNTERS.transpose_cache_hits > hits


class TestCountersPlumbing:
    def test_stats_view_reports_deltas(self):
        view = kernels.KernelStatsView()
        kernels.segment_sum(np.ones(3), np.array([0, 1, 1]), 2)
        delta = view.as_dict()
        assert delta["kernel_segment_sum_calls"] == 1.0
        assert set(delta) == set(kernels.COUNTERS.as_dict())

    def test_strategy_merges_kernel_stats(self):
        from repro.core.strategies import build_strategy

        strategy = build_strategy("fault_unaware")
        assert strategy.mapping_engine_stats() is None
        strategy.attach_kernel_stats(kernels.KernelStatsView())
        kernels.gather_rows(np.ones((2, 2)), np.array([0, 1]))
        stats = strategy.mapping_engine_stats()
        assert stats is not None
        assert stats["kernel_gather_rows_calls"] >= 1.0
