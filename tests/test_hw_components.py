"""Tests for crossbars, tiles, BIST, endurance and the cost model."""

import numpy as np
import pytest

from repro.hardware.bist import BISTController
from repro.hardware.config import DEFAULT_CONFIG, ReRAMConfig
from repro.hardware.crossbar import Crossbar
from repro.hardware.endurance import EnduranceModel, PostDeploymentSchedule
from repro.hardware.energy import TileCostModel
from repro.hardware.faults import FaultMap, FaultModel
from repro.hardware.tile import CrossbarPool, Tile


class TestConfig:
    def test_table3_defaults(self):
        cfg = DEFAULT_CONFIG
        assert cfg.crossbar_rows == cfg.crossbar_cols == 128
        assert cfg.bits_per_cell == 2
        assert cfg.crossbars_per_tile == 96
        assert cfg.adcs_per_tile == 96 and cfg.adc_bits == 8
        assert cfg.clock_frequency_hz == 10e6
        assert cfg.tile_power_w == pytest.approx(0.34)
        assert cfg.tile_area_mm2 == pytest.approx(0.157)

    def test_derived_quantities(self):
        cfg = DEFAULT_CONFIG
        assert cfg.cells_per_weight == 8
        assert cfg.cell_levels == 4
        assert cfg.cells_per_crossbar == 128 * 128
        assert cfg.weights_per_crossbar_row == 16

    def test_invalid_weight_bits(self):
        with pytest.raises(ValueError):
            ReRAMConfig(weight_bits=15, bits_per_cell=2)

    def test_describe_rows(self):
        desc = DEFAULT_CONFIG.describe()
        assert "Crossbars" in desc and "Tile power" in desc


class TestCrossbar:
    def test_program_and_read_ideal(self):
        xbar = Crossbar(0, rows=8, cols=8, cell_levels=4)
        values = np.arange(64).reshape(8, 8) % 4
        xbar.program(values)
        np.testing.assert_array_equal(xbar.read(), values)

    def test_program_clips_to_cell_levels(self):
        xbar = Crossbar(0, rows=2, cols=2, cell_levels=4)
        xbar.program(np.array([[9, 1], [2, 3]]))
        assert xbar.read_ideal()[0, 0] == 3

    def test_faults_applied_on_read(self):
        fmap = FaultMap.from_indices((4, 4), sa0_indices=[(0, 0)], sa1_indices=[(1, 1)])
        xbar = Crossbar(0, rows=4, cols=4, cell_levels=4, fault_map=fmap)
        xbar.program(np.full((4, 4), 2))
        read = xbar.read()
        assert read[0, 0] == 0 and read[1, 1] == 3 and read[2, 2] == 2

    def test_write_counting(self):
        xbar = Crossbar(0, rows=4, cols=4)
        xbar.program(np.zeros((4, 4)))
        xbar.program(np.zeros((2, 2)), row_offset=1, col_offset=1)
        assert xbar.total_writes == 2
        assert xbar.max_cell_writes == 2

    def test_program_out_of_bounds(self):
        xbar = Crossbar(0, rows=4, cols=4)
        with pytest.raises(ValueError):
            xbar.program(np.zeros((4, 4)), row_offset=2)

    def test_binary_roundtrip_with_permutation(self):
        rng = np.random.default_rng(0)
        block = (rng.random((8, 8)) > 0.6).astype(float)
        perm = rng.permutation(8)
        xbar = Crossbar(0, rows=8, cols=8)
        xbar.program_binary(block, row_permutation=perm)
        np.testing.assert_array_equal(xbar.read_binary(row_permutation=perm), block)

    def test_binary_permutation_moves_fault_exposure(self):
        # A fault on crossbar row 0 corrupts whichever block row is stored there.
        fmap = FaultMap.from_indices((4, 4), sa1_indices=[(0, 0)])
        xbar = Crossbar(0, rows=4, cols=4, fault_map=fmap)
        block = np.zeros((4, 4))
        perm = np.array([1, 0, 2, 3])  # block row 1 stored on crossbar row 0
        xbar.program_binary(block, row_permutation=perm)
        read = xbar.read_binary(row_permutation=perm)
        assert read[1, 0] == 1.0 and read[0, 0] == 0.0

    def test_binary_requires_full_block(self):
        xbar = Crossbar(0, rows=4, cols=4)
        with pytest.raises(ValueError):
            xbar.program_binary(np.zeros((2, 4)))

    def test_fault_map_shape_checked(self):
        with pytest.raises(ValueError):
            Crossbar(0, rows=4, cols=4, fault_map=FaultMap.empty(8, 8))


class TestTileAndPool:
    def test_tile_crossbar_ids(self, tiny_config):
        tile = Tile(1, tiny_config)
        ids = [x.crossbar_id for x in tile.crossbars]
        assert ids[0] == tiny_config.crossbars_per_tile
        assert len(ids) == tiny_config.crossbars_per_tile

    def test_pool_size_and_split(self, tiny_config):
        pool = CrossbarPool(tiny_config)
        assert len(pool) == tiny_config.crossbar_count
        weights, adjacency = pool.split(5)
        assert len(weights) == 5
        assert len(adjacency) == len(pool) - 5

    def test_pool_fault_injection(self, tiny_config):
        pool = CrossbarPool(tiny_config, fault_model=FaultModel(0.1, seed=0))
        assert pool.overall_density() > 0

    def test_pool_post_deployment_requires_model(self, tiny_config):
        pool = CrossbarPool(tiny_config)
        with pytest.raises(RuntimeError):
            pool.inject_post_deployment(0.01)

    def test_pool_post_deployment_increases_density(self, tiny_config):
        pool = CrossbarPool(tiny_config, fault_model=FaultModel(0.02, seed=1))
        before = pool.overall_density()
        pool.inject_post_deployment(0.05)
        assert pool.overall_density() > before

    def test_allocate_too_many(self, tiny_config):
        pool = CrossbarPool(tiny_config, num_crossbars=4)
        with pytest.raises(ValueError):
            pool.allocate(10)


class TestBIST:
    def test_full_coverage_reports_truth(self, tiny_config):
        pool = CrossbarPool(tiny_config, fault_model=FaultModel(0.05, seed=0), num_crossbars=6)
        bist = BISTController(tiny_config, coverage=1.0)
        report = bist.scan(pool.crossbars)
        assert report.missed_faults == 0
        for crossbar, detected in zip(pool.crossbars, report.fault_maps):
            np.testing.assert_array_equal(detected.sa0, crossbar.fault_map.sa0)
            np.testing.assert_array_equal(detected.sa1, crossbar.fault_map.sa1)

    def test_partial_coverage_misses_faults(self, tiny_config):
        pool = CrossbarPool(tiny_config, fault_model=FaultModel(0.2, seed=1), num_crossbars=8)
        bist = BISTController(tiny_config, coverage=0.5, seed=0)
        report = bist.scan(pool.crossbars)
        assert report.missed_faults > 0
        assert report.detected_faults > 0

    def test_overheads_match_paper(self, tiny_config):
        bist = BISTController(tiny_config)
        assert bist.area_overhead_fraction == pytest.approx(0.0013)
        pool = CrossbarPool(tiny_config, num_crossbars=2)
        report = bist.scan(pool.crossbars)
        assert report.time_overhead_fraction == pytest.approx(0.0013)

    def test_scan_counter(self, tiny_config):
        pool = CrossbarPool(tiny_config, num_crossbars=2)
        bist = BISTController(tiny_config)
        bist.scan(pool.crossbars)
        bist.scan(pool.crossbars)
        assert bist.scan_count == 2
        assert len(bist.history) == 2


class TestEndurance:
    def test_failure_probability_monotone(self):
        model = EnduranceModel(mean_endurance=1e9)
        probs = [model.failure_probability(w) for w in (1e3, 1e6, 1e9, 1e12)]
        assert probs == sorted(probs)
        assert probs[0] < 0.01
        assert 0.4 < model.failure_probability(1e9) < 0.6

    def test_zero_writes(self):
        assert EnduranceModel().failure_probability(0) == 0.0

    def test_expected_new_faults(self):
        model = EnduranceModel(mean_endurance=1e6)
        assert model.expected_new_faults(1e6, 1000) == pytest.approx(500, rel=0.1)

    def test_schedule_sums_to_total(self):
        schedule = PostDeploymentSchedule(total_extra_density=0.01, num_epochs=50)
        assert sum(schedule.densities()) == pytest.approx(0.01)
        assert schedule.cumulative()[-1] == pytest.approx(0.01)
        assert len(schedule.densities()) == 50

    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            PostDeploymentSchedule(total_extra_density=2.0)


class TestCostModel:
    def test_cycle_time(self):
        model = TileCostModel()
        assert model.cycle_time_s == pytest.approx(1e-7)

    def test_latencies_positive(self):
        model = TileCostModel()
        assert model.mvm_latency_s() > 0
        assert model.crossbar_write_latency_s() > model.mvm_latency_s()
        assert model.clipping_latency_s(10_000) > 0

    def test_pipeline_stage_waves(self):
        model = TileCostModel()
        single = model.pipeline_stage_latency_s(10)
        double = model.pipeline_stage_latency_s(2 * DEFAULT_CONFIG.crossbar_count)
        assert double > single

    def test_stage_latency_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            TileCostModel().pipeline_stage_latency_s(0)

    def test_area_includes_bist(self):
        model = TileCostModel()
        assert model.total_area_mm2(include_bist=True) > model.total_area_mm2(False)

    def test_energy_scaling(self):
        model = TileCostModel()
        assert model.mvm_energy_j(10) == pytest.approx(10 * model.energy_per_mvm_j)
        assert model.write_energy_j(3) == pytest.approx(3 * model.energy_per_write_j)
