"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import RngMixin, ensure_rng, permutation_matrix, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_different_seeds_differ(self):
        assert not np.allclose(ensure_rng(1).random(8), ensure_rng(2).random(8))


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(0, 2)
        assert not np.allclose(children[0].random(10), children[1].random(10))

    def test_deterministic_given_seed(self):
        a = [g.random() for g in spawn_rngs(7, 3)]
        b = [g.random() for g in spawn_rngs(7, 3)]
        assert a == b


class TestRngMixin:
    def test_lazy_rng(self):
        class Thing(RngMixin):
            pass

        thing = Thing()
        assert isinstance(thing.rng, np.random.Generator)

    def test_init_and_reseed(self):
        class Thing(RngMixin):
            def __init__(self, seed):
                self._init_rng(seed)

        a = Thing(3).rng.random(4)
        thing = Thing(99)
        thing.reseed(3)
        np.testing.assert_array_equal(a, thing.rng.random(4))


class TestPermutationMatrix:
    def test_identity(self):
        np.testing.assert_array_equal(permutation_matrix([0, 1, 2]), np.eye(3, dtype=np.int8))

    def test_permutes_rows(self):
        mat = permutation_matrix([2, 0, 1])
        vec = np.array([10.0, 20.0, 30.0])
        result = mat @ vec
        np.testing.assert_array_equal(result, [30.0, 10.0, 20.0])

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            permutation_matrix([0, 0, 1])
