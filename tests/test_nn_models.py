"""Tests for the GNN models, losses and metrics."""

import numpy as np
import pytest

from repro.nn.base import BatchInputs
from repro.nn.factory import MODEL_REGISTRY, build_model
from repro.nn.gat import GAT
from repro.nn.gcn import GCN
from repro.nn.layers import Linear
from repro.nn.losses import bce_with_logits, cross_entropy
from repro.nn.metrics import accuracy, evaluate_predictions, micro_f1
from repro.nn.sage import GraphSAGE
from repro.tensor.optim import Adam
from repro.tensor.tensor import Tensor


def batch_from_graph(graph):
    return BatchInputs(features=graph.features, adjacency=graph.adjacency)


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3, rng=0)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_weight_transform_applied(self):
        layer = Linear(4, 3, rng=0, name="lin")
        layer.set_weight_transform(lambda name, values: np.zeros_like(values))
        out = layer(Tensor(np.ones((2, 4))))
        np.testing.assert_allclose(out.data, 0.0)  # bias is zero-initialised

    def test_weight_transform_straight_through_gradient(self):
        layer = Linear(3, 2, rng=0, name="lin")
        layer.set_weight_transform(lambda name, values: values + 1.0)
        out = layer(Tensor(np.ones((1, 3))))
        out.sum().backward()
        # Gradient w.r.t. the master weight equals the gradient w.r.t. the
        # effective weight (straight-through).
        np.testing.assert_allclose(layer.weight.grad, np.ones((3, 2)))

    def test_transform_shape_mismatch_rejected(self):
        layer = Linear(3, 2, rng=0)
        layer.set_weight_transform(lambda name, values: np.zeros((5, 5)))
        with pytest.raises(ValueError):
            layer(Tensor(np.ones((1, 3))))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)


@pytest.mark.parametrize("model_name", ["gcn", "gat", "sage"])
class TestModelsCommon:
    def test_forward_shapes(self, model_name, tiny_graph):
        model = build_model(model_name, tiny_graph.num_features, 8, tiny_graph.num_classes, rng=0)
        logits = model(batch_from_graph(tiny_graph))
        assert logits.shape == (tiny_graph.num_nodes, tiny_graph.num_classes)

    def test_deterministic_given_seed(self, model_name, tiny_graph):
        batch = batch_from_graph(tiny_graph)
        a = build_model(model_name, tiny_graph.num_features, 8, 4, rng=5).eval()(batch)
        b = build_model(model_name, tiny_graph.num_features, 8, 4, rng=5).eval()(batch)
        np.testing.assert_allclose(a.data, b.data)

    def test_learns_tiny_graph(self, model_name, tiny_graph):
        """A few epochs of full-batch training must beat random guessing."""
        model = build_model(
            model_name, tiny_graph.num_features, 16, tiny_graph.num_classes, rng=0, dropout=0.0
        )
        optimizer = Adam(model.parameters(), lr=0.05)
        batch = batch_from_graph(tiny_graph)
        for _ in range(60):
            logits = model(batch)
            loss = cross_entropy(logits, tiny_graph.labels, tiny_graph.train_mask)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        model.eval()
        acc = accuracy(model(batch).data, tiny_graph.labels, tiny_graph.test_mask)
        assert acc > 0.5

    def test_weight_transform_propagates_to_children(self, model_name, tiny_graph):
        model = build_model(model_name, tiny_graph.num_features, 8, 4, rng=0)
        called = []
        model.set_weight_transform(lambda name, values: called.append(name) or values)
        model(batch_from_graph(tiny_graph))
        assert called  # every 2-D weight goes through the transform

    def test_combination_weight_names_are_2d(self, model_name, tiny_graph):
        model = build_model(model_name, tiny_graph.num_features, 8, 4, rng=0)
        params = dict(model.named_parameters())
        for name in model.combination_weight_names():
            assert params[name].data.ndim == 2


class TestModelSpecifics:
    def test_gcn_layer_count(self):
        model = GCN(8, 16, 3, num_layers=3, rng=0)
        assert model.num_layers == 3
        with pytest.raises(ValueError):
            GCN(8, 16, 3, num_layers=1)

    def test_sage_has_self_and_neighbour_weights(self):
        model = GraphSAGE(8, 16, 3, rng=0)
        names = [name for name, _ in model.named_parameters()]
        assert any("self" in n for n in names)
        assert any("neigh" in n for n in names)

    def test_gat_head_divisibility(self):
        with pytest.raises(ValueError):
            GAT(8, 15, 3, num_heads=2, rng=0)

    def test_gat_attends_only_to_neighbours(self, tiny_graph):
        """Zeroing a node's row/column in the adjacency must change its output
        only through its own self-loop (no attention to non-neighbours)."""
        model = GAT(tiny_graph.num_features, 8, 4, rng=0, dropout=0.0).eval()
        batch = batch_from_graph(tiny_graph)
        logits = model(batch)
        assert np.all(np.isfinite(logits.data))

    def test_factory_rejects_unknown(self):
        with pytest.raises(KeyError):
            build_model("gin", 4, 8, 2)

    def test_registry_names(self):
        assert set(MODEL_REGISTRY) == {"gcn", "gat", "sage"}


class TestLosses:
    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        loss = cross_entropy(logits, np.array([0, 1]))
        assert loss.item() == pytest.approx(0.0, abs=1e-4)

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((4, 3)))
        loss = cross_entropy(logits, np.zeros(4, dtype=int))
        assert loss.item() == pytest.approx(np.log(3))

    def test_cross_entropy_mask(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        labels = np.array([1, 1])  # first row is wrong but masked out
        loss = cross_entropy(logits, labels, mask=np.array([False, True]))
        assert loss.item() == pytest.approx(0.0, abs=1e-4)

    def test_cross_entropy_empty_mask(self):
        loss = cross_entropy(Tensor(np.zeros((2, 2))), np.zeros(2, dtype=int), np.zeros(2, bool))
        assert loss.item() == 0.0

    def test_cross_entropy_gradient_direction(self):
        logits = Tensor(np.zeros((1, 2)), requires_grad=True)
        cross_entropy(logits, np.array([0])).backward()
        assert logits.grad[0, 0] < 0 < logits.grad[0, 1]

    def test_bce_matches_manual(self):
        logits = Tensor(np.array([[0.0, 2.0]]))
        labels = np.array([[0, 1]])
        loss = bce_with_logits(logits, labels)
        expected = -(np.log(0.5) + np.log(1 / (1 + np.exp(-2.0)))) / 2
        assert loss.item() == pytest.approx(expected, rel=1e-6)

    def test_bce_shape_check(self):
        with pytest.raises(ValueError):
            bce_with_logits(Tensor(np.zeros((2, 3))), np.zeros((2, 2)))

    def test_label_shape_check(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.zeros(5, dtype=int))


class TestMetrics:
    def test_accuracy(self):
        logits = np.array([[2.0, 0.0], [0.0, 2.0], [2.0, 0.0]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_with_mask(self):
        logits = np.array([[2.0, 0.0], [0.0, 2.0]])
        assert accuracy(logits, np.array([1, 1]), np.array([False, True])) == 1.0

    def test_accuracy_empty_mask(self):
        assert accuracy(np.zeros((2, 2)), np.zeros(2, dtype=int), np.zeros(2, bool)) == 0.0

    def test_micro_f1_perfect(self):
        logits = np.array([[5.0, -5.0], [-5.0, 5.0]])
        labels = np.array([[1, 0], [0, 1]])
        assert micro_f1(logits, labels) == 1.0

    def test_micro_f1_all_wrong(self):
        logits = np.array([[5.0, -5.0]])
        labels = np.array([[0, 1]])
        assert micro_f1(logits, labels) == 0.0

    def test_evaluate_dispatch(self):
        single = evaluate_predictions(np.array([[1.0, 0.0]]), np.array([0]))
        multi = evaluate_predictions(np.array([[1.0, -1.0]]), np.array([[1, 0]]))
        assert single == 1.0 and multi == 1.0
