"""Tests for Graph containers, normalisation, partitioning and sampling."""

import numpy as np
import pytest

from repro.graph.graph import Graph, graph_from_edges
from repro.graph.normalize import add_self_loops, normalize_adjacency, row_normalize
from repro.graph.partition import partition_graph
from repro.graph.sampling import ClusterBatchSampler
from repro.graph.sparse import CSRMatrix


def ring_graph(n=12, num_classes=3):
    edges = np.array([[i, (i + 1) % n] for i in range(n)])
    features = np.random.default_rng(0).normal(size=(n, 4))
    labels = np.arange(n) % num_classes
    return graph_from_edges(n, edges, features, labels, name="ring")


class TestGraphContainer:
    def test_graph_from_edges_symmetrises(self):
        graph = ring_graph()
        dense = graph.adjacency.to_dense()
        np.testing.assert_array_equal(dense, dense.T)

    def test_self_loops_removed(self):
        edges = np.array([[0, 0], [0, 1]])
        graph = graph_from_edges(3, edges, np.zeros((3, 2)), np.zeros(3, dtype=int))
        assert graph.adjacency.to_dense()[0, 0] == 0

    def test_counts(self):
        graph = ring_graph(10)
        assert graph.num_nodes == 10
        assert graph.num_edges == 20  # both directions stored
        assert graph.num_features == 4
        assert graph.num_classes == 3
        assert not graph.is_multilabel

    def test_multilabel_detection(self, tiny_multilabel_graph):
        assert tiny_multilabel_graph.is_multilabel
        assert tiny_multilabel_graph.num_classes == 5

    def test_degrees(self):
        graph = ring_graph(8)
        np.testing.assert_array_equal(graph.degrees(), np.full(8, 2.0))

    def test_subgraph_induced_edges(self):
        graph = ring_graph(10)
        sub = graph.subgraph(np.array([0, 1, 2, 5]))
        dense = sub.adjacency.to_dense()
        assert dense[0, 1] == 1 and dense[1, 2] == 1
        assert dense[2, 3] == 0  # node 5 not adjacent to node 2

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Graph(
                adjacency=CSRMatrix.identity(3),
                features=np.zeros((4, 2)),
                labels=np.zeros(3, dtype=int),
                train_mask=np.ones(3, dtype=bool),
                val_mask=np.zeros(3, dtype=bool),
                test_mask=np.zeros(3, dtype=bool),
            )


class TestNormalization:
    def test_add_self_loops(self):
        adjacency = ring_graph(6).adjacency
        with_loops = add_self_loops(adjacency)
        assert np.all(np.diag(with_loops.to_dense()) == 1.0)

    def test_add_self_loops_idempotent(self):
        adjacency = add_self_loops(ring_graph(6).adjacency)
        again = add_self_loops(adjacency)
        np.testing.assert_array_equal(adjacency.to_dense(), again.to_dense())

    def test_symmetric_normalization_rows(self):
        adjacency = ring_graph(6).adjacency
        norm = normalize_adjacency(adjacency, self_loops=True, symmetric=True)
        dense = norm.to_dense()
        # Symmetric normalisation of a regular ring graph: every entry 1/3.
        np.testing.assert_allclose(dense[dense > 0], 1.0 / 3.0)

    def test_random_walk_normalization(self):
        adjacency = ring_graph(6).adjacency
        norm = normalize_adjacency(adjacency, self_loops=False, symmetric=False)
        np.testing.assert_allclose(norm.row_sums(), np.ones(6))

    def test_isolated_node_handled(self):
        adjacency = CSRMatrix.zeros((3, 3))
        norm = normalize_adjacency(adjacency, self_loops=False, symmetric=False)
        assert np.all(np.isfinite(norm.to_dense()))

    def test_row_normalize(self):
        features = np.array([[1.0, 3.0], [0.0, 0.0], [-2.0, 2.0]])
        normed = row_normalize(features)
        np.testing.assert_allclose(np.abs(normed).sum(axis=1), [1.0, 0.0, 1.0])


class TestPartitioning:
    def test_partition_covers_all_nodes(self, tiny_graph):
        result = partition_graph(tiny_graph.adjacency, 4, seed=0)
        assert result.assignment.shape == (tiny_graph.num_nodes,)
        assert set(np.unique(result.assignment)) <= set(range(4))

    def test_partition_balance(self, tiny_graph):
        result = partition_graph(tiny_graph.adjacency, 4, seed=0)
        sizes = result.part_sizes()
        assert sizes.sum() == tiny_graph.num_nodes
        assert sizes.max() <= 2.5 * sizes.mean()

    def test_single_part(self, tiny_graph):
        result = partition_graph(tiny_graph.adjacency, 1)
        assert result.edge_cut == 0
        assert np.all(result.assignment == 0)

    def test_too_many_parts_raises(self):
        adjacency = CSRMatrix.identity(3)
        with pytest.raises(ValueError):
            partition_graph(adjacency, 10)

    def test_edge_cut_reported(self, tiny_graph):
        result = partition_graph(tiny_graph.adjacency, 3, seed=1)
        rows, cols, _ = tiny_graph.adjacency.coo()
        expected = int(
            np.count_nonzero(result.assignment[rows] != result.assignment[cols]) // 2
        )
        assert result.edge_cut == expected

    def test_community_graph_low_cut(self):
        # Two disconnected cliques must be separated with zero edge cut.
        edges = []
        for base in (0, 5):
            for i in range(5):
                for j in range(i + 1, 5):
                    edges.append([base + i, base + j])
        graph = graph_from_edges(
            10, np.array(edges), np.zeros((10, 2)), np.zeros(10, dtype=int)
        )
        result = partition_graph(graph.adjacency, 2, seed=0)
        assert result.edge_cut == 0

    def test_part_nodes_accessor(self, tiny_graph):
        result = partition_graph(tiny_graph.adjacency, 3, seed=2)
        collected = np.sort(np.concatenate([result.part_nodes(p) for p in range(3)]))
        np.testing.assert_array_equal(collected, np.arange(tiny_graph.num_nodes))
        with pytest.raises(IndexError):
            result.part_nodes(99)


class TestSampling:
    def test_batches_cover_graph(self, tiny_graph):
        sampler = ClusterBatchSampler(tiny_graph, num_parts=6, batch_clusters=2, seed=0)
        nodes = np.concatenate([b.subgraph.node_ids for b in sampler.epoch(shuffle=False)])
        np.testing.assert_array_equal(np.sort(nodes), np.arange(tiny_graph.num_nodes))

    def test_num_batches(self, tiny_graph):
        sampler = ClusterBatchSampler(tiny_graph, num_parts=6, batch_clusters=4, seed=0)
        assert sampler.num_batches == 2

    def test_shuffle_changes_order(self, tiny_graph):
        sampler = ClusterBatchSampler(tiny_graph, num_parts=6, batch_clusters=2, seed=0)
        first = [b.cluster_ids for b in sampler.epoch(shuffle=True)]
        second = [b.cluster_ids for b in sampler.epoch(shuffle=True)]
        assert first != second or len(first) == 1

    def test_batch_clusters_validation(self, tiny_graph):
        with pytest.raises(ValueError):
            ClusterBatchSampler(tiny_graph, num_parts=2, batch_clusters=4)

    def test_full_graph_batch(self, tiny_graph):
        sampler = ClusterBatchSampler(tiny_graph, num_parts=4, batch_clusters=2, seed=0)
        batch = sampler.full_graph_batch()
        assert batch.num_nodes == tiny_graph.num_nodes
