"""Tests for the pipelined-execution timing model (Fig. 7 machinery)."""

import numpy as np
import pytest

from repro.core.strategies import build_strategy
from repro.hardware.faults import FaultModel
from repro.graph.datasets import DATASET_REGISTRY
from repro.hardware.config import DEFAULT_CONFIG
from repro.hardware.energy import TileCostModel
from repro.pipeline.timing import (
    TimingInputs,
    estimate_execution_time,
    fig7_paper_datasets,
    timing_inputs_from_spec,
)


@pytest.fixture
def inputs():
    return timing_inputs_from_spec(DATASET_REGISTRY["reddit"], epochs=100)


class TestTimingInputs:
    def test_from_spec_counts(self):
        spec = DATASET_REGISTRY["ppi"]
        inputs = timing_inputs_from_spec(spec, epochs=100)
        assert inputs.num_pipeline_units == spec.paper_partitions
        assert inputs.num_batches == spec.paper_partitions // spec.paper_batch
        assert inputs.avg_subgraph_nodes == pytest.approx(
            spec.paper_nodes / spec.paper_partitions
        )
        assert inputs.num_weight_crossbars > 0
        assert inputs.num_adjacency_crossbars > 0

    def test_from_counters(self):
        counters = {
            "num_batches": 10,
            "epochs": 5,
            "avg_batch_nodes": 100.0,
            "total_blocks": 40.0,
            "num_adjacency_crossbars": 8,
            "num_weight_crossbars": 4,
        }
        inputs = TimingInputs.from_counters(counters)
        assert inputs.num_batches == 10
        assert inputs.blocks_per_batch == 4.0


class TestExecutionTimeModel:
    def test_fault_free_has_no_overheads(self, inputs):
        breakdown = estimate_execution_time(build_strategy("fault_free"), inputs)
        assert breakdown.clipping_stage_time == 0
        assert breakdown.preprocessing_time == 0
        assert breakdown.reorder_stall_time == 0
        assert breakdown.total == breakdown.pipeline_time

    def test_clipping_adds_one_stage_per_epoch(self, inputs):
        breakdown = estimate_execution_time(build_strategy("clipping"), inputs)
        stage = breakdown.components["stage_delay_s"]
        assert breakdown.clipping_stage_time == pytest.approx(inputs.epochs * stage)

    def test_fare_overhead_is_about_one_percent(self, inputs):
        baseline = estimate_execution_time(build_strategy("fault_free"), inputs)
        fare = estimate_execution_time(build_strategy("fare"), inputs)
        overhead = fare.normalized(baseline) - 1.0
        assert 0.0 < overhead < 0.05

    def test_nr_is_several_times_slower(self, inputs):
        baseline = estimate_execution_time(build_strategy("fault_free"), inputs)
        nr = estimate_execution_time(build_strategy("nr"), inputs)
        ratio = nr.normalized(baseline)
        assert 1.5 < ratio < 6.0

    def test_ordering_matches_paper(self, inputs):
        baseline = estimate_execution_time(build_strategy("fault_free"), inputs)
        clipping = estimate_execution_time(build_strategy("clipping"), inputs).normalized(baseline)
        fare = estimate_execution_time(build_strategy("fare"), inputs).normalized(baseline)
        nr = estimate_execution_time(build_strategy("nr"), inputs).normalized(baseline)
        assert 1.0 <= clipping <= fare < nr

    def test_post_deployment_adds_bist_time(self):
        spec = DATASET_REGISTRY["reddit"]
        with_pd = timing_inputs_from_spec(spec, track_post_deployment=True)
        without_pd = timing_inputs_from_spec(spec, track_post_deployment=False)
        fare_pd = estimate_execution_time(build_strategy("fare"), with_pd)
        fare = estimate_execution_time(build_strategy("fare"), without_pd)
        assert fare_pd.bist_time > 0
        assert fare.bist_time == 0

    def test_normalized_requires_positive_baseline(self, inputs):
        breakdown = estimate_execution_time(build_strategy("fault_free"), inputs)
        zero = estimate_execution_time(build_strategy("fault_free"), inputs)
        zero.pipeline_time = 0.0
        with pytest.raises(ValueError):
            breakdown.normalized(zero)

    def test_fig7_dataset_labels(self):
        labels = set(fig7_paper_datasets())
        assert labels == {"Ogbl (SAGE)", "Reddit (GCN)", "PPI (GAT)", "Amazon2M (GCN)"}

    def test_fare_breakdown_exports_mapping_cache_counters(self, inputs):
        """The cost engine's hit/miss counters surface on the breakdown."""
        fare = build_strategy("fare")
        rng = np.random.default_rng(0)
        blocks = [(rng.random((8, 8)) < 0.1).astype(float) for _ in range(3)]
        fmaps = FaultModel(0.1, (1, 1), seed=1).generate(4, 8, 8)
        fare.plan_adjacency([blocks, blocks], fmaps, list(range(4)), 8)
        stats = fare.mapping_engine_stats()
        assert stats is not None and stats["mapping_pairs_total"] > 0
        breakdown = estimate_execution_time(fare, inputs)
        assert breakdown.components["mapping_pairs_total"] > 0
        assert "mapping_cache_hits" in breakdown.components
        # The second identical batch should have been answered from cache.
        assert breakdown.components["mapping_cache_hits"] > 0

    def test_non_mapping_strategies_have_no_engine_stats(self, inputs):
        for name in ("fault_free", "fault_unaware", "clipping", "nr"):
            assert build_strategy(name).mapping_engine_stats() is None
            breakdown = estimate_execution_time(build_strategy(name), inputs)
            assert "mapping_pairs_total" not in breakdown.components

    def test_cost_model_override(self, inputs):
        slow = TileCostModel(config=DEFAULT_CONFIG, read_cycles_per_mvm=160)
        fast = TileCostModel(config=DEFAULT_CONFIG, read_cycles_per_mvm=16)
        slow_time = estimate_execution_time(build_strategy("fault_free"), inputs, cost_model=slow)
        fast_time = estimate_execution_time(build_strategy("fault_free"), inputs, cost_model=fast)
        assert slow_time.total > fast_time.total
