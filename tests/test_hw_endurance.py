"""Tests for write-endurance modelling and post-deployment fault schedules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.endurance import (
    EnduranceModel,
    PostDeploymentSchedule,
    WearOutSchedule,
)


class TestEnduranceModel:
    def test_zero_writes_never_fail(self):
        model = EnduranceModel()
        assert model.failure_probability(0.0) == 0.0
        assert model.failure_probability(-5.0) == 0.0

    def test_mean_endurance_is_the_median(self):
        model = EnduranceModel(mean_endurance=1e9)
        assert model.failure_probability(1e9) == pytest.approx(0.5)

    def test_writes_far_beyond_endurance_saturate(self):
        model = EnduranceModel(mean_endurance=1e6, sigma_log10=0.5)
        assert model.failure_probability(1e20) == pytest.approx(1.0)

    def test_monotone_in_writes(self):
        model = EnduranceModel()
        probs = [model.failure_probability(w) for w in np.logspace(3, 12, 40)]
        assert all(a <= b for a, b in zip(probs, probs[1:]))

    def test_expected_new_faults_scales_with_cells(self):
        model = EnduranceModel(mean_endurance=1e6)
        assert model.expected_new_faults(1e6, 1000) == pytest.approx(500.0)

    def test_expected_new_faults_empty_crossbar_rejected(self):
        model = EnduranceModel()
        with pytest.raises(ValueError):
            model.expected_new_faults(1e6, 0)
        with pytest.raises(ValueError):
            model.expected_new_faults(1e6, -4)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            EnduranceModel(mean_endurance=0.0)
        with pytest.raises(ValueError):
            EnduranceModel(sigma_log10=-1.0)

    def test_writes_for_probability_bounds_rejected(self):
        model = EnduranceModel()
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                model.writes_for_probability(bad)

    @given(st.floats(1e-6, 1.0 - 1e-6), st.floats(1e5, 1e11), st.floats(0.1, 1.5))
    @settings(max_examples=40, deadline=None)
    def test_writes_for_probability_round_trips(self, p, mean, sigma):
        model = EnduranceModel(mean_endurance=mean, sigma_log10=sigma)
        writes = model.writes_for_probability(p)
        assert model.failure_probability(writes) == pytest.approx(p, abs=1e-9)


class TestWearOutSchedule:
    def test_requires_checkpoints(self):
        with pytest.raises(ValueError):
            WearOutSchedule(model=EnduranceModel(), write_checkpoints=())

    def test_requires_strictly_increasing_positive_checkpoints(self):
        model = EnduranceModel()
        with pytest.raises(ValueError):
            WearOutSchedule(model=model, write_checkpoints=(0.0, 10.0))
        with pytest.raises(ValueError):
            WearOutSchedule(model=model, write_checkpoints=(10.0, 10.0))
        with pytest.raises(ValueError):
            WearOutSchedule(model=model, write_checkpoints=(20.0, 10.0))

    def test_log_spaced_hits_the_probability_endpoints(self):
        model = EnduranceModel(mean_endurance=1e8)
        schedule = WearOutSchedule.log_spaced(
            model, start_probability=0.01, stop_probability=0.3, num_checkpoints=5
        )
        densities = schedule.cumulative_densities()
        assert densities[0] == pytest.approx(0.01, abs=1e-9)
        assert densities[-1] == pytest.approx(0.3, abs=1e-9)

    def test_log_spaced_validates_probability_order(self):
        model = EnduranceModel()
        with pytest.raises(ValueError):
            WearOutSchedule.log_spaced(model, 0.3, 0.1)
        with pytest.raises(ValueError):
            WearOutSchedule.log_spaced(model, 0.0, 0.5)
        with pytest.raises(ValueError):
            WearOutSchedule.log_spaced(model, num_checkpoints=0)

    @given(st.integers(1, 8), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_increments_sum_to_cumulative(self, num_checkpoints, seed):
        rng = np.random.default_rng(seed)
        model = EnduranceModel(
            mean_endurance=float(rng.uniform(1e5, 1e10)),
            sigma_log10=float(rng.uniform(0.2, 1.0)),
        )
        schedule = WearOutSchedule.log_spaced(
            model,
            start_probability=0.005,
            stop_probability=0.25,
            num_checkpoints=num_checkpoints,
        )
        cumulative = schedule.cumulative_densities()
        increments = schedule.density_increments()
        assert len(increments) == num_checkpoints
        assert all(i >= 0.0 for i in increments)
        # Densities are monotone because the checkpoints are increasing.
        assert all(a <= b for a, b in zip(cumulative, cumulative[1:]))
        np.testing.assert_allclose(np.cumsum(increments), cumulative)


class TestPostDeploymentSchedule:
    def test_densities_sum_to_total(self):
        schedule = PostDeploymentSchedule(total_extra_density=0.01, num_epochs=10)
        assert len(schedule.densities()) == 10
        assert sum(schedule.densities()) == pytest.approx(0.01)

    def test_per_epoch_constant(self):
        schedule = PostDeploymentSchedule(total_extra_density=0.02, num_epochs=4)
        assert schedule.densities() == [pytest.approx(0.005)] * 4

    def test_cumulative_monotone_and_ends_at_total(self):
        schedule = PostDeploymentSchedule(total_extra_density=0.01, num_epochs=7)
        cumulative = schedule.cumulative()
        assert len(cumulative) == 7
        assert all(a < b for a, b in zip(cumulative, cumulative[1:]))
        assert cumulative[-1] == pytest.approx(0.01)
        # Each cumulative point is the prefix sum of the per-epoch densities.
        np.testing.assert_allclose(cumulative, np.cumsum(schedule.densities()))

    def test_validation(self):
        with pytest.raises(ValueError):
            PostDeploymentSchedule(total_extra_density=1.5)
        with pytest.raises(ValueError):
            PostDeploymentSchedule(num_epochs=0)
