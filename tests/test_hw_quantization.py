"""Tests for fixed-point quantisation and cell slicing (incl. property tests)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.quantization import (
    FixedPointFormat,
    cells_to_codes,
    codes_to_cells,
    dequantize,
    dequantize_from_cells,
    quantization_error,
    quantize,
    quantize_to_cells,
)


class TestFormat:
    def test_defaults_match_paper(self):
        fmt = FixedPointFormat()
        assert fmt.total_bits == 16
        assert fmt.bits_per_cell == 2
        assert fmt.num_cells == 8
        assert fmt.cell_levels == 4

    def test_scale_and_offset(self):
        fmt = FixedPointFormat(total_bits=8, max_value=1.0, bits_per_cell=2)
        assert fmt.levels == 256
        assert fmt.offset == 128
        assert fmt.scale == pytest.approx(2.0 / 256)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=10, bits_per_cell=4)

    def test_invalid_max_value(self):
        with pytest.raises(ValueError):
            FixedPointFormat(max_value=0.0)


class TestQuantizeDequantize:
    def test_zero_maps_to_offset(self, fmt):
        assert quantize(np.array(0.0), fmt) == fmt.offset

    def test_roundtrip_error_bounded(self, fmt):
        values = np.linspace(-3.9, 3.9, 101)
        error = quantization_error(values, fmt)
        assert np.all(np.abs(error) <= fmt.scale / 2 + 1e-12)

    def test_saturation(self, fmt):
        codes = quantize(np.array([100.0, -100.0]), fmt)
        assert codes[0] == fmt.levels - 1
        assert codes[1] == 0

    def test_dequantize_range_check(self, fmt):
        with pytest.raises(ValueError):
            dequantize(np.array([fmt.levels]), fmt)

    def test_monotonicity(self, fmt):
        values = np.linspace(-3, 3, 50)
        codes = quantize(values, fmt)
        assert np.all(np.diff(codes) >= 0)


class TestCellSlicing:
    def test_cells_shape_and_range(self, fmt):
        values = np.random.default_rng(0).uniform(-3, 3, size=(5, 4))
        cells = quantize_to_cells(values, fmt)
        assert cells.shape == (5, 4, fmt.num_cells)
        assert cells.min() >= 0 and cells.max() <= fmt.cell_levels - 1

    def test_cells_roundtrip(self, fmt):
        codes = np.arange(0, 2**16, 997)
        np.testing.assert_array_equal(cells_to_codes(codes_to_cells(codes, fmt), fmt), codes)

    def test_msb_first_ordering(self, fmt):
        # Code with only the top two bits set -> first cell holds them.
        code = np.array([0b11 << 14])
        cells = codes_to_cells(code, fmt)
        assert cells[0, 0] == 3
        assert np.all(cells[0, 1:] == 0)

    def test_msb_fault_explodes_value(self, fmt):
        """A stuck-at-1 MSB cell pushes a small weight towards the range maximum."""
        value = np.array([0.01])
        cells = quantize_to_cells(value, fmt)
        cells[0, 0] = fmt.cell_levels - 1  # SA1 on the most-significant cell
        exploded = dequantize_from_cells(cells, fmt)
        assert exploded[0] > 0.5 * fmt.max_value

    def test_lsb_fault_is_minor(self, fmt):
        value = np.array([0.01])
        cells = quantize_to_cells(value, fmt)
        cells[0, -1] = fmt.cell_levels - 1  # SA1 on the least-significant cell
        perturbed = dequantize_from_cells(cells, fmt)
        assert abs(perturbed[0] - 0.01) < 10 * fmt.scale

    def test_wrong_cell_count_raises(self, fmt):
        with pytest.raises(ValueError):
            cells_to_codes(np.zeros((3, 5)), fmt)


class TestProperties:
    @given(
        st.lists(st.floats(-4.0, 4.0, allow_nan=False), min_size=1, max_size=32),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_within_half_step(self, values):
        fmt = FixedPointFormat(total_bits=16, max_value=4.0, bits_per_cell=2)
        arr = np.asarray(values)
        recovered = dequantize_from_cells(quantize_to_cells(arr, fmt), fmt)
        # Saturation only at exactly +max_value, which quantises one step below.
        assert np.all(np.abs(recovered - np.clip(arr, -4.0, 4.0 - fmt.scale)) <= fmt.scale)

    @given(st.integers(0, 2**16 - 1))
    @settings(max_examples=60, deadline=None)
    def test_code_cell_bijection(self, code):
        fmt = FixedPointFormat()
        cells = codes_to_cells(np.array([code]), fmt)
        assert cells_to_codes(cells, fmt)[0] == code

    @given(st.integers(2, 8).filter(lambda b: 16 % b == 0))
    @settings(max_examples=10, deadline=None)
    def test_cell_count_consistent(self, bits_per_cell):
        fmt = FixedPointFormat(total_bits=16, bits_per_cell=bits_per_cell)
        values = np.linspace(-1, 1, 7)
        cells = quantize_to_cells(values, fmt)
        assert cells.shape[-1] == 16 // bits_per_cell
        recovered = dequantize_from_cells(cells, fmt)
        assert np.all(np.abs(recovered - values) <= fmt.scale)
