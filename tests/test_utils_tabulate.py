"""Unit tests for repro.utils.tabulate."""

import pytest

from repro.utils.tabulate import format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "-+-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456]], float_fmt=".2f")
        assert "0.12" in text
        assert "0.1234" not in text

    def test_bool_rendering(self):
        text = format_table(["flag"], [[True], [False]])
        assert "Y" in text and "N" in text

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_column_alignment(self):
        text = format_table(["name", "v"], [["x", 1], ["longer", 2]])
        header, _, row1, row2 = text.splitlines()
        assert header.index("v") == row1.index("1") == row2.index("2")
