"""Tests for the bipartite matching algorithms (greedy, Hungarian, b-Suitor)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment

from repro.matching.bipartite import (
    SOLVERS,
    assignment_cost,
    solve_assignment,
    validate_assignment,
)
from repro.matching.bsuitor import bsuitor_assignment, bsuitor_bmatching
from repro.matching.greedy import greedy_assignment, greedy_assignment_batch
from repro.matching.hungarian import hungarian_assignment


def random_cost(rows, cols, seed):
    return np.random.default_rng(seed).random((rows, cols)) * 10


def reference_greedy(cost):
    """The seed implementation: full-matrix copy + inf-masked argmin."""
    cost = np.asarray(cost, dtype=np.float64)
    n_rows, n_cols = cost.shape
    work = cost.copy()
    assignment = -np.ones(n_rows, dtype=np.int64)
    total = 0.0
    for _ in range(n_rows):
        row, col = divmod(int(np.argmin(work)), n_cols)
        total += cost[row, col]
        assignment[row] = col
        work[row, :] = np.inf
        work[:, col] = np.inf
    return assignment, float(total)


class TestGreedy:
    def test_valid_assignment(self):
        cost = random_cost(5, 8, 0)
        assignment, total = greedy_assignment(cost)
        validate_assignment(assignment, 8)
        assert total == pytest.approx(assignment_cost(cost, assignment))

    def test_identity_on_diagonal_cost(self):
        cost = np.ones((4, 4)) - np.eye(4)
        assignment, total = greedy_assignment(cost)
        np.testing.assert_array_equal(np.sort(assignment), np.arange(4))
        assert total == 0.0

    def test_rejects_more_rows_than_cols(self):
        with pytest.raises(ValueError):
            greedy_assignment(np.zeros((3, 2)))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            greedy_assignment(np.zeros(5))

    @pytest.mark.parametrize("seed", range(10))
    def test_masking_rewrite_bit_identical_to_seed(self, seed):
        """Row/column masking must keep results bit-identical to the old
        copy-and-inf-mask implementation, including tie-breaking."""
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(1, 9))
        cols = int(rng.integers(rows, 12))
        # Heavily quantised costs force plenty of ties.
        cost = np.floor(rng.random((rows, cols)) * 4.0)
        assignment, total = greedy_assignment(cost)
        ref_assignment, ref_total = reference_greedy(cost)
        np.testing.assert_array_equal(assignment, ref_assignment)
        assert total == ref_total

    def test_all_zero_matrix_gives_identity(self):
        assignment, total = greedy_assignment(np.zeros((5, 5)))
        np.testing.assert_array_equal(assignment, np.arange(5))
        assert total == 0.0


class TestGreedyBatch:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_scalar_per_problem(self, seed):
        rng = np.random.default_rng(seed + 200)
        stack = np.floor(rng.random((7, 6, 9)) * 3.0)
        assignments, totals = greedy_assignment_batch(stack)
        for p in range(stack.shape[0]):
            ref_assignment, ref_total = greedy_assignment(stack[p])
            np.testing.assert_array_equal(assignments[p], ref_assignment)
            assert totals[p] == ref_total

    def test_integer_costs_match_scalar(self):
        rng = np.random.default_rng(42)
        stack = rng.integers(0, 50, size=(4, 5, 7)).astype(np.int64)
        assignments, totals = greedy_assignment_batch(stack)
        for p in range(stack.shape[0]):
            ref_assignment, ref_total = greedy_assignment(stack[p])
            np.testing.assert_array_equal(assignments[p], ref_assignment)
            assert totals[p] == ref_total

    @pytest.mark.parametrize("seed", range(6))
    def test_inf_costs_match_scalar(self, seed):
        # inf marks forbidden assignments; once only inf cells remain the
        # batch path must still commit valid (distinct) cells like the scalar.
        rng = np.random.default_rng(seed + 900)
        stack = np.floor(rng.random((5, 4, 5)) * 3.0)
        stack[rng.random(stack.shape) < 0.6] = np.inf
        assignments, totals = greedy_assignment_batch(stack)
        for p in range(stack.shape[0]):
            ref_assignment, ref_total = greedy_assignment(stack[p])
            np.testing.assert_array_equal(assignments[p], ref_assignment)
            assert totals[p] == ref_total or (
                np.isinf(totals[p]) and np.isinf(ref_total)
            )
            validate_assignment(assignments[p], stack.shape[2])

    def test_huge_integer_costs_do_not_overflow_int32(self):
        # Values beyond int32 must fall back to the float64 path and still
        # match the scalar solver instead of wrapping around.
        stack = np.array([[[2**31, 1], [1, 2**31]]], dtype=np.int64)
        assignments, totals = greedy_assignment_batch(stack)
        ref_assignment, ref_total = greedy_assignment(stack[0])
        np.testing.assert_array_equal(assignments[0], ref_assignment)
        assert totals[0] == ref_total

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError):
            greedy_assignment_batch(np.zeros((2, 2)))

    def test_rejects_more_rows_than_cols(self):
        with pytest.raises(ValueError):
            greedy_assignment_batch(np.zeros((2, 3, 2)))


class TestHungarian:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_scipy_square(self, seed):
        cost = random_cost(7, 7, seed)
        _, total = hungarian_assignment(cost)
        rows, cols = linear_sum_assignment(cost)
        assert total == pytest.approx(cost[rows, cols].sum())

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_scipy_rectangular(self, seed):
        cost = random_cost(4, 9, seed + 100)
        _, total = hungarian_assignment(cost)
        rows, cols = linear_sum_assignment(cost)
        assert total == pytest.approx(cost[rows, cols].sum())

    def test_returns_valid_assignment(self):
        cost = random_cost(6, 6, 3)
        assignment, _ = hungarian_assignment(cost)
        validate_assignment(assignment, 6)

    def test_rejects_infinite(self):
        cost = np.ones((2, 2))
        cost[0, 0] = np.inf
        with pytest.raises(ValueError):
            hungarian_assignment(cost)

    def test_not_worse_than_greedy(self):
        for seed in range(6):
            cost = random_cost(8, 10, seed + 50)
            _, hung = hungarian_assignment(cost)
            _, greedy = greedy_assignment(cost)
            assert hung <= greedy + 1e-9


class TestBSuitor:
    def test_bmatching_respects_capacities(self):
        weights = random_cost(6, 6, 0)
        pairs = bsuitor_bmatching(weights, b_left=2, b_right=2)
        left_count = np.zeros(6, dtype=int)
        right_count = np.zeros(6, dtype=int)
        for left, right in pairs:
            left_count[left] += 1
            right_count[right] += 1
        assert left_count.max() <= 2 and right_count.max() <= 2

    def test_half_approximation_bound(self):
        # For b=1 the optimum is the assignment-problem maximum.
        for seed in range(6):
            weights = random_cost(6, 6, seed + 10) + 0.1
            pairs = bsuitor_bmatching(weights, 1, 1)
            achieved = sum(weights[left, right] for left, right in pairs)
            rows, cols = linear_sum_assignment(-weights)
            optimum = weights[rows, cols].sum()
            assert achieved >= 0.5 * optimum - 1e-9

    def test_no_edges_below_threshold(self):
        weights = np.full((3, 3), -1.0)
        assert bsuitor_bmatching(weights, 1, 1, min_weight=0.0) == []

    def test_assignment_front_end_valid(self):
        cost = random_cost(5, 7, 4)
        assignment, total = bsuitor_assignment(cost)
        validate_assignment(assignment, 7)
        assert total == pytest.approx(assignment_cost(cost, assignment))

    def test_assignment_near_optimal_on_sparse_costs(self):
        # Zero-cost perfect matching exists; the half-approximation finds one
        # with cost no worse than greedy on such easy instances.
        cost = np.ones((5, 5)) - np.eye(5)
        assignment, total = bsuitor_assignment(cost)
        validate_assignment(assignment, 5)
        assert total <= 2.0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            bsuitor_bmatching(np.ones((2, 2)), b_left=0)

    def test_rejects_more_rows_than_cols(self):
        with pytest.raises(ValueError):
            bsuitor_assignment(np.zeros((3, 2)))


class TestDispatch:
    def test_registry_contains_all(self):
        assert set(SOLVERS) == {"greedy", "hungarian", "bsuitor"}

    @pytest.mark.parametrize("method", ["greedy", "hungarian", "bsuitor"])
    def test_solve_assignment_dispatch(self, method):
        cost = random_cost(4, 6, 1)
        assignment, total = solve_assignment(cost, method=method)
        validate_assignment(assignment, 6)
        assert total >= 0

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            solve_assignment(np.zeros((2, 2)), method="magic")

    def test_validate_assignment_rejects_duplicates(self):
        with pytest.raises(ValueError):
            validate_assignment(np.array([0, 0]), 3)

    def test_validate_assignment_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            validate_assignment(np.array([0, 5]), 3)

    def test_assignment_cost_checks_length(self):
        with pytest.raises(ValueError):
            assignment_cost(np.zeros((3, 3)), np.array([0, 1]))


class TestMatchingProperties:
    @given(st.integers(0, 100_000), st.integers(2, 7), st.integers(2, 9))
    @settings(max_examples=40, deadline=None)
    def test_hungarian_optimal_property(self, seed, rows, cols):
        if rows > cols:
            rows, cols = cols, rows
        cost = np.random.default_rng(seed).random((rows, cols))
        assignment, total = hungarian_assignment(cost)
        validate_assignment(assignment, cols)
        scipy_rows, scipy_cols = linear_sum_assignment(cost)
        assert total == pytest.approx(cost[scipy_rows, scipy_cols].sum(), abs=1e-9)

    @given(st.integers(0, 100_000), st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_greedy_within_factor_two_of_optimum_maximisation(self, seed, n):
        # Greedy on (max - cost) is a half-approximation for maximisation.
        cost = np.random.default_rng(seed).random((n, n))
        weights = cost.max() - cost
        assignment, _ = greedy_assignment(-weights - 1e-12)
        achieved = weights[np.arange(n), assignment].sum()
        rows, cols = linear_sum_assignment(-weights)
        optimum = weights[rows, cols].sum()
        assert achieved >= 0.5 * optimum - 1e-9
