"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_fraction,
    check_non_negative_int,
    check_permutation,
    check_positive_int,
    check_probability_ratio,
    check_square_matrix,
)


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "x") == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-2, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(1.5, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(4), "x") == 4


class TestCheckNonNegativeInt:
    def test_accepts_zero(self):
        assert check_non_negative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative_int(-1, "x")


class TestCheckFraction:
    def test_accepts_bounds(self):
        assert check_fraction(0.0, "x") == 0.0
        assert check_fraction(1.0, "x") == 1.0

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_fraction(1.5, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_fraction(-0.1, "x")

    def test_exclusive_high(self):
        with pytest.raises(ValueError):
            check_fraction(1.0, "x", inclusive_high=False)

    def test_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            check_fraction("half", "x")


class TestCheckSquareMatrix:
    def test_accepts_square(self):
        mat = check_square_matrix(np.zeros((3, 3)), "m")
        assert mat.shape == (3, 3)

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            check_square_matrix(np.zeros((2, 3)), "m")

    def test_rejects_vector(self):
        with pytest.raises(ValueError):
            check_square_matrix(np.zeros(4), "m")


class TestCheckPermutation:
    def test_accepts_valid(self):
        perm = check_permutation([2, 0, 1], 3)
        assert perm.dtype == np.int64
        np.testing.assert_array_equal(perm, [2, 0, 1])

    def test_accepts_identity_and_empty(self):
        np.testing.assert_array_equal(check_permutation(np.arange(5), 5), np.arange(5))
        assert check_permutation([], 0).size == 0

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            check_permutation([0, 1], 3)
        with pytest.raises(ValueError):
            check_permutation(np.zeros((2, 2), dtype=int), 4)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_permutation([0, 1, 3], 3)
        with pytest.raises(ValueError):
            check_permutation([-1, 0, 1], 3)

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            check_permutation([0, 1, 1], 3)


class TestCheckProbabilityRatio:
    def test_normalises(self):
        sa0, sa1 = check_probability_ratio(9.0, 1.0)
        assert sa0 == pytest.approx(0.9)
        assert sa1 == pytest.approx(0.1)

    def test_one_sided(self):
        assert check_probability_ratio(1.0, 0.0) == (1.0, 0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability_ratio(-1.0, 1.0)

    def test_rejects_both_zero(self):
        with pytest.raises(ValueError):
            check_probability_ratio(0.0, 0.0)
