"""Tests for the lockstep-batched exact assignment solvers.

The contract of :mod:`repro.core.batch_solvers` is *bit-identical*
per-slice equivalence with the scalar solvers in :mod:`repro.matching` —
same assignments, same totals, same tie-breaking — across random, tied,
degenerate and rectangular instances.  Square-instance assignments are
additionally checked to be genuine permutations via
:func:`repro.utils.validation.check_permutation`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch_solvers import (
    BATCH_SOLVERS,
    bsuitor_assignment_batch,
    hungarian_assignment_batch,
    solve_assignment_batch,
)
from repro.matching.bipartite import SOLVERS, solve_assignment, validate_assignment
from repro.matching.bsuitor import bsuitor_assignment
from repro.matching.greedy import greedy_assignment
from repro.matching.hungarian import hungarian_assignment
from repro.utils.validation import check_permutation

SCALARS = {
    "hungarian": hungarian_assignment,
    "bsuitor": bsuitor_assignment,
    "greedy": greedy_assignment,
}


def random_stack(rng, num, rows, cols, kind):
    """Stacks spanning the interesting regimes, including heavy ties."""
    if kind == "float":
        return rng.random((num, rows, cols)) * 10.0
    if kind == "tied":
        return np.floor(rng.random((num, rows, cols)) * 3.0)
    if kind == "all_ties":
        return np.full((num, rows, cols), float(rng.integers(0, 3)))
    # 'structured': small integers with one uniformly expensive column, the
    # shape an all-SA0 crossbar row induces in the mapping cost matrices.
    stack = rng.integers(0, 4, (num, rows, cols)).astype(float)
    stack[:, :, int(rng.integers(0, cols))] = float(cols + 1)
    return stack


def assert_slicewise_identical(method, stack):
    assignments, totals = solve_assignment_batch(stack, method=method)
    num, rows, cols = stack.shape
    for p in range(num):
        ref_assignment, ref_total = SCALARS[method](stack[p])
        np.testing.assert_array_equal(assignments[p], ref_assignment)
        assert totals[p] == ref_total
        validate_assignment(assignments[p], cols)
        if rows == cols:
            check_permutation(assignments[p], rows)


class TestBatchedEquivalence:
    @pytest.mark.parametrize("method", ["hungarian", "bsuitor"])
    @pytest.mark.parametrize("kind", ["float", "tied", "all_ties", "structured"])
    def test_bit_identical_to_scalar(self, method, kind):
        rng = np.random.default_rng(hash((method, kind)) % 2**32)
        for trial in range(8):
            num = int(rng.integers(1, 7))
            rows = int(rng.integers(1, 9))
            cols = int(rng.integers(rows, 12))
            stack = random_stack(rng, num, rows, cols, kind)
            assert_slicewise_identical(method, stack)

    @given(st.integers(0, 100_000))
    @settings(max_examples=30, deadline=None)
    def test_hungarian_property(self, seed):
        rng = np.random.default_rng(seed)
        num = int(rng.integers(1, 6))
        rows = int(rng.integers(1, 7))
        cols = int(rng.integers(rows, 9))
        # Quantised costs force plenty of ties.
        stack = np.floor(rng.random((num, rows, cols)) * 4.0)
        assert_slicewise_identical("hungarian", stack)

    @given(st.integers(0, 100_000))
    @settings(max_examples=30, deadline=None)
    def test_bsuitor_property(self, seed):
        rng = np.random.default_rng(seed)
        num = int(rng.integers(1, 6))
        rows = int(rng.integers(1, 7))
        cols = int(rng.integers(rows, 9))
        stack = np.floor(rng.random((num, rows, cols)) * 4.0)
        assert_slicewise_identical("bsuitor", stack)

    @pytest.mark.parametrize("method", ["hungarian", "bsuitor"])
    def test_single_problem_and_1x1(self, method):
        assert_slicewise_identical(method, np.array([[[3.0]]]))
        assert_slicewise_identical(method, np.array([[[3.0, 1.0]]]))
        rng = np.random.default_rng(5)
        assert_slicewise_identical(method, rng.random((1, 5, 5)))

    @pytest.mark.parametrize("method", ["hungarian", "bsuitor"])
    def test_empty_stack_and_empty_rows(self, method):
        assignments, totals = solve_assignment_batch(
            np.zeros((0, 3, 3)), method=method
        )
        assert assignments.shape == (0, 3) and totals.shape == (0,)
        assignments, totals = solve_assignment_batch(
            np.zeros((2, 0, 3)), method=method
        )
        assert assignments.shape == (2, 0)
        np.testing.assert_array_equal(totals, np.zeros(2))

    def test_hungarian_optimal_vs_scipy(self):
        from scipy.optimize import linear_sum_assignment

        rng = np.random.default_rng(11)
        stack = rng.random((6, 5, 8))
        _, totals = hungarian_assignment_batch(stack)
        for p in range(6):
            r, c = linear_sum_assignment(stack[p])
            assert totals[p] == pytest.approx(stack[p][r, c].sum())

    def test_bsuitor_half_approximation_bound(self):
        from scipy.optimize import linear_sum_assignment

        rng = np.random.default_rng(12)
        stack = rng.random((6, 6, 6)) * 10.0
        assignments, _ = bsuitor_assignment_batch(stack)
        for p in range(6):
            weights = stack[p].max() - stack[p] + 1.0
            achieved = weights[np.arange(6), assignments[p]].sum()
            rows, cols = linear_sum_assignment(-weights)
            assert achieved >= 0.5 * weights[rows, cols].sum() - 1e-9


class TestValidationAndDispatch:
    def test_registry_mirrors_scalar_solvers(self):
        assert set(BATCH_SOLVERS) == set(SOLVERS)

    def test_greedy_dispatch_matches_scalar(self):
        rng = np.random.default_rng(3)
        stack = np.floor(rng.random((4, 4, 6)) * 3.0)
        assignments, totals = solve_assignment_batch(stack, method="greedy")
        for p in range(4):
            ref_assignment, ref_total = solve_assignment(stack[p], method="greedy")
            np.testing.assert_array_equal(assignments[p], ref_assignment)
            assert totals[p] == ref_total

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            solve_assignment_batch(np.zeros((1, 2, 2)), method="magic")

    @pytest.mark.parametrize(
        "solver", [hungarian_assignment_batch, bsuitor_assignment_batch]
    )
    def test_rejects_non_3d(self, solver):
        with pytest.raises(ValueError):
            solver(np.zeros((2, 2)))

    @pytest.mark.parametrize(
        "solver", [hungarian_assignment_batch, bsuitor_assignment_batch]
    )
    def test_rejects_more_rows_than_cols(self, solver):
        with pytest.raises(ValueError):
            solver(np.zeros((1, 3, 2)))

    def test_hungarian_rejects_non_finite(self):
        stack = np.ones((1, 2, 2))
        stack[0, 0, 0] = np.inf
        with pytest.raises(ValueError):
            hungarian_assignment_batch(stack)
