"""Tests for the batched mapping cost engine.

The headline guarantee is *bit-identical equivalence*: routing Algorithm 1
through :class:`MappingCostEngine` must return exactly the same
:class:`BatchMapping` (assignments, permutations, costs, SA1 mismatches,
pruned/relaxed lists) as the seed per-pair loop, across fault rates,
``sa1_weight`` values and all three row-matching methods.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_engine import (
    CostEngineStats,
    MappingCostEngine,
    block_fingerprint,
)
from repro.core.mapping import FaultAwareMapper, block_crossbar_cost
from repro.hardware.faults import FaultMap, FaultModel


def random_blocks(rng, num_blocks, size, density):
    return [
        (rng.random((size, size)) < density).astype(float) for _ in range(num_blocks)
    ]


def assert_mappings_identical(reference, candidate):
    assert reference.pruned_crossbars == candidate.pruned_crossbars
    assert reference.relaxed_blocks == candidate.relaxed_blocks
    assert len(reference.blocks) == len(candidate.blocks)
    for ref, got in zip(reference.blocks, candidate.blocks):
        assert ref.block_index == got.block_index
        assert ref.crossbar_index == got.crossbar_index
        assert ref.cost == got.cost
        assert ref.sa1_mismatch == got.sa1_mismatch
        np.testing.assert_array_equal(ref.row_permutation, got.row_permutation)


def make_mappers(method, sa1_weight=4.0, prune=True, relax=True, batched_exact=True):
    kwargs = dict(
        sa1_weight=sa1_weight,
        row_method=method,
        prune_crossbars=prune,
        relax_sparsest_block=relax,
    )
    return (
        FaultAwareMapper(use_cost_engine=False, **kwargs),
        FaultAwareMapper(
            use_cost_engine=True, use_batched_exact=batched_exact, **kwargs
        ),
    )


# --------------------------------------------------------------------------- #
# Equivalence guarantee
# --------------------------------------------------------------------------- #
class TestEngineEquivalence:
    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_map_blocks_identical_to_seed_loop(self, seed):
        """Property: random shapes/rates/weights/methods, identical outputs."""
        rng = np.random.default_rng(seed)
        num_blocks = int(rng.integers(1, 6))
        num_crossbars = int(rng.integers(1, 9))
        size = int(rng.choice([4, 8, 16]))
        method = ["greedy", "hungarian", "bsuitor"][seed % 3]
        sa1_weight = float(rng.choice([1.0, 2.0, 4.0, 7.5]))
        fault_rate = float(rng.uniform(0.0, 0.25))
        ratio = (9.0, 1.0) if seed % 2 else (1.0, 1.0)
        blocks = random_blocks(rng, num_blocks, size, float(rng.uniform(0.02, 0.4)))
        fmaps = FaultModel(fault_rate, ratio, seed=seed + 1).generate(
            num_crossbars, size, size
        )
        seed_mapper, engine_mapper = make_mappers(
            method,
            sa1_weight=sa1_weight,
            prune=bool(seed % 2),
            relax=bool((seed // 2) % 2),
        )
        assert_mappings_identical(
            seed_mapper.map_blocks(blocks, fmaps),
            engine_mapper.map_blocks(blocks, fmaps),
        )

    @pytest.mark.parametrize("method", ["greedy", "hungarian", "bsuitor"])
    def test_repeat_run_hits_cache_and_stays_identical(self, method):
        rng = np.random.default_rng(7)
        blocks = random_blocks(rng, 4, 16, 0.1)
        fmaps = FaultModel(0.1, (1, 1), seed=8).generate(6, 16, 16)
        seed_mapper, engine_mapper = make_mappers(method)
        reference = seed_mapper.map_blocks(blocks, fmaps)
        assert_mappings_identical(reference, engine_mapper.map_blocks(blocks, fmaps))
        stats = engine_mapper.cost_engine.stats
        misses_after_first = stats.cache_misses
        assert_mappings_identical(reference, engine_mapper.map_blocks(blocks, fmaps))
        assert stats.cache_misses == misses_after_first
        assert stats.cache_hits > 0

    def test_update_row_permutations_identical_and_cached(self):
        rng = np.random.default_rng(3)
        blocks = random_blocks(rng, 3, 16, 0.08)
        fmaps = FaultModel(0.08, (9, 1), seed=4).generate(5, 16, 16)
        seed_mapper, engine_mapper = make_mappers("greedy")
        reference = seed_mapper.map_blocks(blocks, fmaps)
        mapping = engine_mapper.map_blocks(blocks, fmaps)
        by_id = {m.crossbar_index: fmaps[m.crossbar_index] for m in mapping.blocks}
        refreshed_ref = seed_mapper.update_row_permutations(reference, blocks, by_id)
        solver_before = engine_mapper.cost_engine.stats.solver_pairs
        refreshed = engine_mapper.update_row_permutations(mapping, blocks, by_id)
        assert_mappings_identical(refreshed_ref, refreshed)
        # The refresh re-queries pairs already solved during map_blocks: with
        # unchanged BIST maps it must be pure cache hits, zero solver calls.
        assert engine_mapper.cost_engine.stats.solver_pairs == solver_before

    def test_more_blocks_than_crossbars_chunking(self):
        rng = np.random.default_rng(11)
        blocks = random_blocks(rng, 9, 8, 0.15)
        fmaps = FaultModel(0.1, (9, 1), seed=12).generate(4, 8, 8)
        seed_mapper, engine_mapper = make_mappers("greedy")
        assert_mappings_identical(
            seed_mapper.map_blocks(blocks, fmaps),
            engine_mapper.map_blocks(blocks, fmaps),
        )

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_batched_exact_solvers_identical_to_seed_loop(self, seed):
        """The lockstep Hungarian/b-Suitor stack solvers must reproduce the
        seed loop bit for bit across fault densities and sa1 weights —
        including heavily tied cost matrices, where only a faithful replay
        of the scalar schedule keeps the tie-breaking identical."""
        rng = np.random.default_rng(seed)
        num_blocks = int(rng.integers(1, 6))
        num_crossbars = int(rng.integers(1, 9))
        size = int(rng.choice([4, 8, 16]))
        method = ["hungarian", "bsuitor"][seed % 2]
        sa1_weight = float(rng.choice([1.0, 4.0, 7.5]))
        fault_rate = float(rng.choice([0.02, 0.1, 0.3]))
        # Dense blocks against dense fault maps make near-constant cost
        # matrices — the all-ties regime.
        density = float(rng.choice([0.05, 0.5, 1.0]))
        blocks = random_blocks(rng, num_blocks, size, density)
        fmaps = FaultModel(fault_rate, (1.0, 1.0), seed=seed + 1).generate(
            num_crossbars, size, size
        )
        seed_mapper, engine_mapper = make_mappers(method, sa1_weight=sa1_weight)
        _, scalar_engine_mapper = make_mappers(
            method, sa1_weight=sa1_weight, batched_exact=False
        )
        reference = seed_mapper.map_blocks(blocks, fmaps)
        assert_mappings_identical(reference, engine_mapper.map_blocks(blocks, fmaps))
        assert_mappings_identical(
            reference, scalar_engine_mapper.map_blocks(blocks, fmaps)
        )

    @pytest.mark.parametrize("method", ["hungarian", "bsuitor"])
    def test_batched_exact_counter_tracks_path(self, method):
        rng = np.random.default_rng(21)
        blocks = random_blocks(rng, 4, 8, 0.3)
        fmaps = FaultModel(0.2, (1, 1), seed=22).generate(6, 8, 8)
        _, batched = make_mappers(method)
        _, scalar = make_mappers(method, batched_exact=False)
        batched.map_blocks(blocks, fmaps)
        scalar.map_blocks(blocks, fmaps)
        assert batched.cost_engine.stats.batched_solver_pairs > 0
        assert batched.cost_engine.stats.batched_solver_pairs == (
            batched.cost_engine.stats.solver_pairs
        )
        assert scalar.cost_engine.stats.batched_solver_pairs == 0
        assert scalar.cost_engine.stats.solver_pairs > 0

    def test_single_pair_matches_module_function(self):
        rng = np.random.default_rng(5)
        block = random_blocks(rng, 1, 16, 0.1)[0]
        fmap = FaultModel(0.15, (1, 1), seed=6).generate(1, 16, 16)[0]
        engine = MappingCostEngine(sa1_weight=4.0, row_method="greedy")
        ref_cost, ref_perm, ref_sa1 = block_crossbar_cost(
            block, fmap, 4.0, method="greedy"
        )
        cost, perm, sa1 = engine.block_crossbar_cost(block, fmap)
        assert cost == ref_cost and sa1 == ref_sa1
        np.testing.assert_array_equal(perm, ref_perm)


# --------------------------------------------------------------------------- #
# Work-avoidance machinery
# --------------------------------------------------------------------------- #
class TestWorkAvoidance:
    def test_fault_free_crossbars_never_solved(self):
        rng = np.random.default_rng(0)
        blocks = random_blocks(rng, 3, 8, 0.2)
        fmaps = [FaultMap.empty(8, 8) for _ in range(4)]
        engine = MappingCostEngine()
        costs, sa1, provider = engine.pairwise_costs(blocks, fmaps)
        assert not costs.any() and not sa1.any()
        assert engine.stats.solver_pairs == 0
        assert engine.stats.fault_free_pairs == 12
        np.testing.assert_array_equal(provider(0, 0), np.arange(8))

    def test_duplicate_maps_and_blocks_deduplicated(self):
        rng = np.random.default_rng(1)
        base_block = random_blocks(rng, 1, 8, 0.3)[0]
        blocks = [base_block, base_block.copy(), base_block + 0.0]
        fmap = FaultModel(0.3, (1, 1), seed=2).generate(1, 8, 8)[0]
        fmaps = [fmap, fmap.copy(), fmap.copy()]
        engine = MappingCostEngine(row_method="greedy")
        costs, _, _ = engine.pairwise_costs(blocks, fmaps)
        # 9 requested pairs, 1 unique (block, map) combination.
        assert engine.stats.pairs_total == 9
        assert engine.stats.duplicate_pairs == 8
        assert engine.stats.solver_pairs <= 1
        assert np.unique(costs).size == 1

    def test_zero_cost_pairs_skip_the_solver(self):
        # The block's single one sits in a column no fault touches, and the
        # only SA1 fault is in a column where every block row has a one —
        # sa0 and sa1 cost matrices are identically zero.
        block = np.zeros((4, 4))
        block[:, 0] = 1.0
        fmap = FaultMap.from_indices((4, 4), sa1_indices=[(2, 0)])
        engine = MappingCostEngine(row_method="greedy")
        costs, sa1, provider = engine.pairwise_costs([block], [fmap])
        assert engine.stats.solver_pairs == 0
        assert engine.stats.zero_cost_pairs == 1
        assert costs[0, 0] == 0.0 and sa1[0, 0] == 0.0
        # Materialising the permutation runs the real solver lazily and must
        # match the never-skipped seed result.
        _, ref_perm, _ = block_crossbar_cost(block, fmap, 4.0, method="greedy")
        np.testing.assert_array_equal(provider(0, 0), ref_perm)
        assert engine.stats.lazy_permutations == 1

    def test_cache_eviction_bounds_memory(self):
        rng = np.random.default_rng(9)
        engine = MappingCostEngine(cache_size=4)
        fmaps = FaultModel(0.3, (1, 1), seed=10).generate(10, 4, 4)
        fmaps = [f for f in fmaps if not f.is_fault_free()]
        block = random_blocks(rng, 1, 4, 0.5)[0]
        for fmap in fmaps:
            engine.block_crossbar_cost(block, fmap)
        assert len(engine) <= 4
        # Every entry beyond the capacity was dropped — and counted, so cache
        # sizing is observable from the stats instead of silent.
        assert engine.stats.cache_evictions == engine.stats.cache_misses - len(engine)
        assert engine.stats.cache_evictions > 0

    def test_cache_evictions_surface_through_strategy_stats(self):
        from repro.core.strategies import FaReStrategy

        rng = np.random.default_rng(15)
        strategy = FaReStrategy()
        strategy.mapper.cost_engine.cache_size = 2
        blocks = random_blocks(rng, 4, 8, 0.3)
        fmaps = FaultModel(0.2, (1, 1), seed=16).generate(6, 8, 8)
        strategy.plan_adjacency([blocks], fmaps, list(range(6)), 8)
        stats = strategy.mapping_engine_stats()
        assert stats["mapping_cache_evictions"] > 0

    def test_clear_cache(self):
        rng = np.random.default_rng(13)
        engine = MappingCostEngine()
        block = random_blocks(rng, 1, 8, 0.3)[0]
        fmap = FaultMap.from_indices((8, 8), sa0_indices=[(0, 0)])
        engine.block_crossbar_cost(block, fmap)
        assert len(engine) > 0
        engine.clear_cache()
        assert len(engine) == 0

    def test_shape_mismatch_rejected(self):
        engine = MappingCostEngine()
        block = np.ones((4, 4))
        fmap = FaultMap.from_indices((8, 8), sa0_indices=[(0, 0)])
        with pytest.raises(ValueError):
            engine.pairwise_costs([block], [fmap])

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MappingCostEngine(sa1_weight=-1.0)
        with pytest.raises(ValueError):
            MappingCostEngine(cache_size=-1)


# --------------------------------------------------------------------------- #
# Fingerprints and stats
# --------------------------------------------------------------------------- #
class TestFingerprints:
    def test_fault_map_fingerprint_identity(self):
        fmap = FaultMap.from_indices((8, 8), sa0_indices=[(1, 2)], sa1_indices=[(3, 4)])
        assert fmap.fingerprint == fmap.copy().fingerprint

    def test_fault_map_fingerprint_distinguishes_types(self):
        sa0_map = FaultMap.from_indices((4, 4), sa0_indices=[(0, 0)])
        sa1_map = FaultMap.from_indices((4, 4), sa1_indices=[(0, 0)])
        assert sa0_map.fingerprint != sa1_map.fingerprint

    def test_fault_map_fingerprint_tracks_mutation(self):
        fmap = FaultMap.empty(4, 4)
        before = fmap.fingerprint
        fmap.sa0[0, 0] = True
        assert fmap.fingerprint != before

    def test_block_fingerprint_pattern_based(self):
        block = np.zeros((4, 4))
        block[1, 2] = 1.0
        scaled = block * 7.5  # same sparsity pattern, different values
        assert block_fingerprint(block) == block_fingerprint(scaled)
        other = np.zeros((4, 4))
        other[2, 1] = 1.0
        assert block_fingerprint(block) != block_fingerprint(other)

    def test_block_fingerprint_includes_shape(self):
        assert block_fingerprint(np.zeros((2, 8))) != block_fingerprint(
            np.zeros((4, 4))
        )


class TestStats:
    def test_as_dict_and_reset(self):
        stats = CostEngineStats(cache_hits=3, cache_misses=1, solver_pairs=2)
        exported = stats.as_dict()
        assert exported["mapping_cache_hits"] == 3.0
        assert exported["mapping_cache_misses"] == 1.0
        assert stats.hit_rate == pytest.approx(0.75)
        stats.reset()
        assert stats.cache_hits == 0 and stats.hit_rate == 0.0

    def test_batched_solver_pairs_exported(self):
        stats = CostEngineStats(batched_solver_pairs=5)
        assert stats.as_dict()["mapping_batched_solver_pairs"] == 5.0

    def test_eviction_and_delta_counters_exported(self):
        stats = CostEngineStats(cache_evictions=2, delta_plans=1, warm_start_hits=3)
        exported = stats.as_dict()
        assert exported["mapping_cache_evictions"] == 2.0
        assert exported["mapping_delta_plans"] == 1.0
        assert exported["mapping_warm_start_hits"] == 3.0
        stats.reset()
        assert stats.cache_evictions == 0 and stats.delta_plans == 0


# --------------------------------------------------------------------------- #
# Solver edge cases shared by the seed, scalar-engine and batched-exact paths
# --------------------------------------------------------------------------- #
class TestSolverEdgeCases:
    """Degenerate inputs that stress tie-breaking and feasibility handling.

    Every case is run through all three row methods and checked for
    (a) bit-identical mappings across the seed loop, the scalar engine path
    and the batched path, and (b) structurally valid row permutations
    (:func:`repro.utils.validation.check_permutation`).
    """

    METHODS = ["greedy", "hungarian", "bsuitor"]

    def _check_all_paths(self, blocks, fmaps, method):
        from repro.utils.validation import check_permutation

        seed_mapper, batched = make_mappers(method)
        _, scalar = make_mappers(method, batched_exact=False)
        reference = seed_mapper.map_blocks(blocks, fmaps)
        assert_mappings_identical(reference, batched.map_blocks(blocks, fmaps))
        assert_mappings_identical(reference, scalar.map_blocks(blocks, fmaps))
        for mapping in reference.blocks:
            check_permutation(
                mapping.row_permutation, len(mapping.row_permutation)
            )
        return reference

    @pytest.mark.parametrize("method", METHODS)
    def test_all_ties_cost_matrices(self, method):
        """Identical dense blocks on uniformly faulty maps: every entry of
        every cost matrix ties, so the result is decided purely by the
        solver's deterministic tie-breaking."""
        block = np.ones((6, 6))
        blocks = [block.copy(), block.copy()]
        fmaps = [
            FaultMap.from_indices((6, 6), sa0_indices=[(r, 0) for r in range(6)]),
            FaultMap.from_indices((6, 6), sa0_indices=[(r, 3) for r in range(6)]),
            FaultMap.empty(6, 6),
        ]
        reference = self._check_all_paths(blocks, fmaps, method)
        assert reference.total_cost > 0

    @pytest.mark.parametrize("method", METHODS)
    def test_all_sa0_rows_make_columns_infeasible(self, method):
        """A fully SA0 crossbar row is uniformly hostile: every block row
        stored there loses all its ones, producing one saturated column in
        the cost matrix that every permutation must still cover."""
        rng = np.random.default_rng(31)
        blocks = random_blocks(rng, 2, 8, 0.6)
        fmap = FaultMap.empty(8, 8)
        fmap.sa0[2, :] = True  # entire crossbar row stuck at zero
        fmap.sa0[5, :] = True
        fmaps = [fmap, FaultMap.empty(8, 8)]
        reference = self._check_all_paths(blocks, fmaps, method)
        # Only one crossbar is fault-free, so exactly one block escapes the
        # saturated columns; the other must still pay for covering them.
        costs = sorted(m.cost for m in reference.blocks)
        assert costs[0] == 0.0 and costs[1] > 0.0

    @pytest.mark.parametrize("method", METHODS)
    def test_1x1_blocks(self, method):
        blocks = [np.ones((1, 1)), np.zeros((1, 1))]
        fmaps = [
            FaultMap.from_indices((1, 1), sa0_indices=[(0, 0)]),
            FaultMap.from_indices((1, 1), sa1_indices=[(0, 0)]),
            FaultMap.empty(1, 1),
        ]
        self._check_all_paths(blocks, fmaps, method)

    @pytest.mark.parametrize("method", METHODS)
    def test_single_block_single_crossbar(self, method):
        rng = np.random.default_rng(33)
        blocks = random_blocks(rng, 1, 4, 0.5)
        fmaps = FaultModel(0.3, (1, 1), seed=34).generate(1, 4, 4)
        self._check_all_paths(blocks, fmaps, method)
