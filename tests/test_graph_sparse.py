"""Unit and property-based tests for the CSR sparse matrix."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.graph.sparse import CSRMatrix


def random_sparse_dense(rows=6, cols=5, density=0.4, seed=0):
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=(rows, cols)) * (rng.random((rows, cols)) < density)
    return dense


small_dense = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 8), st.integers(1, 8)),
    elements=st.floats(-5, 5, allow_nan=False).map(lambda x: 0.0 if abs(x) < 2.5 else x),
)


class TestConstruction:
    def test_from_dense_roundtrip(self):
        dense = random_sparse_dense()
        np.testing.assert_allclose(CSRMatrix.from_dense(dense).to_dense(), dense)

    def test_from_coo_sums_duplicates(self):
        mat = CSRMatrix.from_coo([0, 0], [1, 1], [1.0, 2.0], (2, 2))
        assert mat.to_dense()[0, 1] == 3.0
        assert mat.nnz == 1

    def test_from_coo_without_summing(self):
        mat = CSRMatrix.from_coo([0, 0], [1, 1], [1.0, 2.0], (2, 2), sum_duplicates=False)
        assert mat.nnz == 2

    def test_identity(self):
        np.testing.assert_array_equal(CSRMatrix.identity(4).to_dense(), np.eye(4))

    def test_zeros(self):
        mat = CSRMatrix.zeros((3, 5))
        assert mat.nnz == 0
        assert mat.shape == (3, 5)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            CSRMatrix.from_coo([0], [9], [1.0], (2, 2))

    def test_invalid_indptr_raises(self):
        with pytest.raises(ValueError):
            CSRMatrix(np.array([0, 2]), np.array([0]), np.array([1.0]), (1, 1))

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(CSRMatrix.identity(2))


class TestLinearAlgebra:
    def test_dot_matches_dense(self):
        dense = random_sparse_dense(7, 5, seed=1)
        mat = CSRMatrix.from_dense(dense)
        x = np.random.default_rng(2).normal(size=(5, 3))
        np.testing.assert_allclose(mat.dot(x), dense @ x)

    def test_dot_vector(self):
        dense = random_sparse_dense(4, 4, seed=3)
        mat = CSRMatrix.from_dense(dense)
        v = np.arange(4.0)
        np.testing.assert_allclose(mat.dot(v), dense @ v)

    def test_dot_dimension_mismatch(self):
        with pytest.raises(ValueError):
            CSRMatrix.identity(3).dot(np.ones((4, 2)))

    def test_transpose(self):
        dense = random_sparse_dense(5, 3, seed=4)
        np.testing.assert_allclose(
            CSRMatrix.from_dense(dense).transpose().to_dense(), dense.T
        )

    def test_scale(self):
        dense = random_sparse_dense(seed=5)
        np.testing.assert_allclose(
            CSRMatrix.from_dense(dense).scale(2.5).to_dense(), dense * 2.5
        )

    def test_scale_rows_cols(self):
        dense = random_sparse_dense(4, 4, seed=6)
        mat = CSRMatrix.from_dense(dense)
        rows = np.array([1.0, 2.0, 3.0, 4.0])
        cols = np.array([0.5, 1.0, 1.5, 2.0])
        np.testing.assert_allclose(mat.scale_rows(rows).to_dense(), dense * rows[:, None])
        np.testing.assert_allclose(mat.scale_cols(cols).to_dense(), dense * cols[None, :])

    def test_row_and_col_sums(self):
        dense = random_sparse_dense(5, 4, seed=7)
        mat = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(mat.row_sums(), dense.sum(axis=1))
        np.testing.assert_allclose(mat.col_sums(), dense.sum(axis=0))

    def test_add(self):
        a = random_sparse_dense(4, 4, seed=8)
        b = random_sparse_dense(4, 4, seed=9)
        result = CSRMatrix.from_dense(a).add(CSRMatrix.from_dense(b))
        np.testing.assert_allclose(result.to_dense(), a + b)

    def test_add_shape_mismatch(self):
        with pytest.raises(ValueError):
            CSRMatrix.identity(2).add(CSRMatrix.identity(3))


class TestStructure:
    def test_extract_block(self):
        dense = random_sparse_dense(8, 8, seed=10)
        mat = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(mat.extract_block(2, 6, 1, 5), dense[2:6, 1:5])

    def test_extract_block_bad_range(self):
        with pytest.raises(ValueError):
            CSRMatrix.identity(4).extract_block(2, 1, 0, 4)

    def test_submatrix(self):
        dense = random_sparse_dense(7, 7, seed=11)
        mat = CSRMatrix.from_dense(dense)
        ids = np.array([1, 3, 6])
        np.testing.assert_allclose(
            mat.submatrix(ids).to_dense(), dense[np.ix_(ids, ids)]
        )

    def test_submatrix_empty(self):
        sub = CSRMatrix.identity(4).submatrix(np.array([], dtype=np.int64))
        assert sub.shape == (0, 0)

    def test_to_binary(self):
        dense = random_sparse_dense(5, 5, seed=12)
        binary = CSRMatrix.from_dense(dense).to_binary().to_dense()
        np.testing.assert_array_equal(binary, (dense != 0).astype(float))

    def test_row_access(self):
        dense = np.array([[0.0, 2.0, 0.0], [1.0, 0.0, 3.0]])
        mat = CSRMatrix.from_dense(dense)
        cols, vals = mat.row(1)
        np.testing.assert_array_equal(cols, [0, 2])
        np.testing.assert_array_equal(vals, [1.0, 3.0])

    def test_row_out_of_range(self):
        with pytest.raises(IndexError):
            CSRMatrix.identity(2).row(5)

    def test_density(self):
        assert CSRMatrix.identity(4).density == pytest.approx(0.25)

    def test_equality(self):
        dense = random_sparse_dense(3, 3, seed=13)
        assert CSRMatrix.from_dense(dense) == CSRMatrix.from_dense(dense)
        assert CSRMatrix.from_dense(dense) != CSRMatrix.identity(3)


class TestProperties:
    @given(small_dense)
    @settings(max_examples=40, deadline=None)
    def test_dense_roundtrip_property(self, dense):
        np.testing.assert_allclose(CSRMatrix.from_dense(dense).to_dense(), dense)

    @given(small_dense)
    @settings(max_examples=40, deadline=None)
    def test_transpose_involution(self, dense):
        mat = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(mat.transpose().transpose().to_dense(), dense)

    @given(small_dense, st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_spmm_matches_dense_property(self, dense, seed):
        mat = CSRMatrix.from_dense(dense)
        x = np.random.default_rng(seed).normal(size=(dense.shape[1], 2))
        np.testing.assert_allclose(mat.dot(x), dense @ x, atol=1e-9)

    @given(small_dense)
    @settings(max_examples=30, deadline=None)
    def test_row_sums_match_dense(self, dense):
        np.testing.assert_allclose(
            CSRMatrix.from_dense(dense).row_sums(), dense.sum(axis=1), atol=1e-9
        )
