"""Tests for stuck-at-fault maps and the fault model (incl. property tests)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.faults import (
    FaultMap,
    FaultModel,
    apply_faults_to_binary,
    apply_faults_to_cells,
    population_counts,
    population_density,
)


class TestFaultMap:
    def test_empty(self):
        fmap = FaultMap.empty(8, 8)
        assert fmap.is_fault_free()
        assert fmap.density == 0.0

    def test_from_indices(self):
        fmap = FaultMap.from_indices((4, 4), sa0_indices=[(0, 0)], sa1_indices=[(1, 1)])
        assert fmap.num_sa0 == 1 and fmap.num_sa1 == 1
        assert fmap.density == pytest.approx(2 / 16)

    def test_conflicting_fault_rejected(self):
        with pytest.raises(ValueError):
            FaultMap.from_indices((2, 2), sa0_indices=[(0, 0)], sa1_indices=[(0, 0)])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FaultMap(np.zeros((2, 2), dtype=bool), np.zeros((3, 3), dtype=bool))

    def test_copy_is_independent(self, small_fault_map):
        clone = small_fault_map.copy()
        clone.sa0[:] = False
        assert small_fault_map.num_sa0 > 0

    def test_permuted_rows(self, small_fault_map):
        perm = np.random.default_rng(0).permutation(16)
        permuted = small_fault_map.permuted_rows(perm)
        np.testing.assert_array_equal(permuted.sa0, small_fault_map.sa0[perm])

    def test_permuted_rows_invalid(self, small_fault_map):
        with pytest.raises(ValueError):
            small_fault_map.permuted_rows(np.zeros(16, dtype=int))

    def test_merge_sa1_wins(self):
        a = FaultMap.from_indices((2, 2), sa0_indices=[(0, 0)])
        b = FaultMap.from_indices((2, 2), sa1_indices=[(0, 0)])
        merged = a.merge(b)
        assert merged.sa1[0, 0] and not merged.sa0[0, 0]


class TestApplyFaults:
    def test_binary_sa1_adds_edge(self):
        block = np.zeros((3, 3))
        fmap = FaultMap.from_indices((3, 3), sa1_indices=[(1, 2)])
        out = apply_faults_to_binary(block, fmap)
        assert out[1, 2] == 1.0

    def test_binary_sa0_deletes_edge(self):
        block = np.ones((3, 3))
        fmap = FaultMap.from_indices((3, 3), sa0_indices=[(0, 1)])
        out = apply_faults_to_binary(block, fmap)
        assert out[0, 1] == 0.0

    def test_binary_shape_mismatch(self):
        with pytest.raises(ValueError):
            apply_faults_to_binary(np.zeros((2, 2)), FaultMap.empty(3, 3))

    def test_binary_input_unmodified(self):
        block = np.ones((2, 2))
        fmap = FaultMap.from_indices((2, 2), sa0_indices=[(0, 0)])
        apply_faults_to_binary(block, fmap)
        assert block[0, 0] == 1.0

    def test_cells_forced_values(self):
        cells = np.full((2, 2), 2, dtype=np.int64)
        sa0 = np.array([[True, False], [False, False]])
        sa1 = np.array([[False, False], [False, True]])
        out = apply_faults_to_cells(cells, sa0, sa1, cell_levels=4)
        assert out[0, 0] == 0 and out[1, 1] == 3 and out[0, 1] == 2

    def test_cells_shape_mismatch(self):
        with pytest.raises(ValueError):
            apply_faults_to_cells(np.zeros((2, 2)), np.zeros((3, 3), bool), np.zeros((3, 3), bool), 4)


class TestFaultModel:
    def test_density_close_to_target(self):
        model = FaultModel(0.05, (9, 1), seed=0)
        maps = model.generate(50, 32, 32)
        assert population_density(maps) == pytest.approx(0.05, rel=0.25)

    def test_sa_ratio_respected(self):
        model = FaultModel(0.1, (9, 1), seed=1)
        maps = model.generate(60, 32, 32)
        sa0, sa1 = population_counts(maps)
        assert sa0 / max(sa1, 1) == pytest.approx(9.0, rel=0.4)

    def test_equal_ratio(self):
        model = FaultModel(0.1, (1, 1), seed=2)
        maps = model.generate(60, 32, 32)
        sa0, sa1 = population_counts(maps)
        assert sa0 / max(sa1, 1) == pytest.approx(1.0, rel=0.3)

    def test_clustering_produces_variance(self):
        model = FaultModel(0.05, (9, 1), clustered=True, seed=3)
        maps = model.generate(80, 32, 32)
        counts = np.array([m.num_faults for m in maps])
        assert counts.std() > 0

    def test_unclustered_counts_constant(self):
        model = FaultModel(0.05, (9, 1), clustered=False, seed=4)
        maps = model.generate(10, 32, 32)
        counts = {m.num_faults for m in maps}
        assert len(counts) == 1

    def test_zero_density(self):
        model = FaultModel(0.0, (9, 1), seed=5)
        maps = model.generate(5, 16, 16)
        assert all(m.is_fault_free() for m in maps)

    def test_inject_additional_monotone(self):
        model = FaultModel(0.02, (9, 1), seed=6)
        maps = model.generate(20, 32, 32)
        before = sum(m.num_faults for m in maps)
        updated = model.inject_additional(maps, 0.02)
        after = sum(m.num_faults for m in updated)
        assert after >= before
        # Original maps untouched.
        assert sum(m.num_faults for m in maps) == before

    def test_inject_keeps_existing_fault_types(self):
        model = FaultModel(0.5, (0, 1), seed=7)  # only SA1 initially
        maps = model.generate(3, 16, 16)
        model2 = FaultModel(0.5, (1, 0), seed=8)  # additional SA0 faults
        updated = model2.inject_additional(maps, 0.5)
        for old, new in zip(maps, updated):
            # Wherever an SA1 fault existed it must still be SA1.
            assert np.all(new.sa1[old.sa1])

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            FaultModel(1.5)

    def test_repr(self):
        assert "FaultModel" in repr(FaultModel(0.01))


class TestFaultMapDeltaAlgebra:
    """Property tests for the delta algebra used by incremental re-planning.

    Delta planning diffs fault maps by content fingerprint and splices
    unchanged columns from retained copies, so ``merge`` precedence,
    ``permuted_rows`` round-trips, and fingerprint stability/uniqueness under
    in-place mutation are load-bearing invariants, fuzzed here.
    """

    @staticmethod
    def _random_map(rng, rows=16, cols=16, density=0.15):
        model = FaultModel(density, (1.0, 1.0), seed=int(rng.integers(1 << 31)))
        return model.generate(1, rows, cols)[0]

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_merge_sa1_wins_everywhere(self, seed):
        rng = np.random.default_rng(seed)
        a, b = self._random_map(rng), self._random_map(rng)
        merged = a.merge(b)
        # SA1 survives from either side; SA0 holds only where no SA1 claims
        # the cell — the physical model (stuck-at-1 dominates) and the rule
        # inject_additional relies on.
        np.testing.assert_array_equal(merged.sa1, a.sa1 | b.sa1)
        np.testing.assert_array_equal(merged.sa0, (a.sa0 | b.sa0) & ~merged.sa1)
        assert not np.any(merged.sa0 & merged.sa1)

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_permuted_rows_round_trips(self, seed):
        rng = np.random.default_rng(seed)
        fmap = self._random_map(rng)
        perm = rng.permutation(16)
        inverse = np.argsort(perm)
        restored = fmap.permuted_rows(perm).permuted_rows(inverse)
        np.testing.assert_array_equal(restored.sa0, fmap.sa0)
        np.testing.assert_array_equal(restored.sa1, fmap.sa1)
        assert restored.fingerprint == fmap.fingerprint

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_fingerprint_stable_across_copies_unique_across_mutations(self, seed):
        rng = np.random.default_rng(seed)
        fmap = self._random_map(rng)
        original = fmap.fingerprint
        assert fmap.copy().fingerprint == original  # stability
        r, c = int(rng.integers(16)), int(rng.integers(16))
        plane = fmap.sa1 if rng.integers(2) else fmap.sa0
        other = fmap.sa0 if plane is fmap.sa1 else fmap.sa1
        before = bool(plane[r, c])
        other[r, c] = False  # keep the no-conflict invariant
        plane[r, c] = not before
        assert fmap.fingerprint != original  # uniqueness under mutation
        mutated = fmap.fingerprint
        assert fmap.fingerprint == mutated  # deterministic re-read

    def test_inject_additional_is_merge_with_fresh_faults(self):
        # The injection delta source is pure algebra: new = old.merge(fresh),
        # with existing faults taking precedence over fresh SA0.
        model = FaultModel(0.1, (9.0, 1.0), seed=42)
        maps = model.generate(4, 16, 16)
        updated = model.inject_additional(maps, 0.05)
        for old, new in zip(maps, updated):
            assert np.all(new.sa1[old.sa1])  # SA1 never downgraded
            assert np.all((new.sa0 | new.sa1)[old.sa0 | old.sa1])  # monotone
            assert not np.any(new.sa0 & new.sa1)
            assert new.fingerprint != old.fingerprint or old.num_faults == new.num_faults


class TestFaultProperties:
    @given(
        st.floats(0.0, 0.2),
        st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_generated_maps_are_consistent(self, density, seed):
        model = FaultModel(density, (9, 1), seed=seed)
        maps = model.generate(4, 16, 16)
        for fmap in maps:
            assert not np.any(fmap.sa0 & fmap.sa1)
            assert 0.0 <= fmap.density <= 1.0

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_apply_binary_idempotent(self, seed):
        rng = np.random.default_rng(seed)
        block = (rng.random((16, 16)) > 0.7).astype(float)
        model = FaultModel(0.1, (1, 1), seed=seed)
        fmap = model.generate(1, 16, 16)[0]
        once = apply_faults_to_binary(block, fmap)
        twice = apply_faults_to_binary(once, fmap)
        np.testing.assert_array_equal(once, twice)
