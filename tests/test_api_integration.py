"""End-to-end integration tests exercising the public API.

These are the "does the whole stack hold together" checks: train on faulty
hardware through :mod:`repro.api`, verify the headline orderings at a small
scale, and make sure every strategy/dataset/model combination at least runs.
"""

import pytest

from repro import api
from repro.experiments import runner


@pytest.fixture(autouse=True)
def _fresh_cache():
    runner.clear_cache()
    yield


class TestTrainOnFaultyHardware:
    def test_returns_training_result(self):
        result = api.train_on_faulty_hardware(
            dataset="reddit", model="gcn", strategy="fare",
            fault_density=0.05, epochs=2, scale="ci", seed=0,
        )
        assert result.strategy == "fare"
        assert 0.0 <= result.final_test_accuracy <= 1.0
        assert len(result.test_accuracy_history) == 2

    def test_strategy_kwargs_forwarded(self):
        result = api.train_on_faulty_hardware(
            dataset="reddit", model="gcn", strategy="fare",
            fault_density=0.05, epochs=1, scale="ci", seed=0,
            clipping_threshold=0.5, sa1_weight=2.0,
        )
        assert result.strategy == "fare"

    def test_post_deployment_option(self):
        result = api.train_on_faulty_hardware(
            dataset="ppi", model="gcn", strategy="fare",
            fault_density=0.02, epochs=2, scale="ci", seed=0,
            post_deployment_extra=0.01,
        )
        assert result.epochs_run == 2

    @pytest.mark.parametrize(
        "dataset,model",
        [("ppi", "gat"), ("amazon2m", "sage"), ("ogbl", "sage")],
    )
    def test_all_paper_workloads_run(self, dataset, model):
        result = api.train_on_faulty_hardware(
            dataset=dataset, model=model, strategy="fare",
            fault_density=0.03, epochs=1, scale="ci", seed=0,
        )
        assert result.dataset == dataset
        assert result.model == model


class TestCompareStrategies:
    def test_returns_all_requested(self):
        results = api.compare_strategies(
            dataset="reddit", model="gcn",
            strategies=("fault_free", "fault_unaware", "fare"),
            fault_density=0.05, epochs=2, scale="ci", seed=0,
        )
        assert set(results) == {"fault_free", "fault_unaware", "fare"}

    def test_headline_ordering_at_five_percent(self):
        """The paper's core qualitative claim: at 5 % faults (1:1 ratio) FARe
        is close to fault-free while fault-unaware training is far below."""
        results = api.compare_strategies(
            dataset="reddit", model="gcn",
            strategies=("fault_free", "fault_unaware", "fare"),
            fault_density=0.05, sa_ratio=(1.0, 1.0),
            epochs=6, scale="ci", seed=0,
        )
        fault_free = results["fault_free"].final_test_accuracy
        unaware = results["fault_unaware"].final_test_accuracy
        fare = results["fare"].final_test_accuracy
        assert fare > unaware
        assert fault_free - fare < 0.12
        assert fault_free - unaware > 0.1
