"""Unit tests for Module/Parameter containers and optimisers."""

import numpy as np
import pytest

from repro.tensor import init
from repro.tensor.module import Module, Parameter, Sequential
from repro.tensor.optim import SGD, Adam
from repro.tensor.tensor import Tensor


class TwoLayer(Module):
    def __init__(self):
        super().__init__()
        self.w1 = Parameter(np.ones((3, 4)), name="w1")
        self.w2 = Parameter(np.ones((4, 2)), name="w2")

    def forward(self, x):
        return (x @ self.w1) @ self.w2


class Nested(Module):
    def __init__(self):
        super().__init__()
        self.inner = TwoLayer()
        self.bias = Parameter(np.zeros(2), name="bias")

    def forward(self, x):
        return self.inner(x) + self.bias


class TestModule:
    def test_named_parameters_nested(self):
        names = [name for name, _ in Nested().named_parameters()]
        assert names == ["bias", "inner.w1", "inner.w2"]

    def test_parameters_count(self):
        assert Nested().num_parameters() == 2 + 12 + 8

    def test_zero_grad(self):
        model = TwoLayer()
        out = model(Tensor(np.ones((2, 3))))
        out.sum().backward()
        assert model.w1.grad is not None
        model.zero_grad()
        assert model.w1.grad is None

    def test_train_eval_propagates(self):
        model = Nested()
        model.eval()
        assert not model.inner.training
        model.train()
        assert model.inner.training

    def test_state_dict_roundtrip(self):
        model = Nested()
        state = model.state_dict()
        model.inner.w1.data += 5.0
        model.load_state_dict(state)
        np.testing.assert_array_equal(model.inner.w1.data, np.ones((3, 4)))

    def test_load_state_dict_rejects_missing(self):
        model = Nested()
        state = model.state_dict()
        state.pop("bias")
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_state_dict_rejects_bad_shape(self):
        model = Nested()
        state = model.state_dict()
        state["bias"] = np.zeros(5)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_named_modules(self):
        names = [name for name, _ in Nested().named_modules()]
        assert "" in names and "inner" in names


class TestSequential:
    def test_applies_in_order(self):
        class AddOne(Module):
            def forward(self, x):
                return x + 1.0

        seq = Sequential(AddOne(), AddOne(), AddOne())
        out = seq(Tensor(np.zeros(3)))
        np.testing.assert_array_equal(out.data, np.full(3, 3.0))
        assert len(seq) == 3
        assert len(list(iter(seq))) == 3


class TestInit:
    def test_glorot_uniform_bounds(self):
        param = init.glorot_uniform((100, 50), rng=0)
        limit = np.sqrt(6.0 / 150)
        assert np.all(np.abs(param.data) <= limit)

    def test_glorot_normal_std(self):
        param = init.glorot_normal((200, 100), rng=0)
        expected = np.sqrt(2.0 / 300)
        assert param.data.std() == pytest.approx(expected, rel=0.2)

    def test_kaiming_uniform_bounds(self):
        param = init.kaiming_uniform((64, 32), rng=1)
        assert np.all(np.abs(param.data) <= np.sqrt(6.0 / 64))

    def test_zeros_and_constant(self):
        assert np.all(init.zeros((3, 3)).data == 0.0)
        assert np.all(init.constant((2,), 1.5).data == 1.5)

    def test_requires_grad(self):
        assert init.glorot_uniform((2, 2)).requires_grad


class TestOptimizers:
    @staticmethod
    def _quadratic_step(optimizer_cls, **kwargs):
        param = Parameter(np.array([5.0, -3.0]))
        optimizer = optimizer_cls([param], **kwargs)
        for _ in range(200):
            optimizer.zero_grad()
            loss = (param * param).sum()
            loss.backward()
            optimizer.step()
        return param.data

    def test_sgd_converges(self):
        final = self._quadratic_step(SGD, lr=0.1)
        np.testing.assert_allclose(final, np.zeros(2), atol=1e-3)

    def test_sgd_momentum_converges(self):
        final = self._quadratic_step(SGD, lr=0.05, momentum=0.9)
        np.testing.assert_allclose(final, np.zeros(2), atol=1e-3)

    def test_adam_converges(self):
        final = self._quadratic_step(Adam, lr=0.1)
        np.testing.assert_allclose(final, np.zeros(2), atol=1e-2)

    def test_weight_decay_shrinks(self):
        param = Parameter(np.array([1.0]))
        optimizer = SGD([param], lr=0.1, weight_decay=0.5)
        optimizer.zero_grad()
        (param * 0.0).sum().backward()
        optimizer.step()
        assert abs(param.data[0]) < 1.0

    def test_skips_params_without_grad(self):
        param = Parameter(np.array([1.0]))
        optimizer = Adam([param], lr=0.1)
        optimizer.step()
        np.testing.assert_array_equal(param.data, [1.0])

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], lr=0.0)

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.1, momentum=1.5)
