"""Multi-graph vectorised training + memory-bounded streaming mode.

Four subsystems under test:

* the sparse block decomposition (``decompose_adjacency``) — bit-identical
  to a dense reference, shared frozen zero blocks, counters;
* the block-diagonal CSR fusion (``block_diag_csr`` / ``CSRMatrix.block_diag``)
  and the batched-eval / shared-eval / aggregation-precompute trainer paths —
  fuzzed equivalence against the seed per-split per-batch loop across the
  three models, fault-free and fault-injected;
* the streaming dataset generator and partitioner;
* the trainer's ``streaming_blocks`` mode — plans and histories identical to
  the retained-blocks path without ever retaining per-batch dense blocks.

Equivalence contract (``docs/ARCHITECTURE.md``): per-row sparse kernels over
a block-diagonal matrix never mix rows across members, so fused results are
bit-identical through the sparse kernels; the GCN aggregation precompute
reassociates one dense GEMM and is compared with a tight tolerance instead.
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.strategies import build_strategy
from repro.graph.datasets import synthetic_graph, synthetic_graph_streaming
from repro.graph.normalize import clear_normalize_cache
from repro.graph.partition import (
    STREAMING_NODE_THRESHOLD,
    partition_graph,
)
from repro.graph.sparse import CSRMatrix
from repro.hardware.config import ReRAMConfig
from repro.hardware.faults import FaultModel
from repro.pipeline.mapping_engine import (
    DECOMPOSE_COUNTERS,
    HardwareEnvironment,
    decompose_adjacency,
    peak_rss_bytes,
)
from repro.pipeline.trainer import FaultyTrainer, TrainerArtifacts, TrainingConfig
from repro.tensor import kernels, ops
from repro.tensor.tensor import Tensor


def _random_csr(rng, n, m, density=0.08):
    mask = rng.random((n, m)) < density
    dense = np.where(mask, 1.0, 0.0)
    rows, cols = np.nonzero(dense)
    return (
        CSRMatrix.from_coo(rows, cols, dense[rows, cols], (n, m)),
        dense,
    )


def _dense_decompose_reference(dense, rows, cols):
    """The seed dense implementation: pad, slice, binarise."""
    n, m = dense.shape
    row_blocks = -(-n // rows) if n else 0
    col_blocks = -(-m // cols) if m else 0
    padded = np.zeros((row_blocks * rows, col_blocks * cols))
    padded[:n, :m] = dense
    blocks = []
    for bi in range(row_blocks):
        for bj in range(col_blocks):
            block = padded[bi * rows : (bi + 1) * rows, bj * cols : (bj + 1) * cols]
            blocks.append((block > 0).astype(np.float64))
    return blocks, (row_blocks, col_blocks)


class TestSparseDecompose:
    @pytest.mark.parametrize("shape", [(48, 48), (50, 50), (17, 33), (16, 16)])
    @pytest.mark.parametrize("density", [0.0, 0.02, 0.3])
    def test_matches_dense_reference(self, rng, shape, density):
        mat, dense = _random_csr(rng, *shape, density=density)
        blocks, grid = decompose_adjacency(mat, 16, 16)
        ref_blocks, ref_grid = _dense_decompose_reference(dense, 16, 16)
        assert grid == ref_grid
        assert len(blocks) == len(ref_blocks)
        for got, want in zip(blocks, ref_blocks):
            np.testing.assert_array_equal(got, want)

    def test_empty_blocks_share_one_frozen_array(self, rng):
        mat, _ = _random_csr(rng, 64, 64, density=0.005)
        blocks, _ = decompose_adjacency(mat, 16, 16)
        zeros = [b for b in blocks if not b.any()]
        assert zeros, "expected at least one empty block at this density"
        for z in zeros:
            assert z is zeros[0]
            assert not z.flags.writeable

    def test_counters_advance(self, rng):
        mat, _ = _random_csr(rng, 32, 32, density=0.1)
        before = dict(DECOMPOSE_COUNTERS.as_dict())
        blocks, _ = decompose_adjacency(mat, 16, 16)
        after = DECOMPOSE_COUNTERS.as_dict()
        assert after["decompose_calls"] == before["decompose_calls"] + 1
        materialised = sum(1 for b in blocks if b.any())
        assert (
            after["decompose_blocks_materialised"]
            == before["decompose_blocks_materialised"] + materialised
        )

    def test_nonbinary_values_threshold(self):
        mat = CSRMatrix.from_coo([0, 1], [1, 0], [2.5, 7.0], (4, 4))
        blocks, _ = decompose_adjacency(mat, 4, 4)
        assert blocks[0][0, 1] == 1.0 and blocks[0][1, 0] == 1.0

    def test_peak_rss_positive(self):
        assert peak_rss_bytes() > 0

    def test_peak_rss_is_per_exec_not_inherited(self):
        """A fresh child must not report its parent's peak.

        ``ru_maxrss`` survives ``execve`` on Linux, so a subprocess spawned
        by a fat parent (the streaming benchmark child under a long pytest
        session) would inherit the parent's high-water mark if
        ``peak_rss_bytes`` read ``getrusage``.  Inflate this process, then
        check a do-nothing child reports a peak far below the ballast.
        """
        import subprocess
        import sys

        ballast = np.ones(40_000_000)  # ~305 MiB resident in the parent
        assert peak_rss_bytes() > ballast.nbytes
        child = (
            "from repro.pipeline.mapping_engine import peak_rss_bytes;"
            "print(peak_rss_bytes())"
        )
        proc = subprocess.run(
            [sys.executable, "-c", child],
            capture_output=True,
            text=True,
            check=True,
            env={
                **os.environ,
                "PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src"),
            },
        )
        assert 0 < int(proc.stdout.strip()) < ballast.nbytes // 2


class TestBlockDiagCSR:
    def test_fused_matches_members(self, rng):
        mats, denses, feats = [], [], []
        for n in (7, 13, 5):
            mat, dense = _random_csr(rng, n, n, density=0.2)
            mats.append(mat)
            denses.append(dense)
            feats.append(rng.normal(size=(n, 3)))
        fused, offsets = CSRMatrix.block_diag(mats)
        assert offsets.tolist() == [0, 7, 20, 25]
        out = fused.dot(np.concatenate(feats, axis=0))
        # Bit-identical per member: the fused rows hold exactly the member's
        # entries in the member's column order, so the per-row reduction sums
        # the same floats in the same order.
        for k, (mat, x) in enumerate(zip(mats, feats)):
            np.testing.assert_array_equal(
                out[offsets[k] : offsets[k + 1]], mat.dot(x)
            )

    def test_counters(self, rng):
        mats = [_random_csr(rng, 4, 4, density=0.5)[0] for _ in range(3)]
        before_calls = kernels.COUNTERS.batched_block_diag_calls
        before_fused = kernels.COUNTERS.batched_graphs_fused
        CSRMatrix.block_diag(mats)
        assert kernels.COUNTERS.batched_block_diag_calls == before_calls + 1
        assert kernels.COUNTERS.batched_graphs_fused == before_fused + 3


class TestOuterConstant:
    def test_forward_backward(self, rng):
        scale = rng.normal(size=5)
        vec = Tensor(rng.normal(size=3), requires_grad=True)
        out = ops.outer_constant(scale, vec)
        np.testing.assert_allclose(out.data, np.outer(scale, vec.data))
        upstream = rng.normal(size=(5, 3))
        out.backward(upstream)
        np.testing.assert_allclose(vec.grad, scale @ upstream)


# --------------------------------------------------------------------------- #
# Trainer equivalence
# --------------------------------------------------------------------------- #
def _graph(seed, nodes=72):
    return synthetic_graph(
        num_nodes=nodes,
        num_communities=4,
        num_features=12,
        num_classes=4,
        avg_degree=6.0,
        name="fuzz",
        seed=seed,
    )


def _hardware():
    config = ReRAMConfig(
        crossbar_rows=16, crossbar_cols=16, crossbars_per_tile=24, num_tiles=2
    )
    return HardwareEnvironment(
        config=config,
        fault_model=FaultModel(0.05, (9.0, 1.0), seed=11),
        weight_fraction=0.5,
    )


def _train(model, strategy_name, graph, **flags):
    clear_normalize_cache()
    strategy = build_strategy(strategy_name)
    hardware = _hardware() if strategy.requires_hardware else None
    config = TrainingConfig(
        epochs=3,
        hidden_features=8,
        dropout=0.0,
        num_parts=4,
        batch_clusters=1,
        eval_every=1,
        seed=0,
        eval_bucket_nodes=flags.pop("eval_bucket_nodes", 4096),
    )
    trainer = FaultyTrainer(
        graph, model, strategy, config, hardware=hardware, **flags
    )
    result = trainer.train()
    params = {n: p.data.copy() for n, p in trainer.model.named_parameters()}
    return result, params, trainer


SEED_FLAGS = dict(
    use_shared_eval=False, use_batched_eval=False, use_agg_precompute=False
)


class TestVectorisedEquivalence:
    """Fuzzed: vectorised paths vs the seed loop, three models, both regimes."""

    @pytest.mark.parametrize("model", ["gcn", "sage", "gat"])
    @pytest.mark.parametrize("strategy", ["fault_free", "fare"])
    @pytest.mark.parametrize("seed", [3, 19])
    def test_flags_on_vs_seed(self, model, strategy, seed):
        graph = _graph(seed)
        base, base_params, _ = _train(model, strategy, graph, **SEED_FLAGS)
        fast, fast_params, trainer = _train(model, strategy, graph)
        if model == "gcn":
            # Aggregation precompute reassociates one GEMM: round-off contract.
            np.testing.assert_allclose(
                base.loss_history, fast.loss_history, rtol=0, atol=1e-9
            )
            for name in base_params:
                np.testing.assert_allclose(
                    base_params[name], fast_params[name], rtol=0, atol=1e-9
                )
        else:
            # SAGE consumes the cached spmm result directly; GAT ignores the
            # precompute flag — training is bit-identical either way.
            assert base.loss_history == fast.loss_history
            for name in base_params:
                np.testing.assert_array_equal(base_params[name], fast_params[name])
        assert base.train_accuracy_history == fast.train_accuracy_history
        assert base.test_accuracy_history == fast.test_accuracy_history
        # The vectorised paths must actually fire.
        counters = fast.counters
        assert counters["batched_eval_buckets"] >= 1
        assert counters["batched_eval_forwards"] >= 1
        # One eval pass per epoch -> forwards = epochs x buckets.
        assert counters["batched_eval_forwards"] == (
            fast.epochs_run * counters["batched_eval_buckets"]
        )
        if model != "gat":
            assert counters.get("kernel_batched_agg_cache_misses", 0) >= 1

    @pytest.mark.parametrize("model", ["gcn", "sage"])
    def test_ragged_b1_buckets_degenerate_to_shared(self, model):
        """eval_bucket_nodes=1 forces one batch per bucket (no fusion)."""
        graph = _graph(5)
        shared, shared_params, _ = _train(
            model, "fare", graph, use_batched_eval=False
        )
        ragged, ragged_params, trainer = _train(
            model, "fare", graph, eval_bucket_nodes=1
        )
        assert shared.loss_history == ragged.loss_history
        assert shared.test_accuracy_history == ragged.test_accuracy_history
        for name in shared_params:
            np.testing.assert_array_equal(shared_params[name], ragged_params[name])
        assert ragged.counters["batched_eval_buckets"] == len(trainer.batches)

    def test_shared_eval_bitwise_vs_seed(self):
        """Shared eval alone (no fusion, no precompute) is bit-identical."""
        graph = _graph(7)
        base, base_params, _ = _train("gcn", "fare", graph, **SEED_FLAGS)
        shared, shared_params, _ = _train(
            "gcn", "fare", graph, use_batched_eval=False, use_agg_precompute=False
        )
        assert base.loss_history == shared.loss_history
        assert base.train_accuracy_history == shared.train_accuracy_history
        assert base.test_accuracy_history == shared.test_accuracy_history
        for name in base_params:
            np.testing.assert_array_equal(base_params[name], shared_params[name])
        # One forward per batch per eval epoch instead of one per split:
        # eval-time adjacency programming halves (documented accounting).
        assert (
            shared.counters["block_write_events"]
            < base.counters["block_write_events"]
        )


# --------------------------------------------------------------------------- #
# Streaming generator + partitioner
# --------------------------------------------------------------------------- #
class TestStreamingGenerator:
    def test_shapes_and_labels(self):
        g = synthetic_graph_streaming(500, 8, 6, 4, avg_degree=6.0, seed=2)
        assert g.num_nodes == 500
        assert g.num_features == 6
        assert not g.is_multilabel
        assert g.labels.min() >= 0 and g.labels.max() < 4
        assert g.num_edges > 0
        # Masks partition the nodes.
        assert (
            g.train_mask.sum() + g.val_mask.sum() + g.test_mask.sum() == 500
        )
        assert not (g.train_mask & g.test_mask).any()

    def test_deterministic(self):
        a = synthetic_graph_streaming(300, 6, 4, 4, seed=9)
        b = synthetic_graph_streaming(300, 6, 4, 4, seed=9)
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.adjacency.indices, b.adjacency.indices)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_community_structure_dominates(self):
        g = synthetic_graph_streaming(2000, 8, 4, 4, intra_ratio=0.9, seed=1)
        rows, cols, _ = g.adjacency.coo()
        same = (g.labels[rows] == g.labels[cols]).mean()
        # 8 communities folded on 4 classes: random edges would agree ~25%.
        assert same > 0.6

    def test_degree_close_to_target(self):
        g = synthetic_graph_streaming(5000, 10, 4, 4, avg_degree=10.0, seed=4)
        # Symmetrised, dedup'd: directed edges / nodes slightly under target.
        assert 7.0 < g.num_edges / g.num_nodes <= 10.0


class TestStreamingPartitioner:
    def test_small_graph_streaming_is_valid(self, rng):
        g = synthetic_graph(
            num_nodes=400, num_communities=8, num_features=4, num_classes=4,
            avg_degree=8.0, seed=6,
        )
        part = partition_graph(g.adjacency, 8, seed=6, method="streaming")
        sizes = part.part_sizes()
        assert part.assignment.shape == (400,)
        assert sizes.sum() == 400
        assert sizes.min() >= 1, "streaming partitions must have no empty part"
        assert part.balance <= 2.0

    def test_streaming_deterministic(self):
        g = synthetic_graph_streaming(3000, 12, 4, 4, seed=8)
        a = partition_graph(g.adjacency, 12, seed=5, method="streaming")
        b = partition_graph(g.adjacency, 12, seed=5, method="streaming")
        np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_auto_threshold_picks_multilevel_below(self):
        g = synthetic_graph(
            num_nodes=200, num_communities=4, num_features=4, num_classes=4,
            avg_degree=6.0, seed=2,
        )
        auto = partition_graph(g.adjacency, 4, seed=2, method="auto")
        multi = partition_graph(g.adjacency, 4, seed=2, method="multilevel")
        np.testing.assert_array_equal(auto.assignment, multi.assignment)
        assert STREAMING_NODE_THRESHOLD > 200

    def test_invalid_method_rejected(self, rng):
        mat, _ = _random_csr(rng, 10, 10, density=0.3)
        with pytest.raises(ValueError, match="method"):
            partition_graph(mat, 2, method="bogus")


# --------------------------------------------------------------------------- #
# Trainer streaming-blocks mode
# --------------------------------------------------------------------------- #
class TestStreamingBlocksMode:
    @pytest.mark.parametrize("strategy", ["fault_unaware", "fare"])
    def test_bitwise_equivalent_to_retained(self, strategy):
        graph = _graph(13)
        retained, retained_params, rt = _train(
            "gcn", strategy, graph, streaming_blocks=False
        )
        streaming, streaming_params, st = _train(
            "gcn", strategy, graph, streaming_blocks=True
        )
        assert retained.loss_history == streaming.loss_history
        assert retained.test_accuracy_history == streaming.test_accuracy_history
        for name in retained_params:
            np.testing.assert_array_equal(
                retained_params[name], streaming_params[name]
            )
        assert st.blocks_per_batch is None
        assert rt.blocks_per_batch is not None
        # Same plans (every strategy plans its batches independently).
        for plan_r, plan_s in zip(rt.plans, st.plans):
            for br, bs in zip(plan_r.blocks, plan_s.blocks):
                assert br.block_index == bs.block_index
                assert br.crossbar_index == bs.crossbar_index
                assert br.cost == bs.cost
                np.testing.assert_array_equal(
                    br.row_permutation, bs.row_permutation
                )
        assert retained.counters["total_blocks"] == streaming.counters[
            "total_blocks"
        ] > 0

    def test_fault_delta_requires_retained_blocks(self):
        graph = _graph(13)
        strategy = build_strategy("fare")
        trainer = FaultyTrainer(
            graph,
            "gcn",
            strategy,
            TrainingConfig(epochs=1, num_parts=4, batch_clusters=2, seed=0),
            hardware=_hardware(),
            streaming_blocks=True,
        )
        with pytest.raises(RuntimeError, match="retained per-batch blocks"):
            trainer.apply_fault_delta(0.01)

    def test_streaming_conflicts_with_block_artifacts(self):
        graph = _graph(13)
        strategy = build_strategy("fare")
        hw = _hardware()
        base = FaultyTrainer(
            graph,
            "gcn",
            strategy,
            TrainingConfig(epochs=1, num_parts=4, batch_clusters=2, seed=0),
            hardware=hw,
        )
        artifacts = TrainerArtifacts(
            blocks_per_batch=base.blocks_per_batch,
            grids=list(base._grids),
        )
        with pytest.raises(ValueError, match="streaming_blocks"):
            FaultyTrainer(
                graph,
                "gcn",
                build_strategy("fare"),
                TrainingConfig(epochs=1, num_parts=4, batch_clusters=2, seed=0),
                hardware=_hardware(),
                artifacts=artifacts,
                streaming_blocks=True,
            )
