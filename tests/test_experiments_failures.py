"""Fault-injection tests for the supervised sweep engine.

The contract under test (see ``repro/experiments/failures.py``):

* classification routes every failure to TRANSIENT / DETERMINISTIC / INFRA,
  retry schedules are a deterministic pure function of (seed, signature,
  attempt), and quarantined specs surface structured context instead of
  aborting the sweep,
* injected chaos — killed workers, transient/deterministic/infra exceptions,
  hung groups, corrupted store files, interrupted sweeps — leaves the final
  results bit-identical to a failure-free run (or correctly marked missing
  when quarantined),
* the crash-safe journal tolerates torn tails and makes interrupted sweeps
  resumable without recomputing finished specs.
"""

import pytest

from repro.experiments import sweeps
from repro.experiments.failures import (
    FailureKind,
    FailureRecord,
    FaultInjector,
    GroupTimeoutError,
    InjectedDeterministicError,
    InjectedInfraError,
    InjectedTransientError,
    RetryPolicy,
    SpecExecutionError,
    WorkerCrashError,
    classify_failure,
    format_failure_report,
)
from repro.experiments.sweeps import (
    ResultStore,
    RunSpec,
    SweepEngine,
    SweepJournal,
    SweepPlan,
)
from repro.experiments.tables import aggregate_seed_rows
from repro.utils.tabulate import MISSING, format_table

from test_experiments_sweeps import SMALL_GRID, comparable

#: Two artifact groups (groups key on dataset/scale/seed) so the parallel
#: supervisor has in-flight work to requeue when one group's worker dies.
TWO_GROUP_GRID = SweepPlan.grid(
    datasets=[("ppi", "gcn"), ("reddit", "gcn")],
    strategies=("fault_free", "fault_unaware"),
    fault_densities=(0.05,),
    seeds=(0,),
    scale="ci",
    epochs=1,
)

#: Retry policy with near-zero backoff so chaos tests stay fast.
FAST_RETRIES = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.01)


def reference_results(plan):
    """Failure-free serial reference for bit-identity assertions."""
    engine = SweepEngine()
    sweep = engine.run(plan)
    assert sweep.complete()
    return {spec: comparable(sweep[spec]) for spec in plan}


class TestClassification:
    def test_taxonomy(self):
        assert classify_failure(WorkerCrashError("killed")) is FailureKind.TRANSIENT
        assert classify_failure(GroupTimeoutError("hung")) is FailureKind.TRANSIENT
        assert classify_failure(InjectedTransientError("flaky")) is FailureKind.TRANSIENT
        assert classify_failure(TimeoutError()) is FailureKind.TRANSIENT
        assert classify_failure(EOFError()) is FailureKind.TRANSIENT
        assert classify_failure(OSError(5, "io")) is FailureKind.INFRA
        assert classify_failure(InjectedInfraError(0, "disk")) is FailureKind.INFRA
        assert classify_failure(MemoryError()) is FailureKind.INFRA
        assert classify_failure(ValueError("bad shape")) is FailureKind.DETERMINISTIC
        assert (
            classify_failure(InjectedDeterministicError("bug"))
            is FailureKind.DETERMINISTIC
        )

    def test_connection_errors_are_transient_not_infra(self):
        """BrokenPipeError is an OSError, but means 'worker went away'."""
        assert classify_failure(BrokenPipeError()) is FailureKind.TRANSIENT
        assert classify_failure(ConnectionResetError()) is FailureKind.TRANSIENT

    def test_wrapper_passes_classification_through(self):
        spec = next(iter(SMALL_GRID))
        record = FailureRecord.from_exception(spec, GroupTimeoutError("hung"), 2)
        error = SpecExecutionError(record)
        assert classify_failure(error) is FailureKind.TRANSIENT
        assert error.signature == spec.signature()

    def test_record_carries_spec_context_and_remote_traceback(self):
        spec = next(iter(SMALL_GRID))
        try:
            raise ValueError("exploded in run")
        except ValueError as caught:
            record = FailureRecord.from_exception(spec, caught, attempts=3)
        assert record.signature == spec.signature()
        assert record.kind is FailureKind.DETERMINISTIC
        assert record.attempts == 3
        assert "exploded in run" in record.traceback
        message = str(SpecExecutionError(record))
        assert spec.signature() in message
        assert "remote traceback" in message
        assert "exploded in run" in message

    def test_failure_report_renders_table_and_tracebacks(self):
        spec = next(iter(SMALL_GRID))
        try:
            raise ValueError("exploded in run")
        except ValueError as caught:
            record = FailureRecord.from_exception(spec, caught, attempts=1)
        report = format_failure_report([record])
        assert spec.signature()[:12] in report
        assert "deterministic" in report
        assert "exploded in run" in report
        assert "no quarantined specs" in format_failure_report([])


class TestRetryPolicy:
    def test_deterministic_seeded_jitter(self):
        policy = RetryPolicy(seed=7)
        sig = "a" * 24
        delays = [policy.delay(sig, attempt) for attempt in range(3)]
        assert delays == [policy.delay(sig, attempt) for attempt in range(3)]
        # Exponential growth below the jitter-free doubling bound's jitter cap.
        assert delays[0] < delays[1] < delays[2]
        # Different signatures and seeds draw different jitter.
        assert policy.delay("b" * 24, 0) != delays[0]
        assert RetryPolicy(seed=8).delay(sig, 0) != delays[0]

    def test_delay_capped(self):
        policy = RetryPolicy(base_delay=1.0, backoff_factor=10.0, max_delay=2.0)
        assert policy.delay("c" * 24, 5) == 2.0

    def test_should_retry(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(FailureKind.TRANSIENT, 0)
        assert policy.should_retry(FailureKind.INFRA, 1)
        assert not policy.should_retry(FailureKind.TRANSIENT, 2)
        # Deterministic failures never retry.
        assert not policy.should_retry(FailureKind.DETERMINISTIC, 0)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestSerialFaults:
    def test_transient_failure_retries_to_identical_result(self):
        reference = reference_results(SMALL_GRID)
        victim = sorted(SMALL_GRID, key=lambda s: s.signature())[0]
        engine = SweepEngine(
            retry_policy=FAST_RETRIES,
            fault_injector=FaultInjector(
                transient_specs=((victim.signature(), 2),)
            ),
        )
        sweep = engine.run(SMALL_GRID)
        assert sweep.complete()
        assert {spec: comparable(sweep[spec]) for spec in SMALL_GRID} == reference
        stats = engine.summary()
        # Two injected failures, both retried; counters are deterministic
        # in serial execution.
        assert stats["retry_attempts"] == 2
        assert stats["retry_transient"] == 2
        assert stats["quarantine_specs"] == 0

    def test_deterministic_failure_quarantines_without_retry(self):
        victim = sorted(SMALL_GRID, key=lambda s: s.signature())[0]
        engine = SweepEngine(
            retry_policy=FAST_RETRIES,
            fault_injector=FaultInjector(deterministic_specs=(victim.signature(),)),
        )
        sweep = engine.run(SMALL_GRID)
        assert not sweep.complete()
        assert len(sweep.results) == len(SMALL_GRID) - 1
        record = sweep.failed[victim]
        assert record.kind is FailureKind.DETERMINISTIC
        assert record.attempts == 1  # retrying a deterministic bug is pointless
        assert sweep.failed_specs == [record]
        with pytest.raises(SpecExecutionError) as excinfo:
            sweep[victim]
        assert victim.signature() in str(excinfo.value)
        assert sweep.get(victim) is None
        assert sweep.value(victim, lambda r: r.final_test_accuracy) is None
        stats = engine.summary()
        assert stats["retry_attempts"] == 0
        assert stats["quarantine_specs"] == 1

    def test_infra_failure_exhausts_bounded_retries(self):
        victim = sorted(SMALL_GRID, key=lambda s: s.signature())[0]
        engine = SweepEngine(
            retry_policy=FAST_RETRIES,
            fault_injector=FaultInjector(infra_specs=(victim.signature(),)),
        )
        sweep = engine.run(SMALL_GRID)
        record = sweep.failed[victim]
        assert record.kind is FailureKind.INFRA
        assert record.attempts == FAST_RETRIES.max_attempts
        stats = engine.summary()
        assert stats["retry_infra"] == FAST_RETRIES.max_attempts - 1
        assert stats["quarantine_specs"] == 1

    def test_quarantine_is_session_sticky(self):
        """A later plan over the same engine reports, not re-executes."""
        victim = sorted(SMALL_GRID, key=lambda s: s.signature())[0]
        engine = SweepEngine(
            retry_policy=FAST_RETRIES,
            fault_injector=FaultInjector(deterministic_specs=(victim.signature(),)),
        )
        engine.run(SMALL_GRID)
        executed_before = engine.runs_executed
        sweep = engine.run(SMALL_GRID)
        assert victim in sweep.failed
        assert engine.runs_executed == executed_before
        assert engine.summary()["quarantine_memo_hits"] == 1
        engine.clear_failures()
        assert engine.run(SweepPlan([victim])).failed  # re-attempted, re-failed


class TestParallelFaults:
    def test_killed_worker_respawns_and_results_match(self):
        reference = reference_results(TWO_GROUP_GRID)
        engine = SweepEngine(
            retry_policy=FAST_RETRIES,
            fault_injector=FaultInjector(kill_group=0),
        )
        sweep = engine._run_parallel(TWO_GROUP_GRID.groups(), 2)
        assert sweep.complete()
        assert {
            spec: comparable(sweep[spec]) for spec in TWO_GROUP_GRID
        } == reference
        stats = engine.summary()
        assert stats["worker_crashes"] >= 1
        assert stats["pool_respawns"] >= 1
        assert stats["retry_transient"] >= 1
        assert stats["quarantine_specs"] == 0

    def test_transient_spec_in_worker_requeues_singleton(self):
        reference = reference_results(TWO_GROUP_GRID)
        victim = sorted(TWO_GROUP_GRID, key=lambda s: s.signature())[0]
        engine = SweepEngine(
            retry_policy=FAST_RETRIES,
            fault_injector=FaultInjector(transient_specs=((victim.signature(), 1),)),
        )
        sweep = engine._run_parallel(TWO_GROUP_GRID.groups(), 2)
        assert sweep.complete()
        assert {
            spec: comparable(sweep[spec]) for spec in TWO_GROUP_GRID
        } == reference
        stats = engine.summary()
        assert stats["retry_transient"] == 1
        assert stats["worker_crashes"] == 0  # healthy worker reported it

    def test_hung_worker_times_out_and_recovers(self):
        reference = reference_results(TWO_GROUP_GRID)
        engine = SweepEngine(
            retry_policy=FAST_RETRIES,
            group_timeout=6.0,
            fault_injector=FaultInjector(delay_group=0, delay_seconds=60.0),
        )
        sweep = engine._run_parallel(TWO_GROUP_GRID.groups(), 2)
        assert sweep.complete()
        assert {
            spec: comparable(sweep[spec]) for spec in TWO_GROUP_GRID
        } == reference
        stats = engine.summary()
        assert stats["group_timeouts"] >= 1
        assert stats["pool_respawns"] >= 1

    def test_deterministic_failure_quarantines_in_parallel(self):
        victim = sorted(TWO_GROUP_GRID, key=lambda s: s.signature())[0]
        engine = SweepEngine(
            retry_policy=FAST_RETRIES,
            fault_injector=FaultInjector(deterministic_specs=(victim.signature(),)),
        )
        sweep = engine._run_parallel(TWO_GROUP_GRID.groups(), 2)
        assert set(sweep.failed) == {victim}
        record = sweep.failed[victim]
        assert record.kind is FailureKind.DETERMINISTIC
        assert "injected deterministic failure" in record.message
        assert record.traceback  # full remote traceback crossed the pipe


class TestJournalAndResume:
    def test_journal_round_trip_and_torn_tail(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = SweepJournal(path)
        specs = list(SMALL_GRID)
        journal.record_done(specs[0])
        journal.record_done(specs[1])
        torn = path.read_text() + '{"signature": "deadbeef", "status"'
        path.write_text(torn)
        reloaded = SweepJournal(path)
        assert reloaded.completed(specs[0])
        assert reloaded.completed(specs[1])
        assert reloaded.done_count() == 2
        assert reloaded.corrupt_lines == 1
        # Loading compacted the torn tail away atomically.
        assert SweepJournal(path).corrupt_lines == 0

    def test_quarantined_entry_upgrades_to_done(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = SweepJournal(path)
        spec = next(iter(SMALL_GRID))
        try:
            raise ValueError("boom")
        except ValueError as caught:
            journal.record_quarantined(
                FailureRecord.from_exception(spec, caught, attempts=3)
            )
        assert journal.status(spec) == "quarantined"
        assert not journal.completed(spec)
        journal.record_done(spec)
        reloaded = SweepJournal(path)
        assert reloaded.completed(spec)
        assert reloaded.done_count() == 1

    def test_interrupted_sweep_resumes_without_recompute(self, tmp_path):
        reference = reference_results(SMALL_GRID)
        store_dir = tmp_path / "runcache"
        abort_after = len(SMALL_GRID) // 2
        first = SweepEngine(
            store=ResultStore(store_dir),
            journal=SweepJournal(tmp_path / "journal.jsonl"),
            fault_injector=FaultInjector(abort_after=abort_after),
        )
        with pytest.raises(KeyboardInterrupt):
            first.run(SMALL_GRID)
        assert first.runs_executed == abort_after

        resumed = SweepEngine(
            store=ResultStore(store_dir),
            journal=SweepJournal(tmp_path / "journal.jsonl"),
        )
        sweep = resumed.run(SMALL_GRID)
        assert sweep.complete()
        assert {spec: comparable(sweep[spec]) for spec in SMALL_GRID} == reference
        stats = resumed.summary()
        # Only the unfinished specs recompute; finished ones are store hits
        # audited by the journal.
        assert stats["runs_executed"] == len(SMALL_GRID) - abort_after
        assert stats["store_hits"] == abort_after
        assert stats["journal_hits"] == abort_after

    def test_corrupted_store_file_recomputes_only_that_spec(self, tmp_path):
        reference = reference_results(SMALL_GRID)
        store_dir = tmp_path / "runcache"
        first = SweepEngine(
            store=ResultStore(store_dir),
            journal=SweepJournal(tmp_path / "journal.jsonl"),
        )
        assert first.run(SMALL_GRID).complete()

        victim = sorted(SMALL_GRID, key=lambda s: s.signature())[0]
        FaultInjector.corrupt_store_file(store_dir / f"{victim.signature()}.json")

        resumed = SweepEngine(
            store=ResultStore(store_dir),
            journal=SweepJournal(tmp_path / "journal.jsonl"),
        )
        sweep = resumed.run(SMALL_GRID)
        assert sweep.complete()
        assert {spec: comparable(sweep[spec]) for spec in SMALL_GRID} == reference
        stats = resumed.summary()
        assert stats["runs_executed"] == 1  # just the corrupted spec
        assert stats["store_hits"] == len(SMALL_GRID) - 1
        assert stats["store_invalidations"] >= 1


class TestPartialGrids:
    def test_missing_cells_render_as_missing(self):
        assert MISSING in format_table(["a"], [[None]])

    def test_aggregate_seed_rows_tolerates_missing(self):
        rows = aggregate_seed_rows(
            [
                [["w", 0.5, None]],
                [["w", 0.7, None]],
            ]
        )
        assert rows == [["w", "0.6000 ± 0.1000", None]]
        partial = aggregate_seed_rows([[["w", 0.5]], [["w", None]]])
        assert partial == [["w", "0.5000 [1/2 seeds]"]]

    def test_fig3_renders_partial_grid(self):
        from repro.experiments.fig3 import format_fig3, plan_fig3, run_fig3

        plan = plan_fig3(epochs=1)
        victim = sorted(plan, key=lambda s: s.signature())[0]
        engine = SweepEngine(
            retry_policy=FAST_RETRIES,
            fault_injector=FaultInjector(deterministic_specs=(victim.signature(),)),
        )
        result = run_fig3(epochs=1, engine=engine)
        rendered = format_fig3(result)
        assert MISSING in rendered  # the quarantined cell is marked, not fatal

    def test_fig4_renders_partial_grid(self):
        from repro.experiments.fig4 import format_fig4, plan_fig4, run_fig4

        plan = plan_fig4(epochs=1)
        victim = sorted(plan, key=lambda s: s.signature())[0]
        engine = SweepEngine(
            retry_policy=FAST_RETRIES,
            fault_injector=FaultInjector(deterministic_specs=(victim.signature(),)),
        )
        result = run_fig4(epochs=1, engine=engine)
        rendered = format_fig4(result)
        assert MISSING in rendered
        summary_rows = result.rows()
        assert any(None in row for row in summary_rows)


class TestCLI:
    def test_cli_exits_nonzero_and_reports_on_quarantine(self, capsys, monkeypatch):
        from repro.experiments.__main__ import main

        real_execute = sweeps.execute_spec

        def flaky_execute(spec, artifacts=None, injector=None, attempt=0):
            if spec.fault_region == "adjacency":
                raise ValueError("injected CLI failure")
            return real_execute(spec, artifacts, injector, attempt)

        monkeypatch.setattr(sweeps, "execute_spec", flaky_execute)
        code = main(["fig3", "--epochs", "1"])
        captured = capsys.readouterr()
        assert code == 1
        assert MISSING in captured.out
        assert "failure report" in captured.out
        assert "quarantined" in captured.err

    def test_cli_succeeds_without_faults(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig3", "--epochs", "1"]) == 0
        assert "failure report" not in capsys.readouterr().out
