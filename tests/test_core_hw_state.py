"""Tests for the epoch-cached hardware read-back (core/hw_state.py).

Three equivalence guarantees are enforced:

* the batched adjacency read-back is bit-identical to the seed per-block
  program/read loop — including the crossbars' stored contents and endurance
  counters;
* the fused quantise→fault→dequantise weight path is bit-identical to the
  seed bit-sliced pipeline;
* a fully cached training run (adjacency + weight caches, batched/fused
  paths) reproduces the seed per-batch recomputation bit-for-bit across
  post-deployment fault injection, BIST re-scans and plan refreshes — with
  identical write-event and endurance accounting.

Plus cache bookkeeping: invalidation on fault/plan changes, hit/miss
counters surfacing through ``Strategy.mapping_engine_stats()`` into the
trainer counters.
"""

import numpy as np
import pytest

from repro.core.hw_state import HardwareStateCache
from repro.core.strategies import FaReStrategy, build_strategy
from repro.graph.sparse import CSRMatrix
from repro.hardware.endurance import PostDeploymentSchedule
from repro.hardware.faults import FaultModel
from repro.nn.factory import build_model
from repro.pipeline.mapping_engine import (
    AdjacencyCrossbarMapper,
    HardwareEnvironment,
    WeightCrossbarMapper,
)
from repro.pipeline.trainer import FaultyTrainer, TrainingConfig


def make_environment(tiny_config, density=0.08, ratio=(4.0, 1.0), seed=11):
    model = FaultModel(density, ratio, seed=seed) if density > 0 else None
    return HardwareEnvironment(config=tiny_config, fault_model=model, weight_fraction=0.5)


def random_adjacency(n, seed=0, density=0.12):
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < density).astype(float)
    dense = np.maximum(dense, dense.T)
    np.fill_diagonal(dense, 0.0)
    return CSRMatrix.from_dense(dense)


def fare_plan(mapper, blocks):
    return FaReStrategy(row_method="greedy").plan_adjacency(
        [blocks], mapper.fault_maps(), mapper.crossbar_ids, mapper.config.crossbar_rows
    )[0]


# --------------------------------------------------------------------------- #
# Batched adjacency read-back ≡ seed per-block loop
# --------------------------------------------------------------------------- #
class TestBatchedReadBackEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bit_identical_including_hardware_state(self, tiny_config, seed):
        """Same read-back, same stored contents, same endurance counters."""
        env_loop = make_environment(tiny_config, seed=seed + 50)
        env_batched = make_environment(tiny_config, seed=seed + 50)
        loop = AdjacencyCrossbarMapper(env_loop.adjacency_crossbars, tiny_config)
        batched = AdjacencyCrossbarMapper(env_batched.adjacency_crossbars, tiny_config)

        adjacency = random_adjacency(44, seed=seed)
        blocks_l, grid_l = loop.decompose(adjacency)
        blocks_b, grid_b = batched.decompose(adjacency)
        plan_l = fare_plan(loop, blocks_l)
        plan_b = fare_plan(batched, blocks_b)

        out_loop = loop.apply_mapping(
            adjacency, plan_l, blocks=blocks_l, grid=grid_l, batched=False
        )
        out_batched = batched.apply_mapping(
            adjacency, plan_b, blocks=blocks_b, grid=grid_b, batched=True
        )
        np.testing.assert_array_equal(out_loop.to_dense(), out_batched.to_dense())
        assert loop.block_write_events == batched.block_write_events
        for xl, xb in zip(loop.crossbars, batched.crossbars):
            np.testing.assert_array_equal(xl.read_ideal(), xb.read_ideal())
            np.testing.assert_array_equal(xl.write_counts, xb.write_counts)
            assert xl.total_writes == xb.total_writes

    def test_fault_free_batched_preserves_adjacency(self, tiny_config):
        env = make_environment(tiny_config, density=0.0)
        mapper = AdjacencyCrossbarMapper(env.adjacency_crossbars, tiny_config)
        adjacency = random_adjacency(30, seed=4)
        blocks, grid = mapper.decompose(adjacency)
        plan = fare_plan(mapper, blocks)
        out = mapper.apply_mapping(adjacency, plan, blocks=blocks, grid=grid)
        np.testing.assert_array_equal(out.to_dense(), adjacency.to_dense())

    def test_batched_rejects_bad_permutation(self, tiny_config):
        env = make_environment(tiny_config)
        mapper = AdjacencyCrossbarMapper(env.adjacency_crossbars, tiny_config)
        adjacency = random_adjacency(16, seed=5)
        blocks, grid = mapper.decompose(adjacency)
        plan = fare_plan(mapper, blocks)
        plan.blocks[0].row_permutation = np.zeros(tiny_config.crossbar_rows, dtype=int)
        with pytest.raises(ValueError):
            mapper.apply_mapping(adjacency, plan, blocks=blocks, grid=grid, batched=True)


# --------------------------------------------------------------------------- #
# Fused weight pipeline ≡ seed bit-sliced pipeline
# --------------------------------------------------------------------------- #
class TestFusedWeightEquivalence:
    @staticmethod
    def _mapper(env, model):
        return WeightCrossbarMapper(model, env.weight_crossbars, env.fmt, env.config)

    @pytest.mark.parametrize("use_permutation", [False, True])
    def test_bit_identical(self, tiny_config, use_permutation):
        env = make_environment(tiny_config, density=0.1, seed=3)
        model = build_model("gcn", 12, 8, 4, rng=0)
        mapper = self._mapper(env, model)
        rng = np.random.default_rng(7)
        for name in mapper.layouts:
            rows, cols = mapper.layout(name).shape
            values = rng.normal(scale=2.0, size=(rows, cols))
            perm = rng.permutation(rows) if use_permutation else None
            fused = mapper.effective_weights(
                name, values, row_permutation=perm, count_write=False, fused=True
            )
            seed = mapper.effective_weights(
                name, values, row_permutation=perm, count_write=False, fused=False
            )
            np.testing.assert_array_equal(fused, seed)

    def test_bit_identical_after_fault_refresh(self, tiny_config):
        env = make_environment(tiny_config, density=0.05, seed=9)
        model = build_model("gcn", 12, 8, 4, rng=0)
        mapper = self._mapper(env, model)
        before = mapper.fault_version
        env.inject_post_deployment(0.08)
        mapper.refresh_fault_masks()
        assert mapper.fault_version == before + 1
        rng = np.random.default_rng(8)
        for name in mapper.layouts:
            values = rng.normal(scale=3.0, size=mapper.layout(name).shape)
            np.testing.assert_array_equal(
                mapper.effective_weights(name, values, count_write=False, fused=True),
                mapper.effective_weights(name, values, count_write=False, fused=False),
            )

    def test_saturating_values_identical(self, tiny_config):
        """Out-of-range values saturate the same way on both paths."""
        env = make_environment(tiny_config, density=0.1, seed=2)
        model = build_model("gcn", 12, 8, 4, rng=0)
        mapper = self._mapper(env, model)
        name = next(iter(mapper.layouts))
        shape = mapper.layout(name).shape
        values = np.linspace(-50.0, 50.0, num=shape[0] * shape[1]).reshape(shape)
        np.testing.assert_array_equal(
            mapper.effective_weights(name, values, count_write=False, fused=True),
            mapper.effective_weights(name, values, count_write=False, fused=False),
        )


# --------------------------------------------------------------------------- #
# Full-trainer equivalence across fault refresh / plan refresh cycles
# --------------------------------------------------------------------------- #
class TestTrainerEquivalence:
    @staticmethod
    def _train(tiny_graph, tiny_config, strategy_name, cached, with_post=True):
        config = TrainingConfig(
            epochs=3,
            learning_rate=0.02,
            hidden_features=8,
            dropout=0.0,
            num_parts=4,
            batch_clusters=2,
            seed=0,
        )
        hardware = make_environment(tiny_config, density=0.06, seed=21)
        post = (
            PostDeploymentSchedule(total_extra_density=0.04, num_epochs=config.epochs)
            if with_post
            else None
        )
        trainer = FaultyTrainer(
            tiny_graph,
            "gcn",
            build_strategy(strategy_name),
            config,
            hardware=hardware,
            post_deployment=post,
            use_hw_state_cache=cached,
        )
        result = trainer.train()
        return trainer, result

    @pytest.mark.parametrize("strategy_name", ["fare", "nr", "clipping"])
    def test_cached_run_is_bit_identical_to_seed_run(
        self, tiny_graph, tiny_config, strategy_name
    ):
        """Covers post-deployment injection, BIST re-scans and plan refreshes:
        every epoch ends with new faults, a re-scan and refresh_adjacency, so
        the caches must invalidate at exactly the right points to stay
        bit-identical."""
        trainer_seed, result_seed = self._train(
            tiny_graph, tiny_config, strategy_name, cached=False
        )
        trainer_cached, result_cached = self._train(
            tiny_graph, tiny_config, strategy_name, cached=True
        )
        np.testing.assert_array_equal(result_seed.loss_history, result_cached.loss_history)
        np.testing.assert_array_equal(
            result_seed.train_accuracy_history, result_cached.train_accuracy_history
        )
        np.testing.assert_array_equal(
            result_seed.test_accuracy_history, result_cached.test_accuracy_history
        )
        # Simulated-hardware accounting must be unchanged by caching.
        assert (
            result_seed.counters["weight_write_events"]
            == result_cached.counters["weight_write_events"]
        )
        assert (
            result_seed.counters["block_write_events"]
            == result_cached.counters["block_write_events"]
        )
        for xs, xc in zip(
            trainer_seed._adjacency_mapper.crossbars,
            trainer_cached._adjacency_mapper.crossbars,
        ):
            np.testing.assert_array_equal(xs.write_counts, xc.write_counts)
            assert xs.total_writes == xc.total_writes

    def test_cached_run_identical_without_post_deployment(
        self, tiny_graph, tiny_config
    ):
        _, result_seed = self._train(
            tiny_graph, tiny_config, "fare", cached=False, with_post=False
        )
        _, result_cached = self._train(
            tiny_graph, tiny_config, "fare", cached=True, with_post=False
        )
        np.testing.assert_array_equal(result_seed.loss_history, result_cached.loss_history)
        np.testing.assert_array_equal(
            result_seed.test_accuracy_history, result_cached.test_accuracy_history
        )


# --------------------------------------------------------------------------- #
# Cache invalidation and counter surfacing
# --------------------------------------------------------------------------- #
class TestCacheBookkeeping:
    def test_steady_state_reuses_adjacency(self, tiny_graph, tiny_config):
        """Without fault/plan changes only the first epoch misses."""
        config = TrainingConfig(
            epochs=4, hidden_features=8, dropout=0.0, num_parts=4, batch_clusters=2, seed=0
        )
        trainer = FaultyTrainer(
            tiny_graph,
            "gcn",
            build_strategy("fare"),
            config,
            hardware=make_environment(tiny_config, seed=33),
        )
        result = trainer.train()
        stats = trainer._hw_cache.stats
        num_batches = int(result.counters["num_batches"])
        assert stats.adjacency_misses == num_batches
        assert stats.adjacency_hits > 0
        assert stats.adjacency_invalidations == 0
        assert stats.weight_hits > 0
        # Counters surface through mapping_engine_stats() into the trainer
        # counters, next to the cost engine's counters.
        engine_stats = trainer.strategy.mapping_engine_stats()
        assert engine_stats["hw_adjacency_cache_hits"] == float(stats.adjacency_hits)
        assert "mapping_pairs_total" in engine_stats
        assert result.counters["hw_adjacency_cache_hits"] == float(stats.adjacency_hits)
        assert result.counters["hw_weight_cache_misses"] == float(stats.weight_misses)

    def test_post_deployment_invalidates_every_epoch(self, tiny_graph, tiny_config):
        config = TrainingConfig(
            epochs=3, hidden_features=8, dropout=0.0, num_parts=4, batch_clusters=2, seed=0
        )
        trainer = FaultyTrainer(
            tiny_graph,
            "gcn",
            build_strategy("fare"),
            config,
            hardware=make_environment(tiny_config, seed=34),
            post_deployment=PostDeploymentSchedule(
                total_extra_density=0.03, num_epochs=config.epochs
            ),
        )
        trainer.train()
        stats = trainer._hw_cache.stats
        num_batches = len(trainer.batches)
        assert stats.adjacency_invalidations == config.epochs
        # Each epoch re-derives every batch at least once (training pass after
        # the previous epoch's invalidation, plus the first post-refresh eval).
        assert stats.adjacency_misses >= config.epochs * num_batches
        assert stats.weight_misses > 0

    def test_weight_cache_keys_on_param_and_fault_version(self, tiny_graph, tiny_config):
        config = TrainingConfig(
            epochs=1, hidden_features=8, dropout=0.0, num_parts=4, batch_clusters=2, seed=0
        )
        trainer = FaultyTrainer(
            tiny_graph,
            "gcn",
            build_strategy("clipping"),
            config,
            hardware=make_environment(tiny_config, seed=35),
        )
        trainer.train()
        cache = trainer._hw_cache
        name = next(iter(trainer._weight_mapper.layouts))
        values = dict(trainer.model.named_parameters())
        calls = []

        def compute():
            calls.append(1)
            return np.zeros((1, 1))

        key = (trainer.optimizer.param_version, trainer._weight_mapper.fault_version)
        cache.effective_weights(name, key, compute)
        assert len(calls) == 0  # entry from the post-training eval is fresh → hit
        trainer.optimizer.param_version += 1
        key2 = (trainer.optimizer.param_version, trainer._weight_mapper.fault_version)
        cache.effective_weights(name, key2, compute)
        assert len(calls) == 1  # version bump → miss
        cache.effective_weights(name, key2, compute)
        assert len(calls) == 1  # same key → hit
        trainer._weight_mapper.refresh_fault_masks()
        key3 = (trainer.optimizer.param_version, trainer._weight_mapper.fault_version)
        assert key3 != key2
        cache.effective_weights(name, key3, compute)
        assert len(calls) == 2  # fault refresh → miss
        assert values  # silence linters: parameters fetched for completeness

    def test_eval_counts_no_weight_writes(self, tiny_graph, tiny_config):
        """Satellite: evaluate() must not inflate weight_write_events."""
        config = TrainingConfig(
            epochs=1, hidden_features=8, dropout=0.0, num_parts=4, batch_clusters=2, seed=0
        )
        trainer = FaultyTrainer(
            tiny_graph,
            "gcn",
            build_strategy("clipping"),
            config,
            hardware=make_environment(tiny_config, seed=36),
        )
        trainer.train()
        after_train = trainer._weight_mapper.weight_write_events
        trainer.evaluate("test")
        trainer.evaluate("train")
        assert trainer._weight_mapper.weight_write_events == after_train

    def test_disabled_cache_delegates(self, tiny_config):
        env = make_environment(tiny_config, seed=37)
        mapper = AdjacencyCrossbarMapper(env.adjacency_crossbars, tiny_config)
        cache = HardwareStateCache(mapper, enabled=False)
        adjacency = random_adjacency(20, seed=6)
        blocks, grid = mapper.decompose(adjacency)
        plan = fare_plan(mapper, blocks)
        first = cache.batch_adjacency(0, adjacency, plan, blocks=blocks, grid=grid)
        second = cache.batch_adjacency(0, adjacency, plan, blocks=blocks, grid=grid)
        assert first is not second  # recomputed, not served from cache
        np.testing.assert_array_equal(first.to_dense(), second.to_dense())
        assert cache.stats.adjacency_hits == 0 and cache.stats.adjacency_misses == 0
