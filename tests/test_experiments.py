"""Tests for the experiment drivers (tables, runner, figure modules).

Training-based drivers are exercised with tiny epoch counts and reduced
workload subsets; the full paper-shaped sweeps live in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.experiments import configs, runner, tables
from repro.experiments.fig3 import format_fig3, run_fig3
from repro.experiments.fig4 import format_fig4, run_fig4
from repro.experiments.fig5 import format_fig5, run_fig5
from repro.experiments.fig6 import format_fig6, run_fig6
from repro.experiments.fig7 import FIG7_STRATEGIES, format_fig7, run_fig7
from repro.experiments.headline import format_headline, run_headline
from repro.hardware.config import DEFAULT_CONFIG


class TestConfigs:
    def test_scales(self):
        ci = configs.scale_settings("ci")
        paper = configs.scale_settings("paper")
        assert ci.epochs < paper.epochs
        assert ci.crossbar_size <= paper.crossbar_size
        with pytest.raises(ValueError):
            configs.scale_settings("huge")

    def test_training_config(self):
        cfg = configs.training_config("reddit", "ci", seed=1, epochs=3)
        assert cfg.epochs == 3
        assert cfg.learning_rate == 0.01
        assert cfg.seed == 1

    def test_hardware_config(self):
        ci = configs.hardware_config("ci")
        paper = configs.hardware_config("paper")
        assert ci.crossbar_rows == 64
        assert paper.crossbar_rows == 128

    def test_fig_pairs_match_paper(self):
        assert ("reddit", "gcn") in configs.fig5_pairs()
        assert len(configs.fig5_pairs()) == 6
        assert len(configs.fig6_pairs()) == 3
        assert configs.FIG5_FAULT_DENSITIES == (0.01, 0.03, 0.05)
        assert configs.FIG6_FAULT_DENSITIES == (0.01, 0.02, 0.03)

    def test_strategy_kwargs(self):
        assert "clipping_threshold" in configs.strategy_kwargs_for("fare", "ci")
        assert configs.strategy_kwargs_for("fault_unaware", "ci") == {}

    def test_dataset_spec_lookup(self):
        assert configs.dataset_spec("PPI").name == "ppi"
        with pytest.raises(KeyError):
            configs.dataset_spec("cora")


class TestTables:
    def test_table1_has_fare_row(self):
        rows = tables.table1_rows()
        assert len(rows) == 7
        assert any("FARe" in row[0] for row in rows)
        assert "Ref." in tables.format_table1()

    def test_table2_without_surrogate_stats(self):
        rows = tables.table2_rows(include_surrogate_stats=False)
        assert len(rows) == 4
        ppi = next(row for row in rows if row[0] == "ppi")
        assert ppi[1] == 56_944
        assert ppi[3] == 5 and ppi[4] == 250

    def test_table2_with_surrogate_stats(self):
        rows = tables.table2_rows(scale="ci", seed=0)
        for row in rows:
            assert row[6] > 0 and row[7] > 0
        assert "Dataset" in tables.format_table2(scale="ci")

    def test_table3_matches_config(self):
        rows = tables.table3_rows(DEFAULT_CONFIG)
        rendered = tables.format_table3()
        assert any("128x128" in str(value) for _, value in rows)
        assert "2-bit/cell" in rendered
        assert "10 MHz" in rendered


class TestRunner:
    def test_cache_hits(self):
        runner.clear_cache()
        first = runner.run_single("reddit", "gcn", "fault_free", 0.0, scale="ci", seed=0, epochs=1)
        size_after_first = runner.cache_size()
        second = runner.run_single("reddit", "gcn", "fault_free", 0.0, scale="ci", seed=0, epochs=1)
        assert runner.cache_size() == size_after_first
        assert first is second

    def test_use_cache_false(self):
        runner.clear_cache()
        a = runner.run_single(
            "reddit", "gcn", "fault_free", 0.0, scale="ci", seed=0, epochs=1, use_cache=False
        )
        assert runner.cache_size() == 0
        assert a.final_test_accuracy >= 0

    def test_fault_region_restriction(self):
        hardware = runner.build_hardware("ci", 0.1, (1.0, 1.0), seed=0, fault_region="weights")
        assert all(x.fault_map.is_fault_free() for x in hardware.adjacency_crossbars)
        assert any(not x.fault_map.is_fault_free() for x in hardware.weight_crossbars)
        hardware = runner.build_hardware("ci", 0.1, (1.0, 1.0), seed=0, fault_region="adjacency")
        assert all(x.fault_map.is_fault_free() for x in hardware.weight_crossbars)

    def test_invalid_fault_region(self):
        with pytest.raises(ValueError):
            runner.build_hardware("ci", 0.1, (1.0, 1.0), seed=0, fault_region="everything")

    def test_result_metadata(self):
        result = runner.run_single(
            "ppi", "gat", "clipping", 0.03, scale="ci", seed=0, epochs=1, use_cache=False
        )
        assert result.dataset == "ppi"
        assert result.model == "gat"
        assert result.strategy == "clipping"
        assert result.fault_density == pytest.approx(0.03, rel=0.6)
        assert result.summary_row()[0] == "ppi"


class TestFigureDrivers:
    def test_fig3_shape(self):
        result = run_fig3(scale="ci", seed=0, epochs=2)
        assert set(result.accuracies) == {
            ("weights", "SA0 only"),
            ("weights", "SA1 only"),
            ("adjacency", "SA0 only"),
            ("adjacency", "SA1 only"),
        }
        assert len(result.rows()) == 5
        assert "Fig. 3" in format_fig3(result)

    def test_fig4_curves(self):
        result = run_fig4(densities=(0.05,), scale="ci", seed=0, epochs=2)
        assert len(result.fault_free_curve) == 2
        assert len(result.fare_curves[0.05]) == 2
        assert np.isfinite(result.final_gap("fare", 0.05))
        assert "Fig. 4" in format_fig4(result)

    def test_fig5_single_pair(self):
        result = run_fig5(
            densities=(0.05,), pairs=(("reddit", "gcn"),), scale="ci", seed=0, epochs=2
        )
        for strategy in ("fault_free", "fault_unaware", "nr", "clipping", "fare"):
            assert ("reddit", "gcn", 0.05, strategy) in result.accuracies
        assert len(result.rows()) == 1
        assert np.isfinite(result.accuracy_drop("reddit", "gcn", 0.05, "fare"))
        assert "Fig. 5" in format_fig5(result)

    def test_fig6_single_pair(self):
        result = run_fig6(
            densities=(0.02,), pairs=(("reddit", "gcn"),), scale="ci", seed=0, epochs=2
        )
        assert result.post_deployment_extra == configs.FIG6_POST_DEPLOYMENT_EXTRA
        assert ("reddit", "gcn", 0.02, "fare") in result.accuracies
        assert "Fig. 6" in format_fig6(result)

    def test_fig7_shape(self):
        result = run_fig7()
        assert len(result.rows()) == 4
        for workload, _ in result.normalized:
            assert result.time(workload, "fault_free") == pytest.approx(1.0)
            assert result.time(workload, "clipping") < 1.1
            assert result.time(workload, "fare") < 1.1
            assert result.time(workload, "nr") > 1.5
            assert result.speedup_over_nr(workload) > 1.5
        assert "Fig. 7" in format_fig7(result)
        assert FIG7_STRATEGIES[0] == "fault_free"

    def test_headline_claims(self):
        result = run_headline(scale="ci", seed=0, epochs=2, density=0.05)
        names = {claim.name for claim in result.claims}
        assert "accuracy_restoration_reddit_1to1" in names
        assert "fare_speedup_over_nr" in names
        assert result.claim("fare_timing_overhead").measured_value < 0.1
        with pytest.raises(KeyError):
            result.claim("nonexistent")
        assert "paper" in format_headline(result).lower()
