"""Tests for the synthetic dataset generators and the dataset registry."""

import numpy as np
import pytest

from repro.graph.datasets import DATASET_REGISTRY, load_dataset, synthetic_graph


class TestSyntheticGraph:
    def test_basic_shapes(self):
        graph = synthetic_graph(80, 4, 16, 4, seed=0)
        assert graph.num_nodes == 80
        assert graph.features.shape == (80, 16)
        assert graph.labels.shape == (80,)

    def test_reproducible(self):
        a = synthetic_graph(50, 4, 8, 4, seed=7)
        b = synthetic_graph(50, 4, 8, 4, seed=7)
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.adjacency.to_dense(), b.adjacency.to_dense())

    def test_different_seeds_differ(self):
        a = synthetic_graph(50, 4, 8, 4, seed=1)
        b = synthetic_graph(50, 4, 8, 4, seed=2)
        assert not np.array_equal(a.adjacency.to_dense(), b.adjacency.to_dense())

    def test_masks_partition_nodes(self):
        graph = synthetic_graph(100, 5, 8, 5, seed=0)
        total = graph.train_mask.astype(int) + graph.val_mask.astype(int) + graph.test_mask.astype(int)
        np.testing.assert_array_equal(total, np.ones(100))

    def test_multilabel_labels(self):
        graph = synthetic_graph(60, 4, 8, 6, multilabel=True, seed=0)
        assert graph.labels.shape == (60, 6)
        assert set(np.unique(graph.labels)) <= {0, 1}
        assert graph.is_multilabel

    def test_community_structure_present(self):
        graph = synthetic_graph(200, 4, 8, 4, avg_degree=10, intra_ratio=0.95, seed=0)
        labels = graph.labels
        rows, cols, _ = graph.adjacency.coo()
        same = float(np.mean(labels[rows] == labels[cols]))
        # Intra-community edges dominate, so endpoints usually share a label.
        assert same > 0.5

    def test_average_degree_close_to_target(self):
        graph = synthetic_graph(300, 6, 8, 6, avg_degree=12, seed=0)
        actual = graph.num_edges / graph.num_nodes  # directed count / nodes
        assert 6 <= actual <= 13

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            synthetic_graph(10, 2, 4, 2, train_fraction=0.8, val_fraction=0.3)

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            synthetic_graph(10, 2, 4, 2, avg_degree=0)


class TestRegistry:
    def test_contains_paper_datasets(self):
        assert set(DATASET_REGISTRY) == {"ppi", "reddit", "amazon2m", "ogbl"}

    def test_paper_statistics_match_table2(self):
        assert DATASET_REGISTRY["ppi"].paper_nodes == 56_944
        assert DATASET_REGISTRY["reddit"].paper_edges == 11_606_919
        assert DATASET_REGISTRY["amazon2m"].paper_partitions == 10_000
        assert DATASET_REGISTRY["ogbl"].paper_batch == 16

    def test_models_match_table2(self):
        assert DATASET_REGISTRY["ppi"].models == ("gcn", "gat")
        assert DATASET_REGISTRY["amazon2m"].models == ("gcn", "sage")

    def test_only_ppi_is_multilabel(self):
        assert DATASET_REGISTRY["ppi"].multilabel
        assert not DATASET_REGISTRY["reddit"].multilabel

    def test_size_ordering_preserved(self):
        sizes = {name: spec.nodes_for_scale("ci") for name, spec in DATASET_REGISTRY.items()}
        assert sizes["ppi"] < sizes["reddit"] < sizes["amazon2m"] <= sizes["ogbl"] + 100

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            DATASET_REGISTRY["ppi"].nodes_for_scale("huge")


class TestLoadDataset:
    @pytest.mark.parametrize("name", ["ppi", "reddit", "amazon2m", "ogbl"])
    def test_load_ci_scale(self, name):
        graph = load_dataset(name, scale="ci", seed=0)
        spec = DATASET_REGISTRY[name]
        assert graph.num_nodes == spec.nodes_for_scale("ci")
        assert graph.name == name
        assert graph.is_multilabel == spec.multilabel

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("citeseer")

    def test_case_insensitive(self):
        assert load_dataset("PPI", scale="ci").name == "ppi"
