"""Tests for the fault-handling strategy objects."""

import numpy as np
import pytest

from repro.core.mapping import BatchMapping
from repro.core.strategies import (
    STRATEGY_REGISTRY,
    FaReStrategy,
    FaultFreeStrategy,
    FaultUnawareStrategy,
    NeuronReorderingStrategy,
    WeightClippingStrategy,
    build_strategy,
)
from repro.hardware.faults import FaultMap, FaultModel
from repro.nn.gcn import GCN


def make_blocks_and_maps(num_blocks=3, num_crossbars=5, size=16, seed=0):
    rng = np.random.default_rng(seed)
    blocks = [(rng.random((size, size)) < 0.05).astype(float) for _ in range(num_blocks)]
    fmaps = FaultModel(0.05, (9, 1), seed=seed).generate(num_crossbars, size, size)
    return blocks, fmaps


class TestRegistry:
    def test_all_strategies_present(self):
        assert set(STRATEGY_REGISTRY) == {
            "fault_free",
            "fault_unaware",
            "nr",
            "clipping",
            "fare",
        }

    @pytest.mark.parametrize("name", list(STRATEGY_REGISTRY))
    def test_build_strategy(self, name):
        strategy = build_strategy(name)
        assert strategy.name == name

    def test_unknown_strategy(self):
        with pytest.raises(KeyError):
            build_strategy("magic")

    def test_flags_match_paper_roles(self):
        assert not FaultFreeStrategy().requires_hardware
        assert FaultUnawareStrategy().requires_hardware
        assert NeuronReorderingStrategy().reorders_every_batch
        assert WeightClippingStrategy().uses_clipping
        fare = FaReStrategy()
        assert fare.uses_clipping and fare.uses_fault_aware_mapping
        assert not fare.reorders_every_batch


class TestBaseBehaviour:
    def test_sequential_plan(self):
        blocks, fmaps = make_blocks_and_maps()
        plan = FaultUnawareStrategy().plan_adjacency([blocks], fmaps, [7, 8, 9, 10, 11], 16)
        assert len(plan) == 1
        assert [m.crossbar_index for m in plan[0].blocks] == [7, 8, 9]

    def test_identity_weight_handling(self):
        strategy = FaultUnawareStrategy()
        values = np.ones((4, 4))
        assert strategy.weight_storage_permutation("w", values, lambda: np.zeros((4, 4))) is None
        np.testing.assert_array_equal(strategy.transform_effective_weights("w", values), values)

    def test_refresh_is_noop(self):
        blocks, fmaps = make_blocks_and_maps()
        strategy = FaultUnawareStrategy()
        plans = strategy.plan_adjacency([blocks], fmaps, list(range(5)), 16)
        assert strategy.refresh_adjacency(plans, [blocks], {}) is plans


class TestClippingStrategy:
    def test_effective_weights_clamped(self):
        strategy = WeightClippingStrategy(threshold=0.5)
        out = strategy.transform_effective_weights("w", np.array([[3.0, -2.0, 0.1]]))
        np.testing.assert_allclose(out, [[0.5, -0.5, 0.1]])

    def test_master_weights_clamped_after_step(self):
        strategy = WeightClippingStrategy(threshold=0.5)
        model = GCN(4, 8, 3, rng=0)
        for _, param in model.named_parameters():
            if param.data.ndim == 2:
                param.data += 3.0
        strategy.after_optimizer_step(model)
        for _, param in model.named_parameters():
            if param.data.ndim == 2:
                assert np.all(np.abs(param.data) <= 0.5)


class TestNeuronReordering:
    def test_weight_permutation_cached(self):
        strategy = NeuronReorderingStrategy()
        values = np.random.default_rng(0).normal(size=(8, 4))
        cost = np.random.default_rng(1).random((8, 8))
        calls = []

        def cost_fn():
            calls.append(1)
            return cost

        first = strategy.weight_storage_permutation("w", values, cost_fn)
        second = strategy.weight_storage_permutation("w", values, cost_fn)
        np.testing.assert_array_equal(first, second)
        assert len(calls) == 1
        strategy.reset_weight_permutations()
        strategy.weight_storage_permutation("w", values, cost_fn)
        assert len(calls) == 2

    def test_no_permutation_when_no_faults(self):
        strategy = NeuronReorderingStrategy()
        values = np.ones((4, 4))
        assert strategy.weight_storage_permutation("w", values, lambda: np.zeros((4, 4))) is None

    def test_adjacency_group_permutation_valid(self):
        blocks, fmaps = make_blocks_and_maps(num_blocks=2, num_crossbars=4)
        strategy = NeuronReorderingStrategy(group_size=4)
        plans = strategy.plan_adjacency([blocks], fmaps, list(range(4)), 16)
        for mapping in plans[0].blocks:
            assert sorted(mapping.row_permutation.tolist()) == list(range(16))

    def test_refresh_adjacency_recomputes_permutations(self):
        blocks, fmaps = make_blocks_and_maps(num_blocks=2, num_crossbars=4)
        strategy = NeuronReorderingStrategy(group_size=4)
        plans = strategy.plan_adjacency([blocks], fmaps, list(range(4)), 16)
        by_id = {i: fmaps[i] for i in range(4)}
        refreshed = strategy.refresh_adjacency(plans, [blocks], by_id)
        assert [m.crossbar_index for m in refreshed[0].blocks] == [
            m.crossbar_index for m in plans[0].blocks
        ]

    def test_group_size_validation(self):
        with pytest.raises(ValueError):
            NeuronReorderingStrategy(group_size=0)


class TestFaReStrategy:
    def test_plan_uses_algorithm1(self):
        blocks, fmaps = make_blocks_and_maps(num_blocks=3, num_crossbars=6, seed=3)
        strategy = FaReStrategy(row_method="greedy")
        plans = strategy.plan_adjacency([blocks, blocks], fmaps, list(range(6)), 16)
        assert len(plans) == 2
        assert isinstance(plans[0], BatchMapping)
        used = [m.crossbar_index for m in plans[0].blocks]
        assert len(set(used)) == len(used)

    def test_refresh_keeps_assignment(self):
        blocks, fmaps = make_blocks_and_maps(num_blocks=3, num_crossbars=6, seed=4)
        strategy = FaReStrategy(row_method="greedy")
        plans = strategy.plan_adjacency([blocks], fmaps, list(range(6)), 16)
        by_id = {i: fmaps[i] for i in range(6)}
        refreshed = strategy.refresh_adjacency(plans, [blocks], by_id)
        assert [m.crossbar_index for m in refreshed[0].blocks] == [
            m.crossbar_index for m in plans[0].blocks
        ]

    def test_clipping_behaviour(self):
        strategy = FaReStrategy(clipping_threshold=0.25)
        out = strategy.transform_effective_weights("w", np.array([[1.0, -1.0]]))
        np.testing.assert_allclose(out, [[0.25, -0.25]])

    def test_constructor_kwargs(self):
        strategy = FaReStrategy(sa1_weight=2.0, row_method="hungarian", prune_crossbars=False)
        assert strategy.mapper.sa1_weight == 2.0
        assert strategy.mapper.row_method == "hungarian"
        assert not strategy.mapper.prune_crossbars
