"""Tests for the crash-safe multi-client sweep service.

The contract under test (see ``repro/experiments/service.py``):

* the lease protocol grants at most one executor per signature, survives
  stale owners (dead pid, frozen heartbeat, torn lease file) through
  serialized reclamation, and never lets a live heartbeating client be
  reclaimed from under;
* the job queue is idempotent by signature and tolerant of concurrent
  completion and torn files;
* per-client journals merge on load (``done`` from any client beats
  ``quarantined`` from any other) and compact atomically;
* N processes hammering one root execute every unique spec exactly once
  with results bit-identical to a serial client — the stress satellite;
* every failure path lands in the failed ledger via ``classify_failure``
  and renders through ``format_failure_report`` in ``status``/``drain``.
"""

import json
import multiprocessing
import os
import subprocess
import sys
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.experiments.failures import FailureKind, FailureRecord, FaultInjector
from repro.experiments.service import (
    JobQueue,
    LeaseManager,
    SweepService,
    cli_main,
    run_client,
)
from repro.experiments.sweeps import (
    ResultStore,
    RunSpec,
    SweepEngine,
    SweepJournal,
    SweepPlan,
    default_journal_path,
)

from test_experiments_sweeps import comparable

#: Two cheap specs sharing one artifact group — the unit-test workload.
TINY_PLAN = SweepPlan.grid(
    datasets=[("ppi", "gcn")],
    strategies=("fault_free", "fault_unaware"),
    fault_densities=(0.05,),
    seeds=(0,),
    scale="ci",
    epochs=1,
)

#: Overlapping two-group grid for the multi-process stress satellite.
STRESS_PLAN = SweepPlan.grid(
    datasets=[("ppi", "gcn"), ("reddit", "gcn")],
    strategies=("fault_free", "fault_unaware"),
    fault_densities=(0.05,),
    seeds=(0,),
    scale="ci",
    epochs=1,
)


def spec_of(plan, index=0):
    return list(plan)[index]


def dead_pid():
    """A pid that existed and is now certainly reaped."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


# --------------------------------------------------------------------------- #
# Lease protocol
# --------------------------------------------------------------------------- #
class TestLeaseManager:
    def test_acquire_is_exclusive_across_managers(self, tmp_path):
        a = LeaseManager(tmp_path, "a", stale_after=60.0)
        b = LeaseManager(tmp_path, "b", stale_after=60.0)
        lease = a.acquire("sig1")
        assert lease is not None
        assert b.acquire("sig1") is None
        assert b.contended == 1
        assert a.release(lease)
        assert b.acquire("sig1") is not None

    def test_reclaims_lease_of_dead_owner(self, tmp_path):
        path = tmp_path / "sig1.lease"
        path.write_text(
            json.dumps({"pid": dead_pid(), "client_id": "ghost", "signature": "sig1"})
        )
        manager = LeaseManager(tmp_path, "live", stale_after=3600.0)
        lease = manager.acquire("sig1")
        assert lease is not None
        assert manager.reclaimed == 1
        assert json.loads(path.read_text())["client_id"] == "live"

    def test_reclaims_stale_mtime_even_with_live_pid(self, tmp_path):
        # A livelocked (heartbeat-frozen) owner: pid alive, mtime ancient.
        holder = LeaseManager(tmp_path, "holder", stale_after=3600.0)
        lease = holder.acquire("sig1")
        old = time.time() - 7200
        os.utime(lease.path, (old, old))
        other = LeaseManager(tmp_path, "other", stale_after=1.0)
        assert other.acquire("sig1") is not None
        assert other.reclaimed == 1

    def test_live_heartbeating_lease_is_not_reclaimed(self, tmp_path):
        holder = LeaseManager(tmp_path, "holder", stale_after=3600.0)
        lease = holder.acquire("sig1")
        assert holder.heartbeat(lease)
        other = LeaseManager(tmp_path, "other", stale_after=3600.0)
        assert other.acquire("sig1") is None
        assert other.reclaimed == 0

    def test_corrupt_lease_is_reclaimable(self, tmp_path):
        (tmp_path / "sig1.lease").write_text('{"pid": ')  # torn write
        manager = LeaseManager(tmp_path, "live", stale_after=3600.0)
        assert manager.acquire("sig1") is not None
        assert manager.corrupt >= 1
        assert manager.reclaimed == 1

    def test_heartbeat_refreshes_mtime_and_detects_loss(self, tmp_path):
        manager = LeaseManager(tmp_path, "a", stale_after=60.0)
        lease = manager.acquire("sig1")
        old = time.time() - 120
        os.utime(lease.path, (old, old))
        assert manager.heartbeat(lease)
        assert time.time() - lease.path.stat().st_mtime < 60
        # Simulate reclamation by another client: ownership changes.
        lease.path.write_text(
            json.dumps({"pid": os.getpid(), "client_id": "thief", "signature": "sig1"})
        )
        assert not manager.heartbeat(lease)
        assert manager.lost == 1
        assert not manager.release(lease)

    def test_release_requires_ownership(self, tmp_path):
        a = LeaseManager(tmp_path, "a", stale_after=60.0)
        lease = a.acquire("sig1")
        assert a.release(lease)
        assert not a.release(lease)  # already gone
        assert a.released == 1

    def test_corrupt_lease_chaos_hook(self, tmp_path):
        injector = FaultInjector(corrupt_lease_for=("sig1",))
        a = LeaseManager(tmp_path, "a", stale_after=3600.0, injector=injector)
        lease = a.acquire("sig1")
        # The injector tore our own lease right after the win: we no longer
        # own it, and any other client may reclaim it.
        assert not a.heartbeat(lease)
        b = LeaseManager(tmp_path, "b", stale_after=3600.0)
        assert b.acquire("sig1") is not None
        assert b.corrupt >= 1

    def test_stats_are_flat_floats(self, tmp_path):
        manager = LeaseManager(tmp_path, "a")
        stats = manager.stats()
        assert set(stats) >= {"lease_acquired", "lease_reclaimed", "lease_contended"}
        assert all(isinstance(v, float) for v in stats.values())


# --------------------------------------------------------------------------- #
# Job queue
# --------------------------------------------------------------------------- #
class TestJobQueue:
    def test_submit_is_idempotent_by_signature(self, tmp_path):
        queue = JobQueue(tmp_path / "queue")
        spec = spec_of(TINY_PLAN)
        assert queue.submit_spec(spec)
        assert not queue.submit_spec(spec)
        assert queue.submitted == 1
        assert queue.dedupe_hits == 1
        assert queue.pending_signatures() == [spec.signature()]

    def test_pending_round_trips_specs(self, tmp_path):
        queue = JobQueue(tmp_path / "queue")
        for spec in TINY_PLAN:
            queue.submit_spec(spec)
        assert sorted(s.signature() for s in queue.pending()) == sorted(
            s.signature() for s in TINY_PLAN
        )

    def test_pending_skips_torn_and_alien_files(self, tmp_path):
        queue = JobQueue(tmp_path / "queue")
        queue.submit_spec(spec_of(TINY_PLAN))
        (queue.directory / "torn.json").write_text('{"spec": ')
        (queue.directory / "alien.json").write_text('{"other": "schema"}')
        assert len(queue.pending()) == 1
        assert queue.unreadable == 2

    def test_mark_done_tolerates_concurrent_completion(self, tmp_path):
        queue = JobQueue(tmp_path / "queue")
        spec = spec_of(TINY_PLAN)
        queue.submit_spec(spec)
        assert queue.mark_done(spec)
        assert not queue.mark_done(spec)  # another client got there first
        assert queue.completed == 1
        assert queue.pending_signatures() == []

    def test_mark_failed_round_trips_record_with_traceback(self, tmp_path):
        queue = JobQueue(tmp_path / "queue")
        spec = spec_of(TINY_PLAN)
        queue.submit_spec(spec)
        try:
            raise ValueError("injected for the ledger")
        except ValueError as error:
            record = FailureRecord.from_exception(spec, error, attempts=2)
        queue.mark_failed(record)
        assert queue.pending_signatures() == []
        (loaded,) = queue.failed_records()
        assert loaded.signature == spec.signature()
        assert loaded.kind is FailureKind.DETERMINISTIC
        assert loaded.attempts == 2
        assert "injected for the ledger" in loaded.traceback
        assert queue.clear_failed() == 1
        assert queue.failed_records() == []


# --------------------------------------------------------------------------- #
# Per-client journals
# --------------------------------------------------------------------------- #
class TestJournalMerge:
    def test_clients_write_separate_files_and_merge_on_load(self, tmp_path):
        base = tmp_path / "sweep_journal.jsonl"
        spec_a, spec_b = list(TINY_PLAN)
        a = SweepJournal(base, client_id="a")
        b = SweepJournal(base, client_id="b")
        a.record_done(spec_a)
        b.record_done(spec_b)
        assert a.path != b.path
        # A fresh reader (any client id, or none) sees the union.
        merged = SweepJournal(base, client_id="c")
        assert merged.completed(spec_a) and merged.completed(spec_b)
        assert merged.merged_clients == 2
        bare = SweepJournal(base)
        assert bare.completed(spec_a) and bare.completed(spec_b)

    def test_done_beats_quarantined_across_clients(self, tmp_path):
        base = tmp_path / "sweep_journal.jsonl"
        spec = spec_of(TINY_PLAN)
        record = FailureRecord(
            spec=spec,
            signature=spec.signature(),
            kind=FailureKind.TRANSIENT,
            error_type="WorkerCrashError",
            message="chaos",
        )
        SweepJournal(base, client_id="a").record_quarantined(record)
        SweepJournal(base, client_id="b").record_done(spec)
        reader = SweepJournal(base, client_id="c")
        assert reader.status(spec) == "done"

    def test_compaction_rewrites_only_own_file(self, tmp_path):
        base = tmp_path / "sweep_journal.jsonl"
        spec_a, spec_b = list(TINY_PLAN)
        SweepJournal(base, client_id="other").record_done(spec_b)
        own = SweepJournal(base, client_id="me")
        own.record_done(spec_a)
        with own.path.open("a") as handle:
            handle.write('{"torn": ')  # crash tears our own tail
        reloaded = SweepJournal(base, client_id="me")
        assert reloaded.corrupt_lines == 1
        # Compaction repaired our file without touching the sibling.
        for line in own.path.read_text().splitlines():
            json.loads(line)
        assert reloaded.completed(spec_a) and reloaded.completed(spec_b)
        sibling = SweepJournal(base, client_id="other")
        assert sibling.completed(spec_b)

    def test_sibling_torn_line_is_not_compacted_by_reader(self, tmp_path):
        base = tmp_path / "sweep_journal.jsonl"
        spec = spec_of(TINY_PLAN)
        other = SweepJournal(base, client_id="other")
        other.record_done(spec)
        with other.path.open("a") as handle:
            handle.write('{"torn": ')
        before = other.path.read_text()
        reader = SweepJournal(base, client_id="me")
        assert reader.completed(spec)
        assert reader.corrupt_lines == 1
        assert other.path.read_text() == before  # owner's file untouched

    def test_client_id_validation(self, tmp_path):
        with pytest.raises(ValueError):
            SweepJournal(tmp_path / "j.jsonl", client_id="../escape")

    def test_journal_stats_include_merged_clients(self, tmp_path):
        base = tmp_path / "sweep_journal.jsonl"
        SweepJournal(base, client_id="a").record_done(spec_of(TINY_PLAN))
        stats = SweepJournal(base, client_id="b").stats()
        assert stats["journal_merged_clients"] == 1.0


# --------------------------------------------------------------------------- #
# Store hardening (concurrent delete/replace satellite)
# --------------------------------------------------------------------------- #
class TestStoreConcurrency:
    def test_load_counts_concurrent_delete_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = spec_of(TINY_PLAN)
        # Force the FileNotFoundError path with pruning already done.
        store._pruned = True
        assert store.load(spec) is None
        assert store.misses == 1
        assert store.invalidations == 0

    def test_duplicate_publish_counts_lost_race(self, tmp_path):
        from repro.experiments.sweeps import execute_spec

        store = ResultStore(tmp_path)
        spec = spec_of(TINY_PLAN)
        result = execute_spec(spec)
        store.save(spec, result)
        assert store.races_lost == 0
        store.save(spec, result)  # single-flight bypassed
        assert store.races_lost == 1
        assert comparable(store.load(spec)) == comparable(result)
        assert store.stats()["store_races_lost"] == 1.0

    def test_prune_leaves_fresh_inflight_temp_files(self, tmp_path):
        store = ResultStore(tmp_path)
        fresh = tmp_path / "abc.tmp.999"
        fresh.write_text("half a payload")
        old = tmp_path / "def.tmp.998"
        old.write_text("orphaned")
        ancient = time.time() - 3600
        os.utime(old, (ancient, ancient))
        store.prune_stale()
        assert fresh.exists()  # another process's in-flight save
        assert not old.exists()  # crash orphan, collected


# --------------------------------------------------------------------------- #
# Service: serial semantics
# --------------------------------------------------------------------------- #
class TestSweepServiceSerial:
    def test_submit_drain_matches_direct_engine(self, tmp_path):
        service = SweepService(root=tmp_path / "svc", client_id="t1")
        receipt = service.submit(TINY_PLAN)
        assert receipt == {"submitted": 2, "deduped": 0, "already_done": 0}
        assert service.drain(timeout=120) == 2
        reference = SweepEngine().run(TINY_PLAN)
        for spec in TINY_PLAN:
            assert comparable(service.store.load(spec)) == comparable(
                reference[spec]
            )
        assert service.queue.pending_signatures() == []
        summary = service.engine.summary()
        assert summary["lease_acquired"] == 2.0
        assert summary["lease_released"] == 2.0
        assert summary["queue_completed"] == 2.0

    def test_resubmit_after_drain_reports_already_done(self, tmp_path):
        service = SweepService(root=tmp_path / "svc", client_id="t1")
        service.submit(TINY_PLAN)
        service.drain(timeout=120)
        receipt = service.submit(TINY_PLAN)
        assert receipt == {"submitted": 0, "deduped": 0, "already_done": 2}

    def test_job_done_elsewhere_is_served_from_store(self, tmp_path):
        root = tmp_path / "svc"
        producer = SweepService(root=root, client_id="producer")
        producer.submit(TINY_PLAN)
        producer.drain(timeout=120)
        # A second client re-queues the same specs behind the store's back.
        consumer = SweepService(root=root, client_id="consumer")
        for spec in TINY_PLAN:
            consumer.queue.submit_spec(spec)
        assert consumer.drain(timeout=60) == 2
        assert consumer.served_from_store == 2
        assert consumer.engine.runs_executed == 0

    def test_single_flight_recheck_after_lease_win(self, tmp_path):
        service = SweepService(root=tmp_path / "svc", client_id="t1")
        spec = spec_of(TINY_PLAN)
        reference = SweepEngine().run(SweepPlan([spec]))
        service.store.save(spec, reference[spec])
        service.queue.submit_spec(spec)
        # First store check misses (simulating "published between my miss
        # and my lease win"), the under-lease recheck hits.
        real_load = service.store.load
        calls = {"n": 0}

        def racy_load(s):
            calls["n"] += 1
            return None if calls["n"] == 1 else real_load(s)

        service.store.load = racy_load
        assert service.process_pending() == 1
        assert service.single_flight_rechecks == 1
        assert service.engine.runs_executed == 0

    def test_contended_job_is_skipped_not_failed(self, tmp_path):
        root = tmp_path / "svc"
        a = SweepService(root=root, client_id="a")
        b = SweepService(root=root, client_id="b")
        spec = spec_of(TINY_PLAN)
        b.queue.submit_spec(spec)
        held = a.leases.acquire(spec.signature())
        assert held is not None
        assert b.process_pending() == 0  # a live client owns it: wait
        assert b.queue.pending_signatures() == [spec.signature()]
        a.leases.release(held)
        assert b.process_pending() == 1

    def test_quarantined_spec_lands_in_failed_ledger(self, tmp_path):
        spec = spec_of(TINY_PLAN)
        injector = FaultInjector(deterministic_specs=(spec.signature(),))
        service = SweepService(
            root=tmp_path / "svc", client_id="t1", fault_injector=injector
        )
        service.submit(TINY_PLAN)
        assert service.drain(timeout=120) == 2
        records = service.queue.failed_records()
        assert [r.signature for r in records] == [spec.signature()]
        assert records[0].kind is FailureKind.DETERMINISTIC
        assert "InjectedDeterministicError" in records[0].error_type
        # The healthy spec still completed.
        other = spec_of(TINY_PLAN, 1)
        assert service.store.load(other) is not None
        report = service.format_status()
        assert "failure report" in report
        assert spec.signature()[:12] in report

    def test_status_counters_flow_through_engine_summary(self, tmp_path):
        service = SweepService(root=tmp_path / "svc", client_id="t1")
        service.submit(TINY_PLAN)
        service.drain(timeout=120)
        status = service.status()
        for key in (
            "lease_acquired",
            "lease_reclaimed",
            "queue_dedupe_hits",
            "store_races_lost",
            "queue_pending",
            "leases_active",
            "store_entries",
        ):
            assert key in status, key
        assert status["queue_pending"] == 0.0
        assert status["leases_active"] == 0.0
        assert status["store_entries"] == 2.0


# --------------------------------------------------------------------------- #
# Multi-process stress (satellite)
# --------------------------------------------------------------------------- #
class TestMultiProcessStress:
    def test_n_clients_execute_each_signature_exactly_once(self, tmp_path):
        root = tmp_path / "svc"
        spec_dicts = [spec.to_dict() for spec in STRESS_PLAN]
        payloads = [
            {
                "root": str(root),
                "client_id": f"stress-{i}",
                "spec_dicts": spec_dicts,
                "rounds": 2,
                "stale_after": 30.0,
                "drain_timeout": 300.0,
            }
            for i in range(3)
        ]
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=3, mp_context=context) as pool:
            reports = list(pool.map(run_client, payloads))

        unique = len(STRESS_PLAN)
        total_requests = sum(
            sum(report["receipt"].values()) for report in reports
        )
        executed = sum(report["summary"]["runs_executed"] for report in reports)
        assert total_requests == 3 * 2 * unique
        # Exactly one execution per unique signature across all clients.
        assert executed == unique

        # Bit-identical to a serial client: every client observed the same
        # bytes, and they match an independent serial run.
        reference = SweepEngine().run(STRESS_PLAN)
        expected = {
            spec.signature(): {
                "loss_history": list(reference[spec].loss_history),
                "train_accuracy_history": list(
                    reference[spec].train_accuracy_history
                ),
                "test_accuracy_history": list(
                    reference[spec].test_accuracy_history
                ),
                "final_test_accuracy": reference[spec].final_test_accuracy,
            }
            for spec in STRESS_PLAN
        }
        for report in reports:
            assert report["outcomes"] == expected

        # No torn JSON anywhere in the shared root.
        for path in root.rglob("*.json"):
            json.loads(path.read_text())
        for path in root.glob("*.jsonl"):
            for line in path.read_text().splitlines():
                json.loads(line)

        # The queue is empty and no lease is left behind.
        survivor = SweepService(root=root, client_id="inspector")
        assert survivor.queue.pending_signatures() == []
        assert survivor.leases.active() == []


# --------------------------------------------------------------------------- #
# Chaos: crash of a lease holder
# --------------------------------------------------------------------------- #
class TestLeaseHolderChaos:
    def test_killed_lease_holder_is_reclaimed_and_sweep_completes(self, tmp_path):
        root = tmp_path / "svc"
        victim_sig = spec_of(TINY_PLAN).signature()
        payload = {
            "root": str(root),
            "client_id": "victim",
            "spec_dicts": [spec.to_dict() for spec in TINY_PLAN],
            "kill_lease_holder": victim_sig,
            "stale_after": 30.0,
        }
        context = multiprocessing.get_context("spawn")
        victim = context.Process(target=run_client, args=(payload,))
        victim.start()
        victim.join(timeout=300)
        assert victim.exitcode == 137  # died holding the lease
        # The orphaned lease survives with a dead owner pid.
        survivorless = LeaseManager(root / "leases", "probe", stale_after=3600.0)
        assert f"{victim_sig}" in survivorless.active()

        survivor = SweepService(root=root, client_id="survivor", stale_after=5.0)
        assert survivor.drain(timeout=300) == len(TINY_PLAN)
        assert survivor.leases.reclaimed >= 1
        assert survivor.engine.summary()["lease_reclaimed"] >= 1.0
        # Bit-identical despite the crash.
        reference = SweepEngine().run(TINY_PLAN)
        for spec in TINY_PLAN:
            assert comparable(survivor.store.load(spec)) == comparable(
                reference[spec]
            )

    def test_frozen_heartbeat_lease_goes_stale(self, tmp_path):
        injector = FaultInjector(freeze_heartbeat_for=("sig1",))
        frozen = LeaseManager(
            tmp_path, "frozen", stale_after=0.2, injector=injector
        )
        lease = frozen.acquire("sig1")
        # The pump would call heartbeat; frozen means mtime never refreshes.
        assert frozen.heartbeat(lease)
        assert frozen.heartbeats == 0
        time.sleep(0.3)
        other = LeaseManager(tmp_path, "other", stale_after=0.2)
        assert other.acquire("sig1") is not None
        assert other.reclaimed == 1


# --------------------------------------------------------------------------- #
# CLI subcommands
# --------------------------------------------------------------------------- #
class TestServiceCli:
    def test_submit_drain_status_round_trip(self, tmp_path, capsys):
        root = str(tmp_path / "svc")
        assert (
            cli_main(
                ["submit", "fig4", "--epochs", "1", "--root", root,
                 "--client-id", "cli-a"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "submitted 7 job(s)" in out
        # Idempotent re-submission.
        assert (
            cli_main(["submit", "fig4", "--epochs", "1", "--root", root]) == 0
        )
        assert "7 deduped" in capsys.readouterr().out
        assert cli_main(["drain", "--root", root, "--client-id", "cli-b"]) == 0
        out = capsys.readouterr().out
        assert "drained 7 job(s)" in out
        assert "lease_acquired" in out
        assert cli_main(["status", "--root", root]) == 0
        out = capsys.readouterr().out
        assert "sweep service status" in out
        assert "failure report: no quarantined specs" in out

    def test_drain_exits_nonzero_and_reports_on_failures(self, tmp_path, capsys):
        root = tmp_path / "svc"
        spec = spec_of(TINY_PLAN)
        injector = FaultInjector(deterministic_specs=(spec.signature(),))
        service = SweepService(
            root=root, client_id="chaos", fault_injector=injector
        )
        service.submit(SweepPlan([spec]))
        service.drain(timeout=120)
        capsys.readouterr()
        assert cli_main(["drain", "--root", str(root)]) == 1
        out = capsys.readouterr().out
        assert "failure report" in out
        assert spec.signature()[:12] in out
        # status shows the same cross-client report, exit 0 (read-only).
        assert cli_main(["status", "--root", str(root)]) == 0
        assert spec.signature()[:12] in capsys.readouterr().out

    def test_submit_rejects_unknown_figures(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(["submit", "nosuchfig", "--root", str(tmp_path)])

    def test_main_dispatches_service_commands(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        root = str(tmp_path / "svc")
        assert main(["status", "--root", root]) == 0
        assert "sweep service status" in capsys.readouterr().out
