"""Dense-vs-sparse GAT equivalence, including under injected SA0/SA1 faults.

The sparse edge-wise attention path must reproduce the seed's dense
``masked_fill`` attention to within 1e-8 — outputs *and* gradients — on both
clean and fault-corrupted binary adjacencies.  The fault semantics ride on
the corrupted adjacency's edge list: a stuck-at-1 cell inserts an edge
(attention to a non-neighbour), a stuck-at-0 cell removes one.
"""

import numpy as np
import pytest

from repro.graph.sparse import CSRMatrix
from repro.nn.base import BatchInputs
from repro.nn.gat import GAT, GATLayer, attention_edges
from repro.tensor.tensor import Tensor

TOL = 1e-8


def build_pair(graph, **kwargs):
    """Two GATs with identical weights: sparse path and dense path."""
    sparse = GAT(graph.num_features, 8, graph.num_classes, rng=0, **kwargs).eval()
    dense = GAT(
        graph.num_features, 8, graph.num_classes, rng=0, dense_attention=True, **kwargs
    ).eval()
    return sparse, dense


def corrupt_adjacency(adjacency: CSRMatrix, num_sa1=5, num_sa0=5, seed=0) -> CSRMatrix:
    """Binary adjacency as a faulty crossbar would read it back.

    ``num_sa1`` zero cells stick at one (spurious edges) and ``num_sa0``
    stored edges stick at zero (dropped edges).
    """
    rng = np.random.default_rng(seed)
    dense = (adjacency.to_dense() > 0).astype(float)
    zeros = np.argwhere(dense == 0)
    ones = np.argwhere(dense == 1)
    for r, c in zeros[rng.choice(len(zeros), size=num_sa1, replace=False)]:
        dense[r, c] = 1.0
    for r, c in ones[rng.choice(len(ones), size=num_sa0, replace=False)]:
        dense[r, c] = 0.0
    return CSRMatrix.from_dense(dense)


class TestSparseDenseEquivalence:
    def test_fault_free_outputs_match(self, tiny_graph):
        sparse, dense = build_pair(tiny_graph, dropout=0.0)
        batch = BatchInputs(features=tiny_graph.features, adjacency=tiny_graph.adjacency)
        np.testing.assert_allclose(
            sparse(batch).data, dense(batch).data, atol=TOL, rtol=0
        )

    def test_fault_injected_outputs_match(self, tiny_graph):
        sparse, dense = build_pair(tiny_graph, dropout=0.0)
        corrupted = corrupt_adjacency(tiny_graph.adjacency, seed=1)
        batch = BatchInputs(features=tiny_graph.features, adjacency=corrupted)
        np.testing.assert_allclose(
            sparse(batch).data, dense(batch).data, atol=TOL, rtol=0
        )

    def test_faults_change_both_paths_alike(self, tiny_graph):
        """SA0/SA1 corruption must flow through the sparse edge list."""
        sparse, dense = build_pair(tiny_graph, dropout=0.0)
        clean = BatchInputs(features=tiny_graph.features, adjacency=tiny_graph.adjacency)
        corrupted = BatchInputs(
            features=tiny_graph.features,
            adjacency=corrupt_adjacency(tiny_graph.adjacency, seed=2),
        )
        sparse_delta = np.abs(sparse(clean).data - sparse(corrupted).data).max()
        dense_delta = np.abs(dense(clean).data - dense(corrupted).data).max()
        assert sparse_delta > 1e-6  # the corruption is visible...
        np.testing.assert_allclose(sparse_delta, dense_delta, atol=TOL)  # ...equally

    def test_gradients_match(self, tiny_graph):
        sparse, dense = build_pair(tiny_graph, dropout=0.0)
        sparse.train()
        dense.train()
        corrupted = corrupt_adjacency(tiny_graph.adjacency, seed=3)
        batch = BatchInputs(features=tiny_graph.features, adjacency=corrupted)
        (sparse(batch) ** 2).sum().backward()
        (dense(batch) ** 2).sum().backward()
        sparse_params = dict(sparse.named_parameters())
        dense_params = dict(dense.named_parameters())
        assert set(sparse_params) == set(dense_params)
        for name, param in sparse_params.items():
            np.testing.assert_allclose(
                param.grad, dense_params[name].grad, atol=TOL, rtol=0,
                err_msg=f"gradient mismatch for {name}",
            )

    def test_short_training_runs_track(self, tiny_graph):
        from repro.tensor.optim import Adam

        results = []
        for dense_attention in (False, True):
            model = GAT(
                tiny_graph.num_features,
                8,
                tiny_graph.num_classes,
                rng=0,
                dropout=0.0,
                dense_attention=dense_attention,
            )
            optimizer = Adam(model.parameters(), lr=0.01)
            batch = BatchInputs(
                features=tiny_graph.features, adjacency=tiny_graph.adjacency
            )
            losses = []
            for _ in range(5):
                loss = (model(batch) ** 2).mean()
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                losses.append(loss.item())
            results.append(losses)
        np.testing.assert_allclose(results[0], results[1], atol=1e-7, rtol=0)


class TestDensePathReachability:
    def test_dense_flag_routes_through_masked_fill(self, tiny_graph):
        """dense_attention=True on a CSR input equals the explicit dense mask."""
        layer = GATLayer(tiny_graph.num_features, 8, dense_attention=True, rng=0)
        x = Tensor(tiny_graph.features)
        via_csr = layer(x, tiny_graph.adjacency)
        mask = tiny_graph.adjacency.to_dense() > 0
        via_mask = layer(x, mask)
        np.testing.assert_array_equal(via_csr.data, via_mask.data)

    def test_layer_accepts_dense_mask_directly(self, tiny_graph):
        """Seed call signature (dense boolean mask) keeps working."""
        layer = GATLayer(tiny_graph.num_features, 8, rng=0)
        mask = tiny_graph.adjacency.to_dense() > 0
        out = layer(Tensor(tiny_graph.features), mask)
        assert out.shape == (tiny_graph.num_nodes, 8)
        assert np.all(np.isfinite(out.data))


class TestAttentionEdges:
    def test_support_matches_dense_mask(self, tiny_graph):
        corrupted = corrupt_adjacency(tiny_graph.adjacency, seed=4)
        indptr, cols = attention_edges(corrupted)
        n = corrupted.shape[0]
        support = np.zeros((n, n), dtype=bool)
        rows = np.repeat(np.arange(n), np.diff(indptr))
        support[rows, cols] = True
        expected = (corrupted.to_dense() > 0) | np.eye(n, dtype=bool)
        np.testing.assert_array_equal(support, expected)

    def test_stored_zeros_are_not_edges(self):
        """Explicitly stored zeros (SA0-cleared cells) must not attend."""
        adj = CSRMatrix(
            np.array([0, 2, 3, 3]),
            np.array([1, 2, 0]),
            np.array([1.0, 0.0, 1.0]),
            (3, 3),
        )
        indptr, cols = attention_edges(adj)
        support = set(zip(np.repeat(np.arange(3), np.diff(indptr)).tolist(), cols.tolist()))
        assert support == {(0, 0), (0, 1), (1, 0), (1, 1), (2, 2)}

    def test_duplicate_entries_resolve_last_wins(self):
        """Duplicate stored coordinates follow to_dense()'s last-wins rule."""
        adj = CSRMatrix(
            np.array([0, 2, 3, 3]),
            np.array([1, 1, 0]),
            np.array([1.0, -1.0, 1.0]),
            (3, 3),
        )
        indptr, cols = attention_edges(adj)
        support = set(
            zip(np.repeat(np.arange(3), np.diff(indptr)).tolist(), cols.tolist())
        )
        # (0, 1) stored twice, last value -1 -> masked out, exactly like the
        # dense path's to_dense() > 0.
        expected = (adj.to_dense() > 0) | np.eye(3, dtype=bool)
        assert support == set(zip(*np.nonzero(expected)))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            attention_edges(CSRMatrix.zeros((2, 3)))
