"""Tests for the weight/adjacency crossbar mappers and HardwareEnvironment."""

import numpy as np
import pytest

from repro.core.mapping import sequential_mapping
from repro.core.strategies import FaReStrategy
from repro.graph.sparse import CSRMatrix
from repro.hardware.faults import FaultMap, FaultModel
from repro.hardware.quantization import FixedPointFormat
from repro.nn.factory import build_model
from repro.pipeline.mapping_engine import (
    AdjacencyCrossbarMapper,
    HardwareEnvironment,
    WeightCrossbarMapper,
)


@pytest.fixture
def environment(tiny_config):
    return HardwareEnvironment(
        config=tiny_config,
        fault_model=FaultModel(0.05, (9, 1), seed=0),
        weight_fraction=0.5,
    )


@pytest.fixture
def clean_environment(tiny_config):
    return HardwareEnvironment(config=tiny_config, fault_model=None, weight_fraction=0.5)


class TestHardwareEnvironment:
    def test_split_is_disjoint(self, environment):
        weight_ids = {x.crossbar_id for x in environment.weight_crossbars}
        adjacency_ids = {x.crossbar_id for x in environment.adjacency_crossbars}
        assert not weight_ids & adjacency_ids
        assert len(weight_ids) + len(adjacency_ids) == len(environment.pool)

    def test_fault_density_reported(self, environment, clean_environment):
        assert environment.overall_fault_density() > 0
        assert clean_environment.overall_fault_density() == 0

    def test_post_deployment_increases_density(self, environment):
        before = environment.overall_fault_density()
        environment.inject_post_deployment(0.05)
        assert environment.overall_fault_density() > before

    def test_weight_fraction_validation(self, tiny_config):
        with pytest.raises(ValueError):
            HardwareEnvironment(config=tiny_config, weight_fraction=1.5)

    def test_default_format_from_config(self, tiny_config):
        env = HardwareEnvironment(config=tiny_config)
        assert env.fmt.total_bits == tiny_config.weight_bits
        assert env.fmt.bits_per_cell == tiny_config.bits_per_cell


class TestWeightCrossbarMapper:
    @staticmethod
    def _mapper(env, model):
        return WeightCrossbarMapper(model, env.weight_crossbars, env.fmt, env.config)

    def test_layouts_cover_all_2d_params(self, clean_environment):
        model = build_model("gcn", 12, 8, 4, rng=0)
        mapper = self._mapper(clean_environment, model)
        expected = {p.name for _, p in model.named_parameters() if p.data.ndim == 2}
        assert set(mapper.layouts) == expected
        assert mapper.num_weight_crossbars > 0

    def test_fault_free_weights_match_quantization_only(self, clean_environment):
        model = build_model("gcn", 12, 8, 4, rng=0)
        mapper = self._mapper(clean_environment, model)
        name = next(iter(mapper.layouts))
        params = {p.name: p for _, p in model.named_parameters()}
        values = params[name].data
        effective = mapper.effective_weights(name, values)
        assert np.max(np.abs(effective - values)) <= clean_environment.fmt.scale

    def test_faults_change_weights(self, environment):
        model = build_model("gcn", 12, 8, 4, rng=0)
        mapper = self._mapper(environment, model)
        name = next(iter(mapper.layouts))
        params = {p.name: p for _, p in model.named_parameters()}
        values = params[name].data
        effective = mapper.effective_weights(name, values)
        assert np.max(np.abs(effective - values)) > 10 * environment.fmt.scale

    def test_row_permutation_is_transparent_without_faults(self, clean_environment):
        model = build_model("gcn", 12, 8, 4, rng=0)
        mapper = self._mapper(clean_environment, model)
        name = next(iter(mapper.layouts))
        params = {p.name: p for _, p in model.named_parameters()}
        values = params[name].data
        perm = np.random.default_rng(0).permutation(values.shape[0])
        np.testing.assert_allclose(
            mapper.effective_weights(name, values, row_permutation=perm),
            mapper.effective_weights(name, values),
        )

    def test_invalid_permutation_rejected(self, clean_environment):
        model = build_model("gcn", 12, 8, 4, rng=0)
        mapper = self._mapper(clean_environment, model)
        name = next(iter(mapper.layouts))
        params = {p.name: p for _, p in model.named_parameters()}
        with pytest.raises(ValueError):
            mapper.effective_weights(
                name, params[name].data, row_permutation=np.zeros(params[name].data.shape[0], int)
            )

    def test_unknown_parameter_rejected(self, clean_environment):
        model = build_model("gcn", 12, 8, 4, rng=0)
        mapper = self._mapper(clean_environment, model)
        with pytest.raises(KeyError):
            mapper.layout("nonexistent")

    def test_write_events_counted(self, clean_environment):
        model = build_model("gcn", 12, 8, 4, rng=0)
        mapper = self._mapper(clean_environment, model)
        name = next(iter(mapper.layouts))
        params = {p.name: p for _, p in model.named_parameters()}
        before = mapper.weight_write_events
        mapper.effective_weights(name, params[name].data)
        assert mapper.weight_write_events > before
        mapper.effective_weights(name, params[name].data, count_write=False)
        assert mapper.weight_write_events == before + mapper.layout(name).num_crossbars

    def test_refresh_fault_masks_tracks_new_faults(self, clean_environment):
        model = build_model("gcn", 12, 8, 4, rng=0)
        mapper = self._mapper(clean_environment, model)
        name = next(iter(mapper.layouts))
        params = {p.name: p for _, p in model.named_parameters()}
        values = params[name].data
        baseline = mapper.effective_weights(name, values)
        # Make every weight crossbar fully SA1-faulty and refresh.
        for crossbar in clean_environment.weight_crossbars:
            crossbar.set_fault_map(
                FaultMap(np.zeros((crossbar.rows, crossbar.cols), bool),
                         np.ones((crossbar.rows, crossbar.cols), bool))
            )
        mapper.refresh_fault_masks()
        saturated = mapper.effective_weights(name, values)
        assert not np.allclose(saturated, baseline)
        assert np.all(saturated >= values.max() - 1e-9)

    def test_row_mismatch_cost_shape(self, environment):
        model = build_model("gcn", 12, 8, 4, rng=0)
        mapper = self._mapper(environment, model)
        name = next(iter(mapper.layouts))
        params = {p.name: p for _, p in model.named_parameters()}
        cost = mapper.row_mismatch_cost(name, params[name].data)
        rows = params[name].data.shape[0]
        assert cost.shape == (rows, rows)
        assert np.all(cost >= 0)

    def test_insufficient_crossbars_rejected(self, tiny_config):
        env = HardwareEnvironment(config=tiny_config, num_crossbars=3, weight_fraction=0.4)
        model = build_model("gcn", 64, 32, 8, rng=0)
        with pytest.raises(ValueError):
            WeightCrossbarMapper(model, env.weight_crossbars, env.fmt, env.config)


class TestAdjacencyCrossbarMapper:
    @staticmethod
    def _random_adjacency(n, seed=0, density=0.1):
        rng = np.random.default_rng(seed)
        dense = (rng.random((n, n)) < density).astype(float)
        dense = np.maximum(dense, dense.T)
        np.fill_diagonal(dense, 0.0)
        return CSRMatrix.from_dense(dense)

    def test_decompose_pads_blocks(self, clean_environment):
        mapper = AdjacencyCrossbarMapper(
            clean_environment.adjacency_crossbars, clean_environment.config
        )
        adjacency = self._random_adjacency(20)
        blocks, grid = mapper.decompose(adjacency)
        assert grid == (2, 2)
        assert len(blocks) == 4
        assert all(b.shape == (16, 16) for b in blocks)

    def test_decompose_reassembles_exactly(self, clean_environment):
        mapper = AdjacencyCrossbarMapper(
            clean_environment.adjacency_crossbars, clean_environment.config
        )
        adjacency = self._random_adjacency(20, seed=1)
        blocks, grid = mapper.decompose(adjacency)
        rebuilt = np.zeros((32, 32))
        for index, block in enumerate(blocks):
            bi, bj = divmod(index, grid[1])
            rebuilt[bi * 16 : (bi + 1) * 16, bj * 16 : (bj + 1) * 16] = block
        np.testing.assert_array_equal(rebuilt[:20, :20], adjacency.to_dense())

    def test_fault_free_mapping_preserves_adjacency(self, clean_environment):
        mapper = AdjacencyCrossbarMapper(
            clean_environment.adjacency_crossbars, clean_environment.config
        )
        adjacency = self._random_adjacency(30, seed=2)
        blocks, grid = mapper.decompose(adjacency)
        plan = sequential_mapping(len(blocks), 16, len(mapper.crossbars))
        for m in plan.blocks:
            m.crossbar_index = mapper.crossbar_ids[m.crossbar_index % len(mapper.crossbars)]
        faulty = mapper.apply_mapping(adjacency, plan, blocks=blocks, grid=grid)
        np.testing.assert_array_equal(faulty.to_dense(), adjacency.to_dense())

    def test_faulty_mapping_changes_adjacency(self, environment):
        mapper = AdjacencyCrossbarMapper(
            environment.adjacency_crossbars, environment.config
        )
        adjacency = self._random_adjacency(30, seed=3)
        blocks, grid = mapper.decompose(adjacency)
        plan = sequential_mapping(len(blocks), 16, len(mapper.crossbars))
        for m in plan.blocks:
            m.crossbar_index = mapper.crossbar_ids[m.crossbar_index % len(mapper.crossbars)]
        faulty = mapper.apply_mapping(adjacency, plan, blocks=blocks, grid=grid)
        assert not np.array_equal(faulty.to_dense(), adjacency.to_dense())
        # No self-loops may be introduced by faults.
        assert np.all(np.diag(faulty.to_dense()) == 0)

    def test_fare_mapping_reduces_corruption(self, environment):
        mapper = AdjacencyCrossbarMapper(
            environment.adjacency_crossbars, environment.config
        )
        adjacency = self._random_adjacency(30, seed=4, density=0.05)
        blocks, grid = mapper.decompose(adjacency)
        naive = sequential_mapping(len(blocks), 16, len(mapper.crossbars))
        for m in naive.blocks:
            m.crossbar_index = mapper.crossbar_ids[m.crossbar_index % len(mapper.crossbars)]
        fare_plan = FaReStrategy(row_method="hungarian").plan_adjacency(
            [blocks], mapper.fault_maps(), mapper.crossbar_ids, 16
        )[0]

        def corruption(plan):
            faulty = mapper.apply_mapping(adjacency, plan, blocks=blocks, grid=grid)
            return np.abs(faulty.to_dense() - adjacency.to_dense()).sum()

        assert corruption(fare_plan) <= corruption(naive)

    def test_write_events_counted(self, clean_environment):
        mapper = AdjacencyCrossbarMapper(
            clean_environment.adjacency_crossbars, clean_environment.config
        )
        adjacency = self._random_adjacency(16, seed=5)
        blocks, grid = mapper.decompose(adjacency)
        plan = sequential_mapping(len(blocks), 16, len(mapper.crossbars))
        for m in plan.blocks:
            m.crossbar_index = mapper.crossbar_ids[m.crossbar_index % len(mapper.crossbars)]
        mapper.apply_mapping(adjacency, plan, blocks=blocks, grid=grid)
        assert mapper.block_write_events == len(blocks)

    def test_mapping_block_count_mismatch(self, clean_environment):
        mapper = AdjacencyCrossbarMapper(
            clean_environment.adjacency_crossbars, clean_environment.config
        )
        adjacency = self._random_adjacency(30, seed=6)
        plan = sequential_mapping(1, 16, len(mapper.crossbars))
        with pytest.raises(ValueError):
            mapper.apply_mapping(adjacency, plan)

    def test_requires_crossbars(self, tiny_config):
        with pytest.raises(ValueError):
            AdjacencyCrossbarMapper([], tiny_config)
