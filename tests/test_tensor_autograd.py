"""Gradient correctness tests for the autograd engine.

Every differentiable operation is checked against central finite differences
on small random inputs.
"""

import numpy as np
import pytest

from repro.tensor import ops
from repro.tensor.tensor import Tensor, no_grad


def numerical_gradient(fn, values, eps=1e-6):
    """Central finite-difference gradient of scalar-valued ``fn``."""
    values = np.asarray(values, dtype=np.float64)
    grad = np.zeros_like(values)
    flat = values.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(values)
        flat[i] = original - eps
        minus = fn(values)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build_loss, shape, seed=0, atol=1e-5):
    """Compare autograd gradient with a numerical estimate."""
    rng = np.random.default_rng(seed)
    values = rng.normal(size=shape)

    def scalar_fn(vals):
        with no_grad():
            return build_loss(Tensor(vals)).item()

    tensor = Tensor(values.copy(), requires_grad=True)
    loss = build_loss(tensor)
    loss.backward()
    numeric = numerical_gradient(scalar_fn, values.copy())
    np.testing.assert_allclose(tensor.grad, numeric, atol=atol, rtol=1e-4)


class TestElementwiseGradients:
    def test_add_mul(self):
        check_gradient(lambda x: ((x * 3.0) + (x * x)).sum(), (4, 3))

    def test_sub_div(self):
        check_gradient(lambda x: ((x - 0.5) / 2.0).sum(), (3, 3))

    def test_division_by_tensor(self):
        check_gradient(lambda x: (Tensor(np.ones((3, 3))) / (x + 5.0)).sum(), (3, 3))

    def test_power(self):
        check_gradient(lambda x: (x**3).sum(), (4,))

    def test_neg(self):
        check_gradient(lambda x: (-x).sum(), (2, 5))

    def test_broadcast_add(self):
        bias = Tensor(np.ones((1, 3)) * 0.3)
        check_gradient(lambda x: (x + bias).sum(), (4, 3))


class TestMatmulGradients:
    def test_matmul_left(self):
        other = Tensor(np.random.default_rng(1).normal(size=(3, 2)))
        check_gradient(lambda x: (x @ other).sum(), (4, 3))

    def test_matmul_right(self):
        other = Tensor(np.random.default_rng(2).normal(size=(5, 4)))
        check_gradient(lambda x: (other @ x).sum(), (4, 3))

    def test_matmul_both_sides(self):
        rng = np.random.default_rng(3)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad is not None and b.grad is not None
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4, 2)


class TestActivationsAndReductions:
    def test_relu(self):
        check_gradient(lambda x: ops.relu(x).sum(), (5, 4))

    def test_leaky_relu(self):
        check_gradient(lambda x: ops.leaky_relu(x, 0.1).sum(), (5, 4))

    def test_elu(self):
        check_gradient(lambda x: ops.elu(x).sum(), (4, 4))

    def test_sigmoid(self):
        check_gradient(lambda x: ops.sigmoid(x).sum(), (3, 3))

    def test_tanh(self):
        check_gradient(lambda x: ops.tanh(x).sum(), (3, 3))

    def test_exp_log(self):
        check_gradient(lambda x: ops.log(ops.exp(x) + 1.0).sum(), (3, 3))

    def test_softmax(self):
        weights = Tensor(np.random.default_rng(4).normal(size=(4, 3)))
        check_gradient(lambda x: (ops.softmax(x, axis=1) * weights).sum(), (4, 3))

    def test_log_softmax(self):
        weights = Tensor(np.random.default_rng(5).normal(size=(4, 3)))
        check_gradient(lambda x: (ops.log_softmax(x, axis=1) * weights).sum(), (4, 3))

    def test_mean_axis(self):
        check_gradient(lambda x: x.mean(axis=0).sum(), (6, 3))

    def test_sum_keepdims(self):
        check_gradient(lambda x: (x.sum(axis=1, keepdims=True) * x).sum(), (4, 3))

    def test_transpose_reshape(self):
        check_gradient(lambda x: (x.T.reshape(12) * 2.0).sum(), (4, 3))

    def test_getitem(self):
        check_gradient(lambda x: x[1:3].sum(), (5, 3))

    def test_clip(self):
        check_gradient(lambda x: ops.clip(x, -0.5, 0.5).sum(), (4, 4))


class TestStructuredOps:
    def test_spmm_dense_adjacency(self):
        adjacency = (np.random.default_rng(6).random((5, 5)) > 0.5).astype(float)
        check_gradient(lambda x: ops.spmm(adjacency, x).sum(), (5, 3))

    def test_spmm_csr(self):
        from repro.graph.sparse import CSRMatrix

        dense = (np.random.default_rng(7).random((6, 6)) > 0.6).astype(float)
        csr = CSRMatrix.from_dense(dense)
        check_gradient(lambda x: ops.spmm(csr, x).sum(), (6, 2))

    def test_masked_fill(self):
        mask = np.random.default_rng(8).random((4, 4)) > 0.5
        check_gradient(lambda x: ops.masked_fill(x, mask, -5.0).sum(), (4, 4))

    def test_concat(self):
        other = Tensor(np.ones((4, 2)))
        check_gradient(lambda x: ops.concat([x, other], axis=1).sum(), (4, 3))

    def test_scatter_add_rows(self):
        index = np.array([0, 1, 0, 2, 1])
        check_gradient(lambda x: ops.scatter_add_rows(x, index, 3).sum(), (5, 3))


class TestBackwardMechanics:
    def test_backward_requires_scalar(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            t.backward()

    def test_gradient_accumulates(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t * 2.0).sum().backward()
        (t * 3.0).sum().backward()
        np.testing.assert_allclose(t.grad, np.full(3, 5.0))

    def test_zero_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t * 2.0).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_no_grad_blocks_graph(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = (t * 2.0).sum()
        assert out._backward_fn is None
        assert out._parents == ()

    def test_detach(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        np.testing.assert_array_equal(d.data, t.data)

    def test_shared_subexpression(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        y = t * t
        z = (y + y).sum()
        z.backward()
        np.testing.assert_allclose(t.grad, [8.0])
