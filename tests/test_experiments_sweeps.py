"""Tests for the declarative sweep engine (``repro/experiments/sweeps.py``).

The contract under test:

* artifact sharing and process-parallel execution never change a run's
  outcome (histories and accuracies bit-identical with the seed path),
* the on-disk store round-trips results exactly and invalidates on
  signature changes,
* ``run_single`` remains a faithful shim (figure tables byte-identical with
  a literal reconstruction of the pre-refactor serial loop).
"""

import json

import numpy as np
import pytest

from repro.experiments import runner, sweeps
from repro.experiments.fig3 import format_fig3, run_fig3
from repro.experiments.fig4 import format_fig4, run_fig4
from repro.experiments.fig5 import format_fig5, run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.sweeps import (
    ArtifactCache,
    ResultStore,
    RunSpec,
    SweepEngine,
    SweepPlan,
    build_hardware,
    execute_spec,
)
from repro.experiments.tables import aggregate_seed_rows, format_seed_table, mean_std


def comparable(result):
    """The outcome fields that must be bit-identical across execution modes.

    ``kernel_*`` counters are excluded: they snapshot process-wide
    identity-keyed memos whose eviction state depends on unrelated activity
    in the host process, not on this run's configuration.
    """
    return (
        result.strategy,
        result.dataset,
        result.model,
        result.epochs_run,
        result.loss_history,
        result.train_accuracy_history,
        result.test_accuracy_history,
        result.final_train_accuracy,
        result.final_test_accuracy,
        result.fault_density,
        {k: v for k, v in result.counters.items() if not k.startswith("kernel_")},
    )


SMALL_GRID = SweepPlan.grid(
    datasets=[("ppi", "gcn")],
    strategies=("fault_free", "fault_unaware", "nr", "fare"),
    fault_densities=(0.05,),
    seeds=(0,),
    scale="ci",
    epochs=1,
)


class TestRunSpec:
    def test_canonicalisation(self):
        a = RunSpec.make("Reddit", "GCN", "FARE", 0.05000000001, scale="ci")
        b = RunSpec.make("reddit", "gcn", "fare", 0.05, scale="ci")
        assert a == b
        # Default kwargs are resolved, so explicit defaults compare equal too.
        from repro.experiments import configs

        c = RunSpec.make(
            "reddit", "gcn", "fare", 0.05,
            strategy_kwargs=configs.strategy_kwargs_for("fare", "ci"),
        )
        assert a == c

    def test_empty_kwargs_resolve_to_scale_defaults(self):
        """`strategy_kwargs={}` means 'defaults', like the seed runner's
        `strategy_kwargs or strategy_kwargs_for(...)`."""
        a = RunSpec.make("reddit", "gcn", "fare", 0.05, strategy_kwargs={})
        b = RunSpec.make("reddit", "gcn", "fare", 0.05)
        assert a == b
        assert dict(a.strategy_kwargs)  # the ci-scale FaRe knobs, not ()

    def test_plan_signature_opt_in(self):
        """Overriding plan_adjacency without plan_signature disables sharing."""
        from repro.core.strategies import (
            FaultUnawareStrategy,
            Strategy,
            WeightClippingStrategy,
            build_strategy,
        )

        # Sequential planners share one key; custom planners must declare.
        assert FaultUnawareStrategy().plan_signature() == ("sequential",)
        assert WeightClippingStrategy().plan_signature() == ("sequential",)
        assert build_strategy("nr").plan_signature()[0] == "nr"
        assert build_strategy("fare").plan_signature()[0] == "fare"

        class CustomPlanner(Strategy):
            def plan_adjacency(self, *args, **kwargs):  # pragma: no cover
                return super().plan_adjacency(*args, **kwargs)

        assert CustomPlanner().plan_signature() is None

    def test_fault_free_panels_merge(self):
        a = RunSpec.make("reddit", "gcn", "fault_free", 0.0, sa_ratio=(9.0, 1.0))
        b = RunSpec.make("reddit", "gcn", "fault_free", 0.0, sa_ratio=(1.0, 1.0))
        assert a == b
        # Faulty runs must NOT merge across ratios.
        c = RunSpec.make("reddit", "gcn", "fare", 0.05, sa_ratio=(9.0, 1.0))
        d = RunSpec.make("reddit", "gcn", "fare", 0.05, sa_ratio=(1.0, 1.0))
        assert c != d

    def test_signature_stability_and_sensitivity(self):
        spec = RunSpec.make("reddit", "gcn", "fare", 0.05)
        assert spec.signature() == RunSpec.make("reddit", "gcn", "fare", 0.05).signature()
        assert spec.signature() != RunSpec.make("reddit", "gcn", "fare", 0.03).signature()
        assert spec.signature() != RunSpec.make("reddit", "gcn", "fare", 0.05, seed=1).signature()
        assert (
            spec.signature()
            != RunSpec.make("reddit", "gcn", "fare", 0.05, post_deployment_extra=0.01).signature()
        )

    def test_round_trip(self):
        spec = RunSpec.make(
            "ppi", "gat", "fare", 0.03, sa_ratio=(1.0, 1.0), seed=2,
            epochs=4, post_deployment_extra=0.01,
        )
        assert RunSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_invalid_fault_region(self):
        with pytest.raises(ValueError):
            RunSpec.make("reddit", "gcn", "fare", 0.05, fault_region="everything")


class TestSweepPlan:
    def test_dedupe_preserves_order(self):
        a = RunSpec.make("reddit", "gcn", "fare", 0.05)
        b = RunSpec.make("reddit", "gcn", "fault_unaware", 0.05)
        plan = SweepPlan([a, b, a])
        assert plan.specs == (a, b)

    def test_grid_coerces_fault_free(self):
        plan = SweepPlan.grid(
            datasets=[("reddit", "gcn")],
            strategies=("fault_free", "fare"),
            fault_densities=(0.01, 0.05),
            seeds=(0,),
        )
        # One deduped fault-free baseline + one fare spec per density.
        assert len(plan) == 3
        fault_free = [s for s in plan if s.strategy == "fault_free"]
        assert len(fault_free) == 1
        assert fault_free[0].fault_density == 0.0

    def test_groups(self):
        plan = SweepPlan.grid(
            datasets=[("reddit", "gcn"), ("ppi", "gcn")],
            strategies=("fault_unaware",),
            fault_densities=(0.05,),
            seeds=(0, 1),
        )
        groups = plan.groups()
        assert len(groups) == 4
        assert all(len(specs) == 1 for specs in groups.values())


class TestSharedArtifactsEquivalence:
    def test_shared_execution_matches_seed_path(self):
        engine = SweepEngine()
        shared = engine.run(SMALL_GRID)
        for spec in SMALL_GRID:
            assert comparable(execute_spec(spec)) == comparable(shared[spec]), spec

    def test_post_deployment_matches_seed_path(self):
        spec = RunSpec.make(
            "ppi", "gcn", "fare", 0.03, scale="ci", seed=0, epochs=2,
            post_deployment_extra=0.01,
        )
        engine = SweepEngine()
        # Warm the hardware snapshot with a sibling run first so the
        # post-deployment run takes the snapshot-restore path.
        sibling = RunSpec.make(
            "ppi", "gcn", "fault_unaware", 0.03, scale="ci", seed=0, epochs=2
        )
        engine.run(SweepPlan([sibling]))
        shared = engine.run(SweepPlan([spec]))
        assert comparable(execute_spec(spec)) == comparable(shared[spec])

    def test_fault_region_matches_seed_path(self):
        spec = RunSpec.make(
            "ppi", "gcn", "fault_unaware", 0.05, scale="ci", seed=0, epochs=1,
            fault_region="adjacency",
        )
        shared = SweepEngine().run(SweepPlan([spec]))
        assert comparable(execute_spec(spec)) == comparable(shared[spec])

    def test_hardware_snapshot_restores_exactly(self):
        spec = RunSpec.make("ppi", "gcn", "fault_unaware", 0.05, scale="ci", seed=3)
        cache = ArtifactCache()
        fresh = build_hardware(
            spec.scale, spec.fault_density, spec.sa_ratio, seed=spec.seed
        )
        first = cache.hardware(spec)   # miss: builds + captures
        second = cache.hardware(spec)  # hit: restores from snapshot
        for a, b, c in zip(
            fresh.pool.crossbars, first.pool.crossbars, second.pool.crossbars
        ):
            np.testing.assert_array_equal(a.fault_map.sa0, b.fault_map.sa0)
            np.testing.assert_array_equal(a.fault_map.sa1, c.fault_map.sa1)
        # Post-deployment injection continues the same RNG stream everywhere.
        fresh.inject_post_deployment(0.01)
        second.inject_post_deployment(0.01)
        for a, c in zip(fresh.pool.crossbars, second.pool.crossbars):
            np.testing.assert_array_equal(a.fault_map.sa0, c.fault_map.sa0)
            np.testing.assert_array_equal(a.fault_map.sa1, c.fault_map.sa1)

    def test_plan_shared_across_models(self):
        """FaRe adjacency plans are model-independent and shared as such."""
        engine = SweepEngine()
        gcn = RunSpec.make("ppi", "gcn", "fare", 0.05, scale="ci", seed=0, epochs=1)
        sage = RunSpec.make("ppi", "sage", "fare", 0.05, scale="ci", seed=0, epochs=1)
        results = engine.run(SweepPlan([gcn, sage]))
        assert engine.summary()["artifact_plans_hits"] >= 1.0
        # The reusing run's *outcome* is bit-identical to the seed path; its
        # mapping_* counters legitimately differ (the Algorithm 1 work was
        # done once, by the run that computed the shared plan).
        seed_path = execute_spec(sage)
        shared = results[sage]
        assert seed_path.loss_history == shared.loss_history
        assert seed_path.train_accuracy_history == shared.train_accuracy_history
        assert seed_path.test_accuracy_history == shared.test_accuracy_history
        assert seed_path.final_test_accuracy == shared.final_test_accuracy
        assert shared.counters["mapping_pairs_total"] == 0.0


class TestParallelExecution:
    def test_serial_parallel_bit_identical(self):
        plan = SweepPlan.grid(
            datasets=[("ppi", "gcn")],
            strategies=("fault_free", "fault_unaware", "nr"),
            fault_densities=(0.01, 0.05),
            seeds=(0, 1),
            scale="ci",
            epochs=1,
        )
        serial = SweepEngine().run(plan)
        parallel = SweepEngine(max_workers=2).run(plan)
        assert set(serial.results) == set(parallel.results)
        for spec in plan:
            assert comparable(serial[spec]) == comparable(parallel[spec]), spec

    def test_parallel_requires_sharing(self):
        engine = SweepEngine(share_artifacts=False, max_workers=2)
        with pytest.raises(ValueError):
            engine._run_parallel(SMALL_GRID.groups(), 2)

    def test_single_group_plan_stays_in_process(self):
        """One artifact group ⇒ nothing to overlap ⇒ no spawn overhead."""
        engine = SweepEngine(max_workers=2)
        engine.run(SMALL_GRID)  # all specs share (ppi, ci, 0)
        # The parallel path records worker-side artifact stats; in-process
        # execution leaves that ledger empty.
        assert engine._parallel_artifact_stats == {}
        assert engine.summary()["runs_executed"] == float(len(SMALL_GRID))


class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "runcache")
        engine = SweepEngine(store=store)
        first = engine.run(SMALL_GRID)
        assert store.writes == len(SMALL_GRID)
        assert all(store.path(spec).exists() for spec in SMALL_GRID)

        # A fresh engine over the same store serves everything from disk.
        reread_store = ResultStore(tmp_path / "runcache")
        reread = SweepEngine(store=reread_store).run(SMALL_GRID)
        assert reread_store.hits == len(SMALL_GRID)
        assert reread_store.misses == 0
        for spec in SMALL_GRID:
            assert comparable(first[spec]) == comparable(reread[spec])

    def test_invalidates_on_signature_change(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "runcache")
        spec = RunSpec.make("ppi", "gcn", "fault_unaware", 0.05, epochs=1)
        SweepEngine(store=store).run(SweepPlan([spec]))
        path = store.path(spec)
        assert path.exists()

        monkeypatch.setattr(sweeps, "SIGNATURE_VERSION", sweeps.SIGNATURE_VERSION + 1)
        fresh = ResultStore(tmp_path / "runcache")
        # The signature hash changed, so the old file is simply not found.
        assert fresh.load(spec) is None
        assert fresh.misses == 1

    def test_prunes_other_version_files_on_first_write(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "runcache")
        spec = RunSpec.make("ppi", "gcn", "fault_unaware", 0.05, epochs=1)
        result = execute_spec(spec)
        store.save(spec, result)
        old_path = store.path(spec)
        assert old_path.exists()

        # After a version bump the old file's name is never looked up again;
        # the next store's first write garbage-collects it.
        monkeypatch.setattr(sweeps, "SIGNATURE_VERSION", sweeps.SIGNATURE_VERSION + 1)
        fresh = ResultStore(tmp_path / "runcache")
        fresh.save(spec, result)
        assert not old_path.exists()
        assert fresh.path(spec).exists()
        assert fresh.invalidations == 1

    def test_invalidates_corrupt_and_stale_files(self, tmp_path):
        store = ResultStore(tmp_path / "runcache")
        spec = RunSpec.make("ppi", "gcn", "fault_unaware", 0.05, epochs=1)
        result = execute_spec(spec)
        store.save(spec, result)
        path = store.path(spec)

        # Corrupt JSON → invalidated (deleted) and reported as a miss.
        path.write_text("{ not json")
        assert store.load(spec) is None
        assert store.invalidations == 1
        assert not path.exists()

        # A stale payload whose embedded signature mismatches → invalidated.
        store.save(spec, result)
        payload = json.loads(path.read_text())
        payload["signature"] = "0" * 24
        path.write_text(json.dumps(payload))
        assert store.load(spec) is None
        assert not path.exists()

    def test_serialization_exact(self):
        spec = RunSpec.make("ppi", "gcn", "nr", 0.05, epochs=1)
        result = execute_spec(spec)
        payload = json.loads(json.dumps(sweeps.serialize_result(result)))
        restored = sweeps.deserialize_result(payload)
        assert comparable(restored) == comparable(result)
        assert restored.counters == result.counters


class TestRunSingleShim:
    def test_memo_identity_and_lru_cap(self):
        engine = SweepEngine(memo_capacity=2)
        specs = [
            RunSpec.make("ppi", "gcn", "fault_free", 0.0, epochs=1, seed=s)
            for s in (0, 1, 2)
        ]
        for spec in specs:
            engine.run(SweepPlan([spec]))
        assert engine.memo_size() == 2
        assert engine.memo.evictions == 1
        assert engine.summary()["memo_evictions"] == 1.0

    def test_run_single_equivalent_to_seed_path(self):
        runner.clear_cache()
        spec = RunSpec.make("ppi", "gat", "clipping", 0.03, scale="ci", epochs=1)
        via_shim = runner.run_single(
            "ppi", "gat", "clipping", 0.03, scale="ci", epochs=1
        )
        assert comparable(execute_spec(spec)) == comparable(via_shim)
        # Memoised: same object, stats counted.
        again = runner.run_single("ppi", "gat", "clipping", 0.03, scale="ci", epochs=1)
        assert again is via_shim


class TestFigureDriverEquivalence:
    """Figure tables are byte-identical with the pre-refactor serial loop."""

    def _seed_loop(self, specs):
        """The pre-refactor behaviour: serial run_single with a dict memo."""
        memo = {}
        for key, spec in specs.items():
            if spec not in memo:
                memo[spec] = execute_spec(spec)
        return {key: memo[spec] for key, spec in specs.items()}

    def test_fig3_table_byte_identical(self):
        from repro.experiments.fig3 import Fig3Result, _fig3_specs

        kwargs = dict(
            dataset="ppi", model="gcn", fault_density=0.05, scale="ci", seed=0, epochs=1
        )
        specs = _fig3_specs(*kwargs.values())
        loop = self._seed_loop(specs)
        expected = format_fig3(
            Fig3Result(
                dataset="ppi",
                model="gcn",
                fault_density=0.05,
                fault_free_accuracy=loop[None].final_test_accuracy,
                accuracies={
                    cell: res.final_test_accuracy
                    for cell, res in loop.items()
                    if cell is not None
                },
            )
        )
        assert format_fig3(run_fig3(**kwargs, engine=SweepEngine())) == expected

    def test_fig4_table_byte_identical(self):
        from repro.experiments.fig4 import _fig4_specs

        specs = _fig4_specs("ppi", "gcn", (0.05,), (9.0, 1.0), "ci", 0, 2)
        loop = self._seed_loop(specs)
        result = run_fig4(
            dataset="ppi", model="gcn", densities=(0.05,), scale="ci", seed=0,
            epochs=2, engine=SweepEngine(),
        )
        assert result.fault_free_curve == list(
            loop[("fault_free", 0.0)].train_accuracy_history
        )
        assert result.fare_curves[0.05] == list(
            loop[("fare", 0.05)].train_accuracy_history
        )
        assert "Fig. 4" in format_fig4(result)

    def test_fig5_table_byte_identical(self):
        from repro.experiments.fig5 import _fig5_specs

        specs = _fig5_specs(
            (9.0, 1.0), (0.05,), (("ppi", "gcn"),),
            ("fault_free", "fault_unaware", "nr", "clipping", "fare"),
            "ci", 0, 1,
        )
        loop = self._seed_loop(specs)
        result = run_fig5(
            densities=(0.05,), pairs=(("ppi", "gcn"),), scale="ci", seed=0,
            epochs=1, engine=SweepEngine(),
        )
        for cell, res in loop.items():
            assert result.accuracies[cell] == res.final_test_accuracy
        assert "Fig. 5" in format_fig5(result)

    def test_fig6_table_byte_identical(self):
        from repro.experiments.fig6 import _fig6_specs

        specs = _fig6_specs(
            (9.0, 1.0), (0.02,), (("ppi", "gcn"),),
            ("fault_free", "fault_unaware", "fare"), 0.01, "ci", 0, 2,
        )
        loop = self._seed_loop(specs)
        result = run_fig6(
            densities=(0.02,), pairs=(("ppi", "gcn"),),
            strategies=("fault_free", "fault_unaware", "fare"),
            scale="ci", seed=0, epochs=2, engine=SweepEngine(),
        )
        for cell, res in loop.items():
            assert result.accuracies[cell] == res.final_test_accuracy
        # format_fig6 renders all five compared strategies; this reduced grid
        # only checks engine-vs-loop equivalence (the full render is covered
        # by test_experiments.py).


class TestSeedReplication:
    def test_run_fig3_seeds_and_aggregation(self):
        from repro.experiments.fig3 import run_fig3_seeds

        results = run_fig3_seeds(
            seeds=(0, 1), dataset="ppi", model="gcn", fault_density=0.05,
            scale="ci", epochs=1, engine=SweepEngine(),
        )
        assert sorted(results) == [0, 1]
        rows = aggregate_seed_rows([results[0].rows(), results[1].rows()])
        assert len(rows) == 5
        # Numeric cells became "mean ± std" strings; labels survived.
        assert all("±" in row[-1] for row in rows)
        table = format_seed_table(
            ["Faulted matrix", "Fault type", "Test accuracy"],
            [results[0].rows(), results[1].rows()],
            (0, 1),
            "Fig. 3",
        )
        assert "mean ± std over seeds {0, 1}" in table

    def test_replicates_never_retrain_on_small_memo(self):
        """A memo smaller than the union grid must not cause silent re-runs."""
        from repro.experiments.fig3 import plan_fig3, run_fig3

        engine = SweepEngine(memo_capacity=2)
        sweeps.run_seed_replicates(
            plan_fig3, run_fig3, (0, 1), engine=engine,
            dataset="ppi", model="gcn", fault_density=0.05, scale="ci", epochs=1,
        )
        unique = len(plan_fig3(seed=0, dataset="ppi", model="gcn",
                               fault_density=0.05, scale="ci", epochs=1)) * 2
        assert engine.summary()["runs_executed"] == float(unique)
        assert engine.memo.evictions == 0
        # The temporary capacity grow is restored afterwards (LRU bound holds).
        assert engine.memo.capacity == 2

    def test_mean_std(self):
        assert mean_std([0.5]) == "0.5000"
        assert mean_std([0.25, 0.75]) == "0.5000 ± 0.2500"
        # Seed-invariant values (e.g. paper reference constants) render bare.
        assert mean_std([0.476, 0.476, 0.476]) == "0.4760"
        with pytest.raises(ValueError):
            mean_std([])

    def test_aggregate_rejects_mismatched_labels(self):
        with pytest.raises(ValueError):
            aggregate_seed_rows([[["a", 1.0]], [["b", 1.0]]])
