"""Smoke test executing the README's first command.

``examples/quickstart.py`` is the advertised entry point of the repository;
running it (tiny configuration, a second or two) inside tier-1 means the
README's quickstart can never silently rot.  The example is executed as a
real subprocess — fresh interpreter, ``PYTHONPATH=src`` exactly as the
README instructs — not imported, so argument parsing and the module guard
are exercised too.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_quickstart_example_runs_end_to_end():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "examples" / "quickstart.py"),
            "--epochs",
            "2",
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=180,
        cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 0, f"quickstart failed:\n{proc.stderr}"
    # The comparison table and the closing summary must both be present.
    for needle in ("fault_free", "fault_unaware", "fare", "FARe restores"):
        assert needle in proc.stdout, (
            f"expected {needle!r} in quickstart output:\n{proc.stdout}"
        )
