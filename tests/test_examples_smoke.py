"""Smoke tests executing the README's advertised commands.

``examples/quickstart.py`` is the advertised entry point of the repository;
running it (tiny configuration, a second or two) inside tier-1 means the
README's quickstart can never silently rot.  The example is executed as a
real subprocess — fresh interpreter, ``PYTHONPATH=src`` exactly as the
README instructs — not imported, so argument parsing and the module guard
are exercised too.  The "serve a sweep" quickstart (submit → drain →
status) is smoked the same way.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _run(cmd, env, timeout=180):
    return subprocess.run(
        cmd,
        capture_output=True,
        text=True,
        env=env,
        timeout=timeout,
        cwd=str(REPO_ROOT),
    )


def _src_env(**extra):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    env.update(extra)
    return env


def test_quickstart_example_runs_end_to_end():
    env = _src_env()
    proc = _run(
        [
            sys.executable,
            str(REPO_ROOT / "examples" / "quickstart.py"),
            "--epochs",
            "2",
        ],
        env,
    )
    assert proc.returncode == 0, f"quickstart failed:\n{proc.stderr}"
    # The comparison table and the closing summary must both be present.
    for needle in ("fault_free", "fault_unaware", "fare", "FARe restores"):
        assert needle in proc.stdout, (
            f"expected {needle!r} in quickstart output:\n{proc.stdout}"
        )


def test_readme_large_graph_quickstart():
    """The README's streaming quickstart at smoke scale.

    60k nodes sits above ``STREAMING_NODE_THRESHOLD`` (50k), so the run
    exercises the real large-graph machinery — chunked generation,
    streaming partitioner, auto-enabled streaming-blocks mode — in a few
    seconds.  The full 10^6-node configuration is gated (with a peak-RSS
    ceiling) in ``benchmarks/test_bench_multigraph_train.py``.
    """
    env = _src_env()
    proc = _run(
        [
            sys.executable,
            str(REPO_ROOT / "examples" / "large_graph.py"),
            "--nodes",
            "60000",
        ],
        env,
    )
    assert proc.returncode == 0, f"large_graph failed:\n{proc.stderr}"
    assert "block mode: streaming" in proc.stdout
    # The README advertises the fused train step as the example's default;
    # the trainer must report it active (not silently fall back).
    assert "train mode: fused" in proc.stdout
    for needle in ("peak RSS", "blocks streamed through", "test accuracy"):
        assert needle in proc.stdout, (
            f"expected {needle!r} in large_graph output:\n{proc.stdout}"
        )


def test_readme_lifetime_quickstart():
    """The README's device-lifetime commands (tiny checkpoint counts)."""
    env = _src_env()
    module = [sys.executable, "-m", "repro.experiments", "lifetime"]

    curve = _run(module + ["--epochs", "1", "--checkpoints", "2"], env)
    assert curve.returncode == 0, f"lifetime failed:\n{curve.stderr}"
    assert "Device lifetime" in curve.stdout
    assert "Writes" in curve.stdout and "Replan ms" in curve.stdout
    # Two wear-out checkpoints were walked: header + separator + 2 rows.
    assert len(curve.stdout.strip().splitlines()) >= 4

    grid = _run(
        module + ["--grid", "--densities", "0.012", "0.014", "--compare-cold"], env
    )
    assert grid.returncode == 0, f"lifetime --grid failed:\n{grid.stderr}"
    assert "Cross-density plan grid" in grid.stdout
    # --compare-cold fills the final column with measured times, not dashes.
    assert "Cold ms" in grid.stdout
    last_row = grid.stdout.strip().splitlines()[-1]
    assert not last_row.rstrip().endswith("-")


def test_readme_serve_a_sweep_quickstart(tmp_path):
    """The README's submit → drain → status sequence, verbatim commands."""
    env = _src_env(REPRO_RUNCACHE_DIR=str(tmp_path / "runcache"))
    module = [sys.executable, "-m", "repro.experiments"]

    submit = _run(module + ["submit", "fig4", "--epochs", "1"], env)
    assert submit.returncode == 0, f"submit failed:\n{submit.stderr}"
    assert "submitted 7 job(s)" in submit.stdout

    drain = _run(module + ["drain"], env, timeout=300)
    assert drain.returncode == 0, f"drain failed:\n{drain.stderr}"
    assert "drained 7 job(s)" in drain.stdout
    assert "lease_acquired" in drain.stdout

    status = _run(module + ["status"], env)
    assert status.returncode == 0, f"status failed:\n{status.stderr}"
    assert "sweep service status" in status.stdout
    assert "failure report: no quarantined specs" in status.stdout
