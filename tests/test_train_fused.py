"""Fused train-step batching: block-diagonal training forwards.

Three subsystems under test:

* the segmented per-member losses (``cross_entropy_segmented`` /
  ``bce_with_logits_segmented``) — member loss values match the per-member
  reference losses and the gradients reaching the logits are **bit-identical**
  to the reference per-row scales;
* the trainer's bucketed train modes — ``"accumulate"`` (zero_grad once per
  bucket, per-member backward, one optimizer step per bucket: the reference)
  vs ``"fused"`` (one block-diagonal forward + one backward per bucket) —
  fuzzed equivalence across the three models, fault-free and fault-injected,
  post-deployment deltas, ragged B=1 buckets, streaming-blocks on/off, with
  the write/endurance counters and optimizer step accounting identical;
* the bucket-layout staleness fix and the ``edge_list_graph_streaming``
  loader contract.

Equivalence contract (``docs/ARCHITECTURE.md``): per-row sparse kernels and
the per-row loss gradients are structural (bit-identical per member); the
fused GEMMs and the ``reduceat`` loss-value reductions reassociate sums, so
histories/weights are compared to ≤1e-9 tolerances.  ``train_bucket_nodes=1``
degenerates both bucket modes to the seed per-batch loop bit-for-bit.
"""

import numpy as np
import pytest

from repro.core.strategies import build_strategy
from repro.graph.datasets import (
    edge_list_graph_streaming,
    synthetic_graph,
)
from repro.graph.normalize import clear_normalize_cache
from repro.hardware.config import ReRAMConfig
from repro.hardware.endurance import PostDeploymentSchedule
from repro.hardware.faults import FaultModel
from repro.nn.losses import (
    bce_with_logits,
    bce_with_logits_segmented,
    cross_entropy,
    cross_entropy_segmented,
)
from repro.pipeline.mapping_engine import HardwareEnvironment
from repro.pipeline.trainer import FaultyTrainer, TrainingConfig
from repro.tensor import kernels
from repro.tensor.tensor import Tensor


# --------------------------------------------------------------------------- #
# Segmented losses
# --------------------------------------------------------------------------- #
def _bucket_fixture(rng, sizes, num_classes=5, multilabel=False, empty=()):
    """Random fused logits + per-member labels/masks for ``sizes`` members."""
    total = sum(sizes)
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    if multilabel:
        labels = (rng.random((total, num_classes)) > 0.5).astype(np.int64)
    else:
        labels = rng.integers(0, num_classes, size=total)
    mask = rng.random(total) < 0.7
    for k in empty:
        mask[offsets[k] : offsets[k + 1]] = False
    for k in range(len(sizes)):
        if k not in empty and not mask[offsets[k] : offsets[k + 1]].any():
            mask[offsets[k]] = True
    selected_parts = [
        np.flatnonzero(mask[offsets[k] : offsets[k + 1]]) + offsets[k]
        for k in range(len(sizes))
    ]
    counts = np.array([p.size for p in selected_parts], dtype=np.int64)
    selected = np.concatenate(selected_parts)
    member_ids = np.repeat(np.arange(len(sizes), dtype=np.int64), counts)
    logits = rng.normal(size=(total, num_classes))
    return logits, labels, mask, offsets, selected, member_ids, counts


class TestSegmentedLosses:
    @pytest.mark.parametrize("empty", [(), (1,)])
    def test_cross_entropy_matches_reference(self, rng, empty):
        sizes = [6, 4, 9]
        logits_data, labels, mask, offsets, selected, member_ids, counts = (
            _bucket_fixture(rng, sizes, empty=empty)
        )
        fused = Tensor(logits_data.copy(), requires_grad=True)
        plan = kernels.segment_plan(member_ids, len(sizes))
        total, member_losses = cross_entropy_segmented(
            fused, labels, selected, member_ids, counts, plan=plan
        )
        total.backward()
        for k in range(len(sizes)):
            lo, hi = offsets[k], offsets[k + 1]
            ref_logits = Tensor(logits_data[lo:hi].copy(), requires_grad=True)
            ref = cross_entropy(ref_logits, labels[lo:hi], mask[lo:hi])
            if ref.requires_grad:
                ref.backward()
                # Per-row gradients are structural: bit-identical.
                np.testing.assert_array_equal(fused.grad[lo:hi], ref_logits.grad)
            else:
                assert member_losses[k] == 0.0
                if fused.grad is not None:
                    np.testing.assert_array_equal(
                        fused.grad[lo:hi], np.zeros((hi - lo, logits_data.shape[1]))
                    )
            # Loss values reassociate through reduceat: round-off contract.
            np.testing.assert_allclose(
                member_losses[k], ref.item(), rtol=0, atol=1e-12
            )

    @pytest.mark.parametrize("empty", [(), (0,)])
    def test_bce_matches_reference(self, rng, empty):
        sizes = [5, 7, 3]
        logits_data, labels, mask, offsets, selected, member_ids, counts = (
            _bucket_fixture(rng, sizes, multilabel=True, empty=empty)
        )
        fused = Tensor(logits_data.copy(), requires_grad=True)
        total, member_losses = bce_with_logits_segmented(
            fused, labels, selected, member_ids, counts
        )
        total.backward()
        for k in range(len(sizes)):
            lo, hi = offsets[k], offsets[k + 1]
            ref_logits = Tensor(logits_data[lo:hi].copy(), requires_grad=True)
            ref = bce_with_logits(ref_logits, labels[lo:hi], mask[lo:hi])
            if ref.requires_grad:
                ref.backward()
                np.testing.assert_array_equal(fused.grad[lo:hi], ref_logits.grad)
            else:
                assert member_losses[k] == 0.0
            np.testing.assert_allclose(
                member_losses[k], ref.item(), rtol=0, atol=1e-12
            )

    def test_all_empty_bucket_has_no_gradient(self, rng):
        logits = Tensor(rng.normal(size=(8, 4)), requires_grad=True)
        labels = rng.integers(0, 4, size=8)
        empty = np.zeros(0, dtype=np.int64)
        total, member_losses = cross_entropy_segmented(
            logits, labels, empty, empty, np.array([0, 0], dtype=np.int64)
        )
        assert member_losses == [0.0, 0.0]
        assert total.item() == 0.0


# --------------------------------------------------------------------------- #
# Trainer equivalence
# --------------------------------------------------------------------------- #
def _graph(seed, nodes=72, multilabel=False):
    return synthetic_graph(
        num_nodes=nodes,
        num_communities=4,
        num_features=12,
        num_classes=4,
        avg_degree=6.0,
        multilabel=multilabel,
        name="fuzz",
        seed=seed,
    )


def _hardware():
    config = ReRAMConfig(
        crossbar_rows=16, crossbar_cols=16, crossbars_per_tile=24, num_tiles=2
    )
    return HardwareEnvironment(
        config=config,
        fault_model=FaultModel(0.05, (9.0, 1.0), seed=11),
        weight_fraction=0.5,
    )


def _train(model, strategy_name, graph, **flags):
    clear_normalize_cache()
    strategy = build_strategy(strategy_name)
    hardware = _hardware() if strategy.requires_hardware else None
    config = TrainingConfig(
        epochs=3,
        hidden_features=8,
        dropout=flags.pop("dropout", 0.2),
        num_parts=4,
        batch_clusters=1,
        eval_every=1,
        seed=0,
        train_bucket_nodes=flags.pop("train_bucket_nodes", 64),
    )
    trainer = FaultyTrainer(
        graph, model, strategy, config, hardware=hardware, **flags
    )
    result = trainer.train()
    params = {n: p.data.copy() for n, p in trainer.model.named_parameters()}
    return result, params, trainer


def _assert_equivalent(reference, fused, ref_params, fused_params):
    np.testing.assert_allclose(
        reference.loss_history, fused.loss_history, rtol=0, atol=1e-9
    )
    for name in ref_params:
        np.testing.assert_allclose(
            ref_params[name], fused_params[name], rtol=0, atol=1e-9
        )
    assert reference.train_accuracy_history == fused.train_accuracy_history
    assert reference.test_accuracy_history == fused.test_accuracy_history


def _write_counters(result):
    return {
        key: value
        for key, value in result.counters.items()
        if "write" in key
    }


class TestFusedTrainEquivalence:
    """Fuzzed: fused mode vs the accumulation reference, three models."""

    @pytest.mark.parametrize("model", ["gcn", "sage", "gat"])
    @pytest.mark.parametrize("strategy", ["fault_free", "fare"])
    @pytest.mark.parametrize("seed", [3, 19])
    def test_fused_vs_accumulation(self, model, strategy, seed):
        graph = _graph(seed)
        ref, ref_params, ref_trainer = _train(
            model, strategy, graph, train_mode="accumulate"
        )
        fused, fused_params, trainer = _train(
            model, strategy, graph, train_mode="fused"
        )
        _assert_equivalent(ref, fused, ref_params, fused_params)
        # Identical write/endurance accounting (fused path replays the
        # per-member adjacency and weight programming events).
        assert _write_counters(ref) == _write_counters(fused)
        # The fused path must actually fire, and both modes step the
        # optimizer exactly once per bucket.
        assert fused.counters["train_fused_forwards"] >= 1
        assert fused.counters["batched_train_buckets"] >= 1
        layout = fused.counters["train_bucket_layout"]
        assert layout >= 1
        assert fused.counters["batched_train_buckets"] == (
            fused.epochs_run * layout
        )
        assert trainer.optimizer.param_version == (
            fused.epochs_run * layout
        )
        assert (
            ref_trainer.optimizer.param_version
            == trainer.optimizer.param_version
        )
        # Counters surface through the kernel layer -> mapping_engine_stats.
        assert fused.counters["kernel_batched_train_buckets"] == (
            fused.counters["batched_train_buckets"]
        )
        assert fused.counters["kernel_train_fused_forwards"] == (
            fused.counters["train_fused_forwards"]
        )
        assert fused.counters["kernel_segment_plan_cache_hits"] >= 1

    def test_multilabel_bce_fused_vs_accumulation(self):
        graph = _graph(23, multilabel=True)
        ref, ref_params, _ = _train("gcn", "fare", graph, train_mode="accumulate")
        fused, fused_params, _ = _train("gcn", "fare", graph, train_mode="fused")
        _assert_equivalent(ref, fused, ref_params, fused_params)

    @pytest.mark.parametrize("mode", ["accumulate", "fused"])
    def test_bucket_nodes_1_degenerates_to_seed(self, mode):
        """train_bucket_nodes=1 forces B=1 buckets: bit-identical to seed."""
        graph = _graph(5)
        seed_result, seed_params, _ = _train(
            "gcn", "fare", graph, train_mode="per_batch"
        )
        bucket, bucket_params, trainer = _train(
            "gcn", "fare", graph, train_mode=mode, train_bucket_nodes=1
        )
        assert seed_result.loss_history == bucket.loss_history
        assert seed_result.test_accuracy_history == bucket.test_accuracy_history
        for name in seed_params:
            np.testing.assert_array_equal(seed_params[name], bucket_params[name])
        assert bucket.counters["batched_train_buckets"] == (
            bucket.epochs_run * len(trainer.batches)
        )
        assert bucket.counters["train_fused_forwards"] == 0

    @pytest.mark.parametrize("model", ["gcn", "sage"])
    def test_post_deployment_delta(self, model):
        post = PostDeploymentSchedule(total_extra_density=0.01, num_epochs=3)
        graph = _graph(13)
        ref, ref_params, _ = _train(
            model, "fare", graph, train_mode="accumulate", post_deployment=post
        )
        fused, fused_params, _ = _train(
            model, "fare", graph, train_mode="fused", post_deployment=post
        )
        _assert_equivalent(ref, fused, ref_params, fused_params)
        assert _write_counters(ref) == _write_counters(fused)

    @pytest.mark.parametrize("streaming", [False, True])
    def test_streaming_blocks_composes(self, streaming):
        graph = _graph(17)
        ref, ref_params, _ = _train(
            "sage",
            "fare",
            graph,
            train_mode="accumulate",
            streaming_blocks=streaming,
        )
        fused, fused_params, trainer = _train(
            "sage",
            "fare",
            graph,
            train_mode="fused",
            streaming_blocks=streaming,
        )
        _assert_equivalent(ref, fused, ref_params, fused_params)
        assert _write_counters(ref) == _write_counters(fused)
        assert trainer.streaming_blocks_active == streaming

    def test_fused_with_hw_cache_disabled(self):
        graph = _graph(29)
        ref, ref_params, _ = _train(
            "gcn", "fare", graph, train_mode="accumulate", use_hw_state_cache=False
        )
        fused, fused_params, _ = _train(
            "gcn", "fare", graph, train_mode="fused", use_hw_state_cache=False
        )
        _assert_equivalent(ref, fused, ref_params, fused_params)
        assert _write_counters(ref) == _write_counters(fused)

    def test_invalid_train_mode_rejected(self):
        graph = _graph(3)
        with pytest.raises(ValueError, match="train_mode"):
            FaultyTrainer(
                graph,
                "gcn",
                build_strategy("fault_free"),
                TrainingConfig(epochs=1, num_parts=4, batch_clusters=1, seed=0),
                train_mode="bogus",
            )

    def test_invalid_train_bucket_nodes_rejected(self):
        with pytest.raises(ValueError, match="train_bucket_nodes"):
            TrainingConfig(train_bucket_nodes=0)


class TestSeedPathUntouched:
    def test_default_mode_is_per_batch(self):
        graph = _graph(7)
        default, default_params, trainer = _train("gcn", "fare", graph)
        explicit, explicit_params, _ = _train(
            "gcn", "fare", graph, train_mode="per_batch"
        )
        assert trainer.train_mode == "per_batch"
        assert default.loss_history == explicit.loss_history
        for name in default_params:
            np.testing.assert_array_equal(
                default_params[name], explicit_params[name]
            )
        assert default.counters["batched_train_buckets"] == 0
        assert default.counters["train_fused_forwards"] == 0
        assert default.counters["train_bucket_layout"] == 0


# --------------------------------------------------------------------------- #
# Bucket-layout staleness regression
# --------------------------------------------------------------------------- #
class TestBucketStaleness:
    def test_eval_layout_recomputed_when_batches_replaced(self):
        graph = _graph(11)
        trainer = FaultyTrainer(
            graph,
            "gcn",
            build_strategy("fault_free"),
            TrainingConfig(
                epochs=1, num_parts=4, batch_clusters=1, seed=0,
                eval_bucket_nodes=64,
            ),
        )
        first = trainer._eval_bucket_layout()
        assert sum(len(bucket) for bucket in first) == len(trainer.batches)
        # Regression: replacing the batch list after construction must
        # invalidate the cached layout (it used to be served stale forever).
        trainer.batches = trainer.batches[:2]
        second = trainer._eval_bucket_layout()
        assert sum(len(bucket) for bucket in second) == 2
        assert all(index < 2 for bucket in second for index in bucket)

    def test_train_layout_and_workspaces_invalidated_too(self):
        graph = _graph(11)
        trainer = FaultyTrainer(
            graph,
            "gcn",
            build_strategy("fault_free"),
            TrainingConfig(
                epochs=1, num_parts=4, batch_clusters=1, seed=0,
                train_bucket_nodes=64,
            ),
            train_mode="fused",
        )
        layout = trainer._train_bucket_layout()
        trainer._bucket_workspace(layout[0])
        assert trainer._bucket_workspaces
        trainer.batches = trainer.batches[:1]
        assert trainer._train_bucket_layout() == [[0]]
        assert not trainer._bucket_workspaces
        assert not trainer._fused_train_cache


# --------------------------------------------------------------------------- #
# Real-data streaming loader
# --------------------------------------------------------------------------- #
class TestEdgeListLoader:
    def test_npz_round_trip_with_full_payload(self, rng, tmp_path):
        reference = _graph(31, nodes=60)
        rows, cols, _ = reference.adjacency.coo()
        path = tmp_path / "export.npz"
        np.savez(
            path,
            edges=np.stack([rows, cols], axis=1),
            num_nodes=np.int64(reference.num_nodes),
            features=reference.features,
            labels=reference.labels,
            train_mask=reference.train_mask,
            val_mask=reference.val_mask,
            test_mask=reference.test_mask,
        )
        loaded = edge_list_graph_streaming(str(path))
        assert loaded.num_nodes == reference.num_nodes
        np.testing.assert_array_equal(loaded.features, reference.features)
        np.testing.assert_array_equal(loaded.labels, reference.labels)
        np.testing.assert_array_equal(loaded.train_mask, reference.train_mask)
        # Same edge set through the same symmetrise/dedup contract.
        np.testing.assert_array_equal(
            loaded.adjacency.indptr, reference.adjacency.indptr
        )
        np.testing.assert_array_equal(
            loaded.adjacency.indices, reference.adjacency.indices
        )
        assert loaded.metadata["streaming"] == 1.0

    def test_npz_structure_only_synthesises_rest(self, tmp_path):
        path = tmp_path / "structure.npz"
        src = np.array([0, 1, 2, 3, 4, 5, 6, 7], dtype=np.int64)
        dst = np.array([1, 2, 3, 0, 5, 6, 7, 4], dtype=np.int64)
        np.savez(path, src=src, dst=dst)
        loaded = edge_list_graph_streaming(
            str(path), num_features=6, num_classes=3, seed=4
        )
        assert loaded.num_nodes == 8
        assert loaded.features.shape == (8, 6)
        assert loaded.labels.shape == (8,)
        assert loaded.labels.max() < 3
        assert (
            loaded.train_mask.sum()
            + loaded.val_mask.sum()
            + loaded.test_mask.sum()
        ) == 8
        again = edge_list_graph_streaming(
            str(path), num_features=6, num_classes=3, seed=4
        )
        np.testing.assert_array_equal(loaded.features, again.features)

    def test_text_edge_list_chunked(self, tmp_path):
        path = tmp_path / "edges.txt"
        lines = ["# comment", "% other comment", ""]
        edges = [(i, (i + 1) % 10) for i in range(10)]
        lines += [f"{u} {v}" for u, v in edges[:5]]
        lines += [f"{u},{v}" for u, v in edges[5:]]
        path.write_text("\n".join(lines) + "\n")
        loaded = edge_list_graph_streaming(
            str(path), num_features=4, num_classes=2, seed=0, chunk_edges=3
        )
        assert loaded.num_nodes == 10
        assert loaded.num_edges > 0
        unchunked = edge_list_graph_streaming(
            str(path), num_features=4, num_classes=2, seed=0
        )
        np.testing.assert_array_equal(
            loaded.adjacency.indices, unchunked.adjacency.indices
        )

    def test_same_contract_as_synthetic_streaming(self, tmp_path):
        """The loaded graph trains through the streaming trainer path."""
        path = tmp_path / "train.npz"
        reference = _graph(37, nodes=72)
        rows, cols, _ = reference.adjacency.coo()
        np.savez(path, edges=np.stack([rows, cols], axis=1))
        graph = edge_list_graph_streaming(
            str(path), num_features=8, num_classes=4, seed=2
        )
        clear_normalize_cache()
        trainer = FaultyTrainer(
            graph,
            "gcn",
            build_strategy("fare"),
            TrainingConfig(
                epochs=1, hidden_features=8, num_parts=4, batch_clusters=1,
                seed=0,
            ),
            hardware=_hardware(),
            streaming_blocks=True,
            train_mode="fused",
        )
        result = trainer.train()
        assert result.epochs_run == 1
        assert trainer.streaming_blocks_active

    def test_bad_inputs_rejected(self, tmp_path):
        empty = tmp_path / "empty.txt"
        empty.write_text("# nothing\n")
        with pytest.raises(ValueError, match="no edges"):
            edge_list_graph_streaming(str(empty))
        bad = tmp_path / "bad.npz"
        np.savez(bad, nonsense=np.zeros(3))
        with pytest.raises(ValueError, match="edges"):
            edge_list_graph_streaming(str(bad))
        short = tmp_path / "short.npz"
        np.savez(
            short,
            edges=np.array([[0, 5]], dtype=np.int64),
            num_nodes=np.int64(3),
        )
        with pytest.raises(ValueError, match="num_nodes"):
            edge_list_graph_streaming(str(short))

    @pytest.mark.skipif(
        "REPRO_REAL_EDGELIST" not in __import__("os").environ,
        reason="set REPRO_REAL_EDGELIST to a real .npz/edge-list export",
    )
    def test_real_dataset_fixture_when_present(self):
        import os

        graph = edge_list_graph_streaming(os.environ["REPRO_REAL_EDGELIST"])
        assert graph.num_nodes > 0
        assert graph.num_edges > 0
        assert graph.metadata.get("real_edges") == 1.0
