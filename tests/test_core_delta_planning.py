"""Fuzzed equivalence tests for incremental fault-delta re-planning.

The delta-planning contract is *bit-identical equivalence*: re-planning from
a :class:`MapperPlanState` after any sequence of fault-map deltas must return
exactly the mapping a cold :meth:`FaultAwareMapper.map_blocks` computes on
the final maps — same assignments, permutations, costs, SA1 mismatches and
pruned/relaxed lists, for all three row methods, including tie-breaking.
The fuzz suite drives random sequences of the real delta sources (post-
deployment injection, no-op BIST re-scans, endurance wear-out steps,
ε-density patches) through the chained re-plan path and checks every step
against a from-scratch plan, then separately pins down the stats-counter
accounting and the invalidation (full re-plan) rules.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapping import FaultAwareMapper, MapperPlanState
from repro.core.strategies import FaReStrategy
from repro.hardware.endurance import EnduranceModel, WearOutSchedule
from repro.hardware.faults import FaultModel

METHODS = ["greedy", "hungarian", "bsuitor"]


def random_blocks(rng, num_blocks, size, density):
    return [
        (rng.random((size, size)) < density).astype(float) for _ in range(num_blocks)
    ]


def assert_mappings_identical(reference, candidate):
    assert reference.pruned_crossbars == candidate.pruned_crossbars
    assert reference.relaxed_blocks == candidate.relaxed_blocks
    assert len(reference.blocks) == len(candidate.blocks)
    for ref, got in zip(reference.blocks, candidate.blocks):
        assert ref.block_index == got.block_index
        assert ref.crossbar_index == got.crossbar_index
        assert ref.cost == got.cost
        assert ref.sa1_mismatch == got.sa1_mismatch
        np.testing.assert_array_equal(ref.row_permutation, got.row_permutation)


def make_mapper(method, sa1_weight=4.0, **kwargs):
    return FaultAwareMapper(
        sa1_weight=sa1_weight, row_method=method, use_cost_engine=True, **kwargs
    )


def apply_delta(rng, model, fmaps, kind, size):
    """One realistic fault-map delta; returns the new map list.

    ``injection`` hits a random subset of crossbars (post-deployment faults
    land where writes land), ``rescan`` is a no-op BIST re-read (same maps,
    fresh objects), ``wearout`` injects an endurance-schedule increment into
    every crossbar, and ``epsilon`` patches a single map with the smallest
    representable density bump.
    """
    if kind == "rescan":
        return [f.copy() for f in fmaps]
    if kind == "epsilon":
        target = int(rng.integers(len(fmaps)))
        out = [f.copy() for f in fmaps]
        out[target] = model.inject_additional([fmaps[target]], 1.5 / size**2)[0]
        return out
    if kind == "wearout":
        schedule = WearOutSchedule.log_spaced(
            EnduranceModel(mean_endurance=1e6), num_checkpoints=2
        )
        return model.inject_additional(fmaps, schedule.density_increments()[0])
    # kind == "injection": a random non-empty subset of crossbars.
    subset = rng.choice(len(fmaps), size=int(rng.integers(1, len(fmaps) + 1)), replace=False)
    out = [f.copy() for f in fmaps]
    for index in subset:
        out[index] = model.inject_additional([fmaps[index]], 0.03)[0]
    return out


# --------------------------------------------------------------------------- #
# Fuzzed bit-identity across delta sequences
# --------------------------------------------------------------------------- #
class TestDeltaEquivalence:
    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_random_delta_chains_identical_to_cold_plans(self, seed):
        """Property: any sequence of injection / re-scan / wear-out / ε-patch
        deltas re-planned incrementally equals a from-scratch plan at every
        step, for every row method."""
        rng = np.random.default_rng(seed)
        num_blocks = int(rng.integers(1, 7))
        num_crossbars = int(rng.integers(2, 8))
        size = int(rng.choice([4, 8]))
        method = METHODS[seed % 3]
        sa1_weight = float(rng.choice([1.0, 2.0, 4.0]))
        blocks = random_blocks(rng, num_blocks, size, float(rng.uniform(0.05, 0.4)))
        model = FaultModel(0.08, (9.0, 1.0), seed=seed + 1)
        fmaps = model.generate(num_crossbars, size, size)

        delta_mapper = make_mapper(method, sa1_weight)
        mapping, state = delta_mapper.plan_blocks(blocks, fmaps)
        assert_mappings_identical(
            make_mapper(method, sa1_weight).map_blocks(blocks, fmaps), mapping
        )
        kinds = ["injection", "rescan", "wearout", "epsilon"]
        for step in range(3):
            fmaps = apply_delta(rng, model, fmaps, kinds[int(rng.integers(4))], size)
            mapping, state = delta_mapper.replan_blocks(
                blocks, fmaps, prev_state=state
            )
            cold = make_mapper(method, sa1_weight).map_blocks(blocks, fmaps)
            assert_mappings_identical(cold, mapping)
        assert delta_mapper.cost_engine.stats.delta_plans >= 1

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_chunked_batches_identical_under_deltas(self, seed):
        """B > M exercises the time-multiplexed chunk loop: every chunk keeps
        its own plan context and the merged mapping must still match cold."""
        rng = np.random.default_rng(seed)
        num_crossbars = int(rng.integers(2, 5))
        num_blocks = num_crossbars * int(rng.integers(2, 4)) + int(rng.integers(0, 2))
        size = 8
        method = METHODS[seed % 3]
        blocks = random_blocks(rng, num_blocks, size, 0.2)
        model = FaultModel(0.1, (1.0, 1.0), seed=seed + 3)
        fmaps = model.generate(num_crossbars, size, size)

        delta_mapper = make_mapper(method)
        _, state = delta_mapper.plan_blocks(blocks, fmaps)
        for _ in range(2):
            fmaps = apply_delta(rng, model, fmaps, "injection", size)
            mapping, state = delta_mapper.replan_blocks(blocks, fmaps, prev_state=state)
            assert_mappings_identical(
                make_mapper(method).map_blocks(blocks, fmaps), mapping
            )

    @pytest.mark.parametrize("method", METHODS)
    def test_strategy_replan_identical_to_fresh_plan(self, method):
        """FaReStrategy.replan_adjacency == a fresh strategy's plan_adjacency
        on the new maps, across batches."""
        rng = np.random.default_rng(17)
        size, num_crossbars = 8, 6
        blocks_per_batch = [random_blocks(rng, 4, size, 0.2) for _ in range(3)]
        model = FaultModel(0.08, (9.0, 1.0), seed=18)
        fmaps = model.generate(num_crossbars, size, size)
        ids = list(range(num_crossbars))

        delta = FaReStrategy(row_method=method)
        cold = FaReStrategy(row_method=method, use_delta_planning=False)
        first = delta.plan_adjacency(blocks_per_batch, fmaps, ids, size)
        for ref, got in zip(
            cold.plan_adjacency(blocks_per_batch, fmaps, ids, size), first
        ):
            assert_mappings_identical(ref, got)
        for _ in range(2):
            fmaps = apply_delta(rng, model, fmaps, "injection", size)
            replanned = delta.replan_adjacency(blocks_per_batch, fmaps, ids, size)
            fresh = FaReStrategy(
                row_method=method, use_delta_planning=False
            ).plan_adjacency(blocks_per_batch, fmaps, ids, size)
            for ref, got in zip(fresh, replanned):
                assert_mappings_identical(ref, got)


# --------------------------------------------------------------------------- #
# Stats-counter consistency
# --------------------------------------------------------------------------- #
class TestDeltaCounters:
    def _planned(self, method="greedy", seed=0, num_blocks=4, num_crossbars=6, size=8):
        rng = np.random.default_rng(seed)
        blocks = random_blocks(rng, num_blocks, size, 0.25)
        model = FaultModel(0.1, (9.0, 1.0), seed=seed + 1)
        fmaps = model.generate(num_crossbars, size, size)
        mapper = make_mapper(method)
        _, state = mapper.plan_blocks(blocks, fmaps)
        return rng, model, mapper, blocks, fmaps, state

    def test_reexamined_plus_reused_covers_the_grid(self):
        rng, model, mapper, blocks, fmaps, state = self._planned()
        stats = mapper.cost_engine.stats
        num_blocks, num_maps = len(blocks), len(fmaps)
        changed = [1, 4]
        for index in changed:
            fmaps[index] = model.inject_additional([fmaps[index]], 0.05)[0]
        before_pairs = stats.pairs_total
        _, state = mapper.replan_blocks(blocks, fmaps, prev_state=state)
        assert stats.delta_plans == 1
        assert stats.delta_full_replans == 0
        assert stats.delta_maps_changed == len(changed)
        # Only the changed columns are re-examined; the rest splice through.
        assert stats.pairs_total - before_pairs == num_blocks * len(changed)
        assert stats.delta_pairs_reused == num_blocks * (num_maps - len(changed))
        assert (stats.pairs_total - before_pairs) + stats.delta_pairs_reused == (
            num_blocks * num_maps
        )

    def test_noop_rescan_reuses_everything(self):
        _, _, mapper, blocks, fmaps, state = self._planned(seed=5)
        stats = mapper.cost_engine.stats
        before_pairs = stats.pairs_total
        mapping, _ = mapper.replan_blocks(
            blocks, [f.copy() for f in fmaps], prev_state=state
        )
        assert stats.pairs_total == before_pairs
        assert stats.delta_maps_changed == 0
        assert stats.delta_pairs_reused == len(blocks) * len(fmaps)
        assert_mappings_identical(make_mapper("greedy").map_blocks(blocks, fmaps), mapping)

    @pytest.mark.parametrize("method", ["hungarian", "bsuitor"])
    def test_warm_start_counters_track_exact_methods(self, method):
        rng, model, mapper, blocks, fmaps, state = self._planned(
            method=method, seed=9, num_blocks=5, num_crossbars=8, size=8
        )
        fmaps[2] = model.inject_additional([fmaps[2]], 0.04)[0]
        _, state = mapper.replan_blocks(blocks, fmaps, prev_state=state)
        stats = mapper.cost_engine.stats
        # Every warm attempt either lands (hit) or falls back to the cold
        # solver (fallback) — never disappears.
        assert stats.warm_start_hits + stats.warm_start_fallbacks > 0
        if method == "bsuitor":
            # Cached preference orders are valid whenever the cost column is
            # unchanged, so offered hints always land.
            assert stats.warm_start_fallbacks == 0

    def test_greedy_never_warm_starts(self):
        _, model, mapper, blocks, fmaps, state = self._planned(method="greedy", seed=11)
        fmaps[0] = model.inject_additional([fmaps[0]], 0.05)[0]
        mapper.replan_blocks(blocks, fmaps, prev_state=state)
        stats = mapper.cost_engine.stats
        assert stats.warm_start_hits == 0 and stats.warm_start_fallbacks == 0

    def test_stats_exported_with_mapping_prefix(self):
        _, model, mapper, blocks, fmaps, state = self._planned(seed=13)
        fmaps[1] = model.inject_additional([fmaps[1]], 0.05)[0]
        mapper.replan_blocks(blocks, fmaps, prev_state=state)
        exported = mapper.cost_engine.stats.as_dict()
        for key in (
            "mapping_delta_plans",
            "mapping_delta_full_replans",
            "mapping_delta_maps_changed",
            "mapping_delta_pairs_reused",
            "mapping_warm_start_hits",
            "mapping_warm_start_fallbacks",
        ):
            assert key in exported
        assert exported["mapping_delta_plans"] == 1.0


# --------------------------------------------------------------------------- #
# Invalidation: stale contexts must fall back to a (counted) full re-plan
# --------------------------------------------------------------------------- #
class TestDeltaInvalidation:
    def _planned(self, **kwargs):
        return TestDeltaCounters()._planned(**kwargs)

    def test_changed_blocks_force_full_replan(self):
        rng, model, mapper, blocks, fmaps, state = self._planned(seed=21)
        new_blocks = [b.copy() for b in blocks]
        new_blocks[0][0, :] = 1.0  # different sparsity pattern
        mapping, _ = mapper.replan_blocks(new_blocks, fmaps, prev_state=state)
        stats = mapper.cost_engine.stats
        assert stats.delta_full_replans == 1
        assert stats.delta_plans == 0
        assert_mappings_identical(
            make_mapper("greedy").map_blocks(new_blocks, fmaps), mapping
        )

    def test_changed_crossbar_count_forces_full_replan(self):
        _, model, mapper, blocks, fmaps, state = self._planned(seed=23)
        fewer = fmaps[:-1]
        mapping, _ = mapper.replan_blocks(blocks, fewer, prev_state=state)
        assert mapper.cost_engine.stats.delta_full_replans == 1
        assert_mappings_identical(
            make_mapper("greedy").map_blocks(blocks, fewer), mapping
        )

    def test_foreign_engine_config_forces_full_replan(self):
        # A plan state captured under one engine configuration must not leak
        # into an engine with different solver semantics.
        _, model, donor, blocks, fmaps, state = self._planned(seed=25)
        other = make_mapper("greedy", sa1_weight=7.0)
        mapping, _ = other.replan_blocks(blocks, fmaps, prev_state=state)
        assert other.cost_engine.stats.delta_full_replans == 1
        assert_mappings_identical(
            make_mapper("greedy", sa1_weight=7.0).map_blocks(blocks, fmaps), mapping
        )

    def test_changed_chunk_count_forces_full_replan(self):
        _, model, mapper, blocks, fmaps, state = self._planned(
            seed=27, num_blocks=4, num_crossbars=4
        )
        more_blocks = blocks + blocks  # 8 blocks over 4 crossbars: 2 chunks
        mapping, _ = mapper.replan_blocks(more_blocks, fmaps, prev_state=state)
        assert mapper.cost_engine.stats.delta_full_replans == 1
        assert_mappings_identical(
            make_mapper("greedy").map_blocks(more_blocks, fmaps), mapping
        )

    def test_missing_state_is_a_cold_plan_not_an_invalidation(self):
        _, _, mapper, blocks, fmaps, _ = self._planned(seed=29)
        mapper.replan_blocks(blocks, fmaps, prev_state=None)
        assert mapper.cost_engine.stats.delta_full_replans == 0

    def test_plan_state_shape_recorded(self):
        _, _, mapper, blocks, fmaps, state = self._planned(seed=31)
        assert isinstance(state, MapperPlanState)
        assert state.num_crossbars == len(fmaps)
        assert len(state.chunk_contexts) == 1
