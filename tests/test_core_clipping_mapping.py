"""Tests for weight clipping and the fault-aware mapping algorithm (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clipping import WeightClipper
from repro.core.mapping import (
    BatchMapping,
    BlockMapping,
    FaultAwareMapper,
    block_crossbar_cost,
    block_row_cost_matrix,
    sequential_mapping,
)
from repro.hardware.faults import FaultMap, FaultModel, apply_faults_to_binary
from repro.nn.gcn import GCN


class TestWeightClipper:
    def test_clip_array(self):
        clipper = WeightClipper(0.5)
        out = clipper.clip_array(np.array([-2.0, 0.2, 3.0]))
        np.testing.assert_allclose(out, [-0.5, 0.2, 0.5])

    def test_clip_model_only_2d(self):
        model = GCN(4, 8, 3, rng=0)
        for _, param in model.named_parameters():
            if param.data.ndim == 2:
                param.data += 10.0
        clipped = WeightClipper(1.0).clip_model(model)
        assert clipped > 0
        for _, param in model.named_parameters():
            if param.data.ndim == 2:
                assert np.all(np.abs(param.data) <= 1.0)

    def test_clip_model_named_subset(self):
        model = GCN(4, 8, 3, rng=0)
        names = [name for name, p in model.named_parameters() if p.data.ndim == 2]
        target = names[0]
        for _, param in model.named_parameters():
            param.data = np.full_like(param.data, 5.0)
        WeightClipper(1.0).clip_model(model, parameter_names=[target])
        params = dict(model.named_parameters())
        assert np.all(np.abs(params[target].data) <= 1.0)
        assert np.all(params[names[1]].data == 5.0)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            WeightClipper(0.0)

    def test_suggest_threshold_positive(self):
        model = GCN(4, 8, 3, rng=0)
        assert WeightClipper.suggest_threshold(model) > 0


class TestRowCostMatrix:
    def test_zero_for_fault_free(self):
        block = np.eye(8)
        total, sa0, sa1 = block_row_cost_matrix(block, FaultMap.empty(8, 8))
        assert total.sum() == 0

    def test_sa0_counts_deleted_edges(self):
        block = np.zeros((4, 4))
        block[0, 0] = 1.0
        fmap = FaultMap.from_indices((4, 4), sa0_indices=[(2, 0)])
        total, sa0, sa1 = block_row_cost_matrix(block, fmap)
        # Only mapping block row 0 onto crossbar row 2 deletes the edge.
        assert sa0[0, 2] == 1.0
        assert sa0.sum() == 1.0
        assert sa1.sum() == 0.0

    def test_sa1_counts_spurious_edges(self):
        block = np.ones((3, 3))
        block[1, :] = 0.0
        fmap = FaultMap.from_indices((3, 3), sa1_indices=[(0, 0)])
        total, sa0, sa1 = block_row_cost_matrix(block, fmap, sa1_weight=2.0)
        # Only the all-zero block row 1 suffers a spurious edge on crossbar row 0.
        assert sa1[1, 0] == 1.0
        assert total[1, 0] == 2.0

    def test_sa1_weighting(self):
        block = np.zeros((2, 2))
        fmap = FaultMap.from_indices((2, 2), sa1_indices=[(0, 0)])
        total_w1, _, _ = block_row_cost_matrix(block, fmap, sa1_weight=1.0)
        total_w5, _, _ = block_row_cost_matrix(block, fmap, sa1_weight=5.0)
        assert total_w5[0, 0] == 5 * total_w1[0, 0]

    def test_figure1b_example_cost(self):
        """The Fig. 1(b) example: identity mapping incurs 3 mismatches."""
        ideal = np.array(
            [
                [1, 0, 0, 0],
                [0, 1, 1, 0],
                [1, 0, 0, 1],
                [0, 0, 0, 0],
            ],
            dtype=float,
        )
        faulty = np.array(
            [
                [1, 0, 0, 1],
                [0, 1, 1, 0],
                [0, 1, 0, 1],
                [0, 0, 0, 0],
            ],
            dtype=float,
        )
        diff = ideal != faulty
        sa1 = diff & (faulty == 1)
        sa0 = diff & (faulty == 0)
        fmap = FaultMap(sa0, sa1)
        total, _, _ = block_row_cost_matrix(ideal, fmap, sa1_weight=1.0)
        identity_cost = total[np.arange(4), np.arange(4)].sum()
        assert identity_cost == 3.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            block_row_cost_matrix(np.zeros((3, 3)), FaultMap.empty(4, 4))

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            block_row_cost_matrix(np.zeros((2, 2)), FaultMap.empty(2, 2), sa1_weight=-1)


class TestBlockCrossbarCost:
    def test_fault_free_shortcut(self):
        cost, perm, sa1 = block_crossbar_cost(np.eye(6), FaultMap.empty(6, 6))
        assert cost == 0.0 and sa1 == 0.0
        np.testing.assert_array_equal(perm, np.arange(6))

    def test_permutation_avoids_fault(self):
        # One SA1 fault on row 0; block row 0 has a 1 in that column, all other
        # rows are zero there -> the matcher should place a compatible row on it.
        block = np.zeros((4, 4))
        block[0, 0] = 1.0
        fmap = FaultMap.from_indices((4, 4), sa1_indices=[(0, 0)])
        cost, perm, sa1 = block_crossbar_cost(block, fmap, sa1_weight=4.0, method="hungarian")
        assert cost == 0.0
        assert perm[0] == 0  # block row 0 (which has the 1) sits on the SA1 cell

    @pytest.mark.parametrize("method", ["greedy", "hungarian", "bsuitor"])
    def test_methods_return_valid_permutations(self, method, small_fault_map, rng):
        block = (rng.random((16, 16)) > 0.9).astype(float)
        cost, perm, _ = block_crossbar_cost(block, small_fault_map, method=method)
        assert sorted(perm.tolist()) == list(range(16))
        assert cost >= 0

    def test_cost_not_worse_than_identity(self, small_fault_map, rng):
        block = (rng.random((16, 16)) > 0.9).astype(float)
        total, _, _ = block_row_cost_matrix(block, small_fault_map, sa1_weight=4.0)
        identity_cost = float(total[np.arange(16), np.arange(16)].sum())
        cost, _, _ = block_crossbar_cost(block, small_fault_map, sa1_weight=4.0, method="hungarian")
        assert cost <= identity_cost + 1e-9


class TestSequentialMapping:
    def test_round_robin(self):
        mapping = sequential_mapping(5, 8, 3)
        assert [m.crossbar_index for m in mapping.blocks] == [0, 1, 2, 0, 1]
        for m in mapping.blocks:
            np.testing.assert_array_equal(m.row_permutation, np.arange(8))

    def test_requires_crossbars(self):
        with pytest.raises(ValueError):
            sequential_mapping(2, 8, 0)

    def test_cost_defaults_to_zero_not_nan(self):
        """NaN costs used to poison BatchMapping.total_cost for baselines."""
        mapping = sequential_mapping(4, 8, 2)
        assert mapping.total_cost == 0.0
        assert not np.isnan(mapping.total_cost)

    def test_reports_true_identity_mismatch_cost(self):
        block = np.zeros((4, 4))
        block[0, 0] = 1.0  # lands on the SA0 cell below (deleted edge)
        fmap = FaultMap.from_indices(
            (4, 4), sa0_indices=[(0, 0)], sa1_indices=[(1, 1)]
        )
        mapping = sequential_mapping(
            1, 4, 1, blocks=[block], fault_maps=[fmap], sa1_weight=4.0
        )
        # One SA0 mismatch plus one weighted SA1 mismatch (block[1, 1] == 0).
        assert mapping.blocks[0].cost == 1.0 + 4.0 * 1.0
        assert mapping.blocks[0].sa1_mismatch == 1.0
        assert mapping.total_cost == 5.0

    def test_fault_free_costs_zero(self):
        block = np.ones((4, 4))
        mapping = sequential_mapping(
            1, 4, 1, blocks=[block], fault_maps=[FaultMap.empty(4, 4)]
        )
        assert mapping.blocks[0].cost == 0.0

    def test_length_validation(self):
        with pytest.raises(ValueError):
            sequential_mapping(2, 4, 1, blocks=[np.zeros((4, 4))])
        with pytest.raises(ValueError):
            sequential_mapping(
                1, 4, 2, blocks=[np.zeros((4, 4))], fault_maps=[FaultMap.empty(4, 4)]
            )


class TestFaultAwareMapper:
    @staticmethod
    def _random_blocks(num_blocks, size, density, seed):
        rng = np.random.default_rng(seed)
        return [(rng.random((size, size)) < density).astype(float) for _ in range(num_blocks)]

    @staticmethod
    def _fault_maps(num, size, density, ratio, seed):
        model = FaultModel(density, ratio, seed=seed)
        return model.generate(num, size, size)

    def test_mapping_is_injective(self):
        blocks = self._random_blocks(4, 16, 0.05, 0)
        fmaps = self._fault_maps(6, 16, 0.05, (9, 1), 1)
        mapper = FaultAwareMapper(row_method="greedy")
        mapping = mapper.map_blocks(blocks, fmaps)
        crossbars = [m.crossbar_index for m in mapping.blocks]
        assert len(set(crossbars)) == len(crossbars)
        assert sorted(m.block_index for m in mapping.blocks) == list(range(4))

    def test_cost_beats_sequential(self):
        """Algorithm 1 must not corrupt the adjacency more than naive mapping."""
        blocks = self._random_blocks(5, 16, 0.03, 2)
        fmaps = self._fault_maps(10, 16, 0.08, (1, 1), 3)
        mapper = FaultAwareMapper(sa1_weight=4.0, row_method="hungarian")
        mapping = mapper.map_blocks(blocks, fmaps)

        def corrupted_entries(mapping_obj):
            total = 0
            for m in mapping_obj.blocks:
                block = blocks[m.block_index]
                fmap = fmaps[m.crossbar_index]
                stored = np.zeros_like(block)
                stored[m.row_permutation] = block
                read = apply_faults_to_binary(stored, fmap)[m.row_permutation]
                total += int(np.sum(read != block))
            return total

        naive = sequential_mapping(5, 16, 10)
        assert corrupted_entries(mapping) <= corrupted_entries(naive)

    def test_more_blocks_than_crossbars_time_multiplexes(self):
        blocks = self._random_blocks(5, 8, 0.1, 0)
        fmaps = self._fault_maps(2, 8, 0.1, (9, 1), 0)
        mapping = FaultAwareMapper().map_blocks(blocks, fmaps)
        assert sorted(m.block_index for m in mapping.blocks) == list(range(5))
        # Within each chunk of two blocks the crossbars are distinct.
        chunks = [mapping.blocks[i : i + 2] for i in range(0, 5, 2)]
        for chunk in chunks:
            used = [m.crossbar_index for m in chunk]
            assert len(set(used)) == len(used)

    def test_no_crossbars_rejected(self):
        blocks = self._random_blocks(2, 8, 0.1, 0)
        with pytest.raises(ValueError):
            FaultAwareMapper().map_blocks(blocks, [])

    def test_empty_blocks(self):
        mapping = FaultAwareMapper().map_blocks([], [])
        assert len(mapping) == 0

    def test_crossbar_ids_respected(self):
        blocks = self._random_blocks(3, 8, 0.1, 4)
        fmaps = self._fault_maps(5, 8, 0.05, (9, 1), 5)
        ids = [10, 11, 12, 13, 14]
        mapping = FaultAwareMapper().map_blocks(blocks, fmaps, crossbar_ids=ids)
        assert all(m.crossbar_index in ids for m in mapping.blocks)

    def test_pruning_skips_hopeless_crossbars(self):
        # One crossbar is saturated with SA1 faults; with spare crossbars
        # available it should not be used.
        blocks = self._random_blocks(2, 8, 0.02, 6)
        bad = FaultMap(np.zeros((8, 8), bool), np.ones((8, 8), bool))
        good = [FaultMap.empty(8, 8) for _ in range(3)]
        mapper = FaultAwareMapper(prune_crossbars=True)
        mapping = mapper.map_blocks(blocks, [bad] + good, crossbar_ids=[0, 1, 2, 3])
        used = {m.crossbar_index for m in mapping.blocks}
        assert 0 not in used
        assert 0 in mapping.pruned_crossbars

    def test_relaxation_when_blocks_equal_crossbars(self):
        # Every crossbar is fully SA1-faulty, so the sparsest block is relaxed.
        blocks = [np.zeros((4, 4)), np.ones((4, 4))]
        all_bad = [FaultMap(np.zeros((4, 4), bool), np.ones((4, 4), bool)) for _ in range(2)]
        mapper = FaultAwareMapper(prune_crossbars=False, relax_sparsest_block=True)
        mapping = mapper.map_blocks(blocks, all_bad)
        assert mapping.relaxed_blocks == [0]
        assert sorted(m.block_index for m in mapping.blocks) == [0, 1]

    def test_update_row_permutations_keeps_assignment(self):
        blocks = self._random_blocks(3, 16, 0.05, 7)
        fmaps = self._fault_maps(5, 16, 0.05, (9, 1), 8)
        mapper = FaultAwareMapper()
        mapping = mapper.map_blocks(blocks, fmaps)
        new_maps = {m.crossbar_index: fmaps[m.crossbar_index] for m in mapping.blocks}
        refreshed = mapper.update_row_permutations(mapping, blocks, new_maps)
        assert [m.crossbar_index for m in refreshed.blocks] == [
            m.crossbar_index for m in mapping.blocks
        ]

    def test_sa1_weight_validation(self):
        with pytest.raises(ValueError):
            FaultAwareMapper(sa1_weight=0.5)

    def test_batch_mapping_accessors(self):
        blocks = self._random_blocks(2, 8, 0.1, 9)
        fmaps = self._fault_maps(3, 8, 0.05, (9, 1), 10)
        mapping = FaultAwareMapper().map_blocks(blocks, fmaps)
        assert isinstance(mapping, BatchMapping)
        assert mapping.total_cost >= 0
        assert mapping.crossbar_for_block(0).block_index == 0
        with pytest.raises(KeyError):
            mapping.crossbar_for_block(99)

    def test_crossbar_for_block_index_survives_mutation(self):
        """The lazily built O(1) lookup must notice list/index mutations."""
        mapping = sequential_mapping(3, 4, 2)
        assert mapping.crossbar_for_block(1).block_index == 1  # builds index
        extra = BlockMapping(
            block_index=7,
            crossbar_index=0,
            row_permutation=np.arange(4, dtype=np.int64),
            cost=0.0,
        )
        mapping.blocks.append(extra)
        assert mapping.crossbar_for_block(7) is extra
        mapping.blocks[0].block_index = 42  # in-place renumber (chunk merging)
        assert mapping.crossbar_for_block(42).block_index == 42
        with pytest.raises(KeyError):
            mapping.crossbar_for_block(0)

    def test_crossbar_for_block_sees_slot_replacement(self):
        """Replacing a list slot with a same-index object must not serve the
        removed object from the cached lookup."""
        mapping = sequential_mapping(2, 4, 1)
        assert mapping.crossbar_for_block(0).cost == 0.0  # builds index
        replacement = BlockMapping(
            block_index=0,
            crossbar_index=0,
            row_permutation=np.arange(4, dtype=np.int64),
            cost=123.0,
        )
        mapping.blocks[0] = replacement
        assert mapping.crossbar_for_block(0) is replacement


class TestMappingProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_mapping_always_valid(self, seed):
        rng = np.random.default_rng(seed)
        num_blocks = int(rng.integers(1, 5))
        num_crossbars = int(rng.integers(num_blocks, num_blocks + 4))
        blocks = [(rng.random((8, 8)) < 0.1).astype(float) for _ in range(num_blocks)]
        fmaps = FaultModel(0.1, (1, 1), seed=seed).generate(num_crossbars, 8, 8)
        mapping = FaultAwareMapper(row_method="greedy").map_blocks(blocks, fmaps)
        used = [m.crossbar_index for m in mapping.blocks]
        assert len(set(used)) == len(used)
        for m in mapping.blocks:
            assert sorted(m.row_permutation.tolist()) == list(range(8))
