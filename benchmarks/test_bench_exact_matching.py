"""Exact row-method throughput — per-pair solves vs. the batched stack solvers.

PR 1's cost engine vectorised the *greedy* row method end-to-end, but the
exact methods (``hungarian``, the paper's ``bsuitor``) kept calling one
scalar Python solver per (block, fault-map) pair — on a cold cache the
dedupe/skip machinery alone buys them almost nothing (random blocks against
random fault maps have no duplicates), so a 16 × 32 Hungarian mapping still
took seconds.  The lockstep batched solvers in
:mod:`repro.core.batch_solvers` close that gap.  This benchmark maps the same
batches through three paths per exact method:

* **seed** — ``FaultAwareMapper(use_cost_engine=False)``: the original
  ``B × M`` double loop, one scalar solve per pair;
* **engine (cold, per-pair)** — the cost engine with
  ``use_batched_exact=False``: batched cost matrices and dedupe, scalar
  solver calls (documents that dedupe alone is not the win);
* **engine (cold/warm, batched)** — the default path, the whole uncached
  pair stack solved by one lockstep Hungarian / b-Suitor run.

All paths must return identical mappings (exhaustively proven in
``tests/test_core_cost_engine.py``; spot-checked here).  The headline
configuration — 16 blocks × 32 crossbars at 10 % faulty cells, the same
shape the greedy benchmark gates — must show at least a 3× cold speedup of
the batched path over the seed loop for *both* exact methods.
"""

import time

import numpy as np

from repro.core.mapping import FaultAwareMapper
from repro.hardware.faults import FaultModel
from repro.utils.tabulate import format_table

from _bench_utils import bench_scale, bench_seed, record_result

CROSSBAR_SIZE = 32
BLOCK_DENSITY = 0.08
HEADLINE = (16, 32, 0.10)  # (blocks, crossbars, fault rate) — acceptance gate
SWEEP_CI = [HEADLINE]
SWEEP_PAPER = [
    (8, 16, 0.10),
    HEADLINE,
    (16, 32, 0.20),
]
METHODS = ("hungarian", "bsuitor")
MIN_COLD_SPEEDUP = 3.0


def _mapper(method, use_cost_engine=True, use_batched_exact=True):
    return FaultAwareMapper(
        row_method=method,
        use_cost_engine=use_cost_engine,
        use_batched_exact=use_batched_exact,
    )


def _make_case(num_blocks, num_crossbars, fault_rate, seed):
    rng = np.random.default_rng(seed)
    blocks = [
        (rng.random((CROSSBAR_SIZE, CROSSBAR_SIZE)) < BLOCK_DENSITY).astype(float)
        for _ in range(num_blocks)
    ]
    fmaps = FaultModel(fault_rate, (9.0, 1.0), seed=seed + 1).generate(
        num_crossbars, CROSSBAR_SIZE, CROSSBAR_SIZE
    )
    return blocks, fmaps


def _time_path(make_mapper, blocks, fmaps, repetitions, reuse_mapper=False):
    """Best-of-N blocks-per-second of ``map_blocks`` (robust to timer noise)."""
    mapper = make_mapper() if reuse_mapper else None
    if reuse_mapper:
        mapper.map_blocks(blocks, fmaps)  # populate the cache
    best = float("inf")
    for _ in range(repetitions):
        active = mapper if reuse_mapper else make_mapper()
        start = time.perf_counter()
        mapping = active.map_blocks(blocks, fmaps)
        best = min(best, time.perf_counter() - start)
    return len(blocks) / best, mapping


def _identical(a, b):
    if a.pruned_crossbars != b.pruned_crossbars or a.relaxed_blocks != b.relaxed_blocks:
        return False
    for x, y in zip(a.blocks, b.blocks):
        if (
            x.block_index != y.block_index
            or x.crossbar_index != y.crossbar_index
            or x.cost != y.cost
            or x.sa1_mismatch != y.sa1_mismatch
            or not np.array_equal(x.row_permutation, y.row_permutation)
        ):
            return False
    return True


def test_bench_exact_matching(run_once):
    scale = bench_scale()
    seed = bench_seed()
    sweep = SWEEP_CI if scale == "ci" else SWEEP_PAPER
    # The seed Hungarian path takes seconds per repetition, so it gets the
    # fewest; the measured interval is long enough for timer noise not to
    # matter.
    seed_reps, scalar_reps, batch_reps = (1, 1, 3) if scale == "ci" else (2, 2, 6)

    def run_sweep():
        results = {}
        for case_index, case in enumerate(sweep):
            num_blocks, num_crossbars, fault_rate = case
            blocks, fmaps = _make_case(
                num_blocks, num_crossbars, fault_rate, seed + 17 * case_index
            )
            for method in METHODS:
                seed_bps, seed_mapping = _time_path(
                    lambda: _mapper(method, use_cost_engine=False),
                    blocks, fmaps, seed_reps,
                )
                scalar_bps, scalar_mapping = _time_path(
                    lambda: _mapper(method, use_batched_exact=False),
                    blocks, fmaps, scalar_reps,
                )
                cold_bps, cold_mapping = _time_path(
                    lambda: _mapper(method), blocks, fmaps, batch_reps
                )
                warm_bps, warm_mapping = _time_path(
                    lambda: _mapper(method), blocks, fmaps, batch_reps,
                    reuse_mapper=True,
                )
                assert _identical(seed_mapping, scalar_mapping)
                assert _identical(seed_mapping, cold_mapping)
                assert _identical(seed_mapping, warm_mapping)
                results[(method, case)] = {
                    "seed_bps": seed_bps,
                    "scalar_bps": scalar_bps,
                    "cold_bps": cold_bps,
                    "warm_bps": warm_bps,
                }
        return results

    results = run_once(run_sweep)

    rows = []
    for (method, (num_blocks, num_crossbars, fault_rate)), r in results.items():
        rows.append(
            [
                f"{method} {num_blocks}x{num_crossbars} @ {fault_rate:.0%}",
                r["seed_bps"],
                r["scalar_bps"],
                r["cold_bps"],
                r["warm_bps"],
                r["cold_bps"] / r["seed_bps"],
                r["warm_bps"] / r["seed_bps"],
            ]
        )
    metrics = {}
    for method in METHODS:
        r = results[(method, HEADLINE)]
        prefix = f"exact_matching.{method}"
        metrics[f"{prefix}_seed_blocks_per_s"] = r["seed_bps"]
        metrics[f"{prefix}_scalar_engine_blocks_per_s"] = r["scalar_bps"]
        metrics[f"{prefix}_cold_blocks_per_s"] = r["cold_bps"]
        metrics[f"{prefix}_warm_blocks_per_s"] = r["warm_bps"]
        metrics[f"{prefix}_cold_speedup"] = r["cold_bps"] / r["seed_bps"]
        metrics[f"{prefix}_warm_speedup"] = r["warm_bps"] / r["seed_bps"]
    record_result(
        "exact_matching_throughput",
        format_table(
            [
                "Method / blocks x crossbars @ fault rate",
                "Seed (blocks/s)",
                "Engine per-pair (blocks/s)",
                "Engine batched cold (blocks/s)",
                "Engine batched warm (blocks/s)",
                "Cold speedup",
                "Warm speedup",
            ],
            rows,
            title=(
                "Exact row-method mapping throughput — per-pair solves vs. "
                "lockstep batched solvers"
            ),
        ),
        metrics=metrics,
    )

    # Acceptance gate: ≥3× cold speedup over the seed loop for both exact
    # methods at 16 blocks × 32 crossbars, 10 % faulty cells; the warm
    # (cached-refresh) path must not fall behind the cold path by more than
    # measurement noise.
    for method in METHODS:
        headline = results[(method, HEADLINE)]
        assert headline["cold_bps"] >= MIN_COLD_SPEEDUP * headline["seed_bps"], (
            f"{method}: batched cold speedup "
            f"{headline['cold_bps'] / headline['seed_bps']:.1f}x < "
            f"{MIN_COLD_SPEEDUP}x"
        )
        assert headline["warm_bps"] >= headline["cold_bps"] * 0.5
