"""Headline claims of the abstract/introduction, paper vs measured.

1. ~47.6 % accuracy restoration on Reddit under the 1:1 ratio.
2. <1 % (9:1) / ~1.1 % (1:1) accuracy loss versus fault-free.
3. ~1 % timing overhead.
4. Up to 4x speed-up over neuron reordering.
"""

from repro.experiments.headline import format_headline, run_headline

from _bench_utils import bench_epochs, bench_scale, bench_seed, record_result


def test_bench_headline(run_once):
    result = run_once(
        run_headline,
        scale=bench_scale(),
        seed=bench_seed(),
        epochs=bench_epochs(),
    )

    restoration = result.claim("accuracy_restoration_reddit_1to1").measured_value
    drop_9_1 = result.claim("fare_accuracy_drop_9to1").measured_value
    drop_1_1 = result.claim("fare_accuracy_drop_1to1").measured_value
    overhead = result.claim("fare_timing_overhead").measured_value
    speedup = result.claim("fare_speedup_over_nr").measured_value

    # FARe restores a substantial fraction of the lost accuracy (paper: 47.6
    # points; the CI-scale surrogate restores less in absolute terms because
    # the unprotected baseline does not collapse as far, but the direction
    # and order of magnitude hold).
    assert restoration > 0.1
    # FARe's accuracy drop versus fault-free stays small for both ratios.
    assert drop_9_1 < 0.08
    assert drop_1_1 < 0.12
    # Timing overhead around one percent; speed-up over NR of a few x.
    assert overhead < 0.05
    assert speedup > 2.0

    record_result("headline", format_headline(result))
