"""Ablation — row-permutation matcher inside Algorithm 1.

The paper uses the b-Suitor half-approximation for the row-to-row matching;
this ablation compares it against the exact Hungarian solver and the fast
greedy heuristic at the mapping level: total weighted mismatch cost and the
number of adjacency entries actually corrupted after mapping one batch.
"""

import time

import numpy as np

from repro.core.strategies import FaReStrategy
from repro.experiments import configs
from repro.graph.datasets import load_dataset
from repro.graph.sampling import ClusterBatchSampler
from repro.hardware.faults import FaultModel
from repro.pipeline.mapping_engine import AdjacencyCrossbarMapper, HardwareEnvironment
from repro.utils.tabulate import format_table

from _bench_utils import bench_scale, bench_seed, record_result

MATCHERS = ("greedy", "hungarian", "bsuitor")


def _setup(scale, seed):
    settings = configs.scale_settings(scale)
    hw_config = configs.hardware_config(scale)
    graph = load_dataset("reddit", scale=scale, seed=seed)
    sampler = ClusterBatchSampler(graph, settings.num_parts, settings.batch_clusters, seed=seed)
    batch = next(iter(sampler.epoch(shuffle=False)))
    hardware = HardwareEnvironment(
        config=hw_config,
        fault_model=FaultModel(0.05, (1.0, 1.0), seed=seed),
        weight_fraction=settings.weight_fraction,
        num_crossbars=settings.num_crossbars,
    )
    mapper = AdjacencyCrossbarMapper(hardware.adjacency_crossbars, hw_config)
    blocks, grid = mapper.decompose(batch.subgraph.adjacency)
    return batch.subgraph.adjacency, mapper, blocks, grid, hw_config


def _evaluate(matcher, adjacency, mapper, blocks, grid, hw_config):
    strategy = FaReStrategy(row_method=matcher)
    start = time.perf_counter()
    plan = strategy.plan_adjacency(
        [blocks], mapper.fault_maps(), mapper.crossbar_ids, hw_config.crossbar_rows
    )[0]
    elapsed = time.perf_counter() - start
    faulty = mapper.apply_mapping(adjacency, plan, blocks=blocks, grid=grid)
    corrupted = float(np.abs(faulty.to_dense() - adjacency.to_dense()).sum())
    return plan.total_cost, corrupted, elapsed


def test_bench_ablation_matching(run_once):
    adjacency, mapper, blocks, grid, hw_config = _setup(bench_scale(), bench_seed())

    def sweep():
        return {
            matcher: _evaluate(matcher, adjacency, mapper, blocks, grid, hw_config)
            for matcher in MATCHERS
        }

    results = run_once(sweep)

    rows = [
        [matcher, cost, corrupted, seconds]
        for matcher, (cost, corrupted, seconds) in results.items()
    ]
    record_result(
        "ablation_matching",
        format_table(
            ["Row matcher", "Weighted mismatch cost", "Corrupted entries", "Mapping time (s)"],
            rows,
            title="Ablation — Algorithm 1 row-permutation matcher",
        ),
    )

    # The exact solver can never be beaten on cost; the half-approximation and
    # the greedy heuristic must stay within a modest factor of it.
    hungarian_cost = results["hungarian"][0]
    for matcher in MATCHERS:
        assert results[matcher][0] >= hungarian_cost - 1e-9
        assert results[matcher][0] <= max(2.5 * hungarian_cost, hungarian_cost + 20.0)
    # Every matcher produces a usable mapping (bounded corruption).
    baseline_entries = adjacency.nnz
    for matcher in MATCHERS:
        assert results[matcher][1] < baseline_entries
