"""Helpers shared by the benchmark modules (scale/seed selection, result files).

Scale is controlled with the ``REPRO_BENCH_SCALE`` environment variable
(``ci`` by default; set ``paper`` for the full surrogate sizes), the epoch
count with ``REPRO_BENCH_EPOCHS`` (defaults to the scale's setting) and the
seed with ``REPRO_BENCH_SEED``.

Benchmarks that want to be tracked across PRs pass ``metrics`` (a flat
``name → number`` mapping) to :func:`record_result`; the metrics land in
``benchmarks/results/<name>.json`` and ``benchmarks/run_benchmarks.py``
merges every such file into ``benchmarks/results/bench_summary.json``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "ci")


def bench_epochs() -> Optional[int]:
    value = os.environ.get("REPRO_BENCH_EPOCHS", "")
    return int(value) if value else None


def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "0"))


def record_result(
    name: str, text: str, metrics: Optional[Dict[str, float]] = None
) -> None:
    """Print a result table and persist it under ``benchmarks/results/``.

    The single output channel of every benchmark (see
    ``benchmarks/README.md`` for the full contract and the summary schema).

    Parameters
    ----------
    name:
        Result file stem: the table lands in ``results/<name>.txt`` and the
        metrics in ``results/<name>.json`` (the directory is created on
        demand).
    text:
        Human-readable table; also printed so it survives pytest's capture
        in the ``run_benchmarks.py`` log.
    metrics:
        Optional flat ``metric name → number`` mapping for the
        perf-trajectory summary assembled by ``run_benchmarks.py``
        (merged into ``results/bench_summary.json``).  Values are coerced
        with ``float()``; keys should use the ``"<bench>.<quantity>"``
        dotted convention so the merged summary stays collision-free.
    """
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if metrics is not None:
        payload = {key: float(value) for key, value in metrics.items()}
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
