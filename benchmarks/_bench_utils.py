"""Helpers shared by the benchmark modules (scale/seed selection, result files).

Scale is controlled with the ``REPRO_BENCH_SCALE`` environment variable
(``ci`` by default; set ``paper`` for the full surrogate sizes), the epoch
count with ``REPRO_BENCH_EPOCHS`` (defaults to the scale's setting) and the
seed with ``REPRO_BENCH_SEED``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "ci")


def bench_epochs() -> Optional[int]:
    value = os.environ.get("REPRO_BENCH_EPOCHS", "")
    return int(value) if value else None


def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "0"))


def record_result(name: str, text: str) -> None:
    """Print a result table and persist it under ``benchmarks/results/``."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
