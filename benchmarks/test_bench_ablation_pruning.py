"""Ablation — crossbar pruning and sparsest-block relaxation (Alg. 1, l.12/14).

Compares the mapping produced with and without the two heuristics on a batch
whose candidate crossbars include several heavily SA1-faulted ones.
"""

import numpy as np

from repro.core.mapping import FaultAwareMapper
from repro.experiments import configs
from repro.graph.datasets import load_dataset
from repro.graph.sampling import ClusterBatchSampler
from repro.hardware.faults import FaultMap, FaultModel
from repro.pipeline.mapping_engine import AdjacencyCrossbarMapper, HardwareEnvironment
from repro.utils.tabulate import format_table

from _bench_utils import bench_scale, bench_seed, record_result


def _setup(scale, seed):
    settings = configs.scale_settings(scale)
    hw_config = configs.hardware_config(scale)
    graph = load_dataset("reddit", scale=scale, seed=seed)
    sampler = ClusterBatchSampler(graph, settings.num_parts, settings.batch_clusters, seed=seed)
    batch = next(iter(sampler.epoch(shuffle=False)))
    hardware = HardwareEnvironment(
        config=hw_config,
        fault_model=FaultModel(0.03, (1.0, 1.0), seed=seed),
        weight_fraction=settings.weight_fraction,
        num_crossbars=settings.num_crossbars,
    )
    mapper = AdjacencyCrossbarMapper(hardware.adjacency_crossbars, hw_config)
    # Saturate a handful of crossbars with SA1 faults so pruning has targets.
    rng = np.random.default_rng(seed)
    for crossbar in rng.choice(mapper.crossbars, size=4, replace=False):
        crossbar.set_fault_map(
            FaultMap(
                np.zeros((crossbar.rows, crossbar.cols), dtype=bool),
                rng.random((crossbar.rows, crossbar.cols)) < 0.4,
            )
        )
    blocks, grid = mapper.decompose(batch.subgraph.adjacency)
    return batch.subgraph.adjacency, mapper, blocks, grid


def test_bench_ablation_pruning(run_once):
    adjacency, mapper, blocks, grid = _setup(bench_scale(), bench_seed())

    def sweep():
        outcomes = {}
        for label, prune, relax in (
            ("pruning on", True, True),
            ("pruning off", False, False),
        ):
            fault_aware = FaultAwareMapper(
                sa1_weight=4.0,
                row_method="greedy",
                prune_crossbars=prune,
                relax_sparsest_block=relax,
            )
            plan = fault_aware.map_blocks(blocks, mapper.fault_maps(), mapper.crossbar_ids)
            faulty = mapper.apply_mapping(adjacency, plan, blocks=blocks, grid=grid)
            corrupted = float(np.abs(faulty.to_dense() - adjacency.to_dense()).sum())
            outcomes[label] = (plan.total_cost, corrupted, len(plan.pruned_crossbars))
        return outcomes

    results = run_once(sweep)

    rows = [
        [label, cost, corrupted, pruned]
        for label, (cost, corrupted, pruned) in results.items()
    ]
    record_result(
        "ablation_pruning",
        format_table(
            ["Configuration", "Weighted mismatch cost", "Corrupted entries", "Pruned crossbars"],
            rows,
            title="Ablation — crossbar pruning / sparsest-block relaxation",
        ),
    )

    # Pruning must not make the mapping worse.
    assert results["pruning on"][1] <= results["pruning off"][1] + 1e-9
