"""Fig. 5(b) — test accuracy of all strategies, SA0:SA1 = 1:1.

Paper shape: with equally likely SA0 and SA1 faults every method loses more
accuracy than under the 9:1 ratio, NR degrades markedly (it ignores SA1
criticality), and FARe still restores accuracy to within roughly one point of
fault-free (restoring it by 47.6 % over fault-unaware on Reddit at 5 %).
"""

import numpy as np

from repro.experiments.configs import SA_RATIO_1_1
from repro.experiments.fig5 import format_fig5, run_fig5

from _bench_utils import bench_epochs, bench_scale, bench_seed, record_result


def _mean_accuracy(result, strategy, density):
    return float(
        np.mean([result.accuracy(d, m, density, strategy) for d, m in result.pairs])
    )


def test_bench_fig5b(run_once):
    result = run_once(
        run_fig5,
        sa_ratio=SA_RATIO_1_1,
        scale=bench_scale(),
        seed=bench_seed(),
        epochs=bench_epochs(),
    )

    worst = max(result.densities)
    fault_free = _mean_accuracy(result, "fault_free", worst)
    unaware = _mean_accuracy(result, "fault_unaware", worst)
    nr = _mean_accuracy(result, "nr", worst)
    fare = _mean_accuracy(result, "fare", worst)

    # FARe restores a large fraction of the accuracy fault-unaware loses.
    assert fare > unaware + 0.08
    # FARe stays close to the fault-free reference even at 1:1 (the gap is
    # wider than under 9:1, mirroring the paper's ~1.1 % vs <1 % loss).
    assert fault_free - fare < 0.09
    # NR handles the 1:1 ratio clearly worse than FARe.
    assert fare > nr + 0.05

    # The 1:1 ratio hurts the unprotected baseline at least as much as 9:1
    # does (checked against the headline restoration on Reddit).
    reddit_restoration = result.accuracy("reddit", "gcn", worst, "fare") - result.accuracy(
        "reddit", "gcn", worst, "fault_unaware"
    )
    assert reddit_restoration > 0.1

    record_result("fig5b", format_fig5(result))
