"""Fig. 6(b) — pre- plus post-deployment faults, SA0:SA1 = 1:1.

Paper shape: the harsher 1:1 ratio with emerging faults widens every gap; NR
loses up to ~15 % accuracy while FARe stays within ~2 % of fault-free.
"""

import numpy as np

from repro.experiments.configs import SA_RATIO_1_1
from repro.experiments.fig6 import format_fig6, run_fig6

from _bench_utils import bench_epochs, bench_scale, bench_seed, record_result


def _mean_accuracy(result, strategy, density):
    return float(
        np.mean([result.accuracy(d, m, density, strategy) for d, m in result.pairs])
    )


def test_bench_fig6b(run_once):
    result = run_once(
        run_fig6,
        sa_ratio=SA_RATIO_1_1,
        scale=bench_scale(),
        seed=bench_seed(),
        epochs=bench_epochs(),
    )

    worst = max(result.densities)
    fault_free = _mean_accuracy(result, "fault_free", worst)
    unaware = _mean_accuracy(result, "fault_unaware", worst)
    nr = _mean_accuracy(result, "nr", worst)
    fare = _mean_accuracy(result, "fare", worst)

    assert fare > unaware
    assert fare >= nr
    assert fault_free - fare < 0.11

    record_result("fig6b", format_fig6(result))
