"""Multi-graph vectorised training + memory-bounded million-node streaming.

PR 9 vectorises the epoch loop *across* cluster mini-batches and opens a
streaming mode for graphs far beyond the retained-blocks memory budget.
Two legs:

**Throughput** — the same Fig.-4-shaped FARe training run (community graph,
per-epoch train pass plus train/test accuracy tracking) executed twice:

* **per-batch** — the seed loop: one eval forward per batch *per split* per
  epoch, per-batch adjacency fetches, per-call aggregation
  (``use_shared_eval=use_batched_eval=use_agg_precompute=False``);
* **vectorised** — one shared eval forward per block-diagonal bucket per
  epoch, bucket inputs memoised against the hardware-state version, and the
  first-layer aggregation precomputed once per (adjacency, features) pair.

Histories agree within the documented round-off contract (GCN's
preaggregation reassociates one GEMM; exhaustive equivalence in
``tests/test_multigraph_vectorized.py``).  The figure of merit is epochs
per second; the acceptance gate is a ≥2× end-to-end speedup at CI scale.

**Streaming** — a fresh subprocess generates a large synthetic graph in
chunks, partitions it with the sampling-based streaming matcher, and trains
one epoch in streaming-blocks mode (no retained dense blocks; transient
decomposition per state change).  The child reports its own peak RSS and
the decompose counters; the gate asserts the peak stays under the
documented ceiling and that the bytes *transiently* materialised exceed the
resident peak — the proof that block storage was streamed, not retained.
At CI scale the leg runs 120k nodes; ``REPRO_BENCH_SCALE=paper`` runs the
full 10^6-node graph (~8M edges, measured ≈151 s end-to-end, ≈1.8 GiB
peak — against ≈14.7 GiB of blocks a retained run would hold).
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.strategies import build_strategy
from repro.graph.datasets import synthetic_graph
from repro.graph.normalize import clear_normalize_cache
from repro.hardware.config import ReRAMConfig
from repro.hardware.faults import FaultModel
from repro.pipeline.mapping_engine import HardwareEnvironment
from repro.pipeline.trainer import FaultyTrainer, TrainingConfig
from repro.utils.tabulate import format_table

from _bench_utils import bench_epochs, bench_scale, bench_seed, record_result

MIN_SPEEDUP = 2.0
#: (nodes, epochs, repetitions) per scale.  Long runs amortise the one-time
#: programming/read-back epoch that both paths share, so the steady-state
#: per-epoch advantage dominates the measurement.
SCALES = {"ci": (2000, 24, 5), "paper": (4000, 36, 3)}

#: Streaming leg: (nodes, peak-RSS ceiling in MiB).  Measured peaks on the
#: reference container (child-process VmHWM — ``peak_rss_bytes`` reads
#: /proc, because ru_maxrss survives execve and would report the pytest
#: parent's peak): ≈383 MiB at 120k nodes, ≈1806 MiB at 10^6 nodes —
#: ceilings sit ≈2.7×/1.7× above so the gate trips on regressions to
#: retained/dense behaviour (a retained-blocks run needs ≈14.7 GiB at 10^6
#: nodes; a dense N×N is 8 TB), not on allocator jitter.
STREAM_SCALES = {"ci": (120_000, 1024), "paper": (1_000_000, 3072)}

_STREAM_CHILD = r"""
import json, sys, time
from repro.core.strategies import build_strategy
from repro.graph.datasets import synthetic_graph_streaming
from repro.hardware.config import ReRAMConfig
from repro.hardware.faults import FaultModel
from repro.pipeline.mapping_engine import (
    DECOMPOSE_COUNTERS, HardwareEnvironment, peak_rss_bytes,
)
from repro.pipeline.trainer import FaultyTrainer, TrainingConfig

nodes, seed = int(sys.argv[1]), int(sys.argv[2])
parts = max(2, nodes // 1250)
start = time.perf_counter()
graph = synthetic_graph_streaming(
    nodes, parts, 8, 8, avg_degree=8.0, seed=seed + 3
)
gen_s = time.perf_counter() - start
hardware = HardwareEnvironment(
    config=ReRAMConfig(
        crossbar_rows=64, crossbar_cols=64, crossbars_per_tile=160, num_tiles=2
    ),
    fault_model=FaultModel(0.05, (9.0, 1.0), seed=seed + 4),
    weight_fraction=0.5,
)
training = TrainingConfig(
    epochs=1, hidden_features=16, dropout=0.0, num_parts=parts,
    batch_clusters=1, seed=seed,
)
start = time.perf_counter()
trainer = FaultyTrainer(
    graph, "gcn", build_strategy("fault_unaware"), training, hardware=hardware
)
preprocess_s = time.perf_counter() - start
start = time.perf_counter()
result = trainer.train()
train_s = time.perf_counter() - start
payload = {
    "nodes": graph.num_nodes,
    "edges": int(graph.adjacency.nnz),
    "parts": parts,
    "streaming": trainer.streaming_blocks_active,
    "loss_history": result.loss_history,
    "test_accuracy": result.test_accuracy_history[-1],
    "total_blocks": result.counters["total_blocks"],
    "gen_s": gen_s,
    "preprocess_s": preprocess_s,
    "train_s": train_s,
    "peak_rss_bytes": peak_rss_bytes(),
}
payload.update(DECOMPOSE_COUNTERS.as_dict())
print(json.dumps(payload))
"""


def _build_trainer(vectorised, nodes, epochs, seed):
    graph = synthetic_graph(
        num_nodes=nodes,
        num_communities=12,
        num_features=64,
        num_classes=12,
        avg_degree=16.0,
        name="bench-multigraph",
        seed=seed + 3,
    )
    hardware = HardwareEnvironment(
        config=ReRAMConfig(
            crossbar_rows=16, crossbar_cols=16, crossbars_per_tile=160, num_tiles=2
        ),
        fault_model=FaultModel(0.05, (9.0, 1.0), seed=seed + 1),
        weight_fraction=0.5,
    )
    training = TrainingConfig(
        epochs=epochs,
        hidden_features=64,
        dropout=0.0,
        num_parts=24,
        batch_clusters=2,
        seed=seed,
    )
    return FaultyTrainer(
        graph,
        "gcn",
        build_strategy("fare"),
        training,
        hardware=hardware,
        use_shared_eval=vectorised,
        use_batched_eval=vectorised,
        use_agg_precompute=vectorised,
    )


def _time_paths(nodes, epochs, seed, repetitions):
    """Interleaved best-of-N timing of both paths (fresh trainer each run)."""
    best = {False: float("inf"), True: float("inf")}
    results = {}
    for _ in range(repetitions):
        for vectorised in (False, True):
            clear_normalize_cache()
            trainer = _build_trainer(vectorised, nodes, epochs, seed)
            start = time.perf_counter()
            results[vectorised] = trainer.train()
            best[vectorised] = min(best[vectorised], time.perf_counter() - start)
    return best, results


def test_bench_multigraph_throughput(run_once):
    scale = bench_scale()
    seed = bench_seed()
    nodes, epochs, repetitions = SCALES.get(scale, SCALES["ci"])
    epochs = bench_epochs() or epochs

    def run():
        best, results = _time_paths(nodes, epochs, seed, repetitions)
        # Round-off contract: the sparse kernels are bit-identical per
        # member, the GCN preaggregation reassociates one dense GEMM.
        np.testing.assert_allclose(
            results[False].loss_history,
            results[True].loss_history,
            rtol=1e-9,
            atol=1e-12,
        )
        assert (
            results[False].test_accuracy_history
            == results[True].test_accuracy_history
        )
        assert (
            results[False].train_accuracy_history
            == results[True].train_accuracy_history
        )
        return {"best": best, "counters": results[True].counters}

    r = run_once(run)
    best, counters = r["best"], r["counters"]
    speedup = best[False] / best[True]
    eps = {key: epochs / value for key, value in best.items()}
    rows = [
        ["per-batch (seed eval loop)", eps[False], best[False], 1.0],
        ["vectorised (fused buckets)", eps[True], best[True], speedup],
    ]
    record_result(
        "multigraph_train_throughput",
        format_table(
            ["Path", "Epochs/s", "Run time (s)", "Speedup"],
            rows,
            title=(
                f"Multi-graph vectorised training — {nodes} nodes, "
                f"{epochs} epochs, 12 batches "
                f"(buckets: {counters['batched_eval_buckets']:.0f}, "
                f"graphs fused: {counters['kernel_batched_graphs_fused']:.0f})"
            ),
        ),
        metrics={
            "multigraph.per_batch_epochs_per_s": eps[False],
            "multigraph.vectorised_epochs_per_s": eps[True],
            "multigraph.speedup": speedup,
            "multigraph.eval_buckets": counters["batched_eval_buckets"],
            "multigraph.graphs_fused": counters["kernel_batched_graphs_fused"],
        },
    )

    # Acceptance gate: ≥2× end-to-end epoch throughput over the per-batch
    # loop (measured ≈2.4× at CI scale on the reference container).
    assert speedup >= MIN_SPEEDUP, (
        f"vectorised epoch speedup {speedup:.2f}x < {MIN_SPEEDUP}x"
    )
    # The batched machinery must actually be exercised, not bypassed.
    assert counters["batched_eval_forwards"] > 0
    assert counters["batched_eval_buckets"] > 0
    assert counters["kernel_batched_graphs_fused"] > 0
    assert counters["kernel_batched_agg_cache_hits"] > 0


def test_bench_streaming_million_nodes(run_once):
    scale = bench_scale()
    seed = bench_seed()
    nodes, ceiling_mib = STREAM_SCALES.get(scale, STREAM_SCALES["ci"])

    def run():
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", _STREAM_CHILD, str(nodes), str(seed)],
            capture_output=True,
            text=True,
            env=env,
            check=False,
            timeout=1800,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        return json.loads(proc.stdout.splitlines()[-1])

    data = run_once(run)
    peak_mib = data["peak_rss_bytes"] / 2**20
    materialised_mib = data["decompose_bytes_materialised"] / 2**20
    total_s = data["gen_s"] + data["preprocess_s"] + data["train_s"]
    rows = [
        ["nodes", f"{data['nodes']:,}"],
        ["edges", f"{data['edges']:,}"],
        ["partitions / batches", f"{data['parts']:,}"],
        ["adjacency blocks (transient)", f"{data['total_blocks']:,.0f}"],
        ["generate (s)", f"{data['gen_s']:.1f}"],
        ["partition+plan (s)", f"{data['preprocess_s']:.1f}"],
        ["train 1 epoch (s)", f"{data['train_s']:.1f}"],
        ["peak RSS (MiB)", f"{peak_mib:.0f}"],
        ["blocks materialised, cumulative (MiB)", f"{materialised_mib:.0f}"],
        ["documented ceiling (MiB)", f"{ceiling_mib}"],
    ]
    record_result(
        "multigraph_streaming",
        format_table(
            ["Quantity", "Value"],
            rows,
            title=f"Memory-bounded streaming training — {data['nodes']:,} nodes",
        ),
        metrics={
            "multigraph.streaming_nodes": data["nodes"],
            "multigraph.streaming_edges": data["edges"],
            "multigraph.streaming_gen_s": data["gen_s"],
            "multigraph.streaming_preprocess_s": data["preprocess_s"],
            "multigraph.streaming_train_s": data["train_s"],
            "multigraph.streaming_total_s": total_s,
            "multigraph.streaming_peak_rss_mib": peak_mib,
            "multigraph.streaming_nodes_per_s": data["nodes"] / total_s,
        },
    )

    # The run must actually stream: auto-enabled above the node threshold,
    # one full epoch trained, finite loss.
    assert data["streaming"] is True
    assert len(data["loss_history"]) == 1
    assert np.isfinite(data["loss_history"][0])
    assert data["decompose_calls"] >= data["parts"]
    # Acceptance gate: peak resident memory under the documented ceiling.
    assert peak_mib <= ceiling_mib, (
        f"streaming peak RSS {peak_mib:.0f} MiB exceeds ceiling {ceiling_mib} MiB"
    )
    # Streamed, not retained: the cumulative bytes transiently materialised
    # by decompose exceed the process's resident peak.
    assert data["decompose_bytes_materialised"] > data["peak_rss_bytes"]
