"""Ablation — SA1-criticality weighting in the mapping cost.

FARe weights SA1 mismatches more heavily than SA0 mismatches because a
spurious edge (SA1 on a zero entry) is more damaging than a deleted edge.
This ablation sweeps the weight and reports the number of spurious-edge and
deleted-edge corruptions the resulting mapping leaves in one batch.
"""

import numpy as np

from repro.core.strategies import FaReStrategy
from repro.experiments import configs
from repro.graph.datasets import load_dataset
from repro.graph.sampling import ClusterBatchSampler
from repro.hardware.faults import FaultModel
from repro.pipeline.mapping_engine import AdjacencyCrossbarMapper, HardwareEnvironment
from repro.utils.tabulate import format_table

from _bench_utils import bench_scale, bench_seed, record_result

SA1_WEIGHTS = (1.0, 4.0, 8.0)


def _setup(scale, seed):
    settings = configs.scale_settings(scale)
    hw_config = configs.hardware_config(scale)
    graph = load_dataset("reddit", scale=scale, seed=seed)
    sampler = ClusterBatchSampler(graph, settings.num_parts, settings.batch_clusters, seed=seed)
    batch = next(iter(sampler.epoch(shuffle=False)))
    hardware = HardwareEnvironment(
        config=hw_config,
        fault_model=FaultModel(0.05, (1.0, 1.0), seed=seed),
        weight_fraction=settings.weight_fraction,
        num_crossbars=settings.num_crossbars,
    )
    mapper = AdjacencyCrossbarMapper(hardware.adjacency_crossbars, hw_config)
    blocks, grid = mapper.decompose(batch.subgraph.adjacency)
    return batch.subgraph.adjacency, mapper, blocks, grid, hw_config


def test_bench_ablation_sa1_weight(run_once):
    adjacency, mapper, blocks, grid, hw_config = _setup(bench_scale(), bench_seed())
    dense = adjacency.to_dense()

    def sweep():
        outcomes = {}
        for weight in SA1_WEIGHTS:
            strategy = FaReStrategy(sa1_weight=weight, row_method="greedy")
            plan = strategy.plan_adjacency(
                [blocks], mapper.fault_maps(), mapper.crossbar_ids, hw_config.crossbar_rows
            )[0]
            faulty = mapper.apply_mapping(adjacency, plan, blocks=blocks, grid=grid).to_dense()
            spurious = float(np.sum((faulty == 1) & (dense == 0)))
            deleted = float(np.sum((faulty == 0) & (dense == 1)))
            outcomes[weight] = (spurious, deleted)
        return outcomes

    results = run_once(sweep)

    rows = [[w, spurious, deleted] for w, (spurious, deleted) in results.items()]
    record_result(
        "ablation_sa1_weight",
        format_table(
            ["SA1 weight", "Spurious edges", "Deleted edges"],
            rows,
            title="Ablation — SA1-criticality weighting in Algorithm 1",
        ),
    )

    # Raising the SA1 weight must not increase the number of spurious edges.
    spurious_counts = [results[w][0] for w in SA1_WEIGHTS]
    assert spurious_counts[-1] <= spurious_counts[0] + 1e-9
