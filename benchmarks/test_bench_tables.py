"""Tables I-III of the paper (static/comparative content)."""

from repro.experiments import tables
from repro.hardware.config import DEFAULT_CONFIG

from _bench_utils import bench_scale, bench_seed, record_result


def test_bench_table1(run_once):
    rows = run_once(tables.table1_rows)
    assert len(rows) == 7
    assert any("FARe" in row[0] for row in rows)
    record_result("table1", tables.format_table1())


def test_bench_table2(run_once):
    rows = run_once(tables.table2_rows, scale=bench_scale(), seed=bench_seed())
    assert len(rows) == 4
    by_name = {row[0]: row for row in rows}
    # Paper statistics (Table II) are reported verbatim.
    assert by_name["ppi"][1] == 56_944
    assert by_name["reddit"][2] == 11_606_919
    assert by_name["amazon2m"][4] == 10_000
    # Surrogates preserve the relative size ordering.
    assert by_name["ppi"][6] < by_name["reddit"][6] < by_name["amazon2m"][6]
    record_result("table2", tables.format_table2(scale=bench_scale(), seed=bench_seed()))


def test_bench_table3(run_once):
    rows = run_once(tables.table3_rows, DEFAULT_CONFIG)
    rendered = tables.format_table3()
    assert "128x128" in rendered and "2-bit/cell" in rendered and "10 MHz" in rendered
    assert len(rows) >= 8
    record_result("table3", rendered)
