"""Fig. 5(a) — test accuracy of all strategies, SA0:SA1 = 9:1.

Paper shape across the six dataset/model pairs at 1/3/5 % fault density:
fault-unaware loses the most accuracy, NR and clipping-only recover part of
it, and FARe stays within about one accuracy point of the fault-free model.
"""

import numpy as np

from repro.experiments.configs import COMPARED_STRATEGIES, SA_RATIO_9_1
from repro.experiments.fig5 import format_fig5, run_fig5

from _bench_utils import bench_epochs, bench_scale, bench_seed, record_result


def _mean_accuracy(result, strategy, density):
    return float(
        np.mean([result.accuracy(d, m, density, strategy) for d, m in result.pairs])
    )


def test_bench_fig5a(run_once):
    result = run_once(
        run_fig5,
        sa_ratio=SA_RATIO_9_1,
        scale=bench_scale(),
        seed=bench_seed(),
        epochs=bench_epochs(),
    )
    assert set(COMPARED_STRATEGIES) == {"fault_free", "fault_unaware", "nr", "clipping", "fare"}

    worst = max(result.densities)
    fault_free = _mean_accuracy(result, "fault_free", worst)
    unaware = _mean_accuracy(result, "fault_unaware", worst)
    nr = _mean_accuracy(result, "nr", worst)
    clipping = _mean_accuracy(result, "clipping", worst)
    fare = _mean_accuracy(result, "fare", worst)

    # Who wins, and by roughly what factor (paper Fig. 5(a) at 5 %).
    assert fare > unaware + 0.05
    assert fare >= nr - 0.02
    assert fare >= clipping - 0.03
    assert fault_free - fare < 0.07
    assert fault_free - unaware > 0.08

    # At every density FARe stays close to fault-free on average.
    for density in result.densities:
        assert _mean_accuracy(result, "fault_free", density) - _mean_accuracy(
            result, "fare", density
        ) < 0.07

    record_result("fig5a", format_fig5(result))
