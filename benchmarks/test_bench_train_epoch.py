"""End-to-end epoch throughput — epoch-cached read-back vs. seed recomputation.

PR 1 made mapping *planning* fast; this benchmark tracks the training loop
itself.  The same hardware-backed FARe training run (synthetic community
graph, miniature 16×16-crossbar accelerator, per-epoch train pass plus
train/test evaluation) is executed twice:

* **uncached** — the seed per-batch path: every batch re-programs and
  re-reads its adjacency blocks through the per-block loop and re-runs the
  unfused quantise→bit-slice→fault→reassemble→dequantise weight pipeline per
  layer per forward (``use_hw_state_cache=False``);
* **cached** — the epoch-cached subsystem (``core/hw_state.py``): batched
  block read-back, versioned adjacency/effective-weight caches, fused
  quantise→fault→dequantise pass.

Both runs are bit-identical (loss histories asserted equal here, proven
exhaustively in ``tests/test_core_hw_state.py``); the figure of merit is
batches-per-second over the whole training run.  The acceptance gate is a
≥3× speedup at CI scale.
"""

import time

from repro.core.strategies import build_strategy
from repro.graph.datasets import synthetic_graph
from repro.hardware.config import ReRAMConfig
from repro.hardware.faults import FaultModel
from repro.pipeline.mapping_engine import HardwareEnvironment
from repro.pipeline.trainer import FaultyTrainer, TrainingConfig
from repro.utils.tabulate import format_table

from _bench_utils import bench_epochs, bench_scale, bench_seed, record_result

MIN_SPEEDUP = 3.0
#: (nodes, epochs) per scale; the graph/model stay small so the hardware
#: simulation — the thing this PR accelerates — dominates the seed path the
#: way it does at paper scale (128×128 crossbars, thousands of blocks).
SCALES = {"ci": (256, 6), "paper": (512, 12)}


def _build_trainer(cached, nodes, epochs, seed):
    graph = synthetic_graph(
        num_nodes=nodes,
        num_communities=4,
        num_features=8,
        num_classes=4,
        avg_degree=4.0,
        name="bench-train",
        seed=seed + 3,
    )
    config = ReRAMConfig(
        crossbar_rows=16, crossbar_cols=16, crossbars_per_tile=160, num_tiles=2
    )
    hardware = HardwareEnvironment(
        config=config,
        fault_model=FaultModel(0.05, (9.0, 1.0), seed=seed + 1),
        weight_fraction=0.5,
    )
    training = TrainingConfig(
        epochs=epochs,
        hidden_features=16,
        dropout=0.0,
        num_parts=4,
        batch_clusters=2,
        seed=seed,
    )
    return FaultyTrainer(
        graph,
        "gcn",
        build_strategy("fare"),
        training,
        hardware=hardware,
        use_hw_state_cache=cached,
        # Pin both arms to the per-batch eval path: this gate isolates the
        # hw-state cache subsystem, and the (default-on) vectorised eval
        # accelerates the uncached baseline too, compressing the ratio it
        # measures.  The vectorised paths have their own gate in
        # test_bench_multigraph_train.py.
        use_shared_eval=False,
        use_batched_eval=False,
        use_agg_precompute=False,
    )


def _time_paths(nodes, epochs, seed, repetitions=3):
    """Interleaved best-of-N timing of both paths (fresh trainer each run).

    Alternating uncached/cached repetitions makes machine-wide noise (CPU
    frequency, background load) hit both paths alike instead of biasing
    whichever happened to run during the quiet window.
    """
    best = {False: float("inf"), True: float("inf")}
    results = {}
    num_batches = 1
    for _ in range(repetitions):
        for cached in (False, True):
            trainer = _build_trainer(cached, nodes, epochs, seed)
            start = time.perf_counter()
            results[cached] = trainer.train()
            best[cached] = min(best[cached], time.perf_counter() - start)
            num_batches = len(trainer.batches)
    total_batches = epochs * num_batches
    return (
        (total_batches / best[False], best[False], results[False]),
        (total_batches / best[True], best[True], results[True]),
    )


def test_bench_train_epoch(run_once):
    scale = bench_scale()
    seed = bench_seed()
    nodes, epochs = SCALES.get(scale, SCALES["ci"])
    epochs = bench_epochs() or epochs

    def run():
        (
            (uncached_bps, uncached_s, uncached_result),
            (cached_bps, cached_s, cached_result),
        ) = _time_paths(nodes, epochs, seed)
        # The cached run must be the *same* training run, bit for bit.
        assert uncached_result.loss_history == cached_result.loss_history
        assert (
            uncached_result.test_accuracy_history
            == cached_result.test_accuracy_history
        )
        assert (
            uncached_result.counters["block_write_events"]
            == cached_result.counters["block_write_events"]
        )
        assert (
            uncached_result.counters["weight_write_events"]
            == cached_result.counters["weight_write_events"]
        )
        return {
            "uncached_bps": uncached_bps,
            "cached_bps": cached_bps,
            "uncached_s": uncached_s,
            "cached_s": cached_s,
            "counters": cached_result.counters,
        }

    r = run_once(run)
    speedup = r["cached_bps"] / r["uncached_bps"]
    counters = r["counters"]
    rows = [
        ["uncached (seed per-batch loop)", r["uncached_bps"], r["uncached_s"], 1.0],
        ["cached (hw_state subsystem)", r["cached_bps"], r["cached_s"], speedup],
    ]
    record_result(
        "train_epoch_throughput",
        format_table(
            ["Path", "Batches/s", "Run time (s)", "Speedup"],
            rows,
            title=(
                f"End-to-end training throughput — {nodes} nodes, {epochs} epochs "
                f"(adjacency cache hits: {counters.get('hw_adjacency_cache_hits', 0):.0f}, "
                f"weight cache hits: {counters.get('hw_weight_cache_hits', 0):.0f})"
            ),
        ),
        metrics={
            "train_epoch.uncached_batches_per_s": r["uncached_bps"],
            "train_epoch.cached_batches_per_s": r["cached_bps"],
            "train_epoch.speedup": speedup,
            "train_epoch.adjacency_cache_hits": counters.get(
                "hw_adjacency_cache_hits", 0.0
            ),
            "train_epoch.weight_cache_hits": counters.get("hw_weight_cache_hits", 0.0),
        },
    )

    # Acceptance gate: the epoch-cached subsystem must deliver at least a 3×
    # end-to-end speedup over the seed per-batch recomputation at CI scale.
    assert speedup >= MIN_SPEEDUP, (
        f"epoch-cache speedup {speedup:.2f}x < {MIN_SPEEDUP}x"
    )
    # The caches must actually be exercised, not bypassed.
    assert counters.get("hw_adjacency_cache_hits", 0) > 0
    assert counters.get("hw_weight_cache_hits", 0) > 0
