"""Fig. 7 — normalised execution time (fault-free, NR, clipping, FARe).

Paper shape: weight clipping and FARe cost about 1 % over fault-free
training, while NR is several times slower (FARe is up to 4x faster than NR).
The numbers come from the analytical pipelined-execution timing model
evaluated at paper scale (Table II workload counts, 128x128 crossbars).
"""

from repro.experiments.fig7 import FIG7_STRATEGIES, format_fig7, run_fig7

from _bench_utils import record_result


def test_bench_fig7(run_once):
    result = run_once(run_fig7)

    workloads = {workload for workload, _ in result.normalized}
    assert workloads == {"Ogbl (SAGE)", "Reddit (GCN)", "PPI (GAT)", "Amazon2M (GCN)"}
    assert FIG7_STRATEGIES == ("fault_free", "nr", "clipping", "fare")

    for workload in workloads:
        fault_free = result.time(workload, "fault_free")
        clipping = result.time(workload, "clipping")
        fare = result.time(workload, "fare")
        nr = result.time(workload, "nr")
        assert fault_free == 1.0
        # Clipping and FARe stay within a few percent of fault-free.
        assert 1.0 <= clipping < 1.03
        assert clipping <= fare < 1.05
        # NR pays a multi-x penalty; FARe's speed-up over it reaches ~2-4.5x.
        assert nr > 1.5
        assert result.speedup_over_nr(workload) > 1.5
    assert max(result.speedup_over_nr(w) for w in workloads) > 3.0

    record_result("fig7", format_fig7(result))
