"""GNN forward/backward kernel throughput — segment-reduce vs. seed kernels.

PR 2 left the numpy GNN forward/backward itself as the dominant cost of the
epoch-cached training loop.  This benchmark times the two kernel stacks on
the same workload:

* **seed** — the PR 3-era kernels, replicated verbatim below: ``np.add.at``
  scatter-adds for the CSR × dense product and the full ``from_coo``
  argsort transpose rebuilt *eagerly on every forward call* (the seed
  ``ops.spmm`` contract);
* **kernels** — the segment-reduce layer (``tensor/kernels.py``):
  ``np.add.reduceat`` over ``indptr`` plus the lazily-built, memoised
  ``CSRMatrix.T`` (the transpose is constructed once, on the first
  backward).

Both run the identical 2-layer GCN-style forward+backward epoch loop through
the same autograd machinery; the figure of merit is epoch-loop iterations
per second and the acceptance gate is a ≥3× speedup at CI scale.  A second
(ungated) table tracks the new sparse edge-wise GAT against the seed dense
``N × N`` masked-attention path on the same graph.

PR 9 adds a **large tier**: the same comparison on a graph an order of
magnitude past toy scale (50k nodes / 800k edges at CI scale, 10^6 edges+
under ``REPRO_BENCH_SCALE=paper``), reported as edge throughput (Medge/s
through the six spmm applications of each step).  The seed kernels re-sort
the whole edge list per call, so their advantage gap *widens* with scale —
this tier is the O(E) evidence the kernel layer claims, gated at ≥1.5×
(below the 1.8–3.1× observed spread — the tier is bandwidth-bound and
noisy; see ``MIN_LARGE_SPEEDUP``).
"""

import time

import numpy as np

from repro.graph.datasets import synthetic_graph
from repro.graph.sparse import CSRMatrix
from repro.nn.base import BatchInputs
from repro.nn.gat import GAT
from repro.tensor import ops
from repro.tensor.tensor import Tensor, no_grad
from repro.utils.tabulate import format_table

from _bench_utils import bench_scale, bench_seed, record_result

MIN_SPEEDUP = 3.0
#: Gate of the large tier.  Measured 1.8–3.1× at the 50k-node CI scale
#: across repeated runs — the tier moves ~200 MB of scatter/gather workspace
#: per spmm, so it is memory-bandwidth bound and noisier than the toy tier.
#: The gate sits below the observed floor; it trips on an O(E) regression
#: (either path degrading superlinearly), not on bandwidth jitter.
MIN_LARGE_SPEEDUP = 1.5
#: (nodes, avg_degree, features, hidden, steps) per scale.  Degree/width are
#: chosen so the sparse kernels dominate the loop the way they do at paper
#: scale (the shared dense matmuls are comparatively negligible).
SCALES = {
    "ci": (4000, 16.0, 32, 32, 8),
    "paper": (8000, 16.0, 64, 64, 8),
}
#: Large tier: an order of magnitude past toy scale, few steps (the seed
#: path re-sorts all E edges per spmm call, so steps are expensive).
LARGE_SCALES = {
    "ci": (50_000, 16.0, 32, 32, 2),
    "paper": (250_000, 16.0, 64, 64, 2),
}
#: (nodes, steps) for the GAT attention comparison (dense is O(N²)).
GAT_SCALES = {"ci": (512, 4), "paper": (1024, 4)}
#: spmm applications per epoch-loop step: train forward (2 layers) +
#: backward (2 transposed products) + eval forward (2 layers).
SPMM_PER_STEP = 6


# --------------------------------------------------------------------------- #
# Seed kernels, replicated verbatim from the PR 3 tree
# --------------------------------------------------------------------------- #
def _seed_csr_dot(mat: CSRMatrix, dense: np.ndarray) -> np.ndarray:
    out = np.zeros((mat.shape[0], dense.shape[1]), dtype=np.float64)
    if mat.nnz:
        rows = np.repeat(np.arange(mat.shape[0]), np.diff(mat.indptr))
        contrib = mat.data[:, None] * dense[mat.indices]
        np.add.at(out, rows, contrib)
    return out


def _seed_transpose(mat: CSRMatrix) -> CSRMatrix:
    rows = np.repeat(np.arange(mat.shape[0]), np.diff(mat.indptr))
    return CSRMatrix.from_coo(
        mat.indices, rows, mat.data, (mat.shape[1], mat.shape[0]),
        sum_duplicates=False,
    )


def _seed_spmm(adjacency: CSRMatrix, x: Tensor) -> Tensor:
    """The seed ``ops.spmm``: eager per-call transpose, add.at products."""
    forward = _seed_csr_dot(adjacency, x.data)
    transposed = _seed_transpose(adjacency)

    def _backward() -> None:
        if x.requires_grad:
            x._accumulate(_seed_csr_dot(transposed, out.grad))

    out = Tensor(forward, requires_grad=x.requires_grad, parents=(x,))
    out._backward_fn = _backward
    return out


# --------------------------------------------------------------------------- #
# Workload
# --------------------------------------------------------------------------- #
def _make_workload(nodes, avg_degree, features, hidden, seed):
    graph = synthetic_graph(
        num_nodes=nodes,
        num_communities=8,
        num_features=features,
        num_classes=4,
        avg_degree=avg_degree,
        name="bench-kernels",
        seed=seed,
    )
    rng = np.random.default_rng(seed + 1)
    w1 = rng.normal(scale=0.1, size=(features, hidden))
    w2 = rng.normal(scale=0.1, size=(hidden, 4))
    return graph.adjacency, graph.features, w1, w2


def _epoch_loop(spmm_fn, adjacency, features, w1_init, w2_init, steps):
    """``steps`` epochs of GCN-style train step + eval forward.

    Mirrors what :class:`FaultyTrainer` does per epoch with ``eval_every=1``:
    one forward+backward training pass plus a no-grad evaluation forward.
    The eval pass is where the seed's eager per-call transpose hurts most —
    the lazy backward graph of the kernel path pays nothing there.
    """
    w1 = Tensor(w1_init.copy(), requires_grad=True)
    w2 = Tensor(w2_init.copy(), requires_grad=True)
    x = Tensor(features)
    losses = []
    for _ in range(steps):
        hidden = ops.relu(spmm_fn(adjacency, x @ w1))
        logits = spmm_fn(adjacency, hidden @ w2)
        loss = (logits ** 2).mean()
        w1.zero_grad()
        w2.zero_grad()
        loss.backward()
        losses.append(loss.item())
        with no_grad():
            hidden = ops.relu(spmm_fn(adjacency, x @ w1))
            eval_logits = spmm_fn(adjacency, hidden @ w2)
            losses.append(float((eval_logits.data ** 2).mean()))
    return losses


def _time_kernel_paths(nodes, avg_degree, features, hidden, steps, seed, reps=3):
    """Interleaved best-of-N timing so machine noise hits both paths alike."""
    adjacency, feats, w1, w2 = _make_workload(nodes, avg_degree, features, hidden, seed)
    best = {"seed": float("inf"), "kernels": float("inf")}
    losses = {}
    for _ in range(reps):
        for name, spmm_fn, adj in (
            ("seed", _seed_spmm, adjacency),
            # A fresh CSR per rep: the memoised .T must be rebuilt inside the
            # timed region, exactly as a new batch adjacency would be.
            ("kernels", ops.spmm, CSRMatrix(
                adjacency.indptr, adjacency.indices, adjacency.data, adjacency.shape
            )),
        ):
            start = time.perf_counter()
            losses[name] = _epoch_loop(spmm_fn, adj, feats, w1, w2, steps)
            best[name] = min(best[name], time.perf_counter() - start)
    return best, losses


def _time_gat_paths(nodes, steps, seed, reps=3):
    graph = synthetic_graph(
        num_nodes=nodes,
        num_communities=8,
        num_features=16,
        num_classes=4,
        avg_degree=8.0,
        name="bench-gat",
        seed=seed + 7,
    )
    batch = BatchInputs(features=graph.features, adjacency=graph.adjacency)
    best = {"dense": float("inf"), "sparse": float("inf")}
    final = {}
    for _ in range(reps):
        for name, dense_attention in (("dense", True), ("sparse", False)):
            model = GAT(
                graph.num_features, 16, graph.num_classes,
                rng=seed, dropout=0.0, dense_attention=dense_attention,
            )
            start = time.perf_counter()
            for _ in range(steps):
                loss = (model(batch) ** 2).mean()
                for param in model.parameters():
                    param.zero_grad()
                loss.backward()
            best[name] = min(best[name], time.perf_counter() - start)
            final[name] = loss.item()
    return best, final


def test_bench_gnn_kernels(run_once):
    scale = bench_scale()
    seed = bench_seed()
    nodes, avg_degree, features, hidden, steps = SCALES.get(scale, SCALES["ci"])
    gat_nodes, gat_steps = GAT_SCALES.get(scale, GAT_SCALES["ci"])
    large = LARGE_SCALES.get(scale, LARGE_SCALES["ci"])
    l_nodes, l_degree, l_features, l_hidden, l_steps = large

    def run():
        best, losses = _time_kernel_paths(
            nodes, avg_degree, features, hidden, steps, seed
        )
        gat_best, gat_final = _time_gat_paths(gat_nodes, gat_steps, seed)
        large_best, large_losses = _time_kernel_paths(
            l_nodes, l_degree, l_features, l_hidden, l_steps, seed, reps=2
        )
        large_adjacency, _, _, _ = _make_workload(
            l_nodes, l_degree, l_features, l_hidden, seed
        )
        return {
            "best": best,
            "losses": losses,
            "gat_best": gat_best,
            "gat_final": gat_final,
            "large_best": large_best,
            "large_losses": large_losses,
            "large_nnz": large_adjacency.nnz,
        }

    r = run_once(run)
    best, losses = r["best"], r["losses"]
    # Same training trajectory (reduceat reassociates float sums, so the
    # histories agree to round-off rather than bitwise).
    np.testing.assert_allclose(
        losses["seed"], losses["kernels"], rtol=1e-7, atol=1e-10
    )
    np.testing.assert_allclose(
        r["large_losses"]["seed"], r["large_losses"]["kernels"],
        rtol=1e-7, atol=1e-10,
    )
    speedup = best["seed"] / best["kernels"]
    large_best = r["large_best"]
    large_speedup = large_best["seed"] / large_best["kernels"]
    # Edge throughput through the spmm kernels (Medge/s over the six spmm
    # applications of each step) — the O(E) scaling evidence.
    large_edges = r["large_nnz"] * SPMM_PER_STEP * l_steps
    large_eps = {name: large_edges / s / 1e6 for name, s in large_best.items()}
    gat_best, gat_final = r["gat_best"], r["gat_final"]
    gat_speedup = gat_best["dense"] / gat_best["sparse"]
    np.testing.assert_allclose(gat_final["dense"], gat_final["sparse"], rtol=1e-7)

    sps = {name: steps / seconds for name, seconds in best.items()}
    rows = [
        ["spmm epoch loop", "seed (add.at + per-call transpose)", best["seed"], sps["seed"], 1.0],
        ["spmm epoch loop", "segment-reduce kernels", best["kernels"], sps["kernels"], speedup],
        ["GAT attention", "dense N×N masked softmax", gat_best["dense"], gat_steps / gat_best["dense"], 1.0],
        ["GAT attention", "sparse edge-wise", gat_best["sparse"], gat_steps / gat_best["sparse"], gat_speedup],
        [f"large ({l_nodes // 1000}k nodes)", "seed kernels", large_best["seed"], large_eps["seed"], 1.0],
        [f"large ({l_nodes // 1000}k nodes)", "segment-reduce kernels", large_best["kernels"], large_eps["kernels"], large_speedup],
    ]
    record_result(
        "gnn_kernel_throughput",
        format_table(
            ["Workload", "Path", "Best time (s)", "Steps/s | Medge/s", "Speedup"],
            rows,
            title=(
                f"GNN forward+backward kernel throughput — {nodes} nodes, "
                f"deg {avg_degree:.0f}, {steps} steps (GAT: {gat_nodes} nodes; "
                f"large tier: {l_nodes:,} nodes, {r['large_nnz']:,} edges)"
            ),
        ),
        metrics={
            "gnn_kernels.seed_steps_per_s": sps["seed"],
            "gnn_kernels.kernel_steps_per_s": sps["kernels"],
            "gnn_kernels.speedup": speedup,
            "gnn_kernels.gat_dense_steps_per_s": gat_steps / gat_best["dense"],
            "gnn_kernels.gat_sparse_steps_per_s": gat_steps / gat_best["sparse"],
            "gnn_kernels.gat_sparse_speedup": gat_speedup,
            "gnn_kernels.large_seed_medge_per_s": large_eps["seed"],
            "gnn_kernels.large_kernel_medge_per_s": large_eps["kernels"],
            "gnn_kernels.large_speedup": large_speedup,
        },
    )

    # Acceptance gate: the segment-reduce kernel layer must deliver at least
    # a 3× forward+backward epoch-loop speedup over the seed kernels.
    assert speedup >= MIN_SPEEDUP, (
        f"kernel epoch-loop speedup {speedup:.2f}x < {MIN_SPEEDUP}x"
    )
    # Large tier: the advantage must hold (and it widens) past toy scale.
    assert large_speedup >= MIN_LARGE_SPEEDUP, (
        f"large-tier kernel speedup {large_speedup:.2f}x < {MIN_LARGE_SPEEDUP}x"
    )
    # The sparse GAT path must not be slower than the dense one it replaces.
    assert gat_speedup >= 1.0, (
        f"sparse GAT slower than dense attention ({gat_speedup:.2f}x)"
    )
