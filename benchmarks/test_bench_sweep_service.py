"""Service gate — concurrent clients de-duplicate work, survive crashes.

The ROADMAP's service north star made concrete: 4 concurrent client
processes submitting *overlapping* Fig. 4-shaped grids against one shared
root must behave like one serial client — every unique signature executes
exactly once (one lease winner per spec, everyone else served from the
shared store), the aggregate dedupe hit rate clears 90 %, and the bytes
every client observes are bit-identical to an independent serial run.

A chaos leg then kills a lease holder right after it wins its lease
(``os._exit(137)``, no cleanup — the lease file survives with a dead owner
pid): a surviving client must detect the stale lease, reclaim it
(``lease_reclaimed ≥ 1``) and finish the sweep bit-identically.

Dedupe accounting: each of the 4 clients submits the same grid 3 times
(rounds model figure drivers re-requesting their grids), so the 12·|grid|
spec-requests collapse to |grid| executions — requested-but-not-executed
is the service's whole value proposition, and the rate is measured from
the clients' own receipts and counters, not assumed.

Metrics land in ``bench_summary.json`` via ``record_result`` under
``service.*``; the single-process resilience path is gated by
``test_bench_sweep_resilience``.
"""

import json
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor

from repro.experiments.fig4 import plan_fig4
from repro.experiments.service import LeaseManager, SweepService, run_client
from repro.experiments.sweeps import SweepEngine

from _bench_utils import bench_epochs, bench_seed, record_result
from repro.utils.tabulate import format_table

N_CLIENTS = 4
ROUNDS_PER_CLIENT = 3
DEDUPE_GATE = 0.90


def _plan():
    """One Fig. 4 grid — the shape every client keeps re-submitting."""
    return plan_fig4(seed=bench_seed(), epochs=bench_epochs() or 1)


def _outcome(result):
    return {
        "loss_history": list(result.loss_history),
        "train_accuracy_history": list(result.train_accuracy_history),
        "test_accuracy_history": list(result.test_accuracy_history),
        "final_test_accuracy": result.final_test_accuracy,
    }


def test_bench_sweep_service(run_once, tmp_path):
    plan = _plan()
    spec_dicts = [spec.to_dict() for spec in plan]
    unique = len(plan)
    context = multiprocessing.get_context("spawn")

    def run():
        # Serial reference — the bit-identity yardstick and the dedupe
        # baseline (one client, one round, no sharing).
        start = time.perf_counter()
        reference_sweep = SweepEngine().run(plan)
        serial_s = time.perf_counter() - start
        reference = {
            spec.signature(): _outcome(reference_sweep[spec]) for spec in plan
        }

        # Leg 1: 4 concurrent clients, 3 overlapping rounds each.
        root = tmp_path / "service"
        payloads = [
            {
                "root": str(root),
                "client_id": f"bench-{i}",
                "spec_dicts": spec_dicts,
                "rounds": ROUNDS_PER_CLIENT,
                "stale_after": 60.0,
                "drain_timeout": 600.0,
            }
            for i in range(N_CLIENTS)
        ]
        start = time.perf_counter()
        with ProcessPoolExecutor(
            max_workers=N_CLIENTS, mp_context=context
        ) as pool:
            reports = list(pool.map(run_client, payloads))
        concurrent_s = time.perf_counter() - start

        total_requests = sum(sum(r["receipt"].values()) for r in reports)
        executed = sum(r["summary"]["runs_executed"] for r in reports)
        reclaimed = sum(r["summary"]["lease_reclaimed"] for r in reports)
        races_lost = sum(r["summary"]["store_races_lost"] for r in reports)
        dedupe_rate = 1.0 - executed / total_requests

        # Exactly one execution per unique signature, ≥90 % dedupe.
        assert total_requests == N_CLIENTS * ROUNDS_PER_CLIENT * unique
        assert executed == unique, (executed, unique)
        assert dedupe_rate >= DEDUPE_GATE, dedupe_rate
        # Every client observed the reference bytes for every signature.
        for report in reports:
            assert report["outcomes"] == reference, report["client_id"]
        # No torn JSON anywhere under the shared root.
        for path in root.rglob("*.json"):
            json.loads(path.read_text())

        # Leg 2: chaos — kill a lease holder mid-run, then recover.
        chaos_root = tmp_path / "service-chaos"
        victim_sig = list(plan)[0].signature()
        victim = context.Process(
            target=run_client,
            args=(
                {
                    "root": str(chaos_root),
                    "client_id": "victim",
                    "spec_dicts": spec_dicts,
                    "kill_lease_holder": victim_sig,
                    "stale_after": 60.0,
                },
            ),
        )
        start = time.perf_counter()
        victim.start()
        victim.join(timeout=600)
        assert victim.exitcode == 137, victim.exitcode
        probe = LeaseManager(chaos_root / "leases", "probe", stale_after=3600.0)
        assert victim_sig in probe.active(), "victim died without its lease"

        survivor = SweepService(
            root=chaos_root, client_id="survivor", stale_after=5.0
        )
        drained = survivor.drain(timeout=600)
        chaos_s = time.perf_counter() - start
        survivor_stats = survivor.engine.summary()

        assert drained == unique
        assert survivor_stats["lease_reclaimed"] >= 1.0
        assert survivor.queue.pending_signatures() == []
        for spec in plan:
            assert _outcome(survivor.store.load(spec)) == reference[
                spec.signature()
            ], spec

        return (
            serial_s,
            concurrent_s,
            chaos_s,
            dedupe_rate,
            executed,
            total_requests,
            reclaimed,
            races_lost,
            survivor_stats,
        )

    (
        serial_s,
        concurrent_s,
        chaos_s,
        dedupe_rate,
        executed,
        total_requests,
        reclaimed,
        races_lost,
        survivor_stats,
    ) = run_once(run)

    rows = [
        ["serial reference (1 client, 1 round)", serial_s, "-"],
        [
            f"{N_CLIENTS} clients × {ROUNDS_PER_CLIENT} rounds, shared root",
            concurrent_s,
            f"{dedupe_rate:.1%} dedupe, {executed:.0f}/{total_requests} executed",
        ],
        [
            "lease-holder kill + reclaim",
            chaos_s,
            f"{survivor_stats['lease_reclaimed']:.0f} reclaimed",
        ],
    ]
    record_result(
        "sweep_service",
        format_table(
            ["Scenario", "Wall clock (s)", "Dedupe / recovery"],
            rows,
            float_fmt=".3f",
            title=(
                "Concurrent sweep service — lease-based single-flight, "
                "bit-identical results"
            ),
        ),
        metrics={
            "service.serial_s": serial_s,
            "service.concurrent_s": concurrent_s,
            "service.chaos_s": chaos_s,
            "service.clients": float(N_CLIENTS),
            "service.rounds_per_client": float(ROUNDS_PER_CLIENT),
            "service.spec_requests": float(total_requests),
            "service.runs_executed": float(executed),
            "service.dedupe_rate": dedupe_rate,
            "service.store_races_lost": races_lost,
            "service.healthy_lease_reclaims": reclaimed,
            "service.chaos_lease_reclaimed": survivor_stats["lease_reclaimed"],
            "service.chaos_runs_executed": survivor_stats["runs_executed"],
        },
    )
