"""Fused train-step batching: block-diagonal forwards vs accumulation.

PR 10 extends the PR 9 eval-side fusion to the *training* step.  Both paths
under test share the same reference semantics — one optimizer step per
node-capped bucket of cluster mini-batches:

* **accumulate** — the reference: ``zero_grad`` once per bucket, then one
  forward + loss + ``backward`` per member, one ``step`` per bucket;
* **fused** — one block-diagonal forward per bucket (``CSRMatrix.block_diag``
  over the members' faulty read-backs, memoised against the hardware-state
  version), a segmented loss whose per-member mean weights match the
  reference exactly, and a single backward.

Losses agree to machine round-off (per-row loss gradients are bit-identical;
the fused GEMMs and ``reduceat`` loss reductions reassociate sums — the
exhaustive equivalence lives in ``tests/test_train_fused.py``).  The fused
win comes from amortising per-member Python/autograd/loss/weight-fetch
overhead across the bucket, so the measurement runs an overhead-dominated
configuration: many small cluster batches (40 parts of a 2k-node graph at CI
scale) packed into whole-graph buckets.  The fused block-diagonal *spmm*
itself is not faster at realistic block sizes (see the honest-negative note
in ``docs/ARCHITECTURE.md``); the gate is end-to-end epoch throughput.

Figure of merit: epochs per second.  Acceptance gate: ≥1.5× fused over
accumulation at CI scale (measured ≈2.1× at CI scale, ≈4.5× at
``REPRO_BENCH_SCALE=paper``, on the reference container).
"""

import time

import numpy as np

from repro.core.strategies import build_strategy
from repro.graph.datasets import synthetic_graph
from repro.graph.normalize import clear_normalize_cache
from repro.hardware.config import ReRAMConfig
from repro.hardware.faults import FaultModel
from repro.pipeline.mapping_engine import HardwareEnvironment
from repro.pipeline.trainer import FaultyTrainer, TrainingConfig
from repro.utils.tabulate import format_table

from _bench_utils import bench_epochs, bench_scale, bench_seed, record_result

MIN_SPEEDUP = 1.5
#: (nodes, partitions, epochs, repetitions) per scale.  Many small batches
#: keep the measurement overhead-dominated — that is the regime the fused
#: path targets; the huge ``train_bucket_nodes`` packs every batch into one
#: block-diagonal bucket per epoch.
SCALES = {"ci": (2000, 40, 24, 5), "paper": (4000, 64, 24, 3)}
TRAIN_BUCKET_NODES = 1_000_000


def _build_trainer(mode, nodes, parts, epochs, seed):
    graph = synthetic_graph(
        num_nodes=nodes,
        num_communities=12,
        num_features=32,
        num_classes=8,
        avg_degree=12.0,
        name="bench-train-fused",
        seed=seed + 3,
    )
    hardware = HardwareEnvironment(
        config=ReRAMConfig(
            crossbar_rows=16, crossbar_cols=16, crossbars_per_tile=160, num_tiles=2
        ),
        fault_model=FaultModel(0.05, (9.0, 1.0), seed=seed + 1),
        weight_fraction=0.5,
    )
    training = TrainingConfig(
        epochs=epochs,
        hidden_features=16,
        dropout=0.0,
        num_parts=parts,
        batch_clusters=1,
        seed=seed,
        train_bucket_nodes=TRAIN_BUCKET_NODES,
    )
    return FaultyTrainer(
        graph,
        "gcn",
        build_strategy("fare"),
        training,
        hardware=hardware,
        train_mode=mode,
    )


def _time_modes(nodes, parts, epochs, seed, repetitions):
    """Interleaved best-of-N timing of both modes (fresh trainer each run)."""
    best = {"accumulate": float("inf"), "fused": float("inf")}
    results = {}
    for _ in range(repetitions):
        for mode in ("accumulate", "fused"):
            clear_normalize_cache()
            trainer = _build_trainer(mode, nodes, parts, epochs, seed)
            start = time.perf_counter()
            results[mode] = trainer.train()
            best[mode] = min(best[mode], time.perf_counter() - start)
    return best, results


def test_bench_train_fused(run_once):
    scale = bench_scale()
    seed = bench_seed()
    nodes, parts, epochs, repetitions = SCALES.get(scale, SCALES["ci"])
    epochs = bench_epochs() or epochs

    def run():
        best, results = _time_modes(nodes, parts, epochs, seed, repetitions)
        # Round-off contract: per-row loss gradients are bit-identical, the
        # fused GEMM / reduceat reductions reassociate sums.
        np.testing.assert_allclose(
            results["accumulate"].loss_history,
            results["fused"].loss_history,
            rtol=0,
            atol=1e-9,
        )
        assert (
            results["accumulate"].test_accuracy_history
            == results["fused"].test_accuracy_history
        )
        return {"best": best, "counters": results["fused"].counters}

    r = run_once(run)
    best, counters = r["best"], r["counters"]
    speedup = best["accumulate"] / best["fused"]

    # Acceptance gate: ≥1.5× end-to-end epoch throughput over per-member
    # gradient accumulation.  The gate runs BEFORE record_result so a failing
    # (e.g. noisy-machine) run can never emit canonical-looking artifacts.
    assert speedup >= MIN_SPEEDUP, (
        f"fused train-step speedup {speedup:.2f}x < {MIN_SPEEDUP}x"
    )
    # The fused machinery must actually be exercised, not bypassed, and its
    # counters must be visible through the trainer counter stream (the same
    # dict TimingBreakdown.components is updated from).
    assert counters["batched_train_buckets"] == epochs
    assert counters["train_fused_forwards"] == epochs
    assert counters["kernel_batched_train_buckets"] == epochs
    assert counters["kernel_train_fused_forwards"] == epochs
    assert counters["kernel_segment_plan_cache_hits"] >= epochs - 1

    eps = {mode: epochs / value for mode, value in best.items()}
    rows = [
        ["accumulation (reference)", eps["accumulate"], best["accumulate"], 1.0],
        ["fused block-diagonal", eps["fused"], best["fused"], speedup],
    ]
    record_result(
        "train_fused",
        format_table(
            ["Train mode", "Epochs/s", "Run time (s)", "Speedup"],
            rows,
            title=(
                f"Fused train-step batching — {nodes} nodes, {parts} batches, "
                f"{epochs} epochs "
                f"(fused forwards: {counters['train_fused_forwards']:.0f}, "
                f"plan-cache hits: "
                f"{counters['kernel_segment_plan_cache_hits']:.0f})"
            ),
        ),
        metrics={
            "train_fused.accumulate_epochs_per_s": eps["accumulate"],
            "train_fused.fused_epochs_per_s": eps["fused"],
            "train_fused.speedup": speedup,
            "train_fused.train_buckets": counters["batched_train_buckets"],
            "train_fused.fused_forwards": counters["train_fused_forwards"],
            "train_fused.segment_plan_cache_hits": counters[
                "kernel_segment_plan_cache_hits"
            ],
        },
    )
