#!/usr/bin/env python
"""Run the benchmark suite and write a machine-readable perf summary.

Entry point for CI / tooling::

    python benchmarks/run_benchmarks.py                # whole suite, ci scale
    python benchmarks/run_benchmarks.py -k throughput  # subset (pytest args)
    REPRO_BENCH_SCALE=paper python benchmarks/run_benchmarks.py

The suite runs at ``REPRO_BENCH_SCALE=ci`` unless the environment already
says otherwise.  Afterwards every ``benchmarks/results/<name>.json`` metrics
file (written by benchmarks that pass ``metrics=`` to
``_bench_utils.record_result``) is merged into
``benchmarks/results/bench_summary.json`` — a flat ``metric name → value``
mapping plus a ``_meta`` block (scale, seed, pytest exit code) — so future
PRs can diff the perf trajectory without parsing tables.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
RESULTS_DIR = BENCH_DIR / "results"
SUMMARY_PATH = RESULTS_DIR / "bench_summary.json"


def collect_summary(
    exit_code: int, scale: str, seed: str, since: float = 0.0
) -> dict:
    """Merge the per-benchmark metrics JSONs into one flat summary.

    Only files (re)written at or after ``since`` are merged, so metrics left
    behind by an earlier run at a different scale/seed are never mislabeled
    with this run's ``_meta``.
    """
    metrics = {}
    for path in sorted(RESULTS_DIR.glob("*.json")):
        if path.name == SUMMARY_PATH.name:
            continue
        try:
            if path.stat().st_mtime < since:
                print(f"note: skipping stale metrics file {path.name}")
                continue
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: skipping unreadable metrics file {path}: {exc}")
            continue
        if not isinstance(payload, dict):
            print(f"warning: skipping non-object metrics file {path}")
            continue
        metrics.update(payload)
    return {
        "_meta": {
            "scale": scale,
            "seed": seed,
            "pytest_exit_code": exit_code,
        },
        **metrics,
    }


def main(argv: list) -> int:
    env = dict(os.environ)
    env.setdefault("REPRO_BENCH_SCALE", "ci")
    src = str(BENCH_DIR.parent / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )

    command = [sys.executable, "-m", "pytest", "-q", str(BENCH_DIR), *argv]
    print("running:", " ".join(command))
    # 2 s slack: coarse filesystem mtime granularity must not make metrics
    # written moments after this stamp look stale.
    started = time.time() - 2.0
    exit_code = subprocess.call(command, env=env)

    RESULTS_DIR.mkdir(exist_ok=True)
    summary = collect_summary(
        exit_code,
        scale=env["REPRO_BENCH_SCALE"],
        seed=env.get("REPRO_BENCH_SEED", "0"),
        since=started,
    )
    SUMMARY_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"wrote {SUMMARY_PATH} ({len(summary) - 1} metrics)")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
