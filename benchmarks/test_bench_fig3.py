"""Fig. 3 — SA0-only vs SA1-only faults injected per computation phase.

Paper shape (Amazon2M + SAGE, 5 % fault density, no mitigation):
faults in either the weight or the adjacency crossbars degrade accuracy, and
SA1-only faults degrade it more than SA0-only faults in both phases.
"""

from repro.experiments.fig3 import format_fig3, run_fig3

from _bench_utils import bench_epochs, bench_scale, bench_seed, record_result


def test_bench_fig3(run_once):
    result = run_once(
        run_fig3,
        dataset="amazon2m",
        model="sage",
        fault_density=0.05,
        scale=bench_scale(),
        seed=bench_seed(),
        epochs=bench_epochs(),
    )
    acc = result.accuracies
    fault_free = result.fault_free_accuracy

    # SA1 faults are more damaging than SA0 faults in both phases.
    assert acc[("weights", "SA1 only")] <= acc[("weights", "SA0 only")] + 0.02
    assert acc[("adjacency", "SA1 only")] <= acc[("adjacency", "SA0 only")] + 0.02
    # Weight faults at 5 % visibly hurt accuracy relative to fault-free.
    assert acc[("weights", "SA1 only")] < fault_free - 0.05
    # Every measured accuracy is a valid probability.
    assert all(0.0 <= value <= 1.0 for value in acc.values())

    record_result("fig3", format_fig3(result))
