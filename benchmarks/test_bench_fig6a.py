"""Fig. 6(a) — pre- plus post-deployment faults, SA0:SA1 = 9:1.

Paper shape: with 1-3 % pre-deployment faults plus 1 % of additional faults
appearing during training, FARe keeps the accuracy loss within ~2 % of the
fault-free model while NR and fault-unaware lose much more.
"""

import numpy as np

from repro.experiments.configs import SA_RATIO_9_1
from repro.experiments.fig6 import format_fig6, run_fig6

from _bench_utils import bench_epochs, bench_scale, bench_seed, record_result


def _mean_accuracy(result, strategy, density):
    return float(
        np.mean([result.accuracy(d, m, density, strategy) for d, m in result.pairs])
    )


def test_bench_fig6a(run_once):
    result = run_once(
        run_fig6,
        sa_ratio=SA_RATIO_9_1,
        scale=bench_scale(),
        seed=bench_seed(),
        epochs=bench_epochs(),
    )
    assert result.post_deployment_extra == 0.01

    worst = max(result.densities)
    fault_free = _mean_accuracy(result, "fault_free", worst)
    unaware = _mean_accuracy(result, "fault_unaware", worst)
    fare = _mean_accuracy(result, "fare", worst)

    assert fare > unaware
    assert fault_free - fare < 0.09

    record_result("fig6a", format_fig6(result))
