"""Incremental fault-delta re-planning vs from-scratch re-planning.

Progressive fault accumulation is the device-lifetime scenario: plan once,
then repeatedly inject a small fault delta (here: ε extra density into 2 of
the crossbars) and re-plan.  The delta path chains
:meth:`FaultAwareMapper.replan_blocks` from the previous
:class:`MapperPlanState` — only the changed columns of the cost grid are
re-solved, warm-started where provable — while the from-scratch path runs a
fresh cold :meth:`map_blocks` per step, which is exactly what a mapper
without plan-state capture would have to do.

Every delta plan is asserted bit-identical to its cold counterpart (the
exhaustive fuzz proof lives in ``tests/test_core_delta_planning.py``); the
acceptance gate requires the delta chain to beat from-scratch by ≥ 5× for
all three row methods on the headline scenario.
"""

import time

import numpy as np

from repro.core.mapping import FaultAwareMapper
from repro.hardware.faults import FaultModel
from repro.utils.tabulate import format_table

from _bench_utils import bench_scale, bench_seed, record_result

CROSSBAR_SIZE = 32
BLOCK_DENSITY = 0.08
BASE_FAULT_RATE = 0.10
DELTA_STEPS = 6
MAPS_PER_DELTA = 2  # crossbars hit by each injection step
EXTRA_DENSITY = 0.005  # ε density added to each hit crossbar per step
HEADLINE = (16, 32)  # (blocks, crossbars) — acceptance gate
SWEEP_CI = [HEADLINE]
SWEEP_PAPER = [HEADLINE, (32, 64)]
METHODS = ("greedy", "hungarian", "bsuitor")
MIN_DELTA_SPEEDUP = 5.0


def _make_sequence(num_blocks, num_crossbars, seed):
    """Base case plus the per-step fault-map snapshots (shared by both paths)."""
    rng = np.random.default_rng(seed)
    blocks = [
        (rng.random((CROSSBAR_SIZE, CROSSBAR_SIZE)) < BLOCK_DENSITY).astype(float)
        for _ in range(num_blocks)
    ]
    model = FaultModel(BASE_FAULT_RATE, (9.0, 1.0), seed=seed + 1)
    maps_per_step = [model.generate(num_crossbars, CROSSBAR_SIZE, CROSSBAR_SIZE)]
    for _ in range(DELTA_STEPS):
        current = maps_per_step[-1]
        updated = [fmap.copy() for fmap in current]
        hit = rng.choice(num_crossbars, size=MAPS_PER_DELTA, replace=False)
        for index in hit:
            updated[index] = model.inject_additional(
                [current[index]], EXTRA_DENSITY
            )[0]
        maps_per_step.append(updated)
    return blocks, maps_per_step


def _identical(a, b):
    if a.pruned_crossbars != b.pruned_crossbars or a.relaxed_blocks != b.relaxed_blocks:
        return False
    for x, y in zip(a.blocks, b.blocks):
        if (
            x.block_index != y.block_index
            or x.crossbar_index != y.crossbar_index
            or x.cost != y.cost
            or x.sa1_mismatch != y.sa1_mismatch
            or not np.array_equal(x.row_permutation, y.row_permutation)
        ):
            return False
    return True


def _mapper(method):
    return FaultAwareMapper(row_method=method, use_cost_engine=True)


def _time_scenario(method, blocks, maps_per_step, repetitions):
    """Best-of-N seconds for the delta chain and the from-scratch loop.

    The base plan is built outside both timed sections — the scenario under
    test is the *re*-planning cost after each delta, which is where the two
    paths differ.
    """
    best_delta = best_cold = float("inf")
    delta_plans = cold_plans = None
    stats = None
    for _ in range(repetitions):
        mapper = _mapper(method)
        _, state = mapper.plan_blocks(blocks, maps_per_step[0])
        start = time.perf_counter()
        delta_plans = []
        for fault_maps in maps_per_step[1:]:
            mapping, state = mapper.replan_blocks(
                blocks, fault_maps, prev_state=state
            )
            delta_plans.append(mapping)
        best_delta = min(best_delta, time.perf_counter() - start)
        stats = mapper.cost_engine.stats

        start = time.perf_counter()
        cold_plans = [
            _mapper(method).map_blocks(blocks, fault_maps)
            for fault_maps in maps_per_step[1:]
        ]
        best_cold = min(best_cold, time.perf_counter() - start)
    for cold, delta in zip(cold_plans, delta_plans):
        assert _identical(cold, delta), "delta plan diverged from cold plan"
    return best_delta, best_cold, stats


def test_bench_delta_remap(run_once):
    scale = bench_scale()
    seed = bench_seed()
    sweep = SWEEP_CI if scale == "ci" else SWEEP_PAPER
    # Best-of-3 even at ci scale: the greedy delta chain is ~20 ms, so a
    # single noisy repetition can push a real ~7x speedup under the gate.
    repetitions = 3

    def run_sweep():
        results = {}
        for case_index, (num_blocks, num_crossbars) in enumerate(sweep):
            blocks, maps_per_step = _make_sequence(
                num_blocks, num_crossbars, seed + 31 * case_index
            )
            for method in METHODS:
                delta_s, cold_s, stats = _time_scenario(
                    method, blocks, maps_per_step, repetitions
                )
                pairs_grid = DELTA_STEPS * num_blocks * num_crossbars
                results[(num_blocks, num_crossbars, method)] = {
                    "delta_s": delta_s,
                    "cold_s": cold_s,
                    "speedup": cold_s / delta_s,
                    "reused_fraction": stats.delta_pairs_reused / pairs_grid,
                    "warm_hits": stats.warm_start_hits,
                }
        return results

    results = run_once(run_sweep)

    rows = []
    for (num_blocks, num_crossbars, method), r in results.items():
        rows.append(
            [
                f"{num_blocks}x{num_crossbars}",
                method,
                r["cold_s"] * 1e3,
                r["delta_s"] * 1e3,
                r["speedup"],
                f"{r['reused_fraction']:.0%}",
                r["warm_hits"],
            ]
        )
    # Acceptance gate: on the headline scenario every row method must re-plan
    # at least 5× faster through the delta chain than from scratch.  The gate
    # runs BEFORE record_result so a failing (e.g. noisy-machine) run can
    # never emit result artifacts that look canonical.
    for method in METHODS:
        headline = results[(*HEADLINE, method)]
        assert headline["speedup"] >= MIN_DELTA_SPEEDUP, (
            f"{method}: delta re-plan speedup {headline['speedup']:.1f}x "
            f"< {MIN_DELTA_SPEEDUP}x"
        )
        # Most of the pair grid must splice through untouched — that is the
        # mechanism the speedup comes from.
        assert headline["reused_fraction"] > 0.75

    record_result(
        "delta_remap",
        format_table(
            [
                "Blocks x crossbars",
                "Row method",
                "From-scratch (ms)",
                "Delta chain (ms)",
                "Speedup",
                "Pairs reused",
                "Warm hits",
            ],
            rows,
            title=(
                f"Progressive fault accumulation — {DELTA_STEPS} deltas of "
                f"{EXTRA_DENSITY:.1%} density into {MAPS_PER_DELTA} crossbars each"
            ),
        ),
        metrics={
            f"delta_remap.headline_{method}_speedup": results[
                (*HEADLINE, method)
            ]["speedup"]
            for method in METHODS
        }
        | {
            f"delta_remap.headline_{method}_delta_ms": results[
                (*HEADLINE, method)
            ]["delta_s"]
            * 1e3
            for method in METHODS
        },
    )
