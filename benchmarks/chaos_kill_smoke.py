#!/usr/bin/env python
"""CI chaos smoke: kill a lease holder mid-run, reclaim, finish the sweep.

A spawned client submits the Fig. 4 grid and dies via ``os._exit(137)``
right after winning its first lease (the ``kill_lease_holder`` chaos hook),
leaving a lease file with a live mtime and a dead owner pid.  A surviving
client pointed at the same root must detect the stale lease, reclaim it
(``lease_reclaimed ≥ 1``) and drain the queue completely.

Run with the service root in ``REPRO_RUNCACHE_DIR`` (a scratch directory)::

    REPRO_RUNCACHE_DIR=/tmp/chaos_root PYTHONPATH=src \\
        python benchmarks/chaos_kill_smoke.py

Exits non-zero when the victim survives, the lease is never reclaimed, or
the queue does not drain — the deep assertions (bit-identity, dedupe rate)
live in ``benchmarks/test_bench_sweep_service.py``; this script only proves
the recovery path works end-to-end from a fresh interpreter, CLI-style.
"""

import multiprocessing
import os
import sys


def main() -> int:
    root = os.environ.get("REPRO_RUNCACHE_DIR")
    if not root:
        print("set REPRO_RUNCACHE_DIR to a scratch directory", file=sys.stderr)
        return 2

    from repro.experiments.fig4 import plan_fig4
    from repro.experiments.service import SweepService, run_client

    plan = plan_fig4(epochs=1)
    victim_sig = list(plan)[0].signature()
    context = multiprocessing.get_context("spawn")
    victim = context.Process(
        target=run_client,
        args=(
            {
                "root": root,
                "client_id": "victim",
                "spec_dicts": [spec.to_dict() for spec in plan],
                "kill_lease_holder": victim_sig,
            },
        ),
    )
    victim.start()
    victim.join(timeout=600)
    if victim.exitcode != 137:
        print(f"victim exit code {victim.exitcode}, expected 137", file=sys.stderr)
        return 1

    survivor = SweepService(client_id="survivor", stale_after=5.0)
    drained = survivor.drain(timeout=600)
    stats = survivor.engine.summary()
    print(survivor.format_status())
    if drained != len(plan):
        print(f"drained {drained} of {len(plan)} jobs", file=sys.stderr)
        return 1
    if stats["lease_reclaimed"] < 1:
        print("the orphaned lease was never reclaimed", file=sys.stderr)
        return 1
    print(
        f"ok: victim killed holding {victim_sig[:12]}, "
        f"{stats['lease_reclaimed']:.0f} lease(s) reclaimed, "
        f"{drained} job(s) drained"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
