"""Chaos gate — fault-tolerant sweep execution under injected failures.

PR 5's declarative engine made sweeps fast; this gate proves they are also
*trustworthy*: a supervised sweep survives deterministic injected chaos with
results bit-identical to a failure-free run, and an interrupted sweep resumes
from its crash-safe journal recomputing only unfinished specs.

Two scenarios over a **Fig. 4-shaped grid** (strategy × fault-density,
three seed groups so the parallel supervisor has queued *and* in-flight
work when a worker dies):

* **chaos sweep** — two spawned workers with three *independently
  triggered* injected failures in one run: group 0's worker hard-killed
  (``os._exit``) on its first attempt, a transient-raise spec in group 1
  (fails its first three attempts, then succeeds), and group 2 hung past
  the per-group wall-clock timeout on its first attempt.  Each trigger
  fires on a group's guaranteed-to-execute attempt, so the scenario does
  not depend on scheduling races between the failures.  Gate: every spec
  completes, outcomes bit-identical to the failure-free serial run, zero
  quarantines, and the crash/timeout/retry counters prove the chaos
  actually fired.
* **interrupt + resume** — a store+journal-backed serial sweep aborted after
  ~50 % of the grid published; a fresh engine over the same store/journal
  must recompute only the unfinished half (journal/store hits for every
  completed spec) and reproduce the reference bit for bit.

Metrics land in ``bench_summary.json`` via ``record_result``; the
no-failure hot path is gated separately by ``test_bench_sweeps``.
"""

import time

from repro.experiments.failures import FaultInjector, RetryPolicy
from repro.experiments.fig4 import plan_fig4
from repro.experiments.sweeps import ResultStore, SweepEngine, SweepJournal

from _bench_utils import bench_epochs, bench_seed, record_result
from repro.utils.tabulate import format_table

#: Near-zero backoff: the gate cares about schedules firing, not waiting.
#: The attempt budget leaves headroom for pile-ups — a spec can lose
#: attempts to the pool kill and the timeout respawn *on top of* its own
#: three injected transient failures.
CHAOS_RETRIES = RetryPolicy(max_attempts=6, base_delay=0.001, max_delay=0.05)

#: Generous per-group budget — worker spawn+import alone costs ~2 s.
GROUP_TIMEOUT_S = 10.0

#: Injected hang, far past the timeout so expiry is unambiguous.
HANG_S = 60.0


def _outcome(result):
    return (
        result.loss_history,
        result.train_accuracy_history,
        result.test_accuracy_history,
        result.final_test_accuracy,
    )


def _plan():
    """Fig. 4 grid three times (three seeds → three artifact groups)."""
    epochs = bench_epochs() or 1
    seed = bench_seed()
    plan = plan_fig4(seed=seed, epochs=epochs)
    for offset in (1, 2):
        plan = plan + plan_fig4(seed=seed + offset, epochs=epochs)
    return plan


def test_bench_sweep_resilience(run_once, tmp_path):
    plan = _plan()

    def run():
        # Failure-free serial reference — the bit-identity yardstick.
        reference_engine = SweepEngine()
        start = time.perf_counter()
        reference = {
            spec: _outcome(result)
            for spec, result in reference_engine.run(plan).results.items()
        }
        reference_s = time.perf_counter() - start

        # Scenario 1: chaos sweep.  Each injected failure strikes an attempt
        # that is guaranteed to execute: group 0's first attempt is killed
        # (breaking the pool under whatever else is in flight), group 2's
        # first attempt hangs past the timeout, and a spec of group 1 raises
        # transiently on its first three attempts — enough injected failures
        # to fire at least once even if a pool respawn already consumed some
        # of that spec's early attempts.
        victim = list(plan.groups().values())[1][0]
        chaos_engine = SweepEngine(
            retry_policy=CHAOS_RETRIES,
            group_timeout=GROUP_TIMEOUT_S,
            fault_injector=FaultInjector(
                kill_group=0,
                delay_group=2,
                delay_seconds=HANG_S,
                transient_specs=((victim.signature(), 3),),
            ),
        )
        start = time.perf_counter()
        chaos = chaos_engine.run(plan, max_workers=2)
        chaos_s = time.perf_counter() - start
        stats = chaos_engine.summary()

        assert chaos.complete(), [r.describe() for r in chaos.failed_specs]
        for spec in plan:
            assert _outcome(chaos[spec]) == reference[spec], spec
        # The chaos must actually have fired, not been silently skipped.
        assert stats["worker_crashes"] >= 1, "injected kill never struck"
        assert stats["group_timeouts"] >= 1, "injected hang never timed out"
        assert stats["retry_transient"] >= 1, "injected transient never retried"
        assert stats["pool_respawns"] >= 2
        assert stats["quarantine_specs"] == 0

        # Scenario 2: interrupt at ~50 %, then resume.
        store_dir = tmp_path / "runcache"
        journal_path = tmp_path / "sweep_journal.jsonl"
        abort_after = len(plan) // 2
        interrupted = SweepEngine(
            store=ResultStore(store_dir),
            journal=SweepJournal(journal_path),
            fault_injector=FaultInjector(abort_after=abort_after),
        )
        try:
            interrupted.run(plan)
            raise AssertionError("injected abort never interrupted the sweep")
        except KeyboardInterrupt:
            pass
        assert interrupted.runs_executed == abort_after

        resumed_engine = SweepEngine(
            store=ResultStore(store_dir), journal=SweepJournal(journal_path)
        )
        start = time.perf_counter()
        resumed = resumed_engine.run(plan)
        resume_s = time.perf_counter() - start
        resumed_stats = resumed_engine.summary()

        assert resumed.complete()
        for spec in plan:
            assert _outcome(resumed[spec]) == reference[spec], spec
        # Resume recomputes only the unfinished specs; every completed one
        # is a store hit audited by the journal.
        assert resumed_stats["runs_executed"] == float(len(plan) - abort_after)
        assert resumed_stats["store_hits"] == float(abort_after)
        assert resumed_stats["journal_hits"] == float(abort_after)

        return reference_s, chaos_s, resume_s, stats, resumed_stats, abort_after

    reference_s, chaos_s, resume_s, stats, resumed_stats, abort_after = run_once(run)

    rows = [
        ["failure-free serial reference", reference_s, "-"],
        [
            "chaos sweep (kill + hang + transient, 2 workers)",
            chaos_s,
            f"{stats['retry_attempts']:.0f} retries, "
            f"{stats['pool_respawns']:.0f} respawns",
        ],
        [
            f"resume after interrupt at {abort_after}/{len(_plan())} specs",
            resume_s,
            f"{resumed_stats['journal_hits']:.0f} journal hits",
        ],
    ]
    record_result(
        "sweep_resilience",
        format_table(
            ["Scenario", "Wall clock (s)", "Recovery"],
            rows,
            float_fmt=".3f",
            title=(
                "Fault-tolerant sweep execution — injected chaos, "
                "bit-identical results"
            ),
        ),
        metrics={
            "resilience.reference_s": reference_s,
            "resilience.chaos_s": chaos_s,
            "resilience.resume_s": resume_s,
            "resilience.worker_crashes": stats["worker_crashes"],
            "resilience.group_timeouts": stats["group_timeouts"],
            "resilience.retry_attempts": stats["retry_attempts"],
            "resilience.pool_respawns": stats["pool_respawns"],
            "resilience.quarantine_specs": stats["quarantine_specs"],
            "resilience.resume_journal_hits": resumed_stats["journal_hits"],
            "resilience.resume_runs_executed": resumed_stats["runs_executed"],
        },
    )
