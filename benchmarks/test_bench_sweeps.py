"""Sweep-engine orchestration throughput — declarative plan vs seed serial loop.

PR 1–4 made planning, read-back and the GNN kernels fast; what remained was
the orchestration layer: the seed experiments stack ran every grid cell
through a serial ``run_single`` that rebuilt the dataset, the cluster
partition, the block decomposition, the hardware environment and the BIST
scan from scratch.  This benchmark times a **Fig. 4-shaped
(strategy × fault-density × seed) grid** both ways:

* **seed loop** — the pre-refactor behaviour: one cold ``run_single``
  (``execute_spec`` with no artifacts) per cell, serially;
* **sweep engine** — the same grid as one :class:`SweepPlan` through a cold
  :class:`SweepEngine`: preprocessing artifacts are content-keyed and shared
  across cells, results keyed by spec.

The strategy axis is the mitigation set whose mapping planning is trivial
(fault-free reference, fault-unaware, clipping, NR).  FARe is deliberately
not in the gated grid: its Algorithm 1 planning is per-(strategy, fault
signature) work that no orchestration layer can share across cells of this
grid — that cost is tracked by ``test_bench_mapping_throughput`` /
``test_bench_exact_matching``, and where grids *do* repeat a FARe plan
(across models, panels or clipping ablations) the engine shares it like any
other artifact.

Gates: ≥2.5× cold wall-clock for the engine over the seed loop,
bit-identical histories between the two, and bit-identical spec-keyed
results between serial and process-parallel execution.  Measured
~2.9–3.2× cold on CI containers (the engine's floor here is the 20
training runs themselves, which no orchestration layer can share); the
interleaved best-of-3 timing plus the margin below the worst observed
draw keep machine noise from flaking the gate (same margin discipline as
``test_bench_train_epoch``).
"""

import time

from repro.experiments.sweeps import SweepEngine, SweepPlan, execute_spec

from _bench_utils import bench_epochs, bench_scale, bench_seed, record_result
from repro.utils.tabulate import format_table

MIN_SPEEDUP = 2.5

#: Strategies of the gated grid (see module docstring for why not FARe).
GRID_STRATEGIES = ("fault_free", "fault_unaware", "clipping", "nr")

#: (dataset, model, densities, seeds, epochs) per benchmark scale.  The grid
#: shape matches Fig. 4 — a strategy × fault-density × seed sweep over one
#: workload — at sizes where the complete interleaved measurement stays in
#: CPU-seconds.
SCALES = {
    "ci": ("reddit", "gcn", (0.01, 0.03, 0.05), (0, 1), 1),
    "paper": ("reddit", "gcn", (0.01, 0.03, 0.05), (0,), 1),
}


def _grid(scale):
    dataset, model, densities, seeds, epochs = SCALES.get(scale, SCALES["ci"])
    epochs = bench_epochs() or epochs
    seeds = tuple(s + bench_seed() for s in seeds)
    plan = SweepPlan.grid(
        datasets=[(dataset, model)],
        strategies=GRID_STRATEGIES,
        fault_densities=densities,
        seeds=seeds,
        scale="ci" if scale not in ("ci", "paper") else scale,
        epochs=epochs,
    )
    return plan, dataset, epochs


def _time_paths(plan, repetitions=3):
    """Interleaved best-of-N timing of both cold paths.

    Alternating seed-loop/engine repetitions makes machine-wide noise hit
    both paths alike.  Every repetition is cold: the seed loop rebuilds
    everything by construction, the engine starts from a fresh instance
    (empty memo, empty artifact caches, no store).
    """
    best = {"loop": float("inf"), "engine": float("inf")}
    results = {}
    summaries = {}
    for _ in range(repetitions):
        start = time.perf_counter()
        results["loop"] = {spec: execute_spec(spec) for spec in plan}
        best["loop"] = min(best["loop"], time.perf_counter() - start)

        engine = SweepEngine()
        start = time.perf_counter()
        results["engine"] = engine.run(plan).results
        best["engine"] = min(best["engine"], time.perf_counter() - start)
        summaries["engine"] = engine.summary()
    return best, results, summaries


def _outcome(result):
    return (
        result.loss_history,
        result.train_accuracy_history,
        result.test_accuracy_history,
        result.final_test_accuracy,
    )


def test_bench_sweeps(run_once):
    scale = bench_scale()
    plan, dataset, epochs = _grid(scale)

    def run():
        best, results, summaries = _time_paths(plan)
        # The engine must reproduce the seed loop bit for bit.
        for spec in plan:
            assert _outcome(results["loop"][spec]) == _outcome(results["engine"][spec]), spec

        # Parallel execution: same plan, fresh engine, two spawned workers —
        # spec-keyed results must match serial execution exactly.
        parallel_engine = SweepEngine(max_workers=2)
        start = time.perf_counter()
        parallel = parallel_engine.run(plan).results
        parallel_s = time.perf_counter() - start
        for spec in plan:
            assert _outcome(parallel[spec]) == _outcome(results["engine"][spec]), spec
        return best, summaries, parallel_s

    best, summaries, parallel_s = run_once(run)
    speedup = best["loop"] / best["engine"]
    summary = summaries["engine"]
    shared = sum(v for k, v in summary.items() if k.startswith("artifact_") and k.endswith("_hits"))
    rows = [
        ["seed serial run_single loop", best["loop"], 1.0],
        ["sweep engine (serial, shared artifacts)", best["engine"], speedup],
        ["sweep engine (2 spawned workers)", parallel_s, best["loop"] / parallel_s],
    ]
    record_result(
        "sweeps_orchestration",
        format_table(
            ["Path", "Wall clock (s)", "Speedup"],
            rows,
            float_fmt=".3f",
            title=(
                f"Fig. 4-shaped sweep ({dataset}, {len(plan)} unique specs, "
                f"{epochs} epoch(s)) — cold orchestration wall-clock "
                f"({shared:.0f} artifact-cache hits)"
            ),
        ),
        metrics={
            "sweeps.loop_s": best["loop"],
            "sweeps.engine_s": best["engine"],
            "sweeps.parallel_s": parallel_s,
            "sweeps.speedup": speedup,
            "sweeps.grid_cells": float(len(plan)),
            "sweeps.artifact_hits": shared,
        },
    )

    # Acceptance gate: the declarative engine must run the grid at least 3×
    # faster than the seed serial loop, cold, at CI scale.
    assert speedup >= MIN_SPEEDUP, f"sweep speedup {speedup:.2f}x < {MIN_SPEEDUP}x"
    # The sharing must actually have happened, not be incidental timing.
    assert shared > 0
    assert summary["runs_executed"] == float(len(plan))
