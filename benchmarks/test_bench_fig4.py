"""Fig. 4 — training-accuracy curves: fault-unaware vs FARe (Reddit, GCN).

Paper shape: at 1-5 % pre-deployment fault density (SA0:SA1 = 9:1) the
fault-unaware curves sit clearly below the fault-free curve, while the FARe
curves overlap it as training converges.
"""

import numpy as np

from repro.experiments.fig4 import format_fig4, run_fig4

from _bench_utils import bench_epochs, bench_scale, bench_seed, record_result


def test_bench_fig4(run_once):
    result = run_once(
        run_fig4,
        dataset="reddit",
        model="gcn",
        scale=bench_scale(),
        seed=bench_seed(),
        epochs=bench_epochs(),
    )

    worst_density = max(result.densities)
    # At the highest density, FARe's final training accuracy is much closer to
    # fault-free than fault-unaware's.
    fare_gap = result.final_gap("fare", worst_density)
    unaware_gap = result.final_gap("fault_unaware", worst_density)
    assert fare_gap < unaware_gap
    assert fare_gap < 0.10

    # Averaged over the second half of training, FARe tracks the fault-free
    # curve for every density.
    half = len(result.fault_free_curve) // 2
    reference = float(np.mean(result.fault_free_curve[half:]))
    for density in result.densities:
        fare_tail = float(np.mean(result.fare_curves[density][half:]))
        assert reference - fare_tail < 0.12

    record_result("fig4", format_fig4(result))
