"""Pytest fixtures for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper: it runs
the corresponding experiment driver once (``benchmark.pedantic`` with a single
round — the drivers themselves are the expensive part), asserts the paper's
qualitative shape, prints the rows/series the paper reports and also writes
them to ``benchmarks/results/<name>.txt`` so the output survives pytest's
capture.  See ``_bench_utils`` for the environment variables controlling
scale, epochs and seed.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make `_bench_utils` importable regardless of how pytest was invoked.
sys.path.insert(0, str(Path(__file__).parent))


@pytest.fixture
def run_once(benchmark):
    """Run an experiment driver exactly once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
