"""Mapping throughput — seed per-pair loop vs. the batched cost engine.

Algorithm 1 runs once per mini-batch per epoch, so blocks-mapped-per-second
is the figure of merit for the pre-processing phase.  This benchmark maps the
same random batches through both :class:`FaultAwareMapper` paths:

* **seed** — the original Python ``B × M`` double loop (two matmuls and one
  assignment solve per pair, all permutations materialised);
* **engine (cold)** — the batched :class:`MappingCostEngine` with an empty
  result cache (fresh mapper per repetition);
* **engine (warm)** — the same mapper re-mapping an already-seen batch, i.e.
  the per-epoch refresh scenario where the BIST map has not changed.

The sweep covers several batch sizes and fault rates; the headline
configuration (16 blocks × 32 crossbars at 10 % faulty cells) must show at
least a 10× cold speedup, and both paths must return identical mappings
(spot-checked here, exhaustively proven in ``tests/test_core_cost_engine.py``).
"""

import time

import numpy as np

from repro.core.mapping import FaultAwareMapper
from repro.hardware.faults import FaultModel
from repro.utils.tabulate import format_table

from _bench_utils import bench_scale, bench_seed, record_result

CROSSBAR_SIZE = 32
BLOCK_DENSITY = 0.08
HEADLINE = (16, 32, 0.10)  # (blocks, crossbars, fault rate) — acceptance gate
SWEEP_CI = [
    (4, 8, 0.05),
    (8, 16, 0.10),
    HEADLINE,
]
SWEEP_PAPER = SWEEP_CI + [
    (32, 64, 0.10),
    (16, 32, 0.20),
]
MIN_COLD_SPEEDUP = 10.0


def _mapper(use_cost_engine):
    return FaultAwareMapper(row_method="greedy", use_cost_engine=use_cost_engine)


def _make_case(num_blocks, num_crossbars, fault_rate, seed):
    rng = np.random.default_rng(seed)
    blocks = [
        (rng.random((CROSSBAR_SIZE, CROSSBAR_SIZE)) < BLOCK_DENSITY).astype(float)
        for _ in range(num_blocks)
    ]
    fmaps = FaultModel(fault_rate, (9.0, 1.0), seed=seed + 1).generate(
        num_crossbars, CROSSBAR_SIZE, CROSSBAR_SIZE
    )
    return blocks, fmaps


def _time_path(make_mapper, blocks, fmaps, repetitions, reuse_mapper=False):
    """Best-of-N blocks-per-second of ``map_blocks`` (robust to timer noise)."""
    mapper = make_mapper() if reuse_mapper else None
    if reuse_mapper:
        mapper.map_blocks(blocks, fmaps)  # populate the cache
    best = float("inf")
    for _ in range(repetitions):
        active = mapper if reuse_mapper else make_mapper()
        start = time.perf_counter()
        mapping = active.map_blocks(blocks, fmaps)
        best = min(best, time.perf_counter() - start)
    return len(blocks) / best, best, mapping


def _identical(a, b):
    if a.pruned_crossbars != b.pruned_crossbars or a.relaxed_blocks != b.relaxed_blocks:
        return False
    for x, y in zip(a.blocks, b.blocks):
        if (
            x.block_index != y.block_index
            or x.crossbar_index != y.crossbar_index
            or x.cost != y.cost
            or x.sa1_mismatch != y.sa1_mismatch
            or not np.array_equal(x.row_permutation, y.row_permutation)
        ):
            return False
    return True


def test_bench_mapping_throughput(run_once):
    scale = bench_scale()
    seed = bench_seed()
    sweep = SWEEP_CI if scale == "ci" else SWEEP_PAPER
    seed_reps, engine_reps = (2, 8) if scale == "ci" else (3, 12)

    def run_sweep():
        results = {}
        for case_index, (num_blocks, num_crossbars, fault_rate) in enumerate(sweep):
            blocks, fmaps = _make_case(
                num_blocks, num_crossbars, fault_rate, seed + 17 * case_index
            )
            seed_bps, seed_s, seed_mapping = _time_path(
                lambda: _mapper(False), blocks, fmaps, seed_reps
            )
            cold_bps, cold_s, cold_mapping = _time_path(
                lambda: _mapper(True), blocks, fmaps, engine_reps
            )
            warm_bps, warm_s, warm_mapping = _time_path(
                lambda: _mapper(True), blocks, fmaps, engine_reps, reuse_mapper=True
            )
            assert _identical(seed_mapping, cold_mapping)
            assert _identical(seed_mapping, warm_mapping)
            results[(num_blocks, num_crossbars, fault_rate)] = {
                "seed_bps": seed_bps,
                "cold_bps": cold_bps,
                "warm_bps": warm_bps,
                "seed_s": seed_s,
                "cold_s": cold_s,
                "warm_s": warm_s,
            }
        return results

    results = run_once(run_sweep)

    rows = []
    for (num_blocks, num_crossbars, fault_rate), r in results.items():
        rows.append(
            [
                f"{num_blocks}x{num_crossbars} @ {fault_rate:.0%}",
                r["seed_bps"],
                r["cold_bps"],
                r["warm_bps"],
                r["cold_bps"] / r["seed_bps"],
                r["warm_bps"] / r["seed_bps"],
            ]
        )
    record_result(
        "mapping_throughput",
        format_table(
            [
                "Blocks x crossbars @ fault rate",
                "Seed (blocks/s)",
                "Engine cold (blocks/s)",
                "Engine warm (blocks/s)",
                "Cold speedup",
                "Warm speedup",
            ],
            rows,
            title="Algorithm 1 mapping throughput — seed loop vs. batched cost engine",
        ),
        metrics={
            "mapping_throughput.headline_seed_blocks_per_s": results[HEADLINE]["seed_bps"],
            "mapping_throughput.headline_cold_blocks_per_s": results[HEADLINE]["cold_bps"],
            "mapping_throughput.headline_warm_blocks_per_s": results[HEADLINE]["warm_bps"],
            "mapping_throughput.headline_cold_speedup": (
                results[HEADLINE]["cold_bps"] / results[HEADLINE]["seed_bps"]
            ),
            "mapping_throughput.headline_warm_speedup": (
                results[HEADLINE]["warm_bps"] / results[HEADLINE]["seed_bps"]
            ),
        },
    )

    # Acceptance gate: ≥10× cold speedup at 16 blocks × 32 crossbars, 10 %
    # faulty cells; the warm (cached-refresh) path must not be slower than
    # the cold path by more than measurement noise.
    headline = results[HEADLINE]
    assert headline["cold_bps"] >= MIN_COLD_SPEEDUP * headline["seed_bps"], (
        f"cold engine speedup "
        f"{headline['cold_bps'] / headline['seed_bps']:.1f}x < {MIN_COLD_SPEEDUP}x"
    )
    assert headline["warm_bps"] >= headline["cold_bps"] * 0.5
    # Every swept configuration must at least clearly beat the seed loop.
    for r in results.values():
        assert r["cold_bps"] > 2.0 * r["seed_bps"]
