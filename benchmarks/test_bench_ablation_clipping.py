"""Ablation — weight-clipping threshold.

The clipping threshold is the one hyperparameter of FARe's combination-phase
mitigation.  This ablation trains the Reddit/GCN workload at 5 % faults (1:1
ratio) with several thresholds and reports the final test accuracy.
"""

from repro.experiments.runner import run_single
from repro.utils.tabulate import format_table

from _bench_utils import bench_epochs, bench_scale, bench_seed, record_result

THRESHOLDS = (0.25, 1.0, 4.0)


def test_bench_ablation_clipping(run_once):
    scale, seed, epochs = bench_scale(), bench_seed(), bench_epochs()

    def sweep():
        outcomes = {}
        for threshold in THRESHOLDS:
            result = run_single(
                "reddit",
                "gcn",
                "fare",
                0.05,
                sa_ratio=(1.0, 1.0),
                scale=scale,
                seed=seed,
                epochs=epochs,
                strategy_kwargs={"clipping_threshold": threshold, "row_method": "greedy"},
            )
            outcomes[threshold] = result.final_test_accuracy
        baseline = run_single(
            "reddit", "gcn", "fault_unaware", 0.05, sa_ratio=(1.0, 1.0),
            scale=scale, seed=seed, epochs=epochs,
        )
        outcomes["fault_unaware"] = baseline.final_test_accuracy
        return outcomes

    results = run_once(sweep)

    rows = [[str(key), value] for key, value in results.items()]
    record_result(
        "ablation_clipping",
        format_table(
            ["Clipping threshold", "Test accuracy"],
            rows,
            title="Ablation — FARe clipping threshold (Reddit/GCN, 5 %, 1:1)",
        ),
    )

    # Any reasonable threshold must beat the unprotected baseline; a tight
    # threshold (of the order of the weight scale) should be at least as good
    # as an essentially-disabled one (= the full representable range).
    best = max(results[t] for t in THRESHOLDS)
    assert best > results["fault_unaware"]
    assert results[1.0] >= results[4.0] - 0.05
