"""Reverse-mode autodiff tensor.

The design follows the classic "define-by-run tape" pattern: every operation
returns a new :class:`Tensor` holding references to its parents and a closure
that accumulates gradients into them.  ``Tensor.backward()`` topologically
sorts the graph and runs the closures in reverse order.

The engine intentionally supports only what GNN training needs — 2-D (and a
few 1-D) float arrays, broadcasting over leading/trailing unit axes, and the
operations defined in :mod:`repro.tensor.ops`.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Set, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, list, tuple]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape`` (inverse of broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over extra leading axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array data (converted to ``float64``).
    requires_grad:
        Whether gradients should be accumulated for this tensor.
    parents:
        Tensors this one was computed from (internal use).
    backward_fn:
        Closure that propagates ``self.grad`` into the parents (internal use).
    name:
        Optional human-readable name (useful when debugging graphs).
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Iterable["Tensor"] = (),
        backward_fn: Optional[Callable[[], None]] = None,
        name: str = "",
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._parents: Tuple[Tensor, ...] = tuple(parents) if _GRAD_ENABLED else ()
        self._backward_fn = backward_fn if _GRAD_ENABLED else None
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad_flag}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(
            np.asarray(self.data).item()
        )

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a detached deep copy."""
        return Tensor(self.data.copy(), requires_grad=False)

    # ------------------------------------------------------------------ #
    # Graph plumbing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _as_tensor(other: Union["Tensor", ArrayLike]) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def _accumulate(self, grad: np.ndarray) -> None:
        """Accumulate ``grad`` into ``self.grad`` (creating it if needed)."""
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def zero_grad(self) -> None:
        """Reset accumulated gradient."""
        self.grad = None

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ``1`` and therefore requires a scalar tensor.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar "
                    f"tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        self._accumulate(np.asarray(grad, dtype=np.float64))

        order: List[Tensor] = []
        visited: Set[int] = set()

        def visit(node: "Tensor") -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                visit(parent)
            order.append(node)

        visit(self)
        for node in reversed(order):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn()

    # ------------------------------------------------------------------ #
    # Arithmetic (element-wise, broadcasting)
    # ------------------------------------------------------------------ #
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._as_tensor(other)
        out = Tensor(
            self.data + other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            parents=(self, other),
        )

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad)
            if other.requires_grad:
                other._accumulate(out.grad)

        out._backward_fn = _backward if _GRAD_ENABLED else None
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = Tensor(-self.data, requires_grad=self.requires_grad, parents=(self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(-out.grad)

        out._backward_fn = _backward if _GRAD_ENABLED else None
        return out

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self + (-self._as_tensor(other))

    def __rsub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._as_tensor(other) + (-self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._as_tensor(other)
        out = Tensor(
            self.data * other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            parents=(self, other),
        )

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * other.data)
            if other.requires_grad:
                other._accumulate(out.grad * self.data)

        out._backward_fn = _backward if _GRAD_ENABLED else None
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._as_tensor(other)
        out = Tensor(
            self.data / other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            parents=(self, other),
        )

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad / other.data)
            if other.requires_grad:
                other._accumulate(-out.grad * self.data / (other.data**2))

        out._backward_fn = _backward if _GRAD_ENABLED else None
        return out

    def __rtruediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out = Tensor(
            self.data**exponent, requires_grad=self.requires_grad, parents=(self,)
        )

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

        out._backward_fn = _backward if _GRAD_ENABLED else None
        return out

    # ------------------------------------------------------------------ #
    # Matrix products
    # ------------------------------------------------------------------ #
    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._as_tensor(other)
        out = Tensor(
            self.data @ other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            parents=(self, other),
        )

        def _backward() -> None:
            grad = out.grad
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data))
                else:
                    self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad))
                else:
                    other._accumulate(self.data.T @ grad)

        out._backward_fn = _backward if _GRAD_ENABLED else None
        return out

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def transpose(self) -> "Tensor":
        out = Tensor(self.data.T, requires_grad=self.requires_grad, parents=(self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.T)

        out._backward_fn = _backward if _GRAD_ENABLED else None
        return out

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        out = Tensor(
            self.data.reshape(shape), requires_grad=self.requires_grad, parents=(self,)
        )

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.reshape(original))

        out._backward_fn = _backward if _GRAD_ENABLED else None
        return out

    def __getitem__(self, index) -> "Tensor":
        out = Tensor(
            self.data[index], requires_grad=self.requires_grad, parents=(self,)
        )

        def _backward() -> None:
            if self.requires_grad:
                grad = np.zeros_like(self.data)
                np.add.at(grad, index, out.grad)
                self._accumulate(grad)

        out._backward_fn = _backward if _GRAD_ENABLED else None
        return out

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out = Tensor(
            self.data.sum(axis=axis, keepdims=keepdims),
            requires_grad=self.requires_grad,
            parents=(self,),
        )

        def _backward() -> None:
            if not self.requires_grad:
                return
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            self._accumulate(np.broadcast_to(grad, self.data.shape))

        out._backward_fn = _backward if _GRAD_ENABLED else None
        return out

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            denom = self.data.size
        else:
            denom = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / denom)

    def max(self, axis: Optional[int] = None) -> "Tensor":
        """Max reduction (gradient flows to the arg-max entries)."""
        out_data = self.data.max(axis=axis, keepdims=axis is not None)
        out = Tensor(
            out_data if axis is None else out_data.squeeze(axis),
            requires_grad=self.requires_grad,
            parents=(self,),
        )

        def _backward() -> None:
            if not self.requires_grad:
                return
            grad = out.grad
            if axis is not None:
                grad = np.expand_dims(grad, axis=axis)
            mask = (self.data == out_data).astype(np.float64)
            # Split gradient evenly between ties.
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0) if axis is not None else max(mask.sum(), 1.0)
            self._accumulate(mask * grad)

        out._backward_fn = _backward if _GRAD_ENABLED else None
        return out
