"""Layer containers: :class:`Parameter`, :class:`Module` and :class:`Sequential`.

A :class:`Module` mirrors the familiar ``torch.nn.Module`` contract at the
scale this project needs: registration of parameters and sub-modules, named
parameter traversal, train/eval mode, and state-dict export/import (used by
experiments that restart training from a checkpointed fault-free model).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A tensor flagged as trainable (``requires_grad=True`` by default)."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for neural-network layers and models."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------ #
    # Registration via attribute assignment
    # ------------------------------------------------------------------ #
    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[key] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[key] = value
        object.__setattr__(self, key, value)

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs for this module tree."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> List[Parameter]:
        """Return all parameters of the module tree as a list."""
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(dotted_name, module)`` pairs including ``self``."""
        yield (prefix.rstrip("."), self)
        for child_name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{child_name}.")

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------ #
    # Modes
    # ------------------------------------------------------------------ #
    def train(self) -> "Module":
        """Switch this module (and children) to training mode."""
        self.training = True
        for child in self._modules.values():
            child.train()
        return self

    def eval(self) -> "Module":
        """Switch this module (and children) to evaluation mode."""
        self.training = False
        for child in self._modules.values():
            child.eval()
        return self

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a name → array copy of every parameter."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values from :meth:`state_dict` output."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch; missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, values in state.items():
            target = params[name]
            values = np.asarray(values, dtype=np.float64)
            if values.shape != target.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {values.shape} vs {target.data.shape}"
                )
            target.data = values.copy()

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Apply modules in order, feeding each output into the next module."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for idx, module in enumerate(modules):
            name = f"layer{idx}"
            setattr(self, name, module)
            self._order.append(name)

    def forward(self, x, *args, **kwargs):
        for name in self._order:
            x = getattr(self, name)(x, *args, **kwargs)
        return x

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self):
        return (getattr(self, name) for name in self._order)
