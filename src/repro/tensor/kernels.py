"""Segment-reduce sparse kernels shared by the tensor/graph/nn layers.

Every sparse numeric hot spot of the GNN forward/backward funnels through
this module:

* :func:`segment_sum` — sum rows of a value array into buckets.  The kernel
  replaces ``np.add.at`` (un-buffered, element-at-a-time) with a sort +
  ``np.add.reduceat`` plan; when the segment ids are already sorted — the
  case for every CSR-driven caller — the sort is skipped entirely.
* :func:`csr_matmat` — CSR × dense matrix product driven by
  ``np.add.reduceat`` over ``indptr`` instead of scatter-adds.
* :func:`csr_transpose` — O(nnz) counting-based CSR transpose (no
  coordinate materialisation round-trip through ``from_coo``).
* :func:`gather_rows` / :func:`csr_row_ids` — row gathers and the
  ``indptr`` → per-entry row-id expansion used by all of the above.
* :func:`edge_softmax` — numerically-stabilised softmax over the edge list
  of a CSR adjacency (segments = destination rows), the primitive behind
  sparse GAT attention.

Equivalence contract: the structural kernels (:func:`csr_transpose` and the
gather plans) are bit-identical to the seed implementations.  The value
reductions are deterministic but *reassociated*: ``np.add.reduceat`` sums
each segment with numpy's pairwise algorithm, whereas the seed
``np.add.at`` accumulated strictly left to right, so results can differ by
floating-point round-off (~1e-15 relative — pairwise is the numerically
tighter of the two).  The stable sort used for unsorted ids still preserves
the in-segment entry order, so the set of values reduced per segment is
identical; equivalence is enforced to tight tolerances by
``tests/test_tensor_kernels.py``.

Call counters accumulate in the module-level :data:`COUNTERS`;
:class:`KernelStatsView` snapshots them so a training run can report the
delta through ``Strategy.mapping_engine_stats()`` →
:mod:`repro.pipeline.timing` components, mirroring the mapping cost engine
and hardware-state cache plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np


# --------------------------------------------------------------------------- #
# Counters
# --------------------------------------------------------------------------- #
@dataclass
class KernelCounters:
    """Process-wide call/hit counters of the segment-reduce kernel layer."""

    segment_sum_calls: int = 0
    segment_sum_sorted_fast_path: int = 0
    csr_matmat_calls: int = 0
    gather_rows_calls: int = 0
    edge_softmax_calls: int = 0
    transpose_cache_hits: int = 0
    transpose_cache_misses: int = 0
    #: Batched multi-graph kernels (block-diagonal CSR fusion): how many
    #: fused matrices were built, how many member graphs they absorbed, and
    #: the hit/miss split of the trainer-level aggregation precompute cache
    #: (see ``graph.normalize.aggregate_features_cached``).
    batched_block_diag_calls: int = 0
    batched_graphs_fused: int = 0
    batched_agg_cache_hits: int = 0
    batched_agg_cache_misses: int = 0
    #: Fused train-step batching (see ``pipeline.trainer``): buckets stepped
    #: by the accumulate/fused train modes, block-diagonal training forwards
    #: actually fused, and reuse hits of the memoised per-bucket
    #: ``SegmentPlan`` + block-diag workspace across epochs.
    batched_train_buckets: int = 0
    train_fused_forwards: int = 0
    segment_plan_cache_hits: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            f"kernel_{name}": float(getattr(self, name))
            for name in self.__dataclass_fields__
        }

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)


#: Module-level counter instance every kernel increments.
COUNTERS = KernelCounters()


def kernel_counters() -> KernelCounters:
    """Return the live module-level counter instance."""
    return COUNTERS


class KernelStatsView:
    """Delta view of :data:`COUNTERS` since construction.

    The trainer attaches one per run to its strategy
    (:meth:`~repro.core.strategies.Strategy.attach_kernel_stats`), so the
    counters it reports cover exactly that run even though the underlying
    counters are process-wide.
    """

    def __init__(self) -> None:
        self._baseline = COUNTERS.as_dict()

    def as_dict(self) -> Dict[str, float]:
        current = COUNTERS.as_dict()
        return {key: current[key] - self._baseline[key] for key in current}


# --------------------------------------------------------------------------- #
# Workspace
# --------------------------------------------------------------------------- #
class _Workspace:
    """Grow-only scratch buffer for per-edge intermediates.

    The ``(features, nnz)`` contribution array of a sparse product is the
    single largest allocation of a GNN forward/backward; allocating it fresh
    per call costs more in page faults than the arithmetic does.  The kernel
    layer instead reuses one flat buffer (grown on demand, never shrunk) —
    safe because every kernel finishes with the buffer before returning and
    nothing ever hands out a live view of it.  Not thread-safe, like the
    rest of the training stack.
    """

    def __init__(self) -> None:
        self._buffer = np.empty(0, dtype=np.float64)

    def matrix(self, rows: int, cols: int) -> np.ndarray:
        needed = rows * cols
        if self._buffer.size < needed:
            self._buffer = np.empty(needed, dtype=np.float64)
        return self._buffer[:needed].reshape(rows, cols)


_WORKSPACE = _Workspace()


# --------------------------------------------------------------------------- #
# Segment reductions
# --------------------------------------------------------------------------- #
def _is_sorted(ids: np.ndarray) -> bool:
    return bool(ids.size <= 1 or np.all(ids[1:] >= ids[:-1]))


def _segment_reduce_2d(
    values: np.ndarray,
    order: "np.ndarray | None",
    starts: np.ndarray,
) -> np.ndarray:
    """Reduce 2-D ``values`` at ``starts`` (after optional ``order`` gather).

    The reduction runs over the *contiguous* axis of a transposed
    ``(features, entries)`` workspace copy: ``np.add.reduceat`` along axis 1
    of a C-contiguous array is several times faster than along axis 0 of
    the natural ``(entries, features)`` layout, and the gather/transpose
    lands in the reused workspace instead of a fresh allocation.
    Returns the reduced block in natural ``(segments, features)`` layout.
    """
    contrib = _WORKSPACE.matrix(values.shape[1], values.shape[0])
    if order is None:
        np.copyto(contrib, values.T)
    else:
        np.take(values.T, order, axis=1, out=contrib)
    return np.add.reduceat(contrib, starts, axis=1).T


@dataclass(frozen=True)
class SegmentPlan:
    """Precomputed sort/reduce plan for repeated :func:`segment_sum` calls.

    Building a plan runs the (O(E log E)) stable argsort once; every
    ``segment_sum`` call that passes it back skips straight to the
    reduction.  The hot consumer is sparse GAT attention, which scatters
    through the same edge-column array once per head per training step —
    the plan lives alongside the memoised edge list.
    """

    num_segments: int
    #: The (int64) segment ids the plan was built from (validated on use).
    ids: np.ndarray
    #: Stable sort permutation, or ``None`` when the ids were already sorted.
    order: Optional[np.ndarray]
    #: First-occurrence positions of each segment in sorted order.
    starts: np.ndarray
    #: Segment id owning each ``starts`` slice (the output rows written).
    out_ids: np.ndarray


def segment_plan(segment_ids: np.ndarray, num_segments: int) -> SegmentPlan:
    """Build the reusable sort/reduce plan for ``segment_ids``."""
    ids = np.asarray(segment_ids, dtype=np.int64)
    if ids.ndim != 1:
        raise ValueError("segment_ids must be 1-D")
    num_segments = int(num_segments)
    if ids.size and (ids.min() < 0 or ids.max() >= num_segments):
        raise ValueError("segment id out of range")
    if _is_sorted(ids):
        order = None
        sorted_ids = ids
    else:
        order = np.argsort(ids, kind="stable")
        sorted_ids = ids[order]
    if ids.size:
        starts = np.flatnonzero(
            np.concatenate(([True], sorted_ids[1:] != sorted_ids[:-1]))
        )
        out_ids = sorted_ids[starts]
    else:
        starts = np.zeros(0, dtype=np.int64)
        out_ids = np.zeros(0, dtype=np.int64)
    return SegmentPlan(
        num_segments=num_segments,
        ids=ids,
        order=order,
        starts=starts,
        out_ids=out_ids,
    )


def segment_sum(
    values: np.ndarray,
    segment_ids: np.ndarray,
    num_segments: int,
    plan: Optional[SegmentPlan] = None,
) -> np.ndarray:
    """``out[i] = sum_{j : segment_ids[j] == i} values[j]`` along axis 0.

    Sorted ``segment_ids`` (the CSR case) skip the argsort; unsorted ids are
    stably sorted first so each segment reduces exactly the values —
    in exactly the order — the seed ``np.add.at`` scatter visited (the
    reduction itself is pairwise, see the module equivalence contract).
    Callers that scatter through the same ids repeatedly can pass a
    :func:`segment_plan` to amortise the sort; the
    ``segment_sum_sorted_fast_path`` counter then counts every call that
    skipped an argsort (sorted ids or plan reuse alike).
    """
    COUNTERS.segment_sum_calls += 1
    values = np.asarray(values, dtype=np.float64)
    ids = np.asarray(segment_ids, dtype=np.int64)
    if ids.ndim != 1 or ids.shape[0] != values.shape[0]:
        raise ValueError("segment_ids must be 1-D with one entry per value row")
    num_segments = int(num_segments)
    out = np.zeros((num_segments,) + values.shape[1:], dtype=np.float64)
    if ids.size == 0:
        return out
    if plan is not None:
        if plan.num_segments != num_segments or (
            plan.ids is not ids and not np.array_equal(plan.ids, ids)
        ):
            raise ValueError("segment plan does not match this scatter")
        COUNTERS.segment_sum_sorted_fast_path += 1
    else:
        plan = segment_plan(ids, num_segments)
        if plan.order is None:
            COUNTERS.segment_sum_sorted_fast_path += 1
    if values.ndim == 2 and values.shape[1] > 1:
        out[plan.out_ids] = _segment_reduce_2d(values, plan.order, plan.starts)
    else:
        sorted_values = values if plan.order is None else values[plan.order]
        out[plan.out_ids] = np.add.reduceat(sorted_values, plan.starts, axis=0)
    return out


def csr_row_ids(indptr: np.ndarray) -> np.ndarray:
    """Expand a CSR ``indptr`` into the (sorted) per-entry row-id array."""
    indptr = np.asarray(indptr, dtype=np.int64)
    return np.repeat(np.arange(indptr.shape[0] - 1, dtype=np.int64), np.diff(indptr))


def gather_rows(dense: np.ndarray, index: np.ndarray) -> np.ndarray:
    """Row gather ``dense[index]`` (counted so the stats see edge gathers)."""
    COUNTERS.gather_rows_calls += 1
    return np.asarray(dense)[np.asarray(index, dtype=np.int64)]


# --------------------------------------------------------------------------- #
# CSR kernels
# --------------------------------------------------------------------------- #
def csr_matmat(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    dense: np.ndarray,
) -> np.ndarray:
    """CSR × dense product via ``np.add.reduceat`` over ``indptr``.

    ``dense`` must be 2-D ``(cols, k)``; returns ``(rows, k)``.  The per-edge
    contributions are gathered transposed into the shared workspace so the
    reduction runs along the contiguous axis (see :func:`_segment_reduce_2d`).
    Empty rows stay zero: ``reduceat`` is only evaluated at the starts of
    non-empty rows (a start index equal to the next start would otherwise
    re-read a single element instead of producing an empty sum).
    """
    COUNTERS.csr_matmat_calls += 1
    indptr = np.asarray(indptr, dtype=np.int64)
    dense = np.asarray(dense, dtype=np.float64)
    data = np.asarray(data, dtype=np.float64)
    rows = indptr.shape[0] - 1
    out = np.zeros((rows, dense.shape[1]), dtype=np.float64)
    if data.shape[0] == 0:
        return out
    nonempty = np.flatnonzero(np.diff(indptr) > 0)
    starts = indptr[nonempty]
    if dense.shape[1] > 1:
        contrib = _WORKSPACE.matrix(dense.shape[1], data.shape[0])
        np.take(dense.T, indices, axis=1, out=contrib)
        contrib *= data
        out[nonempty] = np.add.reduceat(contrib, starts, axis=1).T
    else:
        contrib = data[:, None] * dense[indices]
        out[nonempty] = np.add.reduceat(contrib, starts, axis=0)
    return out


def block_diag_csr(
    parts: "list[Tuple[np.ndarray, np.ndarray, np.ndarray, Tuple[int, int]]]",
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Tuple[int, int], np.ndarray]:
    """Stack CSR matrices into one block-diagonal CSR.

    ``parts`` is a list of ``(indptr, indices, data, shape)`` tuples; the
    result is ``(indptr, indices, data, shape, row_offsets)`` where
    ``row_offsets[k]`` is the first fused row of part ``k`` (with a final
    sentinel equal to the fused row count), so callers can split per-part
    row slices back out of a fused product.

    Structure contract: rows within a block keep their entry order and no
    row ever gains entries from another block, so per-row segment reductions
    (``csr_matmat``, ``edge_softmax``, row sums) over the fused matrix are
    **bit-identical** per block to running the per-part kernels — the fusion
    only amortises the Python/kernel dispatch over the whole bucket.
    """
    COUNTERS.batched_block_diag_calls += 1
    COUNTERS.batched_graphs_fused += len(parts)
    if not parts:
        raise ValueError("block_diag_csr needs at least one part")
    indptrs = []
    indices_parts = []
    data_parts = []
    row_offsets = np.zeros(len(parts) + 1, dtype=np.int64)
    col_offset = 0
    nnz_offset = 0
    total_cols = 0
    for k, (indptr, indices, data, shape) in enumerate(parts):
        indptr = np.asarray(indptr, dtype=np.int64)
        start = indptr if k == 0 else indptr[1:]
        indptrs.append(start + nnz_offset)
        indices_parts.append(np.asarray(indices, dtype=np.int64) + col_offset)
        data_parts.append(np.asarray(data, dtype=np.float64))
        row_offsets[k + 1] = row_offsets[k] + int(shape[0])
        col_offset += int(shape[1])
        total_cols += int(shape[1])
        nnz_offset += int(indptr[-1])
    fused_indptr = np.concatenate(indptrs)
    fused_indices = np.concatenate(indices_parts)
    fused_data = np.concatenate(data_parts)
    shape = (int(row_offsets[-1]), total_cols)
    return fused_indptr, fused_indices, fused_data, shape, row_offsets


def csr_row_sums(indptr: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Per-row sums of the stored values (reduceat over ``indptr``)."""
    indptr = np.asarray(indptr, dtype=np.int64)
    out = np.zeros(indptr.shape[0] - 1, dtype=np.float64)
    if data.shape[0] == 0:
        return out
    nonempty = np.flatnonzero(np.diff(indptr) > 0)
    out[nonempty] = np.add.reduceat(data, indptr[nonempty])
    return out


def csr_transpose(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    shape: Tuple[int, int],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Transpose a CSR matrix, returning ``(indptr_T, indices_T, data_T)``.

    A stable argsort on the column indices is exactly the
    ``lexsort((rows, cols))`` the seed ``from_coo`` round-trip performed
    (entries are already row-sorted), so the output arrays are bit-identical
    to the seed transpose — without materialising coordinates or re-running
    the constructor's duplicate handling.
    """
    rows, cols = int(shape[0]), int(shape[1])
    entry_rows = csr_row_ids(indptr)
    order = np.argsort(indices, kind="stable")
    indices_t = entry_rows[order]
    data_t = np.asarray(data)[order]
    counts = np.bincount(indices, minlength=cols)
    indptr_t = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64))
    )
    return indptr_t, indices_t, data_t


# --------------------------------------------------------------------------- #
# Edge-wise softmax (sparse attention)
# --------------------------------------------------------------------------- #
def edge_softmax(
    scores: np.ndarray,
    indptr: np.ndarray,
    row_ids: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Softmax over CSR edge segments: edges of row ``i`` sum to one.

    ``scores`` is ``(E,)`` or ``(E, H)`` — one score per stored edge, in CSR
    order — and ``indptr`` delimits each destination row's edge slice.  The
    per-row max is subtracted before exponentiation (the same stabilisation
    the dense masked softmax applies), so sparse GAT attention matches the
    dense ``masked_fill`` path to floating-point round-off.  ``row_ids``
    (the :func:`csr_row_ids` expansion of ``indptr``) may be passed to avoid
    recomputing it per call.
    """
    COUNTERS.edge_softmax_calls += 1
    scores = np.asarray(scores, dtype=np.float64)
    indptr = np.asarray(indptr, dtype=np.int64)
    if scores.shape[0] != indptr[-1]:
        raise ValueError(
            f"scores has {scores.shape[0]} edges but indptr ends at {indptr[-1]}"
        )
    if scores.shape[0] == 0:
        return np.zeros_like(scores)
    if row_ids is None:
        row_ids = csr_row_ids(indptr)
    nonempty = np.flatnonzero(np.diff(indptr) > 0)
    starts = indptr[nonempty]
    num_rows = indptr.shape[0] - 1
    trailing = scores.shape[1:]
    row_max = np.zeros((num_rows,) + trailing, dtype=np.float64)
    row_max[nonempty] = np.maximum.reduceat(scores, starts, axis=0)
    shifted = np.exp(scores - row_max[row_ids])
    denom = np.zeros((num_rows,) + trailing, dtype=np.float64)
    denom[nonempty] = np.add.reduceat(shifted, starts, axis=0)
    return shifted / denom[row_ids]


def edge_softmax_backward(
    alpha: np.ndarray,
    grad: np.ndarray,
    indptr: np.ndarray,
    row_ids: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Gradient of :func:`edge_softmax` w.r.t. the scores.

    ``d e_k = alpha_k * (g_k - sum_{k' in row} g_{k'} alpha_{k'})`` — the
    per-segment analogue of the dense softmax Jacobian-vector product.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    if row_ids is None:
        row_ids = csr_row_ids(indptr)
    weighted = grad * alpha
    row_dot = segment_sum(weighted, row_ids, indptr.shape[0] - 1)
    return alpha * (grad - row_dot[row_ids])
