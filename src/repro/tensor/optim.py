"""Optimisers: plain/momentum SGD and Adam.

The paper trains every model with a learning rate of 0.01 (Table II); Adam is
the default used by the experiment drivers because mini-batch cluster training
with a numpy backend benefits from its per-parameter scaling.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.tensor.module import Parameter


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        #: Monotonic counter identifying the parameter state: bumped once per
        #: :meth:`step`.  Consumers deriving state from the parameters (the
        #: effective-weight cache in :mod:`repro.core.hw_state`) key on it.
        self.param_version = 0

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update; subclasses implement :meth:`_step`.

        The version bump lives here (not in the subclasses) so the
        effective-weight cache invariant — every parameter update advances
        :attr:`param_version` — cannot be forgotten by a new optimiser.
        """
        self.param_version += 1
        self._step()

    def _step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def _step(self) -> None:
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel = self._velocity.get(id(param))
                if vel is None:
                    vel = np.zeros_like(param.data)
                vel = self.momentum * vel + grad
                self._velocity[id(param)] = vel
                update = vel
            else:
                update = grad
            param.data = param.data - self.lr * update


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._step_count = 0

    def _step(self) -> None:
        self._step_count += 1
        t = self._step_count
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m.get(id(param), np.zeros_like(param.data))
            v = self._v.get(id(param), np.zeros_like(param.data))
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad**2
            self._m[id(param)] = m
            self._v[id(param)] = v
            m_hat = m / (1.0 - self.beta1**t)
            v_hat = v / (1.0 - self.beta2**t)
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
