"""A small, self-contained reverse-mode automatic differentiation engine.

The paper trains GNNs with PyTorch; this package provides the equivalent
substrate on top of numpy.  It exposes

* :class:`~repro.tensor.tensor.Tensor` — an ndarray wrapper that records the
  computation graph and supports ``backward()``;
* :mod:`~repro.tensor.ops` — functional operations (dense and sparse matrix
  products, activations, softmax, dropout, reductions);
* :mod:`~repro.tensor.kernels` — segment-reduce sparse kernels (``reduceat``
  scatter/gather, CSR matmat/transpose, edge softmax) the sparse ops and the
  graph layer build on;
* :class:`~repro.tensor.module.Module` / :class:`~repro.tensor.module.Parameter`
  — layer containers with named parameters;
* :mod:`~repro.tensor.optim` — SGD (with momentum) and Adam optimisers;
* :mod:`~repro.tensor.init` — Glorot/Kaiming initialisers.

Only the operations actually required by GCN/GAT/GraphSAGE training are
implemented, but each is fully differentiable and verified against numerical
gradients in the test-suite.
"""

from repro.tensor.tensor import Tensor, no_grad
from repro.tensor import kernels
from repro.tensor import ops
from repro.tensor.module import Module, Parameter, Sequential
from repro.tensor.optim import SGD, Adam, Optimizer
from repro.tensor import init

__all__ = [
    "Tensor",
    "no_grad",
    "kernels",
    "ops",
    "Module",
    "Parameter",
    "Sequential",
    "SGD",
    "Adam",
    "Optimizer",
    "init",
]
