"""Functional operations on :class:`~repro.tensor.tensor.Tensor`.

These cover every operation used by the GNN layers and losses: activations,
(log-)softmax, dropout, sparse-dense matrix products for the aggregation
phase, masked fills for dense attention, edge-wise gathers/softmax for sparse
attention, and concatenation.  The sparse operations delegate their numeric
work to the segment-reduce kernels in :mod:`repro.tensor.kernels`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.tensor import kernels
from repro.tensor.tensor import Tensor, is_grad_enabled
from repro.utils.rng import ensure_rng

ArrayLike = Union[np.ndarray, float, int, list, tuple]


def _wrap(data: np.ndarray, parents, backward_fn, requires_grad: bool) -> Tensor:
    out = Tensor(data, requires_grad=requires_grad, parents=parents)
    out._backward_fn = backward_fn if is_grad_enabled() else None
    return out


# --------------------------------------------------------------------------- #
# Activations
# --------------------------------------------------------------------------- #
def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    mask = (x.data > 0).astype(np.float64)
    out_data = x.data * mask

    def _backward() -> None:
        if x.requires_grad:
            x._accumulate(out.grad * mask)

    out = _wrap(out_data, (x,), _backward, x.requires_grad)
    return out


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    """Leaky ReLU (used by GAT attention scores)."""
    mask = (x.data > 0).astype(np.float64)
    scale = mask + (1.0 - mask) * negative_slope
    out_data = x.data * scale

    def _backward() -> None:
        if x.requires_grad:
            x._accumulate(out.grad * scale)

    out = _wrap(out_data, (x,), _backward, x.requires_grad)
    return out


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    """Exponential linear unit (GAT's output non-linearity)."""
    neg = np.minimum(x.data, 0.0)
    pos_mask = (x.data > 0).astype(np.float64)
    exp_neg = np.exp(neg)
    out_data = x.data * pos_mask + alpha * (exp_neg - 1.0) * (1.0 - pos_mask)

    def _backward() -> None:
        if x.requires_grad:
            local = pos_mask + alpha * exp_neg * (1.0 - pos_mask)
            x._accumulate(out.grad * local)

    out = _wrap(out_data, (x,), _backward, x.requires_grad)
    return out


def sigmoid(x: Tensor) -> Tensor:
    """Numerically stable logistic sigmoid."""
    out_data = np.where(
        x.data >= 0,
        1.0 / (1.0 + np.exp(-np.clip(x.data, -500, 500))),
        np.exp(np.clip(x.data, -500, 500)) / (1.0 + np.exp(np.clip(x.data, -500, 500))),
    )

    def _backward() -> None:
        if x.requires_grad:
            x._accumulate(out.grad * out_data * (1.0 - out_data))

    out = _wrap(out_data, (x,), _backward, x.requires_grad)
    return out


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    out_data = np.tanh(x.data)

    def _backward() -> None:
        if x.requires_grad:
            x._accumulate(out.grad * (1.0 - out_data**2))

    out = _wrap(out_data, (x,), _backward, x.requires_grad)
    return out


def exp(x: Tensor) -> Tensor:
    """Element-wise exponential."""
    out_data = np.exp(x.data)

    def _backward() -> None:
        if x.requires_grad:
            x._accumulate(out.grad * out_data)

    out = _wrap(out_data, (x,), _backward, x.requires_grad)
    return out


def log(x: Tensor, eps: float = 1e-12) -> Tensor:
    """Element-wise natural logarithm with an epsilon floor."""
    safe = np.maximum(x.data, eps)
    out_data = np.log(safe)

    def _backward() -> None:
        if x.requires_grad:
            x._accumulate(out.grad / safe)

    out = _wrap(out_data, (x,), _backward, x.requires_grad)
    return out


# --------------------------------------------------------------------------- #
# Softmax family
# --------------------------------------------------------------------------- #
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (numerically stabilised)."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)

    def _backward() -> None:
        if x.requires_grad:
            dot = (out.grad * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(out_data * (out.grad - dot))

    out = _wrap(out_data, (x,), _backward, x.requires_grad)
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis`` (numerically stabilised)."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    soft = np.exp(out_data)

    def _backward() -> None:
        if x.requires_grad:
            summed = out.grad.sum(axis=axis, keepdims=True)
            x._accumulate(out.grad - soft * summed)

    out = _wrap(out_data, (x,), _backward, x.requires_grad)
    return out


# --------------------------------------------------------------------------- #
# Regularisation
# --------------------------------------------------------------------------- #
def dropout(x: Tensor, p: float, training: bool = True, rng=None) -> Tensor:
    """Inverted dropout with keep-probability ``1 - p``."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    rng = ensure_rng(rng)
    mask = (rng.random(x.data.shape) >= p).astype(np.float64) / (1.0 - p)
    out_data = x.data * mask

    def _backward() -> None:
        if x.requires_grad:
            x._accumulate(out.grad * mask)

    out = _wrap(out_data, (x,), _backward, x.requires_grad)
    return out


def clip(x: Tensor, low: float, high: float) -> Tensor:
    """Differentiable clamp; gradient is zero outside ``[low, high]``."""
    if low > high:
        raise ValueError(f"low ({low}) must not exceed high ({high})")
    out_data = np.clip(x.data, low, high)
    pass_mask = ((x.data >= low) & (x.data <= high)).astype(np.float64)

    def _backward() -> None:
        if x.requires_grad:
            x._accumulate(out.grad * pass_mask)

    out = _wrap(out_data, (x,), _backward, x.requires_grad)
    return out


# --------------------------------------------------------------------------- #
# Sparse and structured products
# --------------------------------------------------------------------------- #
def spmm(adjacency, x: Tensor) -> Tensor:
    """Sparse (constant) × dense (tensor) product: ``Y = A @ X``.

    ``adjacency`` may be a :class:`repro.graph.sparse.CSRMatrix`, a scipy
    sparse matrix, or a dense numpy array.  The adjacency is treated as a
    constant (no gradient is computed for it), matching the paper where the
    graph structure is data rather than a trainable parameter.

    The backward graph is built lazily: the transpose is only materialised
    inside the backward closure, so evaluation/``no_grad`` forwards (and
    forwards on inputs that do not require gradients) never pay for it.  For
    a :class:`~repro.graph.sparse.CSRMatrix` the first backward populates the
    matrix's memoised ``.T``, so every later batch re-uses it for free.
    """
    is_sparse = hasattr(adjacency, "dot") and hasattr(adjacency, "transpose")
    if is_sparse:
        forward = adjacency.dot(x.data)
    else:
        adjacency = np.asarray(adjacency, dtype=np.float64)
        forward = adjacency @ x.data

    def _backward() -> None:
        if not x.requires_grad:
            return
        if is_sparse:
            # CSRMatrix.transpose() returns the memoised .T, so repeated
            # backwards over the same adjacency build the transpose once.
            x._accumulate(adjacency.transpose().dot(out.grad))
        else:
            x._accumulate(adjacency.T @ out.grad)

    out = _wrap(np.asarray(forward, dtype=np.float64), (x,), _backward, x.requires_grad)
    return out


def outer_constant(scale: np.ndarray, vec: Tensor) -> Tensor:
    """Outer product of a constant column with a tensor row: ``out[i, j] =
    scale[i] * vec[j]``.

    ``scale`` is a constant 1-D array (no gradient); ``vec`` is a 1-D tensor
    (e.g. a bias).  This is the term that lets the batched GCN layer
    reassociate ``A @ (X W + 1 bᵀ)`` into ``(A X) W + (A 1) bᵀ`` so the
    weight-independent aggregation ``A X`` can be precomputed once per
    (adjacency, features) pair — see
    :func:`repro.graph.normalize.aggregate_features_cached`.
    """
    scale = np.asarray(scale, dtype=np.float64)
    if scale.ndim != 1 or vec.data.ndim != 1:
        raise ValueError(
            f"outer_constant expects 1-D inputs, got {scale.shape} and {vec.shape}"
        )
    out_data = scale[:, None] * vec.data[None, :]

    def _backward() -> None:
        if vec.requires_grad:
            vec._accumulate(scale @ out.grad)

    out = _wrap(out_data, (vec,), _backward, vec.requires_grad)
    return out


def masked_fill(x: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Return ``x`` with entries where ``mask`` is True replaced by ``value``.

    Gradient does not flow through the filled positions.  Used to restrict
    dense GAT attention logits to existing edges.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != x.data.shape:
        raise ValueError(f"mask shape {mask.shape} does not match tensor {x.shape}")
    out_data = np.where(mask, value, x.data)
    keep = (~mask).astype(np.float64)

    def _backward() -> None:
        if x.requires_grad:
            x._accumulate(out.grad * keep)

    out = _wrap(out_data, (x,), _backward, x.requires_grad)
    return out


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis``."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("concat requires at least one tensor")
    datas = [t.data for t in tensors]
    out_data = np.concatenate(datas, axis=axis)
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)
    requires = any(t.requires_grad for t in tensors)

    def _backward() -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * out_data.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(out.grad[tuple(slicer)])

    out = _wrap(out_data, tuple(tensors), _backward, requires)
    return out


def scatter_add_rows(
    x: Tensor,
    index: np.ndarray,
    num_rows: int,
    plan: Optional["kernels.SegmentPlan"] = None,
) -> Tensor:
    """Sum rows of ``x`` into ``num_rows`` buckets given by ``index``.

    ``out[i] = sum_{j : index[j] == i} x[j]``.  Used for neighbourhood
    aggregation over edge lists (GraphSAGE mean aggregation, sparse GAT)
    and the segmented per-member losses of fused train buckets.  The
    reduction runs through :func:`repro.tensor.kernels.segment_sum`
    (sort + ``reduceat``) instead of the seed's un-buffered ``np.add.at``;
    callers scattering repeatedly through the same index (the per-bucket
    loss segments) can pass a precomputed
    :func:`repro.tensor.kernels.segment_plan` to amortise the sort.
    """
    index = np.asarray(index, dtype=np.int64)
    if index.ndim != 1 or index.shape[0] != x.data.shape[0]:
        raise ValueError("index must be 1-D with one entry per row of x")
    out_data = kernels.segment_sum(x.data, index, num_rows, plan=plan)

    def _backward() -> None:
        if x.requires_grad:
            x._accumulate(out.grad[index])

    out = _wrap(out_data, (x,), _backward, x.requires_grad)
    return out


def gather_rows(
    x: Tensor,
    index: np.ndarray,
    scatter_plan: Optional["kernels.SegmentPlan"] = None,
) -> Tensor:
    """Gather rows: ``out[k] = x[index[k]]`` (rows may repeat).

    The backward pass scatter-adds the gradient back through
    :func:`repro.tensor.kernels.segment_sum`, which hits the sorted fast
    path for CSR-ordered edge gathers.  Callers gathering repeatedly
    through the same unsorted index (sparse GAT's edge columns) can pass a
    precomputed :func:`repro.tensor.kernels.segment_plan` so the backward
    sort is amortised.
    """
    index = np.asarray(index, dtype=np.int64)
    out_data = kernels.gather_rows(x.data, index)

    def _backward() -> None:
        if x.requires_grad:
            x._accumulate(
                kernels.segment_sum(
                    out.grad, index, x.data.shape[0], plan=scatter_plan
                )
            )

    out = _wrap(out_data, (x,), _backward, x.requires_grad)
    return out


def edge_softmax(
    scores: Tensor,
    indptr: np.ndarray,
    row_ids: Optional[np.ndarray] = None,
) -> Tensor:
    """Softmax over CSR edge segments (each destination row sums to one).

    ``scores`` holds one logit per stored edge in CSR order (``(E,)`` or
    ``(E, H)``); ``indptr`` delimits the edge slice of every destination
    row.  This is the sparse replacement for the dense
    ``masked_fill`` + ``softmax`` attention path of GAT.  ``row_ids`` may be
    passed to reuse an existing :func:`repro.tensor.kernels.csr_row_ids`
    expansion in both the forward and backward pass.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    alpha = kernels.edge_softmax(scores.data, indptr, row_ids=row_ids)

    def _backward() -> None:
        if scores.requires_grad:
            scores._accumulate(
                kernels.edge_softmax_backward(
                    alpha, out.grad, indptr, row_ids=row_ids
                )
            )

    out = _wrap(alpha, (scores,), _backward, scores.requires_grad)
    return out


def add_bias(x: Tensor, bias: Tensor) -> Tensor:
    """Add a 1-D bias to every row of a 2-D tensor (explicit broadcast)."""
    return x + bias


def mean_rows(x: Tensor) -> Tensor:
    """Mean over rows, returning a 1-D tensor."""
    return x.mean(axis=0)


def where_constant(condition: np.ndarray, x: Tensor, constant: float) -> Tensor:
    """``out = condition ? x : constant`` with gradient flowing only through x."""
    return masked_fill(x, ~np.asarray(condition, dtype=bool), constant)
