"""Parameter initialisation schemes (Glorot/Xavier, Kaiming, constant)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.tensor.module import Parameter
from repro.utils.rng import ensure_rng


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) < 2:
        fan = shape[0] if shape else 1
        return fan, fan
    return shape[0], shape[1]


def glorot_uniform(shape: Tuple[int, ...], rng=None, name: str = "") -> Parameter:
    """Glorot/Xavier uniform initialisation (default for GNN weight matrices)."""
    rng = ensure_rng(rng)
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return Parameter(rng.uniform(-limit, limit, size=shape), name=name)


def glorot_normal(shape: Tuple[int, ...], rng=None, name: str = "") -> Parameter:
    """Glorot/Xavier normal initialisation."""
    rng = ensure_rng(rng)
    fan_in, fan_out = _fan_in_out(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return Parameter(rng.normal(0.0, std, size=shape), name=name)


def kaiming_uniform(shape: Tuple[int, ...], rng=None, name: str = "") -> Parameter:
    """Kaiming/He uniform initialisation for ReLU networks."""
    rng = ensure_rng(rng)
    fan_in, _ = _fan_in_out(shape)
    limit = np.sqrt(6.0 / fan_in)
    return Parameter(rng.uniform(-limit, limit, size=shape), name=name)


def zeros(shape: Tuple[int, ...], name: str = "") -> Parameter:
    """All-zero parameter (biases)."""
    return Parameter(np.zeros(shape), name=name)


def constant(shape: Tuple[int, ...], value: float, name: str = "") -> Parameter:
    """Constant-valued parameter."""
    return Parameter(np.full(shape, float(value)), name=name)
