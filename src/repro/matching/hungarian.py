"""Exact assignment via the Hungarian (Kuhn–Munkres) algorithm.

A from-scratch implementation using the dual-potentials / shortest augmenting
path formulation (Jonker–Volgenant style) with numpy-vectorised inner loops,
giving O(n² ) numpy work per augmented row (O(n³) scalar work overall).
Rectangular matrices with more columns than rows are handled directly; the
returned assignment maps every row to a distinct column and has provably
minimal total cost.  The test-suite cross-checks the result against
``scipy.optimize.linear_sum_assignment`` on random instances.

This is the scalar reference implementation.  The mapping cost engine solves
whole stacks of cost matrices at once with
:func:`repro.core.batch_solvers.hungarian_assignment_batch`, a lockstep
vectorisation of exactly this algorithm whose per-matrix results are
bit-identical to :func:`hungarian_assignment` (including tie-breaking);
changes to either implementation must keep the two in lockstep — the
equivalence is enforced by ``tests/test_batch_solvers.py``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def hungarian_assignment(cost: np.ndarray) -> Tuple[np.ndarray, float]:
    """Solve the rectangular assignment problem exactly.

    Parameters
    ----------
    cost:
        ``(n_rows, n_cols)`` cost matrix with ``n_rows <= n_cols``; entries
        must be finite.

    Returns
    -------
    assignment:
        ``assignment[i]`` is the column assigned to row ``i``.
    total_cost:
        Minimal total cost.
    """
    cost = np.asarray(cost, dtype=np.float64)
    if cost.ndim != 2:
        raise ValueError(f"cost must be 2-D, got {cost.ndim}-D")
    n_rows, n_cols = cost.shape
    if n_rows > n_cols:
        raise ValueError(
            f"cost must have at least as many columns as rows, got {cost.shape}"
        )
    if not np.all(np.isfinite(cost)):
        raise ValueError("cost matrix must contain only finite values")

    INF = np.inf
    # Dual potentials; column 0 is a virtual column simplifying the algorithm.
    u = np.zeros(n_rows + 1)
    v = np.zeros(n_cols + 1)
    p = np.zeros(n_cols + 1, dtype=np.int64)  # p[j] = row assigned to column j (1-based)

    for i in range(1, n_rows + 1):
        p[0] = i
        j0 = 0
        minv = np.full(n_cols + 1, INF)
        used = np.zeros(n_cols + 1, dtype=bool)
        way = np.zeros(n_cols + 1, dtype=np.int64)
        while True:
            used[j0] = True
            i0 = p[j0]
            free = ~used
            free[0] = False
            cols = np.flatnonzero(free)
            # Reduced costs from the newly used column's row to all free columns.
            cur = cost[i0 - 1, cols - 1] - u[i0] - v[cols]
            better = cur < minv[cols]
            minv[cols] = np.where(better, cur, minv[cols])
            way[cols[better]] = j0
            # Pick the free column with the smallest tentative cost.
            best_idx = int(np.argmin(minv[cols]))
            delta = minv[cols][best_idx]
            j1 = int(cols[best_idx])
            # Update potentials.
            used_idx = np.flatnonzero(used)
            u[p[used_idx]] += delta
            v[used_idx] -= delta
            minv[~used] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        # Augment along the alternating path.
        while True:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1
            if j0 == 0:
                break

    assignment = -np.ones(n_rows, dtype=np.int64)
    for j in range(1, n_cols + 1):
        if p[j] > 0:
            assignment[p[j] - 1] = j - 1
    total = float(cost[np.arange(n_rows), assignment].sum())
    return assignment, total
