"""Shared helpers for assignment problems: validation, scoring, dispatch.

:data:`SOLVERS` / :func:`solve_assignment` dispatch the scalar solvers; the
batch counterparts (same method names, ``(B, n, m)`` stacks, bit-identical
per-slice results) live in :mod:`repro.core.batch_solvers` — one layer up,
because the batched exact solvers are part of the mapping cost engine's
machinery while this package stays dependency-free scalar reference code.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from repro.matching.greedy import greedy_assignment
from repro.matching.hungarian import hungarian_assignment
from repro.matching.bsuitor import bsuitor_assignment

Assignment = Tuple[np.ndarray, float]

#: Registry of available assignment solvers.
SOLVERS: Dict[str, Callable[[np.ndarray], Assignment]] = {
    "greedy": greedy_assignment,
    "hungarian": hungarian_assignment,
    "bsuitor": bsuitor_assignment,
}


def solve_assignment(cost: np.ndarray, method: str = "hungarian") -> Assignment:
    """Solve an assignment problem with the named method.

    Parameters
    ----------
    cost:
        ``(n_rows, n_cols)`` cost matrix, ``n_rows <= n_cols``.
    method:
        ``'hungarian'`` (exact), ``'bsuitor'`` (half-approximation, the
        algorithm the paper uses) or ``'greedy'`` (fast heuristic).
    """
    try:
        solver = SOLVERS[method]
    except KeyError as exc:
        raise ValueError(
            f"unknown assignment method {method!r}; available: {sorted(SOLVERS)}"
        ) from exc
    return solver(np.asarray(cost, dtype=np.float64))


def validate_assignment(assignment: np.ndarray, n_cols: int) -> None:
    """Raise if ``assignment`` is not an injective row → column mapping."""
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.ndim != 1:
        raise ValueError("assignment must be 1-D")
    if assignment.size and (assignment.min() < 0 or assignment.max() >= n_cols):
        raise ValueError("assignment refers to a column out of range")
    if len(set(assignment.tolist())) != assignment.size:
        raise ValueError("assignment maps two rows to the same column")


def assignment_cost(cost: np.ndarray, assignment: np.ndarray) -> float:
    """Total cost of ``assignment`` under ``cost``."""
    cost = np.asarray(cost, dtype=np.float64)
    assignment = np.asarray(assignment, dtype=np.int64)
    validate_assignment(assignment, cost.shape[1])
    if assignment.shape[0] != cost.shape[0]:
        raise ValueError(
            f"assignment length {assignment.shape[0]} does not match rows "
            f"{cost.shape[0]}"
        )
    return float(cost[np.arange(cost.shape[0]), assignment].sum())
