"""Weighted bipartite matching algorithms.

Algorithm 1 of the paper solves two nested matching problems:

1. ``cost(i, j)`` — the cheapest way to place the rows of adjacency block
   ``a_i`` onto the rows of crossbar ``c_j`` (a balanced assignment problem on
   the mismatch-count matrix).  The paper uses the b-Suitor half-approximation
   algorithm [15]; exact Hungarian and a fast vectorised greedy matcher are
   provided as alternatives and compared in an ablation benchmark.
2. The block → crossbar assignment ``Π`` minimising total cost (a rectangular
   assignment problem, solved exactly).

This package implements all three matchers from scratch plus shared helpers
for validating and scoring assignments.
"""

from repro.matching.bipartite import (
    assignment_cost,
    solve_assignment,
    validate_assignment,
)
from repro.matching.greedy import greedy_assignment
from repro.matching.hungarian import hungarian_assignment
from repro.matching.bsuitor import bsuitor_assignment, bsuitor_bmatching

__all__ = [
    "assignment_cost",
    "solve_assignment",
    "validate_assignment",
    "greedy_assignment",
    "hungarian_assignment",
    "bsuitor_assignment",
    "bsuitor_bmatching",
]
