"""Vectorised greedy assignment.

Repeatedly selects the globally cheapest remaining (row, column) pair and
commits it.  This is the classic greedy heuristic for the assignment problem;
it is not optimal, but it is extremely fast (a handful of numpy reductions per
committed pair) and — because adjacency blocks are very sparse and fault maps
are mostly empty — it almost always finds a zero-cost or near-zero-cost
row permutation in the FARe use case.  The ablation benchmark
(`benchmarks/test_bench_ablation_matching.py`) quantifies the gap to the exact
Hungarian solution and to b-Suitor.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def greedy_assignment(cost: np.ndarray) -> Tuple[np.ndarray, float]:
    """Greedy global-minimum assignment on a rectangular cost matrix.

    Parameters
    ----------
    cost:
        ``(n_rows, n_cols)`` cost matrix with ``n_rows <= n_cols``.

    Returns
    -------
    assignment:
        Integer array of length ``n_rows``; ``assignment[i]`` is the column
        assigned to row ``i`` (all distinct).
    total_cost:
        Sum of the selected entries.
    """
    cost = np.asarray(cost, dtype=np.float64)
    if cost.ndim != 2:
        raise ValueError(f"cost must be 2-D, got {cost.ndim}-D")
    n_rows, n_cols = cost.shape
    if n_rows > n_cols:
        raise ValueError(
            f"cost must have at least as many columns as rows, got {cost.shape}"
        )

    work = cost.copy()
    assignment = -np.ones(n_rows, dtype=np.int64)
    total = 0.0
    big = np.inf
    for _ in range(n_rows):
        flat_index = int(np.argmin(work))
        row, col = divmod(flat_index, n_cols)
        total += cost[row, col]
        assignment[row] = col
        work[row, :] = big
        work[:, col] = big
    return assignment, float(total)
