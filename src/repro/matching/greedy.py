"""Vectorised greedy assignment.

Repeatedly selects the globally cheapest remaining (row, column) pair and
commits it.  This is the classic greedy heuristic for the assignment problem;
it is not optimal, but it is extremely fast (a handful of numpy reductions per
committed pair) and — because adjacency blocks are very sparse and fault maps
are mostly empty — it almost always finds a zero-cost or near-zero-cost
row permutation in the FARe use case.  The ablation benchmark
(`benchmarks/test_bench_ablation_matching.py`) quantifies the gap to the exact
Hungarian solution and to b-Suitor.

Performance model: the historical implementation copied the full matrix once
and then ran every argmin over all ``n_rows × n_cols`` entries with committed
rows/columns overwritten by ``inf`` — Θ(n·n·m) element visits plus the copy
churn.  The current implementation keeps index arrays of the still-unassigned
rows and columns and scans only that shrinking submatrix, ~Σ(n-k)(m-k) ≈ n·n·m/3
visits with no full-matrix writes.  Selection order is unchanged: a
row-major argmin over the remaining submatrix picks the same first-minimum as
a row-major argmin over the ``inf``-masked full matrix, because dropping rows
and columns preserves the relative row-major order of the surviving entries.
``greedy_assignment_batch`` applies the same schedule to a whole stack of
cost matrices at once (one vectorised argmin per committed pair across all
problems) and is the engine behind the batched mapping cost computation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def greedy_assignment(cost: np.ndarray) -> Tuple[np.ndarray, float]:
    """Greedy global-minimum assignment on a rectangular cost matrix.

    Parameters
    ----------
    cost:
        ``(n_rows, n_cols)`` cost matrix with ``n_rows <= n_cols``.

    Returns
    -------
    assignment:
        Integer array of length ``n_rows``; ``assignment[i]`` is the column
        assigned to row ``i`` (all distinct).
    total_cost:
        Sum of the selected entries.
    """
    cost = np.asarray(cost, dtype=np.float64)
    if cost.ndim != 2:
        raise ValueError(f"cost must be 2-D, got {cost.ndim}-D")
    n_rows, n_cols = cost.shape
    if n_rows > n_cols:
        raise ValueError(
            f"cost must have at least as many columns as rows, got {cost.shape}"
        )

    remaining_rows = np.arange(n_rows, dtype=np.int64)
    remaining_cols = np.arange(n_cols, dtype=np.int64)
    assignment = -np.ones(n_rows, dtype=np.int64)
    total = 0.0
    for _ in range(n_rows):
        sub = cost[remaining_rows[:, None], remaining_cols]
        flat_index = int(np.argmin(sub))
        local_row, local_col = divmod(flat_index, remaining_cols.size)
        row = int(remaining_rows[local_row])
        col = int(remaining_cols[local_col])
        total += cost[row, col]
        assignment[row] = col
        remaining_rows = np.delete(remaining_rows, local_row)
        remaining_cols = np.delete(remaining_cols, local_col)
    return assignment, float(total)


def greedy_assignment_batch(cost: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Run :func:`greedy_assignment` on a whole stack of cost matrices at once.

    Parameters
    ----------
    cost:
        ``(num_problems, n_rows, n_cols)`` stack with ``n_rows <= n_cols``.

    Returns
    -------
    assignments:
        ``(num_problems, n_rows)`` integer array; row ``p`` is exactly what
        ``greedy_assignment(cost[p])[0]`` would return.
    totals:
        ``(num_problems,)`` float array of the matching totals, accumulated in
        the same per-pair selection order as the scalar function (so the
        results are bit-identical, not merely close).

    Every iteration commits one (row, column) pair *per problem* with a single
    vectorised argmin over the stack; ``np.argmin`` returns the first minimum
    in row-major order, matching the scalar function's tie-breaking.

    An integer-dtype ``cost`` (the engine passes one whenever ``sa1_weight``
    is integral, making every entry an exact small integer) is solved on an
    ``int32`` work array with an ``INT32_MAX`` sentinel — half the memory
    traffic of float64 with bit-identical selection, since the values are the
    same integers under either representation.
    """
    cost = np.asarray(cost)
    if cost.ndim != 3:
        raise ValueError(f"cost stack must be 3-D, got {cost.ndim}-D")
    num_problems, n_rows, n_cols = cost.shape
    if n_rows > n_cols:
        raise ValueError(
            f"cost must have at least as many columns as rows, got {cost.shape[1:]}"
        )
    if num_problems == 0 or n_rows == 0:
        return (
            np.empty((num_problems, n_rows), dtype=np.int64),
            np.zeros(num_problems, dtype=np.float64),
        )
    int32_info = np.iinfo(np.int32)
    if (
        np.issubdtype(cost.dtype, np.integer)
        and cost.size
        and cost.min() >= int32_info.min
        and cost.max() < int32_info.max  # strict: the sentinel must dominate
    ):
        work = cost.astype(np.int32)
        masked_value = int32_info.max
    else:
        # The scalar function casts to float64 unconditionally, so this is
        # the equivalence-preserving fallback for any other input.
        cost = cost.astype(np.float64, copy=False)
        work = cost.copy()
        masked_value = np.inf
    assignments = -np.ones((num_problems, n_rows), dtype=np.int64)
    totals = np.zeros(num_problems, dtype=np.float64)
    problem_ids = np.arange(num_problems)
    row_dead = np.zeros((num_problems, n_rows), dtype=bool)
    col_dead = np.zeros((num_problems, n_cols), dtype=bool)
    for _ in range(n_rows):
        flat = work.reshape(num_problems, -1).argmin(axis=1)
        rows = flat // n_cols
        cols = flat % n_cols
        # With real inf costs the sentinel no longer dominates and argmin can
        # land on an already-committed cell; the scalar function would pick
        # the first *remaining* cell instead (everything left ties at inf).
        invalid = np.flatnonzero(
            row_dead[problem_ids, rows] | col_dead[problem_ids, cols]
        )
        if invalid.size:
            alive = (
                ~row_dead[invalid, :, None] & ~col_dead[invalid, None, :]
            ).reshape(invalid.size, -1)
            first_alive = alive.argmax(axis=1)
            rows[invalid] = first_alive // n_cols
            cols[invalid] = first_alive % n_cols
        totals += cost[problem_ids, rows, cols]
        assignments[problem_ids, rows] = cols
        row_dead[problem_ids, rows] = True
        col_dead[problem_ids, cols] = True
        work[problem_ids, rows, :] = masked_value
        work[problem_ids, :, cols] = masked_value
    return assignments, totals
