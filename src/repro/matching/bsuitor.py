"""The b-Suitor algorithm for weighted b-matching (Khan et al., SISC 2016).

The paper's Algorithm 1 uses b-Suitor — a half-approximation algorithm for
maximum-weight b-matching — to compute the row-to-row matching between an
adjacency block and a crossbar's fault map (reference [15]).  This module
implements the sequential b-Suitor algorithm for general bipartite graphs plus
an assignment-problem front-end used by the mapper.

The algorithm: every vertex ``u`` keeps proposing to its heaviest eligible
neighbour (one whose current weakest suitor is lighter than the proposed
edge); accepted proposals may displace a previous suitor, which then gets
re-enqueued to propose elsewhere.  At termination, pairs that are mutually
each other's suitors form the matching, whose weight is at least half the
optimum.

This is the scalar reference implementation.  For the ``b = 1`` assignment
front-end the mapping cost engine solves whole stacks of cost matrices at
once with :func:`repro.core.batch_solvers.bsuitor_assignment_batch`, which
replays this module's proposal schedule (LIFO work stack, argsort preference
order, strict-improvement acceptance) in lockstep across the stack; per-
matrix results are bit-identical to :func:`bsuitor_assignment` — including
on all-tied weights, where the processing order decides the matching — and
the equivalence is enforced by ``tests/test_batch_solvers.py``.  Changes to
the schedule here must be mirrored there.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

import numpy as np


class _SuitorHeap:
    """Min-heap of (weight, partner) pairs capped at capacity ``b``."""

    __slots__ = ("capacity", "heap")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.heap: List[Tuple[float, int]] = []

    def weakest_weight(self) -> float:
        if len(self.heap) < self.capacity:
            return -np.inf
        return self.heap[0][0]

    def push(self, weight: float, partner: int) -> Optional[int]:
        """Insert a suitor; return the displaced partner (or None)."""
        if len(self.heap) < self.capacity:
            heapq.heappush(self.heap, (weight, partner))
            return None
        displaced_weight, displaced = heapq.heappushpop(self.heap, (weight, partner))
        if displaced == partner:
            return None
        return displaced

    def partners(self) -> List[int]:
        return [partner for _, partner in self.heap]


def bsuitor_bmatching(
    weights: np.ndarray,
    b_left: int = 1,
    b_right: int = 1,
    min_weight: float = 0.0,
) -> List[Tuple[int, int]]:
    """Run b-Suitor on a dense bipartite weight matrix.

    Parameters
    ----------
    weights:
        ``(L, R)`` matrix; entry ``(i, j)`` is the weight of edge
        ``left_i — right_j``.  Edges with weight <= ``min_weight`` are ignored.
    b_left, b_right:
        Matching capacity of every left / right vertex.
    min_weight:
        Weight threshold below which edges are not considered.

    Returns
    -------
    List of matched ``(left, right)`` pairs (a valid b-matching whose weight is
    at least half the maximum).
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2:
        raise ValueError(f"weights must be 2-D, got {weights.ndim}-D")
    if b_left <= 0 or b_right <= 0:
        raise ValueError("capacities must be positive")
    n_left, n_right = weights.shape

    # Vertex ids: left vertices are 0..L-1, right vertices are L..L+R-1.
    def vid_right(j: int) -> int:
        return n_left + j

    # Sorted candidate lists (heaviest first) per left/right vertex.
    order_left = np.argsort(-weights, axis=1)
    order_right = np.argsort(-weights, axis=0)

    pointers: Dict[int, int] = {}
    suitors: Dict[int, _SuitorHeap] = {}
    for i in range(n_left):
        pointers[i] = 0
        suitors[i] = _SuitorHeap(b_left)
    for j in range(n_right):
        pointers[vid_right(j)] = 0
        suitors[vid_right(j)] = _SuitorHeap(b_right)

    def neighbours(u: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return (candidate partner ids, weights) sorted heaviest first."""
        if u < n_left:
            cols = order_left[u]
            return np.array([vid_right(int(c)) for c in cols]), weights[u, cols]
        j = u - n_left
        rows = order_right[:, j]
        return rows.astype(np.int64), weights[rows, j]

    def capacity(u: int) -> int:
        return b_left if u < n_left else b_right

    # Work queue: every vertex initially needs to find `capacity` partners.
    queue: List[Tuple[int, int]] = [(u, capacity(u)) for u in range(n_left + n_right)]

    proposals: Dict[int, set] = {u: set() for u in range(n_left + n_right)}

    while queue:
        u, needed = queue.pop()
        partners, partner_weights = neighbours(u)
        while needed > 0:
            ptr = pointers[u]
            if ptr >= len(partners):
                break
            v = int(partners[ptr])
            w = float(partner_weights[ptr])
            pointers[u] = ptr + 1
            if w <= min_weight:
                break
            if v in proposals[u]:
                continue
            # Propose to v if the edge beats v's weakest current suitor.
            if w > suitors[v].weakest_weight():
                displaced = suitors[v].push(w, u)
                proposals[u].add(v)
                needed -= 1
                if displaced is not None:
                    proposals[displaced].discard(v)
                    queue.append((displaced, 1))

    # The matching is the set of still-accepted proposals: u proposed to v
    # (v is in u's proposal set) and u is still one of v's suitors.  Both
    # sides' capacities are respected by construction: |proposals[u]| <= b(u)
    # because displaced proposals are removed, and v keeps at most b(v)
    # suitors in its heap.
    matches: List[Tuple[int, int]] = []
    for u in range(n_left + n_right):
        for v in proposals[u]:
            if u in suitors[v].partners():
                left, right = (u, v - n_left) if u < n_left else (v, u - n_left)
                matches.append((left, right))
    return sorted(set(matches))


def bsuitor_assignment(cost: np.ndarray) -> Tuple[np.ndarray, float]:
    """Solve an assignment problem approximately with b-Suitor.

    Costs are converted to weights (``max_cost - cost + 1``) so that cheaper
    pairs are heavier; rows left unmatched by the half-approximation (possible
    with ties) are filled greedily with the cheapest remaining columns.

    Returns ``(assignment, total_cost)`` in the same format as
    :func:`repro.matching.hungarian.hungarian_assignment`.
    """
    cost = np.asarray(cost, dtype=np.float64)
    if cost.ndim != 2:
        raise ValueError(f"cost must be 2-D, got {cost.ndim}-D")
    n_rows, n_cols = cost.shape
    if n_rows > n_cols:
        raise ValueError(
            f"cost must have at least as many columns as rows, got {cost.shape}"
        )
    weights = cost.max() - cost + 1.0
    pairs = bsuitor_bmatching(weights, b_left=1, b_right=1)
    assignment = -np.ones(n_rows, dtype=np.int64)
    used_cols = set()
    for left, right in pairs:
        if assignment[left] < 0 and right not in used_cols:
            assignment[left] = right
            used_cols.add(right)
    # Fill any unmatched rows greedily.
    for row in np.flatnonzero(assignment < 0):
        remaining = [c for c in range(n_cols) if c not in used_cols]
        best = min(remaining, key=lambda c: cost[row, c])
        assignment[row] = best
        used_cols.add(best)
    total = float(cost[np.arange(n_rows), assignment].sum())
    return assignment, total
