"""Evaluation metrics: accuracy (single-label) and micro-F1 (multi-label).

The paper reports a single "Accuracy" axis for every dataset; following the
GNN literature convention that figure is node-classification accuracy for the
single-label datasets and micro-averaged F1 for PPI.  The helper
:func:`evaluate_predictions` picks the appropriate metric from the label
shape, so experiment drivers can treat all datasets uniformly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def _resolve_mask(mask: Optional[np.ndarray], num_rows: int) -> np.ndarray:
    if mask is None:
        return np.ones(num_rows, dtype=bool)
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != (num_rows,):
        raise ValueError(f"mask must have shape ({num_rows},), got {mask.shape}")
    return mask


def accuracy(
    logits: np.ndarray, labels: np.ndarray, mask: Optional[np.ndarray] = None
) -> float:
    """Fraction of masked nodes whose arg-max prediction equals the label."""
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    mask = _resolve_mask(mask, logits.shape[0])
    if not mask.any():
        return 0.0
    predictions = logits[mask].argmax(axis=1)
    return float((predictions == labels[mask]).mean())


def micro_f1(
    logits: np.ndarray,
    labels: np.ndarray,
    mask: Optional[np.ndarray] = None,
    threshold: float = 0.0,
) -> float:
    """Micro-averaged F1 score for multi-label predictions.

    A label is predicted positive when its logit exceeds ``threshold``
    (0 corresponds to probability 0.5 under a sigmoid).
    """
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if logits.shape != labels.shape:
        raise ValueError(
            f"logits shape {logits.shape} must equal labels shape {labels.shape}"
        )
    mask = _resolve_mask(mask, logits.shape[0])
    if not mask.any():
        return 0.0
    predictions = (logits[mask] > threshold).astype(np.int64)
    targets = labels[mask]
    true_positive = int(np.sum((predictions == 1) & (targets == 1)))
    false_positive = int(np.sum((predictions == 1) & (targets == 0)))
    false_negative = int(np.sum((predictions == 0) & (targets == 1)))
    denominator = 2 * true_positive + false_positive + false_negative
    if denominator == 0:
        return 0.0
    return float(2 * true_positive / denominator)


def evaluate_predictions(
    logits: np.ndarray, labels: np.ndarray, mask: Optional[np.ndarray] = None
) -> float:
    """Dispatch to :func:`accuracy` or :func:`micro_f1` based on label shape."""
    labels = np.asarray(labels)
    if labels.ndim == 2:
        return micro_f1(logits, labels, mask)
    return accuracy(logits, labels, mask)
