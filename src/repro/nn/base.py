"""Common infrastructure shared by the GNN models.

:class:`GNNModel` adds the *weight transform* hook to
:class:`~repro.tensor.module.Module`: when the training pipeline maps weights
onto faulty crossbars, it installs a callable that maps ``(parameter name,
parameter values) -> effective values``.  Layers call
:meth:`GNNModel.effective_weight` so the forward pass uses the faulty,
quantised weights while gradients still flow to the master (floating point)
copy — the straight-through estimator that on-device ReRAM training implements
physically (weights are updated digitally and re-programmed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.graph.sparse import CSRMatrix
from repro.tensor.module import Module, Parameter
from repro.tensor.tensor import Tensor

#: Maps (parameter name, parameter values) to the values the hardware
#: actually applies during the MVM (after quantisation and faults).
WeightTransform = Callable[[str, np.ndarray], np.ndarray]


@dataclass
class BatchInputs:
    """Inputs of one mini-batch forward pass.

    Attributes
    ----------
    features:
        ``(num_nodes, num_features)`` node features of the subgraph.
    adjacency:
        Binary structural adjacency of the subgraph *as read back from the
        crossbars* (i.e. already including any stuck-at-fault corruption).
    """

    features: np.ndarray
    adjacency: CSRMatrix

    @property
    def num_nodes(self) -> int:
        return self.adjacency.shape[0]


class GNNModel(Module):
    """Base class adding hardware weight-transform support to a module."""

    def __init__(self) -> None:
        super().__init__()
        self._weight_transform: Optional[WeightTransform] = None
        self._agg_precompute = False

    # ------------------------------------------------------------------ #
    # Hardware hook
    # ------------------------------------------------------------------ #
    def set_weight_transform(self, transform: Optional[WeightTransform]) -> None:
        """Install (or clear, with ``None``) the hardware weight transform."""
        self._weight_transform = transform
        for child in self._modules.values():
            if isinstance(child, GNNModel):
                child.set_weight_transform(transform)

    def set_agg_precompute(self, flag: bool) -> None:
        """Toggle the cached weight-independent first-layer aggregation.

        When enabled, models whose first-layer aggregation does not depend
        on the weights (GCN, GraphSAGE) read ``A @ X`` from
        :func:`repro.graph.normalize.aggregate_features_cached` instead of
        recomputing the spmm every forward pass.  GraphSAGE's cached path is
        bit-identical; GCN reassociates ``A (X W + 1 bᵀ)`` into
        ``(A X) W + (A 1) bᵀ`` and is covered by the documented round-off
        contract.  Models without such a path (GAT) ignore the flag.
        """
        self._agg_precompute = bool(flag)
        for child in self._modules.values():
            if isinstance(child, GNNModel):
                child.set_agg_precompute(flag)

    @property
    def weight_transform(self) -> Optional[WeightTransform]:
        return self._weight_transform

    def effective_weight(self, name: str, param: Parameter) -> Tensor:
        """Return the tensor actually used in the combination-phase MVM.

        Without a transform this is the parameter itself.  With a transform
        the returned tensor evaluates to ``transform(name, param.data)`` in
        the forward pass while its gradient flows unchanged into ``param``
        (straight-through estimator).
        """
        if self._weight_transform is None:
            return param
        effective = np.asarray(
            self._weight_transform(name, param.data), dtype=np.float64
        )
        if effective.shape != param.data.shape:
            raise ValueError(
                f"weight transform changed the shape of {name!r}: "
                f"{param.data.shape} -> {effective.shape}"
            )
        correction = Tensor(effective - param.data, requires_grad=False)
        return param + correction

    # ------------------------------------------------------------------ #
    # Interface
    # ------------------------------------------------------------------ #
    def forward(self, batch: BatchInputs, rng=None) -> Tensor:  # pragma: no cover
        raise NotImplementedError

    def combination_weight_names(self) -> list:
        """Names of the parameters mapped onto weight crossbars.

        By convention every 2-D parameter participates in combination-phase
        MVMs (biases stay in digital peripheral registers).
        """
        return [name for name, p in self.named_parameters() if p.data.ndim == 2]
