"""Generic neural-network layers used inside the GNN models."""

from __future__ import annotations

from typing import Optional

from repro.nn.base import GNNModel
from repro.tensor import init
from repro.tensor.tensor import Tensor


class Linear(GNNModel):
    """Affine layer ``y = x @ W + b`` with hardware-transformable weight.

    Parameters
    ----------
    in_features, out_features:
        Weight shape.
    bias:
        Whether to add a bias (kept digital, never mapped to crossbars).
    name:
        Parameter-name prefix; the weight registers as ``f"{name}.weight"``
        with the hardware mapping engine.
    rng:
        Seed/generator for Glorot initialisation.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        name: str = "linear",
        rng=None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"feature sizes must be positive, got ({in_features}, {out_features})"
            )
        self.in_features = in_features
        self.out_features = out_features
        self.layer_name = name
        self.weight = init.glorot_uniform(
            (in_features, out_features), rng=rng, name=f"{name}.weight"
        )
        self.bias = init.zeros((out_features,), name=f"{name}.bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        weight = self.effective_weight(f"{self.layer_name}.weight", self.weight)
        out = x @ weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"Linear(in={self.in_features}, out={self.out_features}, "
            f"bias={self.bias is not None})"
        )
