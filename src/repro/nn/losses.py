"""Training losses: masked cross-entropy and BCE-with-logits.

Both losses accept an optional boolean node mask so Cluster-GCN batches can be
trained on their training nodes only (validation/test nodes inside a batch do
not contribute gradient).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.tensor import ops
from repro.tensor.tensor import Tensor


def _resolve_mask(mask: Optional[np.ndarray], num_rows: int) -> np.ndarray:
    if mask is None:
        return np.ones(num_rows, dtype=bool)
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != (num_rows,):
        raise ValueError(f"mask must have shape ({num_rows},), got {mask.shape}")
    return mask


def cross_entropy(
    logits: Tensor, labels: np.ndarray, mask: Optional[np.ndarray] = None
) -> Tensor:
    """Mean cross-entropy over masked rows for single-label classification.

    Parameters
    ----------
    logits:
        ``(num_nodes, num_classes)`` unnormalised scores.
    labels:
        ``(num_nodes,)`` integer class labels.
    mask:
        Optional boolean mask selecting the rows that contribute to the loss.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    if labels.shape != (logits.shape[0],):
        raise ValueError(
            f"labels must have shape ({logits.shape[0]},), got {labels.shape}"
        )
    mask = _resolve_mask(mask, logits.shape[0])
    selected = np.flatnonzero(mask)
    if selected.size == 0:
        return Tensor(0.0)
    log_probs = ops.log_softmax(logits, axis=1)
    picked = log_probs[selected, labels[selected]]
    return -picked.mean()


def bce_with_logits(
    logits: Tensor, labels: np.ndarray, mask: Optional[np.ndarray] = None
) -> Tensor:
    """Mean binary cross-entropy with logits for multi-label classification.

    Parameters
    ----------
    logits:
        ``(num_nodes, num_labels)`` unnormalised scores.
    labels:
        ``(num_nodes, num_labels)`` binary targets.
    mask:
        Optional boolean node mask.
    """
    labels = np.asarray(labels, dtype=np.float64)
    if logits.shape != labels.shape:
        raise ValueError(
            f"logits shape {logits.shape} must equal labels shape {labels.shape}"
        )
    mask = _resolve_mask(mask, logits.shape[0])
    selected = np.flatnonzero(mask)
    if selected.size == 0:
        return Tensor(0.0)
    picked_logits = logits[selected]
    picked_labels = Tensor(labels[selected])
    probs = ops.sigmoid(picked_logits)
    loss = -(picked_labels * ops.log(probs) + (1.0 - picked_labels) * ops.log(1.0 - probs))
    return loss.mean()
