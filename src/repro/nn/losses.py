"""Training losses: masked cross-entropy and BCE-with-logits.

Both losses accept an optional boolean node mask so Cluster-GCN batches can be
trained on their training nodes only (validation/test nodes inside a batch do
not contribute gradient).

The ``*_segmented`` variants compute one loss value **per bucket member** of a
fused block-diagonal training forward (``FaultyTrainer`` train mode
``"fused"``): the masked rows of every member are reduced with that member's
own mean-reduction weight, so the gradient reaching each logit row is exactly
the gradient the per-member reference loss would produce (the per-row scale
``-1/count_k`` resp. ``1/(count_k·num_labels)`` is computed identically —
structural, bit-identical).  Only the member loss *values* go through a
``segment_sum``/``reduceat`` whose summation order differs from ``np.sum``
(round-off contract; see ``docs/ARCHITECTURE.md``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.tensor import kernels, ops
from repro.tensor.tensor import Tensor


def _resolve_mask(mask: Optional[np.ndarray], num_rows: int) -> np.ndarray:
    if mask is None:
        return np.ones(num_rows, dtype=bool)
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != (num_rows,):
        raise ValueError(f"mask must have shape ({num_rows},), got {mask.shape}")
    return mask


def cross_entropy(
    logits: Tensor, labels: np.ndarray, mask: Optional[np.ndarray] = None
) -> Tensor:
    """Mean cross-entropy over masked rows for single-label classification.

    Parameters
    ----------
    logits:
        ``(num_nodes, num_classes)`` unnormalised scores.
    labels:
        ``(num_nodes,)`` integer class labels.
    mask:
        Optional boolean mask selecting the rows that contribute to the loss.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    if labels.shape != (logits.shape[0],):
        raise ValueError(
            f"labels must have shape ({logits.shape[0]},), got {labels.shape}"
        )
    mask = _resolve_mask(mask, logits.shape[0])
    selected = np.flatnonzero(mask)
    if selected.size == 0:
        return Tensor(0.0)
    log_probs = ops.log_softmax(logits, axis=1)
    picked = log_probs[selected, labels[selected]]
    return -picked.mean()


def bce_with_logits(
    logits: Tensor, labels: np.ndarray, mask: Optional[np.ndarray] = None
) -> Tensor:
    """Mean binary cross-entropy with logits for multi-label classification.

    Parameters
    ----------
    logits:
        ``(num_nodes, num_labels)`` unnormalised scores.
    labels:
        ``(num_nodes, num_labels)`` binary targets.
    mask:
        Optional boolean node mask.
    """
    labels = np.asarray(labels, dtype=np.float64)
    if logits.shape != labels.shape:
        raise ValueError(
            f"logits shape {logits.shape} must equal labels shape {labels.shape}"
        )
    mask = _resolve_mask(mask, logits.shape[0])
    selected = np.flatnonzero(mask)
    if selected.size == 0:
        return Tensor(0.0)
    picked_logits = logits[selected]
    picked_labels = Tensor(labels[selected])
    probs = ops.sigmoid(picked_logits)
    loss = -(picked_labels * ops.log(probs) + (1.0 - picked_labels) * ops.log(1.0 - probs))
    return loss.mean()


def cross_entropy_segmented(
    logits: Tensor,
    labels: np.ndarray,
    selected: np.ndarray,
    member_ids: np.ndarray,
    counts: np.ndarray,
    plan: Optional["kernels.SegmentPlan"] = None,
) -> Tuple[Tensor, List[float]]:
    """Per-member masked cross-entropy over one fused train bucket.

    Parameters
    ----------
    logits:
        ``(fused_rows, num_classes)`` scores of the block-diagonal forward.
    labels:
        ``(fused_rows,)`` integer labels (member labels concatenated).
    selected:
        Fused-row indices of the train-masked rows, in member order.
    member_ids:
        ``(len(selected),)`` bucket-member index per selected row (sorted).
    counts:
        ``(num_members,)`` selected-row count per member.
    plan:
        Optional precomputed :func:`repro.tensor.kernels.segment_plan` for
        ``member_ids`` (the trainer memoises it per bucket).

    Returns ``(total, member_losses)`` where ``total`` is the sum of the
    per-member mean losses (the tensor to ``backward()``) and
    ``member_losses`` lists each member's loss value — what the reference
    ``cross_entropy`` would have returned per member, up to ``reduceat``
    round-off.  A member with no selected rows contributes exactly ``0.0``
    to both (matching the reference's ``Tensor(0.0)`` early-out).
    """
    labels = np.asarray(labels, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    log_probs = ops.log_softmax(logits, axis=1)
    picked = log_probs[selected, labels[selected]]
    seg = ops.scatter_add_rows(picked, member_ids, counts.shape[0], plan=plan)
    # -1/count_k is the exact per-row gradient of the reference
    # ``-picked.mean()`` (1.0/count then negate — same bits); empty members
    # get weight 0 so neither value nor gradient flows.
    neg_inv = np.where(counts > 0, -1.0 / np.maximum(counts, 1), 0.0)
    member_losses = seg * Tensor(neg_inv)
    return member_losses.sum(), [float(v) for v in member_losses.data]


def bce_with_logits_segmented(
    logits: Tensor,
    labels: np.ndarray,
    selected: np.ndarray,
    member_ids: np.ndarray,
    counts: np.ndarray,
    plan: Optional["kernels.SegmentPlan"] = None,
) -> Tuple[Tensor, List[float]]:
    """Per-member masked BCE-with-logits over one fused train bucket.

    Same contract as :func:`cross_entropy_segmented`, for multi-label
    targets: ``labels`` is ``(fused_rows, num_labels)`` and each member's
    loss is the mean over its ``count_k × num_labels`` selected elements,
    with the per-element gradient ``1/(count_k·num_labels)`` computed
    exactly as the reference ``loss.mean()`` would.
    """
    labels = np.asarray(labels, dtype=np.float64)
    counts = np.asarray(counts, dtype=np.int64)
    picked_logits = logits[selected]
    picked_labels = Tensor(labels[selected])
    probs = ops.sigmoid(picked_logits)
    loss = -(picked_labels * ops.log(probs) + (1.0 - picked_labels) * ops.log(1.0 - probs))
    seg = ops.scatter_add_rows(loss, member_ids, counts.shape[0], plan=plan)
    num_labels = int(logits.shape[1])
    inv = np.where(
        counts > 0, 1.0 / np.maximum(counts * num_labels, 1), 0.0
    )
    member_losses = seg.sum(axis=1) * Tensor(inv)
    return member_losses.sum(), [float(v) for v in member_losses.data]
