"""Graph Attention Network (Veličković et al., 2018).

The implementation uses dense masked attention: mini-batch subgraphs contain
at most a few hundred nodes, so materialising the ``N × N`` attention logits
is cheap and keeps the autograd graph simple.  The *structure* of the mask is
the (possibly fault-corrupted) binary adjacency of the batch — a stuck-at-1
fault therefore lets the layer attend to a non-neighbour and a stuck-at-0
fault removes a real neighbour, exactly the failure mode Fig. 1(b) of the
paper describes for the aggregation phase.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.base import BatchInputs, GNNModel
from repro.nn.layers import Linear
from repro.tensor import init, ops
from repro.tensor.tensor import Tensor
from repro.utils.rng import ensure_rng, spawn_rngs

_NEG_INF = -1e9


class GATLayer(GNNModel):
    """Multi-head graph attention layer (dense masked attention)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        num_heads: int = 2,
        concat_heads: bool = True,
        negative_slope: float = 0.2,
        name: str = "gat",
        rng=None,
    ) -> None:
        super().__init__()
        if num_heads <= 0:
            raise ValueError(f"num_heads must be positive, got {num_heads}")
        if concat_heads and out_features % num_heads != 0:
            raise ValueError(
                f"out_features ({out_features}) must be divisible by num_heads "
                f"({num_heads}) when concatenating"
            )
        self.num_heads = num_heads
        self.concat_heads = concat_heads
        self.negative_slope = negative_slope
        self.head_features = (
            out_features // num_heads if concat_heads else out_features
        )
        self.layer_name = name
        rngs = spawn_rngs(rng, num_heads * 3)
        for head in range(num_heads):
            setattr(
                self,
                f"proj{head}",
                Linear(
                    in_features,
                    self.head_features,
                    bias=False,
                    name=f"{name}.head{head}.proj",
                    rng=rngs[3 * head],
                ),
            )
            setattr(
                self,
                f"attn_src{head}",
                init.glorot_uniform(
                    (self.head_features, 1),
                    rng=rngs[3 * head + 1],
                    name=f"{name}.head{head}.attn_src",
                ),
            )
            setattr(
                self,
                f"attn_dst{head}",
                init.glorot_uniform(
                    (self.head_features, 1),
                    rng=rngs[3 * head + 2],
                    name=f"{name}.head{head}.attn_dst",
                ),
            )

    def forward(self, x: Tensor, adjacency_mask: np.ndarray) -> Tensor:
        """Apply attention restricted to ``adjacency_mask`` (self loops included)."""
        n = adjacency_mask.shape[0]
        if adjacency_mask.shape != (n, n):
            raise ValueError("adjacency_mask must be square")
        allowed = adjacency_mask.astype(bool) | np.eye(n, dtype=bool)
        head_outputs = []
        for head in range(self.num_heads):
            proj: Linear = getattr(self, f"proj{head}")
            h = proj(x)
            attn_src = self.effective_weight(
                f"{self.layer_name}.head{head}.attn_src", getattr(self, f"attn_src{head}")
            )
            attn_dst = self.effective_weight(
                f"{self.layer_name}.head{head}.attn_dst", getattr(self, f"attn_dst{head}")
            )
            src_scores = h @ attn_src  # (n, 1)
            dst_scores = h @ attn_dst  # (n, 1)
            logits = src_scores + dst_scores.transpose()
            logits = ops.leaky_relu(logits, self.negative_slope)
            logits = ops.masked_fill(logits, ~allowed, _NEG_INF)
            attention = ops.softmax(logits, axis=1)
            head_outputs.append(attention @ h)
        if self.concat_heads:
            return ops.concat(head_outputs, axis=1)
        total = head_outputs[0]
        for other in head_outputs[1:]:
            total = total + other
        return total * (1.0 / self.num_heads)


class GAT(GNNModel):
    """Two-layer GAT: multi-head concatenated hidden layer, averaged output."""

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        num_classes: int,
        num_heads: int = 2,
        dropout: float = 0.2,
        rng=None,
    ) -> None:
        super().__init__()
        if not 0.0 <= dropout < 1.0:
            raise ValueError(f"dropout must be in [0, 1), got {dropout}")
        self.dropout = dropout
        rng_a, rng_b, rng_drop = spawn_rngs(rng, 3)
        self._dropout_rng = rng_drop
        self.layer0 = GATLayer(
            in_features,
            hidden_features,
            num_heads=num_heads,
            concat_heads=True,
            name="gat0",
            rng=rng_a,
        )
        self.layer1 = GATLayer(
            hidden_features,
            num_classes,
            num_heads=1,
            concat_heads=False,
            name="gat1",
            rng=rng_b,
        )

    def forward(self, batch: BatchInputs, rng: Optional[object] = None) -> Tensor:
        """Return per-node logits for the subgraph in ``batch``."""
        mask = batch.adjacency.to_dense() > 0
        rng = ensure_rng(rng) if rng is not None else self._dropout_rng
        x = Tensor(batch.features)
        x = self.layer0(x, mask)
        x = ops.elu(x)
        x = ops.dropout(x, self.dropout, training=self.training, rng=rng)
        return self.layer1(x, mask)
