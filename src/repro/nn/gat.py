"""Graph Attention Network (Veličković et al., 2018).

The default implementation is *sparse edge-wise attention*: attention logits
are computed per stored edge of the (possibly fault-corrupted) binary
adjacency, normalised with a segment softmax over each destination row
(:func:`repro.tensor.ops.edge_softmax`) and aggregated with a segment
scatter-add.  Work and memory are therefore O(E) instead of the O(N²) of the
seed's dense ``masked_fill`` path, which opens large-graph GAT workloads the
dense path cannot reach.

The dense path is kept fully reachable (``dense_attention=True`` or simply
passing a dense boolean mask) and the two are equivalence-tested: the edge
list is exactly the support of the dense mask — the corrupted adjacency's
stored positive entries plus self loops — and the per-row max-shift/softmax
arithmetic matches the dense masked softmax to floating-point round-off.

Fault semantics are unchanged: the edge list is derived from the binary
adjacency *as read back from the crossbars*, so a stuck-at-1 fault inserts an
edge (the layer attends to a non-neighbour) and a stuck-at-0 fault removes a
real edge, exactly the aggregation-phase failure mode Fig. 1(b) of the paper
describes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.graph.sparse import CSRMatrix
from repro.nn.base import BatchInputs, GNNModel
from repro.nn.layers import Linear
from repro.tensor import init, kernels, ops
from repro.tensor.tensor import Tensor
from repro.utils.rng import ensure_rng, spawn_rngs

_NEG_INF = -1e9


# --------------------------------------------------------------------------- #
# Attention edge lists
# --------------------------------------------------------------------------- #
def attention_edges(adjacency: CSRMatrix) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(indptr, cols)`` of the attention support of ``adjacency``.

    The support is the set of (row, col) pairs the dense path allows:
    coordinates whose value is positive (the corrupted binary adjacency's
    edges — matching the dense ``to_dense() > 0`` mask, including its
    last-wins resolution of duplicate stored coordinates) plus all self
    loops, deduplicated and in row-major order.
    """
    n = adjacency.shape[0]
    if adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError("adjacency must be square")
    rows = kernels.csr_row_ids(adjacency.indptr)
    keys = rows * n + adjacency.indices
    # Duplicate coordinates are legal (from_coo(sum_duplicates=False)); the
    # dense mask sees the *last* stored value per coordinate, so resolve
    # duplicates the same way before thresholding.
    unique_keys, reversed_first = np.unique(keys[::-1], return_index=True)
    last_occurrence = keys.size - 1 - reversed_first
    keep = adjacency.data[last_occurrence] > 0
    loops = np.arange(n, dtype=np.int64)
    keys = np.unique(np.concatenate((unique_keys[keep], loops * n + loops)))
    rows, cols = keys // n, keys % n
    indptr = np.concatenate(
        (
            np.zeros(1, dtype=np.int64),
            np.cumsum(np.bincount(rows, minlength=n), dtype=np.int64),
        )
    )
    return indptr, cols.astype(np.int64)


@dataclass(frozen=True)
class AttentionEdges:
    """Attention support of one adjacency, with its reusable kernel plans.

    Built once per adjacency object and shared by every head, layer and
    training step: ``row_ids`` is the per-edge destination-row expansion
    (reused by the gathers, the edge softmax and the final scatter) and
    ``cols_plan`` amortises the stable argsort the column-gather backward
    would otherwise re-run per head per step.
    """

    indptr: np.ndarray
    cols: np.ndarray
    row_ids: np.ndarray
    cols_plan: kernels.SegmentPlan


#: Identity-keyed LRU memo of attention edge structures, mirroring
#: ``graph/normalize.py``: the epoch-cached hardware read-back hands the same
#: immutable adjacency object back per batch until the hardware state
#: changes, so the per-forward edge-list construction collapses to a dict
#: hit.  Entries pin the keyed matrix so its ``id()`` cannot be recycled; the
#: ``is`` check makes a stale hit impossible either way.
_EDGE_CACHE: "OrderedDict[int, Tuple[CSRMatrix, AttentionEdges]]" = OrderedDict()
_EDGE_CACHE_SIZE = 64


def attention_edges_cached(adjacency: CSRMatrix) -> AttentionEdges:
    """Memoised :func:`attention_edges` + kernel plans, keyed on identity."""
    key = id(adjacency)
    hit = _EDGE_CACHE.get(key)
    if hit is not None and hit[0] is adjacency:
        _EDGE_CACHE.move_to_end(key)
        return hit[1]
    indptr, cols = attention_edges(adjacency)
    edges = AttentionEdges(
        indptr=indptr,
        cols=cols,
        row_ids=kernels.csr_row_ids(indptr),
        cols_plan=kernels.segment_plan(cols, adjacency.shape[0]),
    )
    _EDGE_CACHE[key] = (adjacency, edges)
    _EDGE_CACHE.move_to_end(key)
    while len(_EDGE_CACHE) > _EDGE_CACHE_SIZE:
        _EDGE_CACHE.popitem(last=False)
    return edges


def clear_edge_cache() -> None:
    """Release all memoised attention edge lists (and their pinned keys)."""
    _EDGE_CACHE.clear()


class GATLayer(GNNModel):
    """Multi-head graph attention layer (sparse edge-wise by default).

    ``forward`` accepts either a :class:`CSRMatrix` (sparse edge-wise
    attention unless ``dense_attention=True``) or a dense boolean mask
    (always the dense path, preserving the seed call signature).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        num_heads: int = 2,
        concat_heads: bool = True,
        negative_slope: float = 0.2,
        dense_attention: bool = False,
        name: str = "gat",
        rng=None,
    ) -> None:
        super().__init__()
        if num_heads <= 0:
            raise ValueError(f"num_heads must be positive, got {num_heads}")
        if concat_heads and out_features % num_heads != 0:
            raise ValueError(
                f"out_features ({out_features}) must be divisible by num_heads "
                f"({num_heads}) when concatenating"
            )
        self.num_heads = num_heads
        self.concat_heads = concat_heads
        self.negative_slope = negative_slope
        self.dense_attention = bool(dense_attention)
        self.head_features = (
            out_features // num_heads if concat_heads else out_features
        )
        self.layer_name = name
        rngs = spawn_rngs(rng, num_heads * 3)
        for head in range(num_heads):
            setattr(
                self,
                f"proj{head}",
                Linear(
                    in_features,
                    self.head_features,
                    bias=False,
                    name=f"{name}.head{head}.proj",
                    rng=rngs[3 * head],
                ),
            )
            setattr(
                self,
                f"attn_src{head}",
                init.glorot_uniform(
                    (self.head_features, 1),
                    rng=rngs[3 * head + 1],
                    name=f"{name}.head{head}.attn_src",
                ),
            )
            setattr(
                self,
                f"attn_dst{head}",
                init.glorot_uniform(
                    (self.head_features, 1),
                    rng=rngs[3 * head + 2],
                    name=f"{name}.head{head}.attn_dst",
                ),
            )

    # ------------------------------------------------------------------ #
    def _head_weights(self, head: int) -> Tuple[Linear, Tensor, Tensor]:
        proj: Linear = getattr(self, f"proj{head}")
        attn_src = self.effective_weight(
            f"{self.layer_name}.head{head}.attn_src", getattr(self, f"attn_src{head}")
        )
        attn_dst = self.effective_weight(
            f"{self.layer_name}.head{head}.attn_dst", getattr(self, f"attn_dst{head}")
        )
        return proj, attn_src, attn_dst

    def _combine_heads(self, head_outputs) -> Tensor:
        if self.concat_heads:
            return ops.concat(head_outputs, axis=1)
        total = head_outputs[0]
        for other in head_outputs[1:]:
            total = total + other
        return total * (1.0 / self.num_heads)

    # ------------------------------------------------------------------ #
    def forward(
        self, x: Tensor, adjacency: Union[CSRMatrix, np.ndarray]
    ) -> Tensor:
        """Apply attention restricted to the adjacency's edges (+ self loops)."""
        if isinstance(adjacency, CSRMatrix):
            if self.dense_attention:
                return self._forward_dense(x, adjacency.to_dense() > 0)
            return self._forward_sparse(x, adjacency)
        return self._forward_dense(x, np.asarray(adjacency))

    def _forward_sparse(self, x: Tensor, adjacency: CSRMatrix) -> Tensor:
        edges = attention_edges_cached(adjacency)
        indptr, cols, row_ids = edges.indptr, edges.cols, edges.row_ids
        n = indptr.shape[0] - 1
        head_outputs = []
        for head in range(self.num_heads):
            proj, attn_src, attn_dst = self._head_weights(head)
            h = proj(x)
            src_scores = h @ attn_src  # (n, 1)
            dst_scores = h @ attn_dst  # (n, 1)
            # Edge (i <- j): logit = src[i] + dst[j], exactly the dense
            # logits[i, j] = src_scores[i] + dst_scores[j] restricted to the
            # mask's support.
            logits = ops.gather_rows(src_scores, row_ids) + ops.gather_rows(
                dst_scores, cols, scatter_plan=edges.cols_plan
            )
            logits = ops.leaky_relu(logits, self.negative_slope)
            attention = ops.edge_softmax(logits, indptr, row_ids=row_ids)
            messages = attention * ops.gather_rows(
                h, cols, scatter_plan=edges.cols_plan
            )  # (E, F)
            head_outputs.append(ops.scatter_add_rows(messages, row_ids, n))
        return self._combine_heads(head_outputs)

    def _forward_dense(self, x: Tensor, adjacency_mask: np.ndarray) -> Tensor:
        n = adjacency_mask.shape[0]
        if adjacency_mask.shape != (n, n):
            raise ValueError("adjacency_mask must be square")
        allowed = adjacency_mask.astype(bool) | np.eye(n, dtype=bool)
        head_outputs = []
        for head in range(self.num_heads):
            proj, attn_src, attn_dst = self._head_weights(head)
            h = proj(x)
            src_scores = h @ attn_src  # (n, 1)
            dst_scores = h @ attn_dst  # (n, 1)
            logits = src_scores + dst_scores.transpose()
            logits = ops.leaky_relu(logits, self.negative_slope)
            logits = ops.masked_fill(logits, ~allowed, _NEG_INF)
            attention = ops.softmax(logits, axis=1)
            head_outputs.append(attention @ h)
        return self._combine_heads(head_outputs)


class GAT(GNNModel):
    """Two-layer GAT: multi-head concatenated hidden layer, averaged output.

    ``dense_attention=True`` restores the seed's dense ``N × N`` masked
    attention; the default routes both layers through the sparse edge-wise
    path (same outputs within floating-point round-off, O(E) work).
    """

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        num_classes: int,
        num_heads: int = 2,
        dropout: float = 0.2,
        dense_attention: bool = False,
        rng=None,
    ) -> None:
        super().__init__()
        if not 0.0 <= dropout < 1.0:
            raise ValueError(f"dropout must be in [0, 1), got {dropout}")
        self.dropout = dropout
        self.dense_attention = bool(dense_attention)
        rng_a, rng_b, rng_drop = spawn_rngs(rng, 3)
        self._dropout_rng = rng_drop
        self.layer0 = GATLayer(
            in_features,
            hidden_features,
            num_heads=num_heads,
            concat_heads=True,
            dense_attention=dense_attention,
            name="gat0",
            rng=rng_a,
        )
        self.layer1 = GATLayer(
            hidden_features,
            num_classes,
            num_heads=1,
            concat_heads=False,
            dense_attention=dense_attention,
            name="gat1",
            rng=rng_b,
        )

    def forward(self, batch: BatchInputs, rng: Optional[object] = None) -> Tensor:
        """Return per-node logits for the subgraph in ``batch``."""
        if self.dense_attention:
            adjacency: Union[CSRMatrix, np.ndarray] = (
                batch.adjacency.to_dense() > 0
            )
        else:
            adjacency = batch.adjacency
        rng = ensure_rng(rng) if rng is not None else self._dropout_rng
        x = Tensor(batch.features)
        x = self.layer0(x, adjacency)
        x = ops.elu(x)
        x = ops.dropout(x, self.dropout, training=self.training, rng=rng)
        return self.layer1(x, adjacency)
