"""Graph Convolutional Network (Kipf & Welling, 2017).

Each layer performs the two phases the paper maps onto ReRAM crossbars:

* **Combination**: ``H = X @ W`` — dense MVM with the learnable weight.
* **Aggregation**: ``H' = A_hat @ H`` — SpMM with the symmetric-normalised
  adjacency ``A_hat = D^{-1/2}(A+I)D^{-1/2}`` of the mini-batch subgraph.

The adjacency handed to :meth:`GCN.forward` is the *structural* (binary,
possibly fault-corrupted) matrix; normalisation is recomputed digitally
whenever the structural matrix changes, exactly as the accelerator's
peripheral logic would (memoised per adjacency object — the epoch-cached
read-back hands the same matrix back until the hardware state changes).
"""

from __future__ import annotations

from typing import Optional

from repro.graph.normalize import aggregate_features_cached, normalize_adjacency_cached
from repro.nn.base import BatchInputs, GNNModel
from repro.nn.layers import Linear
from repro.tensor import ops
from repro.tensor.tensor import Tensor
from repro.utils.rng import ensure_rng, spawn_rngs


class GCNLayer(GNNModel):
    """One GCN layer: combination (dense MVM) followed by aggregation (SpMM)."""

    def __init__(self, in_features: int, out_features: int, name: str, rng=None) -> None:
        super().__init__()
        self.linear = Linear(in_features, out_features, bias=True, name=name, rng=rng)

    def forward(self, x: Tensor, adjacency_norm) -> Tensor:
        combined = self.linear(x)
        return ops.spmm(adjacency_norm, combined)

    def forward_preaggregated(self, aggregated, row_sums) -> Tensor:
        """Reassociated first-layer forward on a cached aggregation.

        ``A (X W + 1 bᵀ) = (A X) W + (A 1) bᵀ`` — ``aggregated`` is the
        cached ``A X`` and ``row_sums`` the cached ``A 1``, so the per-step
        spmm (and its backward transpose spmm) collapses into a dense GEMM.
        Covered by the round-off contract: the reassociation changes the
        floating-point summation order, not the operator.
        """
        linear = self.linear
        weight = linear.effective_weight(f"{linear.layer_name}.weight", linear.weight)
        out = Tensor(aggregated) @ weight
        if linear.bias is not None:
            out = out + ops.outer_constant(row_sums, linear.bias)
        return out


class GCN(GNNModel):
    """Two-layer GCN for node classification.

    Parameters
    ----------
    in_features:
        Input feature dimensionality.
    hidden_features:
        Hidden layer width (the paper quotes hidden dimensions around 1024
        for full-scale datasets; the surrogate experiments use smaller ones).
    num_classes:
        Output dimensionality (classes or multi-label targets).
    dropout:
        Dropout probability applied to the hidden representation.
    num_layers:
        Number of GCN layers (>= 2; intermediate layers keep the hidden width).
    rng:
        Seed/generator for weight initialisation and dropout.
    """

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        num_classes: int,
        dropout: float = 0.2,
        num_layers: int = 2,
        rng=None,
    ) -> None:
        super().__init__()
        if num_layers < 2:
            raise ValueError(f"GCN needs at least 2 layers, got {num_layers}")
        if not 0.0 <= dropout < 1.0:
            raise ValueError(f"dropout must be in [0, 1), got {dropout}")
        self.dropout = dropout
        self.num_layers = num_layers
        rngs = spawn_rngs(rng, num_layers + 1)
        self._dropout_rng = rngs[-1]
        dims = [in_features] + [hidden_features] * (num_layers - 1) + [num_classes]
        for index in range(num_layers):
            layer = GCNLayer(
                dims[index], dims[index + 1], name=f"gcn{index}", rng=rngs[index]
            )
            setattr(self, f"layer{index}", layer)

    def forward(self, batch: BatchInputs, rng: Optional[object] = None) -> Tensor:
        """Return per-node logits for the subgraph in ``batch``."""
        adjacency_norm = normalize_adjacency_cached(
            batch.adjacency, self_loops=True, symmetric=True
        )
        rng = ensure_rng(rng) if rng is not None else self._dropout_rng
        x = Tensor(batch.features)
        for index in range(self.num_layers):
            layer: GCNLayer = getattr(self, f"layer{index}")
            if index == 0 and self._agg_precompute:
                aggregated, row_sums = aggregate_features_cached(
                    adjacency_norm, batch.features
                )
                x = layer.forward_preaggregated(aggregated, row_sums)
            else:
                x = layer(x, adjacency_norm)
            if index < self.num_layers - 1:
                x = ops.relu(x)
                x = ops.dropout(x, self.dropout, training=self.training, rng=rng)
        return x
