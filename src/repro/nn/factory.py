"""Model factory mapping the paper's model names to constructors."""

from __future__ import annotations

from typing import Callable, Dict

from repro.nn.base import GNNModel
from repro.nn.gat import GAT
from repro.nn.gcn import GCN
from repro.nn.sage import GraphSAGE


def _build_gcn(in_features, hidden, num_classes, rng, **kwargs) -> GNNModel:
    return GCN(in_features, hidden, num_classes, rng=rng, **kwargs)


def _build_gat(in_features, hidden, num_classes, rng, **kwargs) -> GNNModel:
    return GAT(in_features, hidden, num_classes, rng=rng, **kwargs)


def _build_sage(in_features, hidden, num_classes, rng, **kwargs) -> GNNModel:
    return GraphSAGE(in_features, hidden, num_classes, rng=rng, **kwargs)


#: Model name → builder; names match the paper (GCN, GAT, SAGE).
MODEL_REGISTRY: Dict[str, Callable[..., GNNModel]] = {
    "gcn": _build_gcn,
    "gat": _build_gat,
    "sage": _build_sage,
}


def build_model(
    name: str,
    in_features: int,
    hidden_features: int,
    num_classes: int,
    rng=None,
    **kwargs,
) -> GNNModel:
    """Instantiate a GNN model by its paper name (``gcn``, ``gat``, ``sage``).

    Additional keyword arguments are forwarded to the model constructor
    (``dropout``, ``num_heads``, ``num_layers``, ...).
    """
    key = name.lower()
    if key not in MODEL_REGISTRY:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}"
        )
    return MODEL_REGISTRY[key](in_features, hidden_features, num_classes, rng, **kwargs)
