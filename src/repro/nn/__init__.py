"""GNN models (GCN, GAT, GraphSAGE), losses and metrics.

Every model exposes the two-phase structure the paper relies on:

* **Aggregation** — neighbourhood aggregation driven by the (possibly faulty)
  binary adjacency matrix of the current mini-batch subgraph.
* **Combination** — dense matrix products with the learnable weight matrices.

The training pipeline injects hardware effects through two hooks: the batch's
adjacency is replaced by the faulty read-back from the crossbars before it
reaches the model, and every combination weight passes through the model's
``weight_transform`` (quantisation + stuck-at faults, straight-through
gradient) before being used.
"""

from repro.nn.layers import Linear
from repro.nn.gcn import GCN, GCNLayer
from repro.nn.gat import GAT, GATLayer
from repro.nn.sage import GraphSAGE, SAGELayer
from repro.nn.base import GNNModel, BatchInputs
from repro.nn.losses import cross_entropy, bce_with_logits
from repro.nn.metrics import accuracy, micro_f1, evaluate_predictions
from repro.nn.factory import build_model, MODEL_REGISTRY

__all__ = [
    "Linear",
    "GCN",
    "GCNLayer",
    "GAT",
    "GATLayer",
    "GraphSAGE",
    "SAGELayer",
    "GNNModel",
    "BatchInputs",
    "cross_entropy",
    "bce_with_logits",
    "accuracy",
    "micro_f1",
    "evaluate_predictions",
    "build_model",
    "MODEL_REGISTRY",
]
