"""GraphSAGE with mean aggregation (Hamilton et al., 2017).

Each layer computes ``H' = X @ W_self + (D^{-1} A X) @ W_neigh + b``: the
neighbour mean is the aggregation phase (SpMM with the row-normalised
structural adjacency) and the two dense products are the combination phase
mapped onto weight crossbars.
"""

from __future__ import annotations

from typing import Optional

from repro.graph.normalize import aggregate_features_cached, normalize_adjacency_cached
from repro.nn.base import BatchInputs, GNNModel
from repro.nn.layers import Linear
from repro.tensor import ops
from repro.tensor.tensor import Tensor
from repro.utils.rng import ensure_rng, spawn_rngs


class SAGELayer(GNNModel):
    """One GraphSAGE layer with mean aggregation."""

    def __init__(self, in_features: int, out_features: int, name: str, rng=None) -> None:
        super().__init__()
        rng_self, rng_neigh = spawn_rngs(rng, 2)
        self.self_linear = Linear(
            in_features, out_features, bias=True, name=f"{name}.self", rng=rng_self
        )
        self.neigh_linear = Linear(
            in_features, out_features, bias=False, name=f"{name}.neigh", rng=rng_neigh
        )

    def forward(self, x: Tensor, adjacency_rw) -> Tensor:
        neighbour_mean = ops.spmm(adjacency_rw, x)
        return self.self_linear(x) + self.neigh_linear(neighbour_mean)

    def forward_preaggregated(self, x: Tensor, aggregated) -> Tensor:
        """First-layer forward on the cached neighbour mean ``D^{-1} A X``.

        Bit-identical to :meth:`forward` on the raw features: the cache holds
        the result of the very same ``csr_matmat`` call, and the features
        carry no gradient, so skipping the spmm changes nothing downstream.
        """
        return self.self_linear(x) + self.neigh_linear(Tensor(aggregated))


class GraphSAGE(GNNModel):
    """Multi-layer GraphSAGE for node classification."""

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        num_classes: int,
        dropout: float = 0.2,
        num_layers: int = 2,
        rng=None,
    ) -> None:
        super().__init__()
        if num_layers < 2:
            raise ValueError(f"GraphSAGE needs at least 2 layers, got {num_layers}")
        if not 0.0 <= dropout < 1.0:
            raise ValueError(f"dropout must be in [0, 1), got {dropout}")
        self.dropout = dropout
        self.num_layers = num_layers
        rngs = spawn_rngs(rng, num_layers + 1)
        self._dropout_rng = rngs[-1]
        dims = [in_features] + [hidden_features] * (num_layers - 1) + [num_classes]
        for index in range(num_layers):
            layer = SAGELayer(
                dims[index], dims[index + 1], name=f"sage{index}", rng=rngs[index]
            )
            setattr(self, f"layer{index}", layer)

    def forward(self, batch: BatchInputs, rng: Optional[object] = None) -> Tensor:
        """Return per-node logits for the subgraph in ``batch``."""
        adjacency_rw = normalize_adjacency_cached(
            batch.adjacency, self_loops=False, symmetric=False
        )
        rng = ensure_rng(rng) if rng is not None else self._dropout_rng
        x = Tensor(batch.features)
        for index in range(self.num_layers):
            layer: SAGELayer = getattr(self, f"layer{index}")
            if index == 0 and self._agg_precompute:
                aggregated, _ = aggregate_features_cached(
                    adjacency_rw, batch.features
                )
                x = layer.forward_preaggregated(x, aggregated)
            else:
                x = layer(x, adjacency_rw)
            if index < self.num_layers - 1:
                x = ops.relu(x)
                x = ops.dropout(x, self.dropout, training=self.training, rng=rng)
        return x
