"""The FARe framework (paper Section IV) and baseline fault-handling strategies.

* :mod:`~repro.core.batch_solvers` — lockstep-batched exact assignment
  solvers (Hungarian, b-Suitor) for the cost engine's pair stacks,
  bit-identical to the scalar solvers in :mod:`repro.matching`.
* :mod:`~repro.core.clipping` — weight clipping for the combination phase.
* :mod:`~repro.core.cost_engine` — batched, cached computation of Algorithm
  1's inner-loop costs (fingerprint dedupe, lazy permutations, result cache).
* :mod:`~repro.core.hw_state` — versioned effective-state cache: per-batch
  faulty adjacency read-backs and effective weights are derived once per
  state change (fault injection, plan refresh, optimiser step) instead of
  once per batch.
* :mod:`~repro.core.mapping` — Algorithm 1: fault-aware mapping of adjacency
  blocks onto crossbars (block decomposition, SA1-weighted row-permutation
  cost, crossbar pruning, optimal block→crossbar assignment).
* :mod:`~repro.core.strategies` — the pluggable strategy objects the training
  pipeline consumes: ``fault_free``, ``fault_unaware``, ``nr`` (neuron
  reordering), ``clipping`` and ``fare``.
"""

from repro.core.clipping import WeightClipper
from repro.core.cost_engine import (
    CostEngineStats,
    MappingCostEngine,
    block_fingerprint,
)
from repro.core.hw_state import HardwareStateCache, HwStateStats
from repro.core.mapping import (
    BlockMapping,
    BatchMapping,
    FaultAwareMapper,
    block_crossbar_cost,
    block_row_cost_matrix,
    permutation_mismatch_cost,
    sequential_mapping,
)
from repro.core.strategies import (
    STRATEGY_REGISTRY,
    FaReStrategy,
    FaultUnawareStrategy,
    NeuronReorderingStrategy,
    Strategy,
    WeightClippingStrategy,
    build_strategy,
)

__all__ = [
    "WeightClipper",
    "CostEngineStats",
    "MappingCostEngine",
    "block_fingerprint",
    "HardwareStateCache",
    "HwStateStats",
    "BlockMapping",
    "BatchMapping",
    "FaultAwareMapper",
    "block_crossbar_cost",
    "block_row_cost_matrix",
    "permutation_mismatch_cost",
    "sequential_mapping",
    "STRATEGY_REGISTRY",
    "Strategy",
    "FaultUnawareStrategy",
    "NeuronReorderingStrategy",
    "WeightClippingStrategy",
    "FaReStrategy",
    "build_strategy",
]
