"""Batched mapping cost engine behind Algorithm 1 (fault-aware mapping).

The seed implementation of :meth:`FaultAwareMapper._pairwise_costs` was a
Python ``B × M`` double loop: for every (block, crossbar) pair it built the
row-mismatch matrix with two dense matmuls and ran a full assignment solve —
and then threw away all but ``B`` of the ``B × M`` permutations it computed.
This module replaces that loop with a batched engine that produces results
**bit-identical** to the seed loop (the equivalence is enforced by
``tests/test_core_cost_engine.py``) while doing orders of magnitude less work:

* **Batched costs** — all distinct blocks are stacked into a ``(B, R, C)``
  tensor and all distinct faulty maps into ``(M, R, C)`` tensors; every
  ``sa0``/``sa1`` row-cost matrix is produced by two batched matmuls instead
  of ``B × M`` small ones.  Because blocks and fault masks are 0/1 valued,
  the matrix entries are exact small integers in float64, so the batched
  contraction is *exactly* equal to the per-pair product — summation order
  cannot change the result, which is what makes bit-identical tie-breaking
  downstream possible.
* **Skip + dedupe** — fault-free crossbars short-circuit (cost 0, identity
  permutation) without touching the tensors, and duplicate blocks/fault maps
  (detected by cheap content fingerprints) are solved once and shared.
* **Vectorial zero-cost early-exit** — a pair whose ``sa0`` *and* ``sa1``
  cost matrices are identically zero has solver cost 0 and SA1 mismatch 0
  under *any* permutation, so no solver call is made at all.
* **Lazy permutations** — the outer block → crossbar assignment only needs
  the cost *values*; the engine therefore returns a permutation *provider*
  and the exact row permutation is materialised only for the ≤ ``B`` pairs
  the outer assignment actually selects.
* **Result cache** — every solved pair is cached under
  ``(block fingerprint, fault-map fingerprint, sa1_weight, method)``, making
  the per-epoch ``update_row_permutations`` refresh and repeated batches on
  unchanged BIST maps near-free.  Hit/miss counters are exported through
  :mod:`repro.pipeline.timing`.

Performance model (``B`` blocks, ``M`` crossbars, ``R × C`` crossbar):

=====================  ==============================================  =========================================
stage                  seed loop                                       cost engine
=====================  ==============================================  =========================================
row-cost matrices      ``B·M`` Python calls, 2 matmuls each            2 batched matmuls over unique pairs
inner assignments      ``B·M`` solver calls                            one vectorised stack solve over
                                                                       non-zero, non-duplicate, uncached
                                                                       pairs: the batched-greedy sweep
                                                                       (``R`` argmins total) or a lockstep
                                                                       exact solver from
                                                                       :mod:`repro.core.batch_solvers`
permutations           ``B·M`` materialised                            ≤ ``B`` materialised (lazy)
repeated batches       full recompute                                  cache hits, no tensor work
=====================  ==============================================  =========================================

A note on the equivalence guarantee: the outer assignment consumes the exact
per-pair solver costs (a single differing entry could flip a tie in the outer
Hungarian solve), so cost entries can only be *skipped*, never approximated —
lower bounds are used exactly where they are provably tight (the zero-cost
early-exit above).  Everything else is restructuring of identical arithmetic.

Delta re-planning
-----------------
:meth:`MappingCostEngine.plan_pairwise` additionally returns a
:class:`PlanContext` capturing the per-pair results *and* warm-start
artifacts (Hungarian dual potentials, b-suitor column preference orders) of
a planning call.  Passing that context back on the next call turns planning
into a **delta** operation: fault-map fingerprints identify the columns that
actually changed, only the ``B × changed`` affected pairs are re-solved (the
rest are spliced from the context), and the re-solves are warm-started from
the predecessor's artifacts where bit-identity can be proved (see
:mod:`repro.core.batch_solvers`).  The delta path is bit-identical to a
from-scratch plan by construction; the invalidation rules (when a context is
rejected and a full re-plan runs instead) are documented as the fourth cache
protocol in ``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batch_solvers import (
    BATCH_SOLVERS,
    assignment_is_unique,
    bsuitor_assignment_batch,
    hungarian_assignment_batch,
    hungarian_warm_solve,
    solve_assignment_batch,
)
from repro.hardware.faults import FaultMap
from repro.matching.bipartite import solve_assignment
from repro.matching.greedy import greedy_assignment_batch


def block_row_cost_matrix(
    block: np.ndarray, fault_map: FaultMap, sa1_weight: float = 1.0
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Mismatch cost of mapping every block row onto every crossbar row.

    Returns ``(total_cost, sa0_cost, sa1_cost)`` where each matrix has shape
    ``(block_rows, crossbar_rows)``:

    * ``sa0_cost[r, s]`` — ones of block row ``r`` that would land on SA0
      cells of crossbar row ``s`` (deleted edges),
    * ``sa1_cost[r, s]`` — zeros of block row ``r`` that would land on SA1
      cells of crossbar row ``s`` (spurious edges),
    * ``total_cost = sa0_cost + sa1_weight * sa1_cost``.

    This is the single definition of the per-pair cost arithmetic: both the
    seed per-pair loop (via :mod:`repro.core.mapping`, which re-exports it)
    and the batched engine's scalar fallbacks call it, so the two paths
    cannot drift apart.
    """
    block = np.asarray(block, dtype=np.float64)
    if block.shape != fault_map.shape:
        raise ValueError(
            f"block shape {block.shape} does not match fault map {fault_map.shape}"
        )
    if sa1_weight < 0:
        raise ValueError(f"sa1_weight must be non-negative, got {sa1_weight}")
    ones = (block > 0).astype(np.float64)
    zeros = 1.0 - ones
    sa0_cost = ones @ fault_map.sa0.astype(np.float64).T
    sa1_cost = zeros @ fault_map.sa1.astype(np.float64).T
    return sa0_cost + sa1_weight * sa1_cost, sa0_cost, sa1_cost


def block_fingerprint(block: np.ndarray) -> str:
    """Content hash of a block's binary pattern.

    The mapping cost only depends on where the block's ones are (the cost
    matrices are built from ``block > 0``), so the fingerprint hashes the
    packed boolean mask plus the shape — two float blocks with the same
    sparsity pattern share a fingerprint.
    """
    ones = np.asarray(block) > 0
    digest = hashlib.blake2b(digest_size=16)
    digest.update(np.asarray(ones.shape, dtype=np.int64).tobytes())
    digest.update(np.packbits(ones).tobytes())
    return digest.hexdigest()


@dataclass
class CostEngineStats:
    """Counters describing how much work the engine avoided.

    ``pairs_total`` counts every (block, crossbar) pair requested;
    ``fault_free_pairs``, ``duplicate_pairs``, ``cache_hits`` and
    ``zero_cost_pairs`` count pairs resolved without a solver call, and
    ``solver_pairs`` the pairs that did reach a solver (batched or scalar).
    ``lazy_permutations`` counts permutations materialised on demand for
    pairs whose solve had been skipped by the zero-cost early-exit.
    """

    pairs_total: int = 0
    fault_free_pairs: int = 0
    duplicate_pairs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    zero_cost_pairs: int = 0
    solver_pairs: int = 0
    lazy_permutations: int = 0
    #: Of ``solver_pairs``, how many were solved by a batched stack solve
    #: (the greedy sweep or a :mod:`repro.core.batch_solvers` exact solver)
    #: rather than one scalar Python call.
    batched_solver_pairs: int = 0
    #: Entries dropped from the LRU result cache (it used to evict silently,
    #: making cache-size tuning unobservable from the outside).
    cache_evictions: int = 0
    #: Delta-planning counters.  ``delta_plans`` counts calls served by the
    #: delta path, ``delta_full_replans`` calls where a previous context was
    #: offered but invalidated (full re-plan ran instead).  In delta mode
    #: ``pairs_total`` counts only the *re-examined* pairs (B × changed
    #: columns); ``delta_pairs_reused`` counts the B × unchanged pairs spliced
    #: straight from the previous context, so per delta call
    #: ``pairs_total_delta + delta_pairs_reused_delta == B × M``.
    delta_plans: int = 0
    delta_full_replans: int = 0
    delta_maps_changed: int = 0
    delta_pairs_reused: int = 0
    #: Warm-started exact re-solves accepted (proved bit-identical) vs
    #: attempted-but-rejected (fell back to the cold solver).
    warm_start_hits: int = 0
    warm_start_fallbacks: int = 0

    @property
    def hit_rate(self) -> float:
        looked_up = self.cache_hits + self.cache_misses
        return self.cache_hits / looked_up if looked_up else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "mapping_pairs_total": float(self.pairs_total),
            "mapping_fault_free_pairs": float(self.fault_free_pairs),
            "mapping_duplicate_pairs": float(self.duplicate_pairs),
            "mapping_cache_hits": float(self.cache_hits),
            "mapping_cache_misses": float(self.cache_misses),
            "mapping_zero_cost_pairs": float(self.zero_cost_pairs),
            "mapping_solver_pairs": float(self.solver_pairs),
            "mapping_lazy_permutations": float(self.lazy_permutations),
            "mapping_batched_solver_pairs": float(self.batched_solver_pairs),
            "mapping_cache_evictions": float(self.cache_evictions),
            "mapping_delta_plans": float(self.delta_plans),
            "mapping_delta_full_replans": float(self.delta_full_replans),
            "mapping_delta_maps_changed": float(self.delta_maps_changed),
            "mapping_delta_pairs_reused": float(self.delta_pairs_reused),
            "mapping_warm_start_hits": float(self.warm_start_hits),
            "mapping_warm_start_fallbacks": float(self.warm_start_fallbacks),
        }

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)


@dataclass
class _PairEntry:
    """Cached result for one (block pattern, fault pattern) pair.

    ``permutation`` is ``None`` while the pair's solve has been skipped by the
    zero-cost early-exit; it is filled in lazily the first time the pair is
    actually selected by the outer assignment.
    """

    cost: float
    sa1_mismatch: float
    permutation: Optional[np.ndarray] = None


#: A provider returning the (solver-exact) row permutation for pair ``(i, j)``.
PermutationProvider = Callable[[int, int], np.ndarray]

#: Warm-start artifacts of one solved pair, keyed by
#: ``(block fingerprint, fault-map fingerprint)`` in :class:`PlanContext`.
#: Hungarian pairs carry ``{"u", "v"}`` (final dual potentials); b-suitor
#: pairs carry ``{"col_orders"}`` (right-side preference orders as int16).
PairArtifacts = Dict[str, object]


@dataclass
class PlanContext:
    """Everything a later *delta* re-plan needs from a planning call.

    Produced by :meth:`MappingCostEngine.plan_pairwise` and accepted back by
    the same method.  The context is self-validating: a delta call checks the
    engine configuration, the batch shape and every block fingerprint before
    trusting it (see :meth:`MappingCostEngine._delta_invalid_reason`) and
    falls back to a full re-plan otherwise — the fourth cache protocol in
    ``docs/ARCHITECTURE.md``.

    ``entries`` is indexed ``[unique block id][map column]`` (``None`` for
    fault-free columns); duplicate columns share entry objects.  ``map_copies``
    holds defensive copies of the fault maps at plan time so a delta can diff
    *rows* (for b-suitor column-order reuse), not just fingerprints.
    """

    sa1_weight: float
    row_method: str
    block_fps: List[str]
    unique_block_fps: List[str]
    block_uid: np.ndarray
    map_fps: List[str]
    map_copies: List[FaultMap]
    fault_free: np.ndarray
    costs: np.ndarray
    sa1: np.ndarray
    entries: List[List[Optional[_PairEntry]]]
    artifacts: Dict[Tuple[str, str], PairArtifacts]

    @property
    def num_blocks(self) -> int:
        return len(self.block_fps)

    @property
    def num_maps(self) -> int:
        return len(self.map_fps)


@dataclass
class _PairwiseInfo:
    """Dedupe structures of one :meth:`MappingCostEngine._pairwise` call."""

    block_fps: List[str]
    unique_block_fps: List[str]
    block_uid: np.ndarray
    block_rep: List[int]
    map_fps: List[str]
    map_uid: np.ndarray
    map_rep: List[int]
    fault_free: np.ndarray
    entries: List[List[Optional[_PairEntry]]]
    captured_aux: Dict[Tuple[str, str], PairArtifacts]


class MappingCostEngine:
    """Batched, cached computation of Algorithm 1's inner-loop costs.

    Parameters
    ----------
    sa1_weight:
        Multiplier applied to SA1 mismatches (part of every cache key).
    row_method:
        Assignment solver for the inner row matching.  All three methods run
        fully batched: ``'greedy'`` through the vectorised sweep in
        :mod:`repro.matching.greedy`, ``'hungarian'``/``'bsuitor'`` through
        the lockstep exact solvers in :mod:`repro.core.batch_solvers`.
    cache_size:
        Maximum number of pair results kept (LRU eviction).
    max_chunk_cells:
        Upper bound on the number of float64 elements materialised per batched
        chunk; keeps the ``(pairs, R, C)`` intermediates within a fixed
        memory budget on large batches.
    use_batched_exact:
        Route ``'hungarian'``/``'bsuitor'`` pair stacks through the batched
        exact solvers (default).  ``False`` keeps the seed behaviour of one
        scalar :func:`~repro.matching.bipartite.solve_assignment` call per
        pair — the reference path for the equivalence tests and the
        ``benchmarks/test_bench_exact_matching.py`` speedup gate.  Both
        paths are bit-identical.
    """

    #: Stop offering Hungarian warm-start seeds after this many rejected
    #: attempts with zero accepted (see the back-off note in ``_plan_delta``).
    WARM_START_BACKOFF = 64

    def __init__(
        self,
        sa1_weight: float = 4.0,
        row_method: str = "greedy",
        cache_size: int = 65536,
        max_chunk_cells: int = 16_000_000,
        use_batched_exact: bool = True,
    ) -> None:
        if sa1_weight < 0:
            raise ValueError(f"sa1_weight must be non-negative, got {sa1_weight}")
        if cache_size < 0:
            raise ValueError(f"cache_size must be non-negative, got {cache_size}")
        self.sa1_weight = float(sa1_weight)
        self.row_method = row_method
        self.cache_size = int(cache_size)
        self.max_chunk_cells = int(max_chunk_cells)
        self.use_batched_exact = bool(use_batched_exact)
        self.stats = CostEngineStats()
        self._cache: "OrderedDict[Tuple, _PairEntry]" = OrderedDict()

    # ------------------------------------------------------------------ #
    # Cache plumbing
    # ------------------------------------------------------------------ #
    def _key(self, block_fp: str, map_fp: str) -> Tuple:
        return (block_fp, map_fp, self.sa1_weight, self.row_method)

    def _cache_lookup(self, key: Tuple) -> Optional[_PairEntry]:
        entry = self._cache.get(key)
        if entry is not None:
            self._cache.move_to_end(key)
            self.stats.cache_hits += 1
        else:
            self.stats.cache_misses += 1
        return entry

    def _cache_store(self, key: Tuple, entry: _PairEntry) -> _PairEntry:
        if self.cache_size == 0:
            return entry
        self._cache[key] = entry
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
            self.stats.cache_evictions += 1
        return entry

    def clear_cache(self) -> None:
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)

    # ------------------------------------------------------------------ #
    # Exact per-pair arithmetic (shared with the seed formulation)
    # ------------------------------------------------------------------ #
    def _pair_cost_matrices(
        self, block: np.ndarray, fault_map: FaultMap
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(total, sa0_cost, sa1_cost)`` for one pair, seed-identical."""
        return block_row_cost_matrix(block, fault_map, self.sa1_weight)

    def _solve_pair(
        self, total: np.ndarray, sa1_cost: np.ndarray
    ) -> Tuple[float, np.ndarray, float]:
        """Solve one pair with the scalar solver (seed-identical)."""
        self.stats.solver_pairs += 1
        permutation, cost = solve_assignment(total, method=self.row_method)
        permutation = permutation.astype(np.int64)
        sa1 = float(sa1_cost[np.arange(len(permutation)), permutation].sum())
        return float(cost), permutation, sa1

    def _materialise_permutation(
        self, entry: _PairEntry, block: np.ndarray, fault_map: FaultMap
    ) -> np.ndarray:
        """Fill in a lazily skipped permutation by running the real solver."""
        if entry.permutation is None:
            total, _, sa1_cost = self._pair_cost_matrices(block, fault_map)
            _, entry.permutation, _ = self._solve_pair(total, sa1_cost)
            self.stats.lazy_permutations += 1
        return entry.permutation.copy()

    # ------------------------------------------------------------------ #
    # Single-pair front-end (update_row_permutations path)
    # ------------------------------------------------------------------ #
    def block_crossbar_cost(
        self, block: np.ndarray, fault_map: FaultMap
    ) -> Tuple[float, np.ndarray, float]:
        """Cached equivalent of :func:`repro.core.mapping.block_crossbar_cost`.

        Returns ``(total_cost, row_permutation, sa1_mismatch)``; repeated
        calls with an unchanged block/fault pattern are cache hits and do no
        tensor or solver work.
        """
        self.stats.pairs_total += 1
        if fault_map.is_fault_free():
            self.stats.fault_free_pairs += 1
            n = np.asarray(block).shape[0]
            return 0.0, np.arange(n, dtype=np.int64), 0.0
        key = self._key(block_fingerprint(block), fault_map.fingerprint)
        entry = self._cache_lookup(key)
        if entry is None:
            # The caller always needs the permutation here, so the zero-cost
            # lazy skip would only defer (and duplicate) work — solve eagerly.
            total, _, sa1_cost = self._pair_cost_matrices(block, fault_map)
            cost, permutation, sa1 = self._solve_pair(total, sa1_cost)
            entry = _PairEntry(cost=cost, sa1_mismatch=sa1, permutation=permutation)
            self._cache_store(key, entry)
        permutation = self._materialise_permutation(entry, block, fault_map)
        return entry.cost, permutation, entry.sa1_mismatch

    # ------------------------------------------------------------------ #
    # Batched front-end (map_blocks path)
    # ------------------------------------------------------------------ #
    def pairwise_costs(
        self, blocks: Sequence[np.ndarray], fault_maps: Sequence[FaultMap]
    ) -> Tuple[np.ndarray, np.ndarray, PermutationProvider]:
        """Costs and SA1 mismatches for all pairs, permutations lazy.

        Returns ``(costs, sa1_mismatches, permutation_for)`` where the two
        arrays have shape ``(len(blocks), len(fault_maps))`` and
        ``permutation_for(i, j)`` materialises the solver-exact row
        permutation of pair ``(i, j)`` on demand.  Every value is
        bit-identical to what the seed per-pair loop produces.
        """
        costs, sa1_mismatches, permutation_for, _ = self._pairwise(
            blocks, fault_maps
        )
        return costs, sa1_mismatches, permutation_for

    def _pairwise(
        self,
        blocks: Sequence[np.ndarray],
        fault_maps: Sequence[FaultMap],
        capture: bool = False,
        hints: Optional[Callable[[str, int], Optional[Dict]]] = None,
    ) -> Tuple[np.ndarray, np.ndarray, PermutationProvider, _PairwiseInfo]:
        """:meth:`pairwise_costs` body, plus the dedupe structures.

        ``capture`` additionally collects warm-start artifacts (Hungarian
        duals, b-suitor preference orders) for every pair that reaches an
        exact batched solve.  ``hints(block_fp, map_index)`` — with
        ``map_index`` an index into ``fault_maps`` — may supply a warm-start
        hint for a pair; warm results are only accepted when provably
        bit-identical to the cold solve (see :meth:`_warm_solve_pair`).
        """
        num_blocks = len(blocks)
        num_maps = len(fault_maps)
        costs = np.zeros((num_blocks, num_maps), dtype=np.float64)
        sa1_mismatches = np.zeros((num_blocks, num_maps), dtype=np.float64)
        # -- fingerprint + dedupe the two axes --------------------------- #
        block_fps = [block_fingerprint(b) for b in blocks]
        unique_block_of: Dict[str, int] = {}
        block_rep: List[int] = []  # unique block id -> representative index
        block_uid = np.empty(num_blocks, dtype=np.int64)
        for i, fp in enumerate(block_fps):
            uid = unique_block_of.setdefault(fp, len(block_rep))
            if uid == len(block_rep):
                block_rep.append(i)
            block_uid[i] = uid

        if num_blocks == 0 or num_maps == 0:
            info = _PairwiseInfo(
                block_fps=block_fps,
                unique_block_fps=[block_fps[i] for i in block_rep],
                block_uid=block_uid,
                block_rep=block_rep,
                map_fps=[fmap.fingerprint for fmap in fault_maps],
                map_uid=np.full(num_maps, -1, dtype=np.int64),
                map_rep=[],
                fault_free=np.array(
                    [fmap.is_fault_free() for fmap in fault_maps], dtype=bool
                ),
                entries=[[] for _ in block_rep],
                captured_aux={},
            )
            return (
                costs,
                sa1_mismatches,
                lambda i, j: np.arange(0, dtype=np.int64),
                info,
            )

        self.stats.pairs_total += num_blocks * num_maps

        map_fps = [fmap.fingerprint for fmap in fault_maps]
        fault_free = np.array([fmap.is_fault_free() for fmap in fault_maps])
        unique_map_of: Dict[str, int] = {}
        map_rep: List[int] = []
        map_uid = np.full(num_maps, -1, dtype=np.int64)
        for j, fmap in enumerate(fault_maps):
            if fault_free[j]:
                continue
            uid = unique_map_of.setdefault(map_fps[j], len(map_rep))
            if uid == len(map_rep):
                map_rep.append(j)
            map_uid[j] = uid

        num_ub, num_um = len(block_rep), len(map_rep)
        self.stats.fault_free_pairs += num_blocks * int(fault_free.sum())
        self.stats.duplicate_pairs += (
            num_blocks * (num_maps - int(fault_free.sum())) - num_ub * num_um
        )

        # -- resolve unique pairs through the cache ----------------------- #
        entries: List[List[Optional[_PairEntry]]] = [
            [None] * num_um for _ in range(num_ub)
        ]
        to_solve: List[Tuple[int, int]] = []
        for ub in range(num_ub):
            bfp = block_fps[block_rep[ub]]
            for um in range(num_um):
                key = self._key(bfp, map_fps[map_rep[um]])
                entry = self._cache_lookup(key)
                if entry is None:
                    to_solve.append((ub, um))
                else:
                    entries[ub][um] = entry

        captured_aux: Dict[Tuple[str, str], PairArtifacts] = {}
        keep_aux: Optional[Callable[[int, int, PairArtifacts], None]] = None
        if capture:

            def keep_aux(ub: int, um: int, aux: PairArtifacts) -> None:
                captured_aux[
                    (block_fps[block_rep[ub]], map_fps[map_rep[um]])
                ] = aux

        hint_for: Optional[Callable[[int, int], Optional[Dict]]] = None
        if hints is not None:

            def hint_for(ub: int, um: int) -> Optional[Dict]:
                return hints(block_fps[block_rep[ub]], map_rep[um])

        if to_solve:
            self._solve_pairs_batched(blocks, fault_maps, block_rep, map_rep,
                                      block_fps, map_fps, to_solve, entries,
                                      keep_aux=keep_aux, hint_for=hint_for)

        # -- scatter the unique results to the full (B, M) grids ---------- #
        faulty_cols = np.flatnonzero(~fault_free)
        if faulty_cols.size:
            unique_costs = np.empty((num_ub, num_um), dtype=np.float64)
            unique_sa1 = np.empty((num_ub, num_um), dtype=np.float64)
            for ub in range(num_ub):
                for um in range(num_um):
                    unique_costs[ub, um] = entries[ub][um].cost
                    unique_sa1[ub, um] = entries[ub][um].sa1_mismatch
            col_uid = map_uid[faulty_cols]
            costs[:, faulty_cols] = unique_costs[np.ix_(block_uid, col_uid)]
            sa1_mismatches[:, faulty_cols] = unique_sa1[np.ix_(block_uid, col_uid)]

        def permutation_for(i: int, j: int) -> np.ndarray:
            if fault_free[j]:
                n = np.asarray(blocks[i]).shape[0]
                return np.arange(n, dtype=np.int64)
            entry = entries[block_uid[i]][map_uid[j]]
            return self._materialise_permutation(entry, blocks[i], fault_maps[j])

        info = _PairwiseInfo(
            block_fps=block_fps,
            unique_block_fps=[block_fps[i] for i in block_rep],
            block_uid=block_uid,
            block_rep=block_rep,
            map_fps=map_fps,
            map_uid=map_uid,
            map_rep=map_rep,
            fault_free=fault_free,
            entries=entries,
            captured_aux=captured_aux,
        )
        return costs, sa1_mismatches, permutation_for, info

    # ------------------------------------------------------------------ #
    def _solve_pairs_batched(
        self,
        blocks: Sequence[np.ndarray],
        fault_maps: Sequence[FaultMap],
        block_rep: List[int],
        map_rep: List[int],
        block_fps: List[str],
        map_fps: List[str],
        to_solve: List[Tuple[int, int]],
        entries: List[List[Optional[_PairEntry]]],
        keep_aux: Optional[Callable[[int, int, PairArtifacts], None]] = None,
        hint_for: Optional[Callable[[int, int], Optional[Dict]]] = None,
    ) -> None:
        """Solve the uncached unique pairs with batched tensor work."""
        shape = fault_maps[map_rep[0]].shape
        for fmap in fault_maps:
            if fmap.shape != shape:
                raise ValueError(
                    f"fault map shape {fmap.shape} does not match {shape}"
                )
        # Stack only the blocks/maps that actually have pending pairs, so a
        # mostly-warm call (e.g. one new block against a cached pool) pays
        # tensor cost proportional to the new work, not to the full batch.
        solve_ubs = sorted({ub for ub, _ in to_solve})
        solve_ums = sorted({um for _, um in to_solve})
        compact_ub = {ub: k for k, ub in enumerate(solve_ubs)}
        compact_um = {um: k for k, um in enumerate(solve_ums)}
        ones_stack = np.stack(
            [
                (np.asarray(blocks[block_rep[ub]], dtype=np.float64) > 0).astype(
                    np.float64
                )
                for ub in solve_ubs
            ]
        )
        if ones_stack.shape[1:] != shape:
            raise ValueError(
                f"block shape {ones_stack.shape[1:]} does not match fault map "
                f"{shape}"
            )
        rows, cols = shape
        # Cost entries are counts ≤ cols (SA1-weighted: ≤ (1 + w)·cols).  When
        # they all fit exactly in float32 (< 2²⁴) the big contraction can run
        # in float32 — half the memory traffic — and still produce the exact
        # same integers as the seed's float64 matmuls; likewise an integral
        # sa1_weight allows the greedy solve to run on an exact int32 stack.
        exact_f32 = (1.0 + self.sa1_weight) * cols < 2**24
        compute_dtype = np.float32 if exact_f32 else np.float64
        integral_weight = exact_f32 and float(self.sa1_weight).is_integer()
        ones_stack = ones_stack.astype(compute_dtype)
        zeros_stack = 1.0 - ones_stack
        sa0_stack = np.stack(
            [fault_maps[map_rep[um]].sa0.astype(compute_dtype) for um in solve_ums]
        )
        sa1_stack = np.stack(
            [fault_maps[map_rep[um]].sa1.astype(compute_dtype) for um in solve_ums]
        )

        def record(ub: int, um: int, entry: _PairEntry) -> None:
            entries[ub][um] = self._cache_store(
                self._key(block_fps[block_rep[ub]], map_fps[map_rep[um]]), entry
            )

        pair_density = len(to_solve) / max(len(solve_ubs) * len(solve_ums), 1)
        if pair_density >= 0.5:
            # Dense pending set (the cold-start shape): one big contraction
            # per fault class over the (pending block × pending map) grid —
            # exact integer-valued results, identical to the seed's per-pair
            # products.  Chunked over maps to bound the grid size.
            grid_cells = max(len(solve_ubs) * rows * rows * 6, 1)
            map_chunk = max(1, self.max_chunk_cells // grid_cells)
            by_um = sorted(to_solve, key=lambda pair: compact_um[pair[1]])
            cursor = 0
            while cursor < len(by_um):
                cm_lo = compact_um[by_um[cursor][1]]
                cm_hi = min(cm_lo + map_chunk, len(solve_ums))
                batch = []
                while cursor < len(by_um) and compact_um[by_um[cursor][1]] < cm_hi:
                    batch.append(by_um[cursor])
                    cursor += 1
                sa0_grid = np.tensordot(
                    ones_stack, sa0_stack[cm_lo:cm_hi], axes=([2], [2])
                ).transpose(0, 2, 1, 3)
                sa1_grid = np.tensordot(
                    zeros_stack, sa1_stack[cm_lo:cm_hi], axes=([2], [2])
                ).transpose(0, 2, 1, 3)
                ub_idx = np.array(
                    [compact_ub[ub] for ub, _ in batch], dtype=np.int64
                )
                um_idx = np.array(
                    [compact_um[um] - cm_lo for _, um in batch], dtype=np.int64
                )
                self._finish_pair_batch(
                    batch,
                    sa0_grid[ub_idx, um_idx],
                    sa1_grid[ub_idx, um_idx],
                    integral_weight,
                    record,
                    keep_aux=keep_aux,
                    hint_for=hint_for,
                )
        else:
            # Sparse pending set (e.g. one new block against a warm pool plus
            # one refreshed map): batched per-pair matmuls over just the
            # pending pairs, so the cost stays proportional to the new work.
            pair_chunk = max(1, self.max_chunk_cells // max(rows * cols * 6, 1))
            for start in range(0, len(to_solve), pair_chunk):
                batch = to_solve[start : start + pair_chunk]
                ub_idx = np.array(
                    [compact_ub[ub] for ub, _ in batch], dtype=np.int64
                )
                um_idx = np.array(
                    [compact_um[um] for _, um in batch], dtype=np.int64
                )
                sa0_sel = ones_stack[ub_idx] @ sa0_stack[um_idx].transpose(0, 2, 1)
                sa1_sel = zeros_stack[ub_idx] @ sa1_stack[um_idx].transpose(0, 2, 1)
                self._finish_pair_batch(
                    batch, sa0_sel, sa1_sel, integral_weight, record,
                    keep_aux=keep_aux, hint_for=hint_for,
                )

    def _finish_pair_batch(
        self,
        batch: List[Tuple[int, int]],
        sa0_sel: np.ndarray,
        sa1_sel: np.ndarray,
        integral_weight: bool,
        record: Callable[[int, int, _PairEntry], None],
        keep_aux: Optional[Callable[[int, int, PairArtifacts], None]] = None,
        hint_for: Optional[Callable[[int, int], Optional[Dict]]] = None,
    ) -> None:
        """Zero-detect, solve and cache one batch of gathered pair matrices.

        ``sa0_sel``/``sa1_sel`` are ``(len(batch), R, S)`` stacks of exact
        integer-valued cost components; ``record(ub, um, entry)`` persists a
        result under the pair's cache key and result table.
        """
        # Vectorial zero-cost early-exit: both component matrices all-zero
        # means any permutation is optimal at cost 0 with zero SA1 mismatch —
        # no solver call needed, the permutation stays lazy.
        nonzero = np.logical_or(
            sa0_sel.any(axis=(1, 2)), sa1_sel.any(axis=(1, 2))
        )
        for k in np.flatnonzero(~nonzero):
            ub, um = batch[k]
            self.stats.zero_cost_pairs += 1
            record(ub, um, _PairEntry(cost=0.0, sa1_mismatch=0.0))
        live = np.flatnonzero(nonzero)
        if not live.size:
            return
        sa0_live = sa0_sel[live]
        sa1_live = sa1_sel[live]
        live_pairs = [batch[k] for k in live]
        if self.row_method == "greedy":
            if integral_weight:
                # Exact int32 work stack: same integers, half the traffic.
                total = sa0_live.astype(np.int32) + int(
                    self.sa1_weight
                ) * sa1_live.astype(np.int32)
            else:
                total = sa0_live.astype(np.float64) + self.sa1_weight * (
                    sa1_live.astype(np.float64)
                )
            assignments, totals = greedy_assignment_batch(total)
            self.stats.solver_pairs += len(live_pairs)
            self.stats.batched_solver_pairs += len(live_pairs)
            # Vectorised SA1 gather: per pair the same values in the same
            # order as the seed's fancy-indexed row sum (exact integers).
            sa1_totals = (
                np.take_along_axis(sa1_live, assignments[:, :, None], axis=2)[
                    :, :, 0
                ]
                .astype(np.float64)
                .sum(axis=1)
            )
            for k, (ub, um) in enumerate(live_pairs):
                record(
                    ub,
                    um,
                    _PairEntry(
                        cost=float(totals[k]),
                        sa1_mismatch=float(sa1_totals[k]),
                        permutation=assignments[k],
                    ),
                )
        elif self.use_batched_exact and self.row_method in BATCH_SOLVERS:
            # Lockstep exact solve of the whole pair stack (bit-identical to
            # the scalar per-pair calls below, which remain the seed path).
            sa1_f64 = sa1_live.astype(np.float64)
            total = sa0_live.astype(np.float64) + self.sa1_weight * sa1_f64
            # Warm-start attempts first (delta re-planning): a pair with a
            # hint from the previous plan is re-solved from that plan's
            # artifacts, and the warm result is accepted only when provably
            # bit-identical to what the cold stack solve would return.
            # b-suitor hints stay batched — all hinted pairs solve in ONE
            # lockstep call with their cached preference orders spliced in —
            # while Hungarian warm solves are inherently scalar (per-pair JV
            # augmentation + uniqueness certificate).
            hints = [
                hint_for(ub, um) if hint_for is not None else None
                for ub, um in live_pairs
            ]
            warm_results: Dict[int, Tuple[_PairEntry, PairArtifacts]] = {}
            if self.row_method == "bsuitor":
                warm_ks = [k for k, hint in enumerate(hints) if hint is not None]
                if warm_ks:
                    col_orders = [
                        (
                            hints[k]["valid"],
                            np.asarray(hints[k]["col_orders"], dtype=np.int64),
                        )
                        for k in warm_ks
                    ]
                    assignments, warm_totals, aux = bsuitor_assignment_batch(
                        total[np.array(warm_ks, dtype=np.int64)],
                        col_orders=col_orders,
                        return_aux=True,
                    )
                    rows = np.arange(assignments.shape[1])
                    for idx, k in enumerate(warm_ks):
                        permutation = assignments[idx]
                        entry = _PairEntry(
                            cost=float(warm_totals[idx]),
                            sa1_mismatch=float(
                                sa1_f64[k][rows, permutation].sum()
                            ),
                            permutation=permutation,
                        )
                        warm_results[k] = (
                            entry,
                            {
                                "col_orders": aux["col_orders"][idx].astype(
                                    np.int16
                                )
                            },
                        )
            elif self.row_method == "hungarian":
                for k, hint in enumerate(hints):
                    if hint is None:
                        continue
                    warm = self._warm_solve_pair(total[k], sa1_f64[k], hint)
                    if warm is None:
                        self.stats.warm_start_fallbacks += 1
                    else:
                        warm_results[k] = warm
            cold: List[int] = []
            for k, (ub, um) in enumerate(live_pairs):
                warm = warm_results.get(k)
                if warm is None:
                    cold.append(k)
                    continue
                entry, aux = warm
                self.stats.warm_start_hits += 1
                self.stats.solver_pairs += 1
                record(ub, um, entry)
                if keep_aux is not None:
                    keep_aux(ub, um, aux)
            if cold:
                cold_idx = np.array(cold, dtype=np.int64)
                cold_pairs = [live_pairs[k] for k in cold]
                assignments, totals, duals, suitor_aux = self._solve_exact_stack(
                    total[cold_idx], capture=keep_aux is not None
                )
                self.stats.solver_pairs += len(cold_pairs)
                self.stats.batched_solver_pairs += len(cold_pairs)
                rows = np.arange(assignments.shape[1])
                for k, (ub, um) in enumerate(cold_pairs):
                    permutation = assignments[k]
                    sa1 = float(sa1_f64[cold_idx[k], rows, permutation].sum())
                    record(
                        ub,
                        um,
                        _PairEntry(
                            cost=float(totals[k]),
                            sa1_mismatch=sa1,
                            permutation=permutation,
                        ),
                    )
                    if keep_aux is None:
                        continue
                    if duals is not None:
                        keep_aux(
                            ub, um, {"u": duals[0][k], "v": duals[1][k]}
                        )
                    elif suitor_aux is not None:
                        keep_aux(
                            ub,
                            um,
                            {
                                "col_orders": suitor_aux["col_orders"][k].astype(
                                    np.int16
                                )
                            },
                        )
        else:
            sa1_f64 = sa1_live.astype(np.float64)
            total = sa0_live.astype(np.float64) + self.sa1_weight * sa1_f64
            for k, (ub, um) in enumerate(live_pairs):
                cost, permutation, sa1 = self._solve_pair(total[k], sa1_f64[k])
                record(
                    ub,
                    um,
                    _PairEntry(cost=cost, sa1_mismatch=sa1, permutation=permutation),
                )

    def _solve_exact_stack(
        self, total: np.ndarray, capture: bool
    ) -> Tuple[np.ndarray, np.ndarray, Optional[Tuple], Optional[Dict]]:
        """Cold exact stack solve, optionally with warm-start artifacts.

        Returns ``(assignments, totals, duals, suitor_aux)`` where exactly
        one of ``duals`` (Hungarian ``(u, v)`` stacks) / ``suitor_aux``
        (b-suitor ``{"col_orders", "wmax"}``) is non-``None`` when
        ``capture`` is requested.  The capture flag changes only what is
        *returned*, never the solve itself — the assignments are the same
        arrays :func:`~repro.core.batch_solvers.solve_assignment_batch`
        produces.
        """
        if not capture:
            assignments, totals = solve_assignment_batch(
                total, method=self.row_method
            )
            return assignments, totals, None, None
        if self.row_method == "hungarian":
            assignments, totals, duals = hungarian_assignment_batch(
                total, return_duals=True
            )
            return assignments, totals, duals, None
        assignments, totals, suitor_aux = bsuitor_assignment_batch(
            total, return_aux=True
        )
        return assignments, totals, None, suitor_aux

    def _warm_solve_pair(
        self, total: np.ndarray, sa1_cost: np.ndarray, hint: Dict
    ) -> Optional[Tuple[_PairEntry, PairArtifacts]]:
        """Attempt one warm-started Hungarian solve; ``None`` = cold path.

        The contract is *proved bit-identity, never assumed*: only attempted
        for square matrices with an integral ``sa1_weight`` (cost entries and
        duals then stay exact integers in float64).  The warm JV solve is
        exact, and the result is accepted only when
        :func:`~repro.core.batch_solvers.assignment_is_unique` certifies the
        optimum is unique — in which case *every* exact solver, in particular
        the cold batched JV, returns the same assignment; cost/SA1 reductions
        use the cold path's exact expressions.  Certificate failure → cold
        fallback (common on degenerate small-integer matrices, where many
        optimal assignments tie; the delta win there comes from column
        splicing, not warm duals).

        b-suitor warm solves do not come through here — they run batched in
        :meth:`_finish_pair_batch`: cached right-side preference orders are
        reused for columns whose *cost* column is unchanged (fault-map row
        untouched by the delta).  The per-matrix weight offset ``wmax`` may
        differ: weights are ``wmax - cost + 1``, and shifting a column by a
        constant (exact small-integer float64 arithmetic) preserves every
        pairwise comparison, so the cached comparison-sort order is exactly
        what a fresh ``argsort`` of the new weights would produce — identical
        by construction, no certificate needed.
        """
        n_rows, n_cols = total.shape
        if hint.get("method") != "hungarian" or n_rows != n_cols:
            return None
        seed = hint.get("seed")
        if seed is None:
            return None
        rows = np.arange(n_rows)
        assignment, _, (u, v), _ = hungarian_warm_solve(
            total, hint["u"], hint["v"], seed
        )
        if not assignment_is_unique(total, u, v, assignment):
            return None
        entry = _PairEntry(
            cost=float(total[rows, assignment].sum()),
            sa1_mismatch=float(sa1_cost[rows, assignment].sum()),
            permutation=assignment,
        )
        return entry, {"u": u, "v": v}

    # ------------------------------------------------------------------ #
    # Delta re-planning front-end (plan → delta → re-plan)
    # ------------------------------------------------------------------ #
    def plan_pairwise(
        self,
        blocks: Sequence[np.ndarray],
        fault_maps: Sequence[FaultMap],
        prev_context: Optional[PlanContext] = None,
    ) -> Tuple[np.ndarray, np.ndarray, PermutationProvider, PlanContext]:
        """:meth:`pairwise_costs` that also returns a reusable plan context.

        Without ``prev_context`` this is a from-scratch plan that captures
        warm-start artifacts.  With a valid ``prev_context`` only the
        ``B × changed`` pairs whose fault-map fingerprints differ are
        re-examined (warm-started where provable); everything else is spliced
        from the context.  Both paths return values bit-identical to
        :meth:`pairwise_costs` — the invalidation rules are the fourth cache
        protocol in ``docs/ARCHITECTURE.md``.
        """
        if prev_context is not None:
            reason = self._delta_invalid_reason(prev_context, blocks, fault_maps)
            if reason is None:
                return self._plan_delta(blocks, fault_maps, prev_context)
            self.stats.delta_full_replans += 1
        costs, sa1, permutation_for, info = self._pairwise(
            blocks, fault_maps, capture=True
        )
        context = self._context_from_info(costs, sa1, fault_maps, info)
        return costs, sa1, permutation_for, context

    def _context_from_info(
        self,
        costs: np.ndarray,
        sa1: np.ndarray,
        fault_maps: Sequence[FaultMap],
        info: _PairwiseInfo,
    ) -> PlanContext:
        num_um = len(info.map_rep)
        # Re-index entries from [uid][unique map] to [uid][column]: duplicate
        # columns share the same entry object, fault-free columns get None.
        entries_by_col: List[List[Optional[_PairEntry]]] = []
        for ub in range(len(info.block_rep)):
            row: List[Optional[_PairEntry]] = []
            for j in range(len(info.map_fps)):
                um = int(info.map_uid[j])
                row.append(info.entries[ub][um] if um >= 0 and num_um else None)
            entries_by_col.append(row)
        return PlanContext(
            sa1_weight=self.sa1_weight,
            row_method=self.row_method,
            block_fps=list(info.block_fps),
            unique_block_fps=list(info.unique_block_fps),
            block_uid=info.block_uid.copy(),
            map_fps=list(info.map_fps),
            map_copies=[fmap.copy() for fmap in fault_maps],
            fault_free=info.fault_free.copy(),
            costs=costs.copy(),
            sa1=sa1.copy(),
            entries=entries_by_col,
            artifacts=dict(info.captured_aux),
        )

    def _delta_invalid_reason(
        self,
        prev: PlanContext,
        blocks: Sequence[np.ndarray],
        fault_maps: Sequence[FaultMap],
    ) -> Optional[str]:
        """Why ``prev`` cannot seed a delta plan for these inputs (or None).

        The rules (fourth cache protocol): the context must have been
        produced under the same engine configuration (``sa1_weight``,
        ``row_method``), for the same batch shape, with every block
        fingerprint unchanged, and every fault map must keep its shape.  Any
        violation forces a full re-plan.
        """
        if prev.sa1_weight != self.sa1_weight or prev.row_method != self.row_method:
            return "engine-config"
        if len(blocks) != prev.num_blocks or len(fault_maps) != prev.num_maps:
            return "shape"
        if [block_fingerprint(b) for b in blocks] != prev.block_fps:
            return "blocks-changed"
        for fmap, old in zip(fault_maps, prev.map_copies):
            if fmap.shape != old.shape:
                return "map-shape"
        return None

    def _plan_delta(
        self,
        blocks: Sequence[np.ndarray],
        fault_maps: Sequence[FaultMap],
        prev: PlanContext,
    ) -> Tuple[np.ndarray, np.ndarray, PermutationProvider, PlanContext]:
        """Re-plan against ``fault_maps`` touching only the changed columns."""
        num_blocks, num_maps = prev.num_blocks, prev.num_maps
        map_fps = [fmap.fingerprint for fmap in fault_maps]
        changed = [j for j in range(num_maps) if map_fps[j] != prev.map_fps[j]]
        self.stats.delta_plans += 1
        self.stats.delta_maps_changed += len(changed)
        self.stats.delta_pairs_reused += num_blocks * (num_maps - len(changed))

        costs = prev.costs.copy()
        sa1 = prev.sa1.copy()
        fault_free = prev.fault_free.copy()
        entries = [list(row) for row in prev.entries]
        artifacts = dict(prev.artifacts)
        map_copies = list(prev.map_copies)
        uid_of = {fp: uid for uid, fp in enumerate(prev.unique_block_fps)}

        sub_provider: Optional[PermutationProvider] = None
        changed_pos: Dict[int, int] = {}
        if changed:
            changed_maps = [fault_maps[j] for j in changed]
            changed_pos = {j: c for c, j in enumerate(changed)}
            # Per changed map: which cost-matrix columns (crossbar rows) kept
            # a bit-identical fault row — those are the b-suitor preference
            # columns a warm solve may reuse.
            unchanged_rows: List[np.ndarray] = []
            for c, j in enumerate(changed):
                old, new = prev.map_copies[j], fault_maps[j]
                unchanged_rows.append(
                    ~((old.sa0 != new.sa0) | (old.sa1 != new.sa1)).any(axis=1)
                )
            integral = float(self.sa1_weight).is_integer()

            def hint_source(block_fp: str, inner_idx: int) -> Optional[Dict]:
                j = changed[inner_idx]
                aux = prev.artifacts.get((block_fp, prev.map_fps[j]))
                if aux is None:
                    return None
                if self.row_method == "hungarian":
                    if not integral:
                        return None
                    if (
                        self.stats.warm_start_hits == 0
                        and self.stats.warm_start_fallbacks
                        >= self.WARM_START_BACKOFF
                    ):
                        # Adaptive back-off: on degenerate small-integer cost
                        # matrices the uniqueness certificate almost never
                        # passes (multiple optima are the norm), so after
                        # this many futile attempts with zero accepted the
                        # engine stops offering dual seeds — the attempt +
                        # certificate would be pure overhead on top of the
                        # cold solve it falls back to anyway.
                        return None
                    uid = uid_of.get(block_fp)
                    entry = entries[uid][j] if uid is not None else None
                    seed = entry.permutation if entry is not None else None
                    if seed is None:
                        return None
                    return {
                        "method": "hungarian",
                        "u": aux["u"],
                        "v": aux["v"],
                        "seed": seed,
                    }
                if self.row_method == "bsuitor":
                    valid = unchanged_rows[inner_idx]
                    if not valid.any():
                        # Every fault-map row changed: no cached preference
                        # column is reusable, so this is a plain cold pair
                        # (not a warm fallback — no warm information exists).
                        return None
                    return {
                        "method": "bsuitor",
                        "valid": valid,
                        "col_orders": aux["col_orders"],
                    }
                return None

            sub_costs, sub_sa1, sub_provider, sub_info = self._pairwise(
                blocks, changed_maps, capture=True, hints=hint_source
            )
            # Splice the re-examined columns into the carried-over grids.
            for c, j in enumerate(changed):
                costs[:, j] = sub_costs[:, c]
                sa1[:, j] = sub_sa1[:, c]
                fault_free[j] = bool(sub_info.fault_free[c])
                map_copies[j] = fault_maps[j].copy()
                um = int(sub_info.map_uid[c])
                for uid in range(len(prev.unique_block_fps)):
                    entries[uid][j] = (
                        sub_info.entries[uid][um] if um >= 0 else None
                    )
            artifacts.update(sub_info.captured_aux)
            # Drop artifacts no longer reachable from any current column so
            # repeated deltas cannot grow the context without bound.
            live_fps = set(map_fps)
            artifacts = {
                key: aux for key, aux in artifacts.items() if key[1] in live_fps
            }

        def permutation_for(i: int, j: int) -> np.ndarray:
            c = changed_pos.get(j)
            if c is not None:
                return sub_provider(i, c)
            if fault_free[j]:
                n = np.asarray(blocks[i]).shape[0]
                return np.arange(n, dtype=np.int64)
            entry = entries[prev.block_uid[i]][j]
            return self._materialise_permutation(entry, blocks[i], fault_maps[j])

        context = PlanContext(
            sa1_weight=self.sa1_weight,
            row_method=self.row_method,
            block_fps=list(prev.block_fps),
            unique_block_fps=list(prev.unique_block_fps),
            block_uid=prev.block_uid.copy(),
            map_fps=map_fps,
            map_copies=map_copies,
            fault_free=fault_free,
            costs=costs.copy(),
            sa1=sa1.copy(),
            entries=entries,
            artifacts=artifacts,
        )
        return costs, sa1, permutation_for, context
