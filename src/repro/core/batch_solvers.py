"""Batched exact assignment solvers (Hungarian and b-Suitor) for pair stacks.

:class:`~repro.core.cost_engine.MappingCostEngine` stacks every uncached
(block, fault-map) pair of Algorithm 1's inner loop into one ``(B, R, C)``
cost tensor.  For the ``greedy`` row method the whole stack has long been
solved by one vectorised sweep (:func:`repro.matching.greedy.
greedy_assignment_batch`); the exact methods, however, still dropped back to
``B`` independent Python solves — ~8 ms per 32×32 Hungarian call, which is
where all the cold-start time of the exact configurations went.  This module
closes that gap with batched counterparts of the two exact solvers.

Both are **lockstep** vectorisations: every matrix in the stack executes
exactly the algorithm the scalar solver executes — the same iterations, the
same floating-point operations in the same order, the same tie-breaking — but
one numpy dispatch advances *all* still-active matrices at once instead of
one.  Matrices retire from the working set as they converge, so a stack whose
members need different iteration counts never does wasted tensor work on the
finished ones.  Because each matrix's evolution is independent of its
neighbours in the stack, the results are **bit-identical** to the scalar
solvers by construction; ``tests/test_batch_solvers.py`` enforces this across
tied, degenerate and rectangular instances, and
``tests/test_core_cost_engine.py`` enforces it end-to-end through Algorithm 1.

* :func:`hungarian_assignment_batch` — the dual-potential / shortest
  augmenting path (Jonker–Volgenant style) formulation of
  :func:`repro.matching.hungarian.hungarian_assignment`, with the dual
  updates and the frontier scan (minimum reduced cost over free columns)
  vectorised over the batch dimension.
* :func:`bsuitor_assignment_batch` — the ``b = 1`` suitor algorithm of
  :func:`repro.matching.bsuitor.bsuitor_assignment`.  Preference lists for
  every vertex of every matrix are built by one batched ``argsort`` (the
  full sort, not an ``argpartition`` top-k: the engine's bit-identical
  guarantee includes tie ordering, and a partial select would reorder equal
  weights), and each proposal round resolves every matrix's pending proposal
  with one vectorised candidate scan.

The batched front-ends return ``(assignments, totals)`` stacks shaped like
:func:`repro.matching.greedy.greedy_assignment_batch`'s output, and are
dispatched by name through :func:`solve_assignment_batch` (the batch
counterpart of :func:`repro.matching.bipartite.solve_assignment`).

Warm-started solves (delta re-planning)
---------------------------------------
When a fault map changes by a small delta, the cost engine re-solves only the
affected pairs — and those solves can start from the *previous* solution
instead of cold:

* :func:`hungarian_warm_solve` reuses the predecessor's dual potentials
  (feasibility-repaired for the changed columns) and its still-tight matched
  edges, augmenting only the displaced rows.  A warm solve is exact but may
  land on a *different* optimum than the cold solver when the optimum is
  degenerate, so :func:`assignment_is_unique` certifies uniqueness (no
  zero-reduced-cost alternating cycle); the engine accepts a warm result only
  with that certificate and falls back to the cold solver otherwise —
  bit-identity is never assumed, it is proved per pair.
* :func:`bsuitor_assignment_batch` accepts cached per-column preference
  orders (``col_orders``).  A column's order is reused only when its weight
  column is provably bit-equal to the predecessor's (cost column untouched by
  the fault delta *and* equal per-matrix weight offset), in which case
  ``argsort`` over that column would reproduce it exactly — identical by
  construction, no verification needed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.matching.greedy import greedy_assignment_batch

__all__ = [
    "BATCH_SOLVERS",
    "assignment_is_unique",
    "bsuitor_assignment_batch",
    "hungarian_assignment_batch",
    "hungarian_warm_solve",
    "solve_assignment_batch",
]


def _validate_stack(cost: np.ndarray, name: str) -> np.ndarray:
    cost = np.asarray(cost, dtype=np.float64)
    if cost.ndim != 3:
        raise ValueError(f"{name} expects a 3-D stack, got {cost.ndim}-D")
    if cost.shape[1] > cost.shape[2]:
        raise ValueError(
            f"cost must have at least as many columns as rows, got "
            f"{cost.shape[1:]}"
        )
    return cost


# --------------------------------------------------------------------------- #
# Hungarian
# --------------------------------------------------------------------------- #
def hungarian_assignment_batch(
    cost: np.ndarray,
    return_duals: bool = False,
) -> Tuple[np.ndarray, ...]:
    """Solve a stack of rectangular assignment problems exactly.

    Parameters
    ----------
    cost:
        ``(num_problems, n_rows, n_cols)`` stack with ``n_rows <= n_cols``;
        entries must be finite.
    return_duals:
        Also return the final dual potentials ``(u, v)`` of shape
        ``(num_problems, n_rows)`` / ``(num_problems, n_cols)`` (the virtual
        row/column stripped).  They certify optimality (feasible, matched
        edges tight) and seed :func:`hungarian_warm_solve` on the next delta.

    Returns
    -------
    assignments:
        ``(num_problems, n_rows)`` integer array; row ``p`` is exactly what
        ``hungarian_assignment(cost[p])[0]`` returns.
    totals:
        ``(num_problems,)`` minimal total costs, ``hungarian_assignment``'s
        second return value per problem.

    The scalar solver runs, for each of the ``n_rows`` augmentations, an
    inner loop that grows an alternating tree one column at a time: update
    the tentative reduced costs (``minv``) from the newly used column's row,
    pick the cheapest free column, and shift the dual potentials by that
    column's slack.  Here one iteration of that inner loop advances every
    still-searching problem of the stack at once; problems whose cheapest
    free column is unassigned leave the working set immediately (their
    augmenting path is complete) while the rest keep scanning.  All dual
    updates are float64, applied in the scalar solver's order, so every
    potential, every slack and every tie-break is bit-identical.
    """
    cost = _validate_stack(cost, "hungarian_assignment_batch")
    if not np.all(np.isfinite(cost)):
        raise ValueError("cost matrices must contain only finite values")
    num, n_rows, n_cols = cost.shape
    assignments = np.full((num, n_rows), -1, dtype=np.int64)
    totals = np.zeros(num, dtype=np.float64)
    if num == 0 or n_rows == 0:
        return assignments, totals

    INF = np.inf
    # Dual potentials; column 0 is the virtual column of the scalar solver.
    u = np.zeros((num, n_rows + 1))
    v = np.zeros((num, n_cols + 1))
    p = np.zeros((num, n_cols + 1), dtype=np.int64)  # p[b, j] = row at column j
    every = np.arange(num)

    for i in range(1, n_rows + 1):
        p[:, 0] = i
        j0 = np.zeros(num, dtype=np.int64)
        minv = np.full((num, n_cols + 1), INF)
        used = np.zeros((num, n_cols + 1), dtype=bool)
        way = np.zeros((num, n_cols + 1), dtype=np.int64)
        active = every  # problems still growing their alternating tree
        while active.size:
            used[active, j0[active]] = True
            i0 = p[active, j0[active]]
            sub_used = used[active]
            free = ~sub_used
            free[:, 0] = False
            # Reduced costs from the newly used column's row to all columns
            # (only the free ones are allowed to update the tentative costs).
            cur = cost[active, i0 - 1, :] - u[active, i0, None] - v[active, 1:]
            sub_minv = minv[active]
            better = (cur < sub_minv[:, 1:]) & free[:, 1:]
            sub_minv[:, 1:] = np.where(better, cur, sub_minv[:, 1:])
            sub_way = way[active]
            sub_way[:, 1:] = np.where(better, j0[active, None], sub_way[:, 1:])
            # First free column with the smallest tentative cost (argmin's
            # first-minimum rule reproduces the scalar tie-break).
            masked = np.where(free, sub_minv, INF)
            j1 = masked.argmin(axis=1)
            delta = masked[np.arange(active.size), j1]
            # Shift the potentials of the alternating tree by the slack.
            local, used_cols = np.nonzero(sub_used)
            rows = active[local]
            u[rows, p[rows, used_cols]] += delta[local]
            v[rows, used_cols] -= delta[local]
            minv[active] = np.where(sub_used, sub_minv, sub_minv - delta[:, None])
            way[active] = sub_way
            j0[active] = j1
            # A free *unassigned* column completes the augmenting path:
            # retire the problem from the frontier scan.
            active = active[p[active, j1] != 0]
        # Augment along each problem's alternating path.
        aug = every
        while aug.size:
            j1 = way[aug, j0[aug]]
            p[aug, j0[aug]] = p[aug, j1]
            j0[aug] = j1
            aug = aug[j0[aug] != 0]

    cols_grid = p[:, 1:]
    b_idx, col_idx = np.nonzero(cols_grid > 0)
    assignments[b_idx, cols_grid[b_idx, col_idx] - 1] = col_idx
    # Per-problem loop rather than a vectorised axis-1 sum: this is the
    # scalar solver's exact reduction expression, so bit-identical totals do
    # not depend on numpy's pairwise-summation blocking for 2-D reductions
    # (sub-millisecond for any realistic stack).
    row_range = np.arange(n_rows)
    for k in range(num):
        totals[k] = float(cost[k, row_range, assignments[k]].sum())
    if return_duals:
        return assignments, totals, (u[:, 1:].copy(), v[:, 1:].copy())
    return assignments, totals


# --------------------------------------------------------------------------- #
# Warm-started Hungarian (delta re-planning)
# --------------------------------------------------------------------------- #
def hungarian_warm_solve(
    cost: np.ndarray,
    u0: np.ndarray,
    v0: np.ndarray,
    seed_assignment: np.ndarray,
) -> Tuple[np.ndarray, float, Tuple[np.ndarray, np.ndarray], int]:
    """Exact JV solve warm-started from a predecessor's duals and matching.

    ``(u0, v0)`` are the final duals of a solve on a *similar* cost matrix
    (typically the same pair before a small fault delta) and
    ``seed_assignment`` its optimal assignment.  The solve

    1. restores dual feasibility by lowering ``v`` on columns the delta made
       over-covered (``v_j += min_i rc_ij`` where the minimum reduced cost
       went negative — exact arithmetic on integral costs and duals),
    2. keeps every seed edge that is still tight under the repaired duals as
       the initial partial matching, and
    3. runs the scalar JV augmentation (the exact loop of
       :func:`repro.matching.hungarian.hungarian_assignment`) only for the
       rows left unmatched.

    Returns ``(assignment, total, (u, v), augmentations)``.  The assignment
    is provably optimal, but under dual degeneracy it may be a *different*
    optimum than the cold solver's — callers that need the cold solver's
    exact tie-breaking must certify with :func:`assignment_is_unique` and
    fall back to a cold solve when the certificate fails.
    """
    cost = np.asarray(cost, dtype=np.float64)
    n_rows, n_cols = cost.shape
    seed = np.asarray(seed_assignment, dtype=np.int64)
    if seed.shape != (n_rows,):
        raise ValueError(
            f"seed assignment has shape {seed.shape}, expected ({n_rows},)"
        )
    u = np.zeros(n_rows + 1)
    v = np.zeros(n_cols + 1)
    u[1:] = np.asarray(u0, dtype=np.float64)
    v[1:] = np.asarray(v0, dtype=np.float64)

    # Feasibility repair for changed columns.
    col_min = (cost - u[1:, None] - v[None, 1:]).min(axis=0)
    violated = col_min < 0
    if violated.any():
        v[1:][violated] += col_min[violated]

    # Seed the partial matching with the still-tight predecessor edges.  The
    # seed assignment is injective, so no column is claimed twice.
    p = np.zeros(n_cols + 1, dtype=np.int64)
    row_range = np.arange(n_rows)
    still_tight = cost[row_range, seed] - u[1:] - v[seed + 1] == 0.0
    for i in np.flatnonzero(still_tight):
        p[seed[i] + 1] = i + 1

    augmentations = 0
    INF = np.inf
    for i in range(1, n_rows + 1):
        if still_tight[i - 1]:
            continue
        augmentations += 1
        # From here on this is the scalar solver's augmentation loop verbatim
        # (it only requires feasible duals and a tight partial matching).
        p[0] = i
        j0 = 0
        minv = np.full(n_cols + 1, INF)
        used = np.zeros(n_cols + 1, dtype=bool)
        way = np.zeros(n_cols + 1, dtype=np.int64)
        while True:
            used[j0] = True
            i0 = p[j0]
            free = ~used
            free[0] = False
            cols = np.flatnonzero(free)
            cur = cost[i0 - 1, cols - 1] - u[i0] - v[cols]
            better = cur < minv[cols]
            minv[cols] = np.where(better, cur, minv[cols])
            way[cols[better]] = j0
            best_idx = int(np.argmin(minv[cols]))
            delta = minv[cols][best_idx]
            j1 = int(cols[best_idx])
            used_idx = np.flatnonzero(used)
            u[p[used_idx]] += delta
            v[used_idx] -= delta
            minv[~used] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while True:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1
            if j0 == 0:
                break

    assignment = -np.ones(n_rows, dtype=np.int64)
    for j in range(1, n_cols + 1):
        if p[j] > 0:
            assignment[p[j] - 1] = j - 1
    total = float(cost[row_range, assignment].sum())
    return assignment, total, (u[1:].copy(), v[1:].copy()), augmentations


def assignment_is_unique(
    cost: np.ndarray, u: np.ndarray, v: np.ndarray, assignment: np.ndarray
) -> bool:
    """Certify that ``assignment`` is the *only* minimum-cost assignment.

    Sound for square cost matrices with exact (integer-valued) duals: by
    complementary slackness every optimal assignment uses only tight edges
    (reduced cost exactly ``0``), and a second perfect matching inside the
    tight-edge graph exists iff the directed row graph ``i → k`` when
    ``tight[i, assignment[k]]`` (``i ≠ k``) contains a cycle.  An acyclic
    graph therefore proves the optimum unique — and hence equal, bit for
    bit, to whatever any exact solver (in particular the cold scalar/batched
    Hungarian) returns.  ``False`` means "cannot certify", not "not unique":
    non-square inputs, inexact duals and genuine degeneracy all land there.
    """
    cost = np.asarray(cost, dtype=np.float64)
    n_rows, n_cols = cost.shape
    if n_rows != n_cols:
        return False
    assignment = np.asarray(assignment, dtype=np.int64)
    rc = cost - np.asarray(u)[:, None] - np.asarray(v)[None, :]
    if rc.min() < 0.0:
        return False
    if (rc[np.arange(n_rows), assignment] != 0.0).any():
        return False
    adj = rc[:, assignment] == 0.0  # adj[i, k]: tight edge i → assignment[k]
    np.fill_diagonal(adj, False)
    # Kahn peel: repeatedly drop rows with no remaining outgoing tight edge;
    # anything that survives sits on an alternating cycle.
    alive = np.ones(n_rows, dtype=bool)
    while alive.any():
        removable = alive & ~(adj & alive[None, :]).any(axis=1)
        if not removable.any():
            return False
        alive &= ~removable
    return True


# --------------------------------------------------------------------------- #
# b-Suitor (b = 1 assignment front-end)
# --------------------------------------------------------------------------- #
def _right_preference_orders(
    weights: np.ndarray,
    col_orders: Optional[Sequence[Optional[Tuple[np.ndarray, np.ndarray]]]],
) -> np.ndarray:
    """Right-side preference orders, reusing cached columns where provided.

    ``col_orders[k]`` is either ``None`` (compute matrix ``k`` fully) or a
    ``(valid_cols, cached_order)`` pair: boolean mask over columns whose
    weight column is **bit-equal** to the one ``cached_order`` was sorted
    from.  For those columns ``argsort`` is deterministic on identical input,
    so the cached order *is* the order the full sort would produce —
    identical by construction; the remaining columns are sorted fresh
    (``np.argsort`` sorts each 1-D slice independently, so a column-subset
    sort equals the same columns of the full sort).
    """
    if col_orders is None:
        return np.argsort(-weights, axis=1)
    num, n_left, n_right = weights.shape
    order_right = np.empty((num, n_left, n_right), dtype=np.int64)
    for k in range(num):
        cached = col_orders[k] if k < len(col_orders) else None
        if cached is None:
            order_right[k] = np.argsort(-weights[k], axis=0)
            continue
        valid, cached_order = cached
        order_right[k][:, valid] = cached_order[:, valid]
        fresh = ~valid
        if fresh.any():
            order_right[k][:, fresh] = np.argsort(-weights[k][:, fresh], axis=0)
    return order_right


def _suitor_matching_batch(
    weights: np.ndarray,
    col_orders: Optional[Sequence[Optional[Tuple[np.ndarray, np.ndarray]]]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run the ``b = 1`` suitor algorithm on a stack of weight matrices.

    Returns ``(prop, order_right)``: ``prop`` of shape ``(num, L + R)`` where
    ``prop[b, u]`` is the vertex that ``u``'s still-accepted proposal points
    at (``-1`` if none) — the surviving proposals *are* the matching, exactly
    as in the sequential :func:`repro.matching.bsuitor.bsuitor_bmatching` —
    and ``order_right`` the right-side preference orders actually used (the
    reusable warm-start artifact).

    The sequential algorithm works through a LIFO stack of vertices that
    still need a partner; each pop scans the vertex's preference list from
    its saved pointer until the first neighbour whose current suitor is
    lighter accepts it (possibly displacing and re-enqueueing that suitor).
    The batched version replays exactly that schedule per matrix — each
    round pops one vertex *per matrix* and resolves its whole scan with one
    vectorised comparison against the current suitor weights — so ties in
    the weights are resolved identically, and matrices whose stacks empty
    retire from the round loop.
    """
    num, n_left, n_right = weights.shape
    nv = n_left + n_right
    deg = max(n_left, n_right)

    # Preference lists (heaviest first) for both sides, one argsort per axis
    # over the whole stack.  Right vertices get ids n_left .. nv-1, exactly
    # like the sequential implementation; tails beyond a side's true degree
    # are padded with -inf weights, which can never be proposed to.
    order_left = np.argsort(-weights, axis=2)
    order_right = _right_preference_orders(weights, col_orders)
    pref_ids = np.zeros((num, nv, deg), dtype=np.int64)
    pref_w = np.full((num, nv, deg), -np.inf)
    pref_ids[:, :n_left, :n_right] = n_left + order_left
    pref_w[:, :n_left, :n_right] = np.take_along_axis(weights, order_left, axis=2)
    pref_ids[:, n_left:, :n_left] = order_right.transpose(0, 2, 1)
    pref_w[:, n_left:, :n_left] = np.take_along_axis(
        weights, order_right, axis=1
    ).transpose(0, 2, 1)

    pointer = np.zeros((num, nv), dtype=np.int64)
    suitor_w = np.full((num, nv), -np.inf)
    suitor_id = np.full((num, nv), -1, dtype=np.int64)
    prop = np.full((num, nv), -1, dtype=np.int64)
    # Per-matrix LIFO work stack; a vertex is enqueued at most once at a
    # time (only non-suitors wait), so nv slots suffice.
    stack = np.tile(np.arange(nv, dtype=np.int64), (num, 1))
    size = np.full(num, nv, dtype=np.int64)
    positions = np.arange(deg)

    active = np.flatnonzero(size > 0)
    while active.size:
        size[active] -= 1
        uu = stack[active, size[active]]
        cand_ids = pref_ids[active, uu]  # (A, deg)
        cand_w = pref_w[active, uu]
        in_range = positions[None, :] >= pointer[active, uu][:, None]
        # The scan stops at the first candidate at or below the weight
        # threshold (0, matching min_weight=0.0 of the sequential front-end;
        # the -inf padding makes list exhaustion a special case of this).
        below = in_range & (cand_w <= 0.0)
        hopeful = in_range & (cand_w > 0.0)
        accept = hopeful & (cand_w > suitor_w[active[:, None], cand_ids])
        first_below = np.where(below.any(axis=1), below.argmax(axis=1), deg)
        first_accept = np.where(accept.any(axis=1), accept.argmax(axis=1), deg)
        ok = first_accept < first_below
        pointer[active, uu] = np.minimum(first_accept, first_below) + 1

        rows = np.flatnonzero(ok)
        if rows.size:
            acc = active[rows]
            u_acc = uu[rows]
            hit = first_accept[rows]
            v_acc = cand_ids[rows, hit]
            old_id = suitor_id[acc, v_acc]
            suitor_w[acc, v_acc] = cand_w[rows, hit]
            suitor_id[acc, v_acc] = u_acc
            prop[acc, u_acc] = v_acc
            # Displaced suitors lose their proposal and go back on the stack
            # (LIFO: they are popped next, as in the sequential recursion).
            bumped = np.flatnonzero(old_id >= 0)
            if bumped.size:
                d_m = acc[bumped]
                d_id = old_id[bumped]
                prop[d_m, d_id] = -1
                stack[d_m, size[d_m]] = d_id
                size[d_m] += 1
        active = active[size[active] > 0]
    return prop, order_right


def bsuitor_assignment_batch(
    cost: np.ndarray,
    col_orders: Optional[Sequence[Optional[Tuple[np.ndarray, np.ndarray]]]] = None,
    return_aux: bool = False,
) -> Tuple[np.ndarray, ...]:
    """Solve a stack of assignment problems with the b-Suitor algorithm.

    Batched counterpart of
    :func:`repro.matching.bsuitor.bsuitor_assignment`: costs are converted to
    weights (``max_cost - cost + 1`` per matrix), the ``b = 1`` suitor
    matching runs in lockstep over the stack, and rows the half-approximation
    left unmatched are filled greedily with the cheapest remaining columns —
    every step ordered exactly like the scalar front-end, so row ``p`` of the
    result equals ``bsuitor_assignment(cost[p])`` bit for bit.

    Parameters
    ----------
    col_orders:
        Optional per-matrix warm-start: entry ``k`` is ``None`` or a
        ``(valid_cols, cached_order)`` pair whose valid columns' weight
        columns are bit-equal to the ones the cached right-side preference
        order was sorted from (see :func:`_right_preference_orders`).  The
        caller owns that equality guarantee — typically "fault-map row
        untouched by the delta *and* same per-matrix ``cost.max()`` offset".
    return_aux:
        Also return ``{"col_orders": (num, n_rows, n_cols) right-side
        preference orders, "wmax": (num,) per-matrix cost maxima}`` — the
        artifacts a later delta solve can pass back through ``col_orders``.
    """
    cost = _validate_stack(cost, "bsuitor_assignment_batch")
    num, n_rows, n_cols = cost.shape
    assignments = np.full((num, n_rows), -1, dtype=np.int64)
    totals = np.zeros(num, dtype=np.float64)
    if num == 0 or n_rows == 0:
        if return_aux:
            aux = {
                "col_orders": np.zeros((num, n_rows, n_cols), dtype=np.int64),
                "wmax": cost.max(axis=(1, 2)) if num else np.zeros(0),
            }
            return assignments, totals, aux
        return assignments, totals

    wmax = cost.max(axis=(1, 2), keepdims=True)
    weights = wmax - cost + 1.0
    prop, order_right = _suitor_matching_batch(weights, col_orders)

    # Surviving proposals from either side name the same (row, column) pair.
    # Encoding every pair as ``batch * span + row * n_cols + col`` makes one
    # global ``np.unique`` both dedupe and order them per matrix exactly like
    # the sequential ``sorted(set(matches))`` (the key is lexicographic in
    # (batch, row, col)).
    col_used = np.zeros((num, n_cols), dtype=bool)
    span = n_rows * n_cols
    left_b, left_rows = np.nonzero(prop[:, :n_rows] >= 0)
    right_b, right_cols = np.nonzero(prop[:, n_rows:] >= 0)
    keys = np.unique(
        np.concatenate(
            [
                left_b * span
                + left_rows * n_cols
                + (prop[left_b, left_rows] - n_rows),
                right_b * span
                + prop[right_b, n_rows + right_cols] * n_cols
                + right_cols,
            ]
        )
    )
    key_b = keys // span
    key_rows = keys % span // n_cols
    key_cols = keys % n_cols
    counts = np.bincount(key_b, minlength=num)
    rank = np.arange(len(keys)) - np.repeat(
        np.concatenate([[0], np.cumsum(counts)[:-1]]), counts
    )

    # First-come-first-served over the sorted pairs, one pair rank per round
    # across the whole stack (both endpoints must still be unclaimed).
    for k in range(int(counts.max()) if counts.size else 0):
        sel = np.flatnonzero(rank == k)
        have = key_b[sel]
        rows = key_rows[sel]
        cols = key_cols[sel]
        take = np.flatnonzero((assignments[have, rows] < 0) & ~col_used[have, cols])
        assignments[have[take], rows[take]] = cols[take]
        col_used[have[take], cols[take]] = True

    # Greedy fill of unmatched rows (ascending row order; first cheapest
    # remaining column — argmin's first-minimum rule matches the scalar
    # ``min(remaining)``).
    while True:
        pending = assignments < 0
        need = np.flatnonzero(pending.any(axis=1))
        if not need.size:
            break
        row = pending[need].argmax(axis=1)
        choice = np.where(
            col_used[need], np.inf, cost[need, row, :]
        ).argmin(axis=1)
        assignments[need, row] = choice
        col_used[need, choice] = True

    # Scalar reduction expression per problem — see the matching note in
    # :func:`hungarian_assignment_batch`.
    row_range = np.arange(n_rows)
    for k in range(num):
        totals[k] = float(cost[k, row_range, assignments[k]].sum())
    if return_aux:
        return assignments, totals, {
            "col_orders": order_right,
            "wmax": wmax.reshape(num).copy(),
        }
    return assignments, totals


# --------------------------------------------------------------------------- #
# Dispatch
# --------------------------------------------------------------------------- #
#: Registry of batched assignment solvers, keyed like
#: :data:`repro.matching.bipartite.SOLVERS`.
BATCH_SOLVERS: Dict[str, Callable[[np.ndarray], Tuple[np.ndarray, np.ndarray]]] = {
    "greedy": greedy_assignment_batch,
    "hungarian": hungarian_assignment_batch,
    "bsuitor": bsuitor_assignment_batch,
}


def solve_assignment_batch(
    cost: np.ndarray, method: str = "hungarian"
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve a ``(B, n_rows, n_cols)`` stack with the named method.

    Batch counterpart of :func:`repro.matching.bipartite.solve_assignment`:
    returns ``(assignments, totals)`` where row ``p`` is bit-identical to
    ``solve_assignment(cost[p], method)``.
    """
    try:
        solver = BATCH_SOLVERS[method]
    except KeyError as exc:
        raise ValueError(
            f"unknown assignment method {method!r}; available: "
            f"{sorted(BATCH_SOLVERS)}"
        ) from exc
    return solver(np.asarray(cost, dtype=np.float64))
