"""Versioned effective-state cache for the simulated accelerator.

The training loop re-derives two expensive views of hardware state for every
batch of every epoch:

* the **faulty adjacency read-back** — every adjacency block of the batch is
  programmed onto its assigned crossbar and read back through the stuck-at
  masks (:meth:`AdjacencyCrossbarMapper.apply_mapping`);
* the **effective weights** — every 2-D parameter runs through the
  quantise → bit-slice → fault → reassemble → dequantise pipeline
  (:meth:`WeightCrossbarMapper.effective_weights`).

Both are pure functions of slowly-changing state.  The adjacency read-back
only changes when a fault map changes (post-deployment injection, BIST-driven
re-mapping) or the block → crossbar plan is refreshed; the effective weights
only change when the digital optimiser steps or the weight-crossbar fault
masks are refreshed.  During ``evaluate()`` *neither* changes, yet the seed
loop recomputed both per batch.

:class:`HardwareStateCache` turns these derivations into versioned,
invalidate-on-change lookups:

* adjacency results are keyed on ``(plan version, Σ crossbar fault_epoch)``
  — the fault component advances automatically whenever any crossbar's fault
  map is replaced (:meth:`Crossbar.set_fault_map` bumps ``fault_epoch``), the
  plan component is bumped explicitly by the trainer after
  :meth:`Strategy.refresh_adjacency`;
* effective weights are keyed on ``(optimizer.param_version,
  weight_mapper.fault_version)`` — the former advances on every
  ``optimizer.step()``, the latter on every
  :meth:`WeightCrossbarMapper.refresh_fault_masks`.

Cache hits still advance the *simulated* write accounting (the hardware
re-programs its blocks every batch regardless of what the simulator
recomputes), so the endurance counters and the write-event counters feeding
the Fig. 7 timing model are identical to the uncached path.  Hit/miss
counters surface through :meth:`Strategy.mapping_engine_stats` into the
trainer counters and the timing components, next to the mapping cost engine's
counters from PR 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.graph.sparse import CSRMatrix


@dataclass
class HwStateStats:
    """Hit/miss counters of the two effective-state caches."""

    adjacency_hits: int = 0
    adjacency_misses: int = 0
    adjacency_invalidations: int = 0
    weight_hits: int = 0
    weight_misses: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hw_adjacency_cache_hits": float(self.adjacency_hits),
            "hw_adjacency_cache_misses": float(self.adjacency_misses),
            "hw_adjacency_cache_invalidations": float(self.adjacency_invalidations),
            "hw_weight_cache_hits": float(self.weight_hits),
            "hw_weight_cache_misses": float(self.weight_misses),
        }

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)


@dataclass
class _AdjacencyEntry:
    """One cached per-batch read-back plus its simulated-write bookkeeping.

    ``writes_per_crossbar`` holds resolved crossbar objects (not ids) so the
    per-hit replay loop does no dictionary lookups.
    """

    key: Tuple
    result: CSRMatrix
    writes_per_crossbar: list
    num_blocks: int


class HardwareStateCache:
    """Epoch-cached hardware read-back for one training run.

    Parameters
    ----------
    adjacency_mapper:
        The run's :class:`~repro.pipeline.mapping_engine.AdjacencyCrossbarMapper`.
    weight_mapper:
        The run's :class:`~repro.pipeline.mapping_engine.WeightCrossbarMapper`
        (optional — only needed for simulated-write replay on weight hits).
    enabled:
        When False every lookup delegates straight to the underlying mapper —
        the uncached reference path used by the equivalence tests and the
        epoch-throughput benchmark baseline.
    """

    def __init__(
        self,
        adjacency_mapper,
        weight_mapper=None,
        enabled: bool = True,
    ) -> None:
        self.adjacency_mapper = adjacency_mapper
        self.weight_mapper = weight_mapper
        self.enabled = bool(enabled)
        self.stats = HwStateStats()
        self._plan_version = 0
        self._adjacency_cache: Dict[int, _AdjacencyEntry] = {}
        self._weight_cache: Dict[str, Tuple[Tuple, np.ndarray]] = {}

    # ------------------------------------------------------------------ #
    # Versioning
    # ------------------------------------------------------------------ #
    def bump_plan_version(self) -> None:
        """Invalidate cached read-backs after a mapping-plan refresh.

        Fault-map changes are tracked automatically through the crossbars'
        ``fault_epoch`` counters; this explicit bump covers the second
        invalidation source — the strategy rewriting its
        :class:`~repro.core.mapping.BatchMapping` plans (row permutations,
        block placement) at the epoch boundary.
        """
        self._plan_version += 1
        self.stats.adjacency_invalidations += 1
        self._adjacency_cache.clear()

    def _adjacency_key(self) -> Tuple:
        # Sum of per-crossbar fault epochs: strictly increases on any
        # set_fault_map, so a stale entry can never collide with a new state.
        fault_state = sum(x.fault_epoch for x in self.adjacency_mapper.crossbars)
        return (self._plan_version, fault_state)

    def state_key(self) -> Tuple:
        """Opaque token identifying the current hardware state.

        Changes whenever a cached read-back could go stale (mapping-plan
        refresh or fault-map change) and never otherwise, so callers can
        memoise derived artifacts — e.g. the trainer's fused eval buckets —
        against it.  Valid even with the cache ``enabled=False`` (the plan
        version is bumped by the trainer regardless).
        """
        return self._adjacency_key()

    # ------------------------------------------------------------------ #
    # Adjacency read-back
    # ------------------------------------------------------------------ #
    def batch_adjacency(
        self,
        batch_index: int,
        adjacency: CSRMatrix,
        mapping,
        blocks=None,
        grid=None,
    ) -> CSRMatrix:
        """Faulty read-back of one batch's adjacency, cached per state version.

        On a hit the cached :class:`CSRMatrix` (immutable) is returned and the
        simulated write accounting — ``block_write_events`` plus per-crossbar
        endurance counters — is replayed in bulk, keeping every counter
        identical to the uncached per-batch loop.

        One deliberate relaxation: a hit does *not* rewrite the crossbars'
        stored contents, so between state changes ``Crossbar.read_ideal()``
        on an adjacency crossbar reflects the last recomputed batch rather
        than the last batch trained on (re-storing identical bits per hit is
        exactly the work the cache exists to avoid).  All training-visible
        outputs — read-backs, losses, accuracies, write/endurance counters —
        are bit-identical to the uncached path (``tests/test_core_hw_state.py``).
        """
        mapper = self.adjacency_mapper
        if not self.enabled:
            return mapper.apply_mapping(adjacency, mapping, blocks=blocks, grid=grid)
        key = self._adjacency_key()
        entry = self._adjacency_cache.get(batch_index)
        if entry is not None and entry.key == key:
            self.stats.adjacency_hits += 1
            mapper.block_write_events += entry.num_blocks
            for crossbar, count in entry.writes_per_crossbar:
                crossbar.record_simulated_writes(count)
            return entry.result
        self.stats.adjacency_misses += 1
        result = mapper.apply_mapping(adjacency, mapping, blocks=blocks, grid=grid)
        self._adjacency_cache[batch_index] = _AdjacencyEntry(
            key=key,
            result=result,
            writes_per_crossbar=mapper.writes_per_crossbar(mapping),
            num_blocks=len(mapping.blocks),
        )
        return result

    def replay_adjacency_writes(self, batch_index: int) -> bool:
        """Replay one batch's simulated write accounting without a fetch.

        The fused train path memoises whole block-diagonal *buckets* against
        :meth:`state_key` and therefore skips the per-member
        :meth:`batch_adjacency` calls entirely between state changes.  The
        hardware still re-programs every member's blocks each epoch, so the
        trainer calls this per skipped member to advance
        ``block_write_events`` and the per-crossbar endurance counters (and
        the hit statistic) exactly as the per-member hit path would have.

        Returns ``False`` when no current-state entry exists for
        ``batch_index`` (cache disabled, cleared, or stale) — the caller
        must then fall back to a real :meth:`batch_adjacency` fetch so the
        uncached reference accounting runs instead.
        """
        if not self.enabled:
            return False
        entry = self._adjacency_cache.get(batch_index)
        if entry is None or entry.key != self._adjacency_key():
            return False
        self.stats.adjacency_hits += 1
        self.adjacency_mapper.block_write_events += entry.num_blocks
        for crossbar, count in entry.writes_per_crossbar:
            crossbar.record_simulated_writes(count)
        return True

    # ------------------------------------------------------------------ #
    # Effective weights
    # ------------------------------------------------------------------ #
    def effective_weights(
        self,
        name: str,
        key: Tuple,
        compute: Callable[[], np.ndarray],
        count_hit_write: bool = False,
    ) -> np.ndarray:
        """Effective-weight view of parameter ``name`` under version ``key``.

        ``compute()`` runs the full transform (storage permutation, faulty
        read-back, strategy post-processing) on a miss.  ``count_hit_write``
        replays the simulated re-programming counter on hits — True during
        training (where hardware re-programs per batch), False during
        evaluation (re-read only).
        """
        if not self.enabled:
            return compute()
        cached = self._weight_cache.get(name)
        if cached is not None and cached[0] == key:
            self.stats.weight_hits += 1
            if count_hit_write and self.weight_mapper is not None:
                self.weight_mapper.record_write(name)
            return cached[1]
        self.stats.weight_misses += 1
        value = compute()
        self._weight_cache[name] = (key, value)
        return value

    def invalidate_weights(self) -> None:
        """Drop cached effective weights (e.g. after out-of-band edits)."""
        self._weight_cache.clear()

    # ------------------------------------------------------------------ #
    def clear(self) -> None:
        """Drop all cached state (counters are kept)."""
        self._adjacency_cache.clear()
        self._weight_cache.clear()
