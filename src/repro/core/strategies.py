"""Fault-handling strategies: FARe and the baselines it is compared against.

A :class:`Strategy` is the pluggable policy the training pipeline consults at
four points:

1. **Pre-processing** — how adjacency blocks of every mini-batch are placed
   onto crossbars (:meth:`Strategy.plan_adjacency`).
2. **Weight storage** — whether weight-matrix rows are remapped before being
   programmed (:meth:`Strategy.weight_storage_permutation`, used by the
   neuron-reordering baseline).
3. **Read-back** — whether the effective weights read from the crossbars are
   clamped by the clipping comparators
   (:meth:`Strategy.transform_effective_weights`) and whether the master
   weights are clamped after the digital update
   (:meth:`Strategy.after_optimizer_step`).
4. **Epoch end** — how the mapping reacts to post-deployment faults reported
   by the BIST re-scan (:meth:`Strategy.refresh_adjacency`).

Implemented strategies (paper Section V):

* ``fault_free``    — ideal hardware reference (no faults applied at all).
* ``fault_unaware`` — naive mapping, no mitigation.
* ``nr``            — neuron reordering: coarse-grained remapping of weight
  rows and adjacency row-groups, recomputed every batch (high overhead).
* ``clipping``      — weight clipping only (combination phase protected,
  aggregation phase exposed).
* ``fare``          — the proposed framework: Algorithm 1 for the adjacency
  plus weight clipping, with post-deployment row-permutation refresh.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.clipping import WeightClipper
from repro.core.mapping import (
    BatchMapping,
    BlockMapping,
    FaultAwareMapper,
    MapperPlanState,
    permutation_mismatch_cost,
    sequential_mapping,
)
from repro.hardware.faults import FaultMap
from repro.matching.bipartite import solve_assignment
from repro.tensor.module import Module


class Strategy:
    """Base class: behaves exactly like the fault-unaware naive mapping."""

    #: Strategy identifier used in experiment tables.
    name = "base"
    #: Whether faults are applied at all (False only for the ideal reference).
    requires_hardware = True
    #: Whether the clipping pipeline stage is present (timing model).
    uses_clipping = False
    #: Whether a reordering stall occurs after every batch (timing model).
    reorders_every_batch = False
    #: Whether the one-time Algorithm 1 preprocessing runs (timing model).
    uses_fault_aware_mapping = False
    #: The trainer's :class:`~repro.core.hw_state.HardwareStateCache`, once
    #: attached; its hit/miss counters surface via :meth:`mapping_engine_stats`.
    _hw_state_cache = None
    #: The trainer's :class:`~repro.tensor.kernels.KernelStatsView`, once
    #: attached; the segment-reduce kernel call/hit counters of the run
    #: surface via :meth:`mapping_engine_stats` alongside the cache stats.
    _kernel_stats = None

    # ------------------------------------------------------------------ #
    # Aggregation phase
    # ------------------------------------------------------------------ #
    def plan_adjacency(
        self,
        blocks_per_batch: Sequence[Sequence[np.ndarray]],
        fault_maps: Sequence[FaultMap],
        crossbar_ids: Sequence[int],
        crossbar_rows: int,
    ) -> List[BatchMapping]:
        """Return one :class:`BatchMapping` per mini-batch (naive by default)."""
        plans = []
        for blocks in blocks_per_batch:
            plans.append(
                sequential_mapping(
                    len(blocks),
                    crossbar_rows,
                    len(crossbar_ids),
                    blocks=blocks,
                    fault_maps=fault_maps,
                )
            )
            for mapping in plans[-1].blocks:
                mapping.crossbar_index = crossbar_ids[
                    mapping.crossbar_index % len(crossbar_ids)
                ]
        return plans

    def refresh_adjacency(
        self,
        plans: List[BatchMapping],
        blocks_per_batch: Sequence[Sequence[np.ndarray]],
        fault_maps_by_id: Dict[int, FaultMap],
    ) -> List[BatchMapping]:
        """React to a post-deployment BIST re-scan (no-op by default)."""
        return plans

    def replan_adjacency(
        self,
        blocks_per_batch: Sequence[Sequence[np.ndarray]],
        fault_maps: Sequence[FaultMap],
        crossbar_ids: Sequence[int],
        crossbar_rows: int,
    ) -> List[BatchMapping]:
        """Full re-plan against new fault maps, warm-started where possible.

        Unlike :meth:`refresh_adjacency` (which keeps the block → crossbar
        assignment Π and only refreshes row permutations), this recomputes
        the complete plan — bit-identical to calling :meth:`plan_adjacency`
        from scratch on the new maps.  Strategies with delta-planning support
        (FARe) reuse the previous plan's solver state so the cost scales with
        the fault delta; the base implementation simply re-plans cold.
        """
        return self.plan_adjacency(
            blocks_per_batch, fault_maps, crossbar_ids, crossbar_rows
        )

    def plan_signature(self) -> Optional[Tuple]:
        """Content key of :meth:`plan_adjacency`'s output, or ``None``.

        Two strategy instances whose signatures compare equal produce
        identical plans from identical ``(blocks, fault maps, crossbar ids,
        rows)`` inputs — what the sweep engine's shared-plan artifact keys on
        (the plan is independent of the model and of knobs like clipping
        thresholds, so e.g. fault-unaware and clipping-only share one
        sequential plan).  ``None`` opts out of sharing.

        Safe by construction: the ``("sequential",)`` key is only reported
        when the class genuinely inherits this base sequential planner.  A
        subclass that overrides :meth:`plan_adjacency` gets ``None`` — no
        sharing — until it declares its own signature covering every knob
        its planning depends on.
        """
        if type(self).plan_adjacency is not Strategy.plan_adjacency:
            return None
        return ("sequential",)

    # ------------------------------------------------------------------ #
    # Combination phase
    # ------------------------------------------------------------------ #
    def weight_storage_permutation(
        self,
        name: str,
        values: np.ndarray,
        mismatch_cost_fn: Callable[[], np.ndarray],
    ) -> Optional[np.ndarray]:
        """Optional permutation of weight-matrix rows before programming.

        ``mismatch_cost_fn()`` lazily computes the (logical row × physical
        row) cell-mismatch cost matrix (see
        :meth:`~repro.pipeline.mapping_engine.WeightCrossbarMapper.row_mismatch_cost`).
        Return ``None`` to store rows in their natural order.
        """
        return None

    def transform_effective_weights(self, name: str, effective: np.ndarray) -> np.ndarray:
        """Post-process the faulty weights read back from the crossbars."""
        return effective

    def after_optimizer_step(self, model: Module) -> None:
        """Hook run after every digital weight update."""

    def on_epoch_end(self) -> None:
        """Hook run at the end of every training epoch."""

    def attach_hw_state_cache(self, cache) -> None:
        """Attach the trainer's hardware-state cache for stats surfacing.

        The :class:`~repro.pipeline.trainer.FaultyTrainer` calls this during
        pre-processing so the cache's hit/miss counters flow through the same
        channel as the mapping cost engine's (:meth:`mapping_engine_stats` →
        trainer counters → timing components).
        """
        self._hw_state_cache = cache

    def attach_kernel_stats(self, view) -> None:
        """Attach a per-run :class:`~repro.tensor.kernels.KernelStatsView`.

        The trainer attaches one snapshot view per run so the segment-reduce
        kernel counters (``kernel_*``: reduceat scatter/gather calls,
        transpose-memo hits) flow through the same channel as the mapping
        cost engine's and hardware-state cache's counters.
        """
        self._kernel_stats = view

    def mapping_engine_stats(self) -> Optional[Dict[str, float]]:
        """Cache/work counters of the mapping machinery, if any is in use.

        The base implementation reports the attached hardware-state cache's
        hit/miss counters (``hw_*``) and the attached segment-reduce kernel
        counters (``kernel_*``); strategies that run Algorithm 1 (FARe)
        merge in their cost engine's counters (``mapping_*``).  Returns
        ``None`` when nothing is attached, e.g. for a freshly built strategy
        that has not been handed to a trainer.  The timing model and the
        trainer surface whatever is reported (see
        :mod:`repro.pipeline.timing`).
        """
        stats: Dict[str, float] = {}
        if self._hw_state_cache is not None:
            stats.update(self._hw_state_cache.stats.as_dict())
        if self._kernel_stats is not None:
            stats.update(self._kernel_stats.as_dict())
        return stats or None

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class FaultFreeStrategy(Strategy):
    """Ideal hardware: no faults are applied anywhere (upper-bound reference)."""

    name = "fault_free"
    requires_hardware = False

    def plan_signature(self) -> Optional[Tuple]:
        """No hardware, no adjacency plan."""
        return None


class FaultUnawareStrategy(Strategy):
    """Naive training on faulty hardware without any mitigation."""

    name = "fault_unaware"


class WeightClippingStrategy(Strategy):
    """Weight clipping only (combination phase protected, aggregation exposed)."""

    name = "clipping"
    uses_clipping = True

    def __init__(self, threshold: float = 1.0) -> None:
        self.clipper = WeightClipper(threshold)

    def transform_effective_weights(self, name: str, effective: np.ndarray) -> np.ndarray:
        return self.clipper.clip_array(effective)

    def after_optimizer_step(self, model: Module) -> None:
        self.clipper.clip_model(model)


class NeuronReorderingStrategy(Strategy):
    """Neuron reordering (NR) baseline.

    Weight-matrix rows and adjacency row-groups are remapped so that stored
    values overlap with the stuck-at values, but — mirroring the paper's
    observation — the remapping granularity is coarse (an entire neuron's
    weights spanning all its cells move as one unit) and the SA1/SA0
    asymmetry is ignored.

    Because the weights change after every batch, the remapped layout has to
    be re-validated and re-programmed after every update — the pipeline stall
    the paper charges NR with (``reorders_every_batch``) and the reason for
    its 2.5-4x slow-down in Fig. 7.  In the accuracy simulation the
    permutation itself is computed once during pre-processing (from the
    initial weights and the BIST fault map) and kept for the rest of
    training: re-aligning faults with *different* weights as training
    progresses amounts to injecting fresh noise at every realignment and
    collapses training outright, which is clearly not the behaviour reported
    for NR [7].  The kept permutation reproduces NR's reported accuracy
    shape — better than fault-unaware, clearly worse than FARe, and markedly
    worse under the 1:1 SA0:SA1 ratio because the matching ignores SA1
    criticality.
    """

    name = "nr"
    reorders_every_batch = True

    def __init__(self, group_size: int = 8, method: str = "greedy") -> None:
        if group_size <= 0:
            raise ValueError(f"group_size must be positive, got {group_size}")
        self.group_size = int(group_size)
        self.method = method
        self._weight_permutations: Dict[str, np.ndarray] = {}

    def plan_signature(self) -> Optional[Tuple]:
        # Same guard as the base class: a subclass overriding the planning
        # must declare its own signature before its plans may be shared.
        if (
            type(self).plan_adjacency is not NeuronReorderingStrategy.plan_adjacency
            or type(self)._group_permutation
            is not NeuronReorderingStrategy._group_permutation
        ):
            return None
        return ("nr", self.group_size, self.method)

    # -- aggregation ---------------------------------------------------- #
    def plan_adjacency(
        self,
        blocks_per_batch: Sequence[Sequence[np.ndarray]],
        fault_maps: Sequence[FaultMap],
        crossbar_ids: Sequence[int],
        crossbar_rows: int,
    ) -> List[BatchMapping]:
        plans: List[BatchMapping] = []
        for blocks in blocks_per_batch:
            plan = sequential_mapping(len(blocks), crossbar_rows, len(crossbar_ids))
            for mapping in plan.blocks:
                local = mapping.crossbar_index % len(crossbar_ids)
                mapping.crossbar_index = crossbar_ids[local]
                mapping.row_permutation = self._group_permutation(
                    blocks[mapping.block_index], fault_maps[local]
                )
                mapping.cost, mapping.sa1_mismatch = permutation_mismatch_cost(
                    blocks[mapping.block_index],
                    fault_maps[local],
                    mapping.row_permutation,
                )
            plans.append(plan)
        return plans

    def _group_permutation(self, block: np.ndarray, fault_map: FaultMap) -> np.ndarray:
        """Permute groups of ``group_size`` rows to reduce (unweighted) mismatch."""
        block = np.asarray(block, dtype=np.float64)
        n = block.shape[0]
        group = min(self.group_size, n)
        num_groups = n // group
        if num_groups <= 1:
            return np.arange(n, dtype=np.int64)
        usable = num_groups * group
        ones = (block[:usable] > 0).reshape(num_groups, group, -1)
        sa0 = fault_map.sa0[:usable].reshape(num_groups, group, -1)
        sa1 = fault_map.sa1[:usable].reshape(num_groups, group, -1)
        # cost[g, h] = mismatches when block group g is stored in crossbar
        # group h, keeping the within-group row order (coarse unit).
        ones_flat = ones.reshape(num_groups, -1)
        zeros_flat = 1.0 - ones_flat
        sa0_flat = sa0.reshape(num_groups, -1).astype(np.float64)
        sa1_flat = sa1.reshape(num_groups, -1).astype(np.float64)
        cost = ones_flat @ sa0_flat.T + zeros_flat @ sa1_flat.T
        group_assignment, _ = solve_assignment(cost, method=self.method)
        permutation = np.arange(n, dtype=np.int64)
        for g in range(num_groups):
            target = int(group_assignment[g])
            permutation[g * group : (g + 1) * group] = np.arange(
                target * group, (target + 1) * group, dtype=np.int64
            )
        return permutation

    # -- combination ---------------------------------------------------- #
    def weight_storage_permutation(
        self,
        name: str,
        values: np.ndarray,
        mismatch_cost_fn: Callable[[], np.ndarray],
    ) -> Optional[np.ndarray]:
        """Remap weight rows so their cells overlap with the stuck values.

        The reordering unit is an entire weight-matrix row (all cells of all
        its weights move together — the coarse granularity the paper points
        out limits NR's effectiveness) and the SA0/SA1 asymmetry is ignored.
        The permutation is computed on the first call per parameter and then
        kept (see the class docstring for why).
        """
        cached = self._weight_permutations.get(name)
        if cached is not None:
            return cached
        cost = np.asarray(mismatch_cost_fn(), dtype=np.float64)
        if cost.shape[0] != np.asarray(values).shape[0]:
            raise ValueError("mismatch cost rows must match the weight's row count")
        if not cost.any():
            return None
        assignment, _ = solve_assignment(cost, method=self.method)
        permutation = assignment.astype(np.int64)
        self._weight_permutations[name] = permutation
        return permutation

    def reset_weight_permutations(self) -> None:
        """Drop the cached permutations (used when re-planning from scratch)."""
        self._weight_permutations.clear()

    def refresh_adjacency(
        self,
        plans: List[BatchMapping],
        blocks_per_batch: Sequence[Sequence[np.ndarray]],
        fault_maps_by_id: Dict[int, FaultMap],
    ) -> List[BatchMapping]:
        """Recompute the coarse row-group permutations against new fault maps."""
        refreshed: List[BatchMapping] = []
        for plan, blocks in zip(plans, blocks_per_batch):
            updated = BatchMapping(blocks=[])
            for mapping in plan.blocks:
                fmap = fault_maps_by_id[mapping.crossbar_index]
                permutation = self._group_permutation(
                    blocks[mapping.block_index], fmap
                )
                cost, sa1 = permutation_mismatch_cost(
                    blocks[mapping.block_index], fmap, permutation
                )
                updated.blocks.append(
                    BlockMapping(
                        block_index=mapping.block_index,
                        crossbar_index=mapping.crossbar_index,
                        row_permutation=permutation,
                        cost=cost,
                        sa1_mismatch=sa1,
                    )
                )
            refreshed.append(updated)
        return refreshed


class FaReStrategy(Strategy):
    """The proposed FARe framework (Algorithm 1 + weight clipping)."""

    name = "fare"
    uses_clipping = True
    uses_fault_aware_mapping = True

    def __init__(
        self,
        clipping_threshold: float = 1.0,
        sa1_weight: float = 4.0,
        row_method: str = "greedy",
        assignment_method: str = "hungarian",
        prune_crossbars: bool = True,
        relax_sparsest_block: bool = True,
        use_batched_exact: bool = True,
        use_delta_planning: bool = True,
    ) -> None:
        self.clipper = WeightClipper(clipping_threshold)
        self.mapper = FaultAwareMapper(
            sa1_weight=sa1_weight,
            row_method=row_method,
            assignment_method=assignment_method,
            prune_crossbars=prune_crossbars,
            relax_sparsest_block=relax_sparsest_block,
            use_batched_exact=use_batched_exact,
        )
        #: Capture per-batch solver state during planning so a later
        #: :meth:`replan_adjacency` only re-solves the fault delta.  Plans are
        #: bit-identical either way; ``False`` keeps the seed cold-replan
        #: path reachable for the equivalence tests and benchmarks.
        self.use_delta_planning = bool(use_delta_planning)
        self._plan_states: Optional[List[Optional[MapperPlanState]]] = None

    # -- aggregation ---------------------------------------------------- #
    def plan_signature(self) -> Optional[Tuple]:
        # Same guard as the base class: a subclass overriding the planning
        # must declare its own signature before its plans may be shared.
        if type(self).plan_adjacency is not FaReStrategy.plan_adjacency:
            return None
        mapper = self.mapper
        return (
            "fare",
            mapper.sa1_weight,
            mapper.row_method,
            mapper.assignment_method,
            mapper.prune_crossbars,
            mapper.relax_sparsest_block,
        )

    def plan_adjacency(
        self,
        blocks_per_batch: Sequence[Sequence[np.ndarray]],
        fault_maps: Sequence[FaultMap],
        crossbar_ids: Sequence[int],
        crossbar_rows: int,
    ) -> List[BatchMapping]:
        if not self.use_delta_planning:
            return [
                self.mapper.map_blocks(blocks, fault_maps, crossbar_ids=crossbar_ids)
                for blocks in blocks_per_batch
            ]
        plans: List[BatchMapping] = []
        states: List[Optional[MapperPlanState]] = []
        for blocks in blocks_per_batch:
            mapping, state = self.mapper.plan_blocks(
                blocks, fault_maps, crossbar_ids=crossbar_ids
            )
            plans.append(mapping)
            states.append(state)
        self._plan_states = states
        return plans

    def replan_adjacency(
        self,
        blocks_per_batch: Sequence[Sequence[np.ndarray]],
        fault_maps: Sequence[FaultMap],
        crossbar_ids: Sequence[int],
        crossbar_rows: int,
    ) -> List[BatchMapping]:
        """Delta re-plan: warm-start each batch from its previous plan state."""
        states = self._plan_states
        if not self.use_delta_planning or states is None or len(states) != len(
            blocks_per_batch
        ):
            return self.plan_adjacency(
                blocks_per_batch, fault_maps, crossbar_ids, crossbar_rows
            )
        plans: List[BatchMapping] = []
        new_states: List[Optional[MapperPlanState]] = []
        for blocks, state in zip(blocks_per_batch, states):
            mapping, new_state = self.mapper.replan_blocks(
                blocks, fault_maps, crossbar_ids=crossbar_ids, prev_state=state
            )
            plans.append(mapping)
            new_states.append(new_state)
        self._plan_states = new_states
        return plans

    def refresh_adjacency(
        self,
        plans: List[BatchMapping],
        blocks_per_batch: Sequence[Sequence[np.ndarray]],
        fault_maps_by_id: Dict[int, FaultMap],
    ) -> List[BatchMapping]:
        """Post-deployment refresh: keep Π, recompute row permutations."""
        return [
            self.mapper.update_row_permutations(plan, blocks, fault_maps_by_id)
            for plan, blocks in zip(plans, blocks_per_batch)
        ]

    # -- combination ---------------------------------------------------- #
    def transform_effective_weights(self, name: str, effective: np.ndarray) -> np.ndarray:
        return self.clipper.clip_array(effective)

    def after_optimizer_step(self, model: Module) -> None:
        self.clipper.clip_model(model)

    # -- introspection --------------------------------------------------- #
    def mapping_engine_stats(self) -> Optional[Dict[str, float]]:
        stats = dict(super().mapping_engine_stats() or {})
        engine = self.mapper.cost_engine
        if engine is not None:
            stats.update(engine.stats.as_dict())
        return stats or None


#: Registry of strategy builders keyed by the names used in the experiments.
STRATEGY_REGISTRY = {
    "fault_free": FaultFreeStrategy,
    "fault_unaware": FaultUnawareStrategy,
    "nr": NeuronReorderingStrategy,
    "clipping": WeightClippingStrategy,
    "fare": FaReStrategy,
}


def build_strategy(name: str, **kwargs) -> Strategy:
    """Instantiate a strategy by name, forwarding keyword arguments."""
    key = name.lower()
    if key not in STRATEGY_REGISTRY:
        raise KeyError(
            f"unknown strategy {name!r}; available: {sorted(STRATEGY_REGISTRY)}"
        )
    return STRATEGY_REGISTRY[key](**kwargs)
