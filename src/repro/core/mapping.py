"""Fault-aware mapping of the adjacency matrix onto crossbars (Algorithm 1).

The subgraph adjacency matrix of a mini-batch is decomposed into
crossbar-sized binary blocks.  For every (block, crossbar) pair the minimum
number of *mismatches* achievable by permuting the block's rows is computed —
a mismatch being a stored ``1`` landing on an SA0 cell (edge deletion) or a
stored ``0`` landing on an SA1 cell (spurious edge).  SA1 mismatches are
weighted more heavily because Section V-B shows SA1 faults hurt accuracy far
more than SA0 faults.  The per-pair problem is a balanced assignment between
block rows and crossbar rows, solved with b-Suitor (as in the paper), exact
Hungarian, or a fast greedy matcher.  A second, outer assignment then places
blocks onto crossbars so the total weighted mismatch count is minimal.

Two refinements from the paper are implemented:

* **Crossbar pruning** (Algorithm 1, line 12) — a crossbar whose best-case
  SA1 non-overlap still exceeds the edge density of the sparsest block cannot
  be made safe by any permutation, so it is removed from the candidate set
  when enough crossbars remain.
* **Sparsest-block relaxation** (line 14) — when the number of blocks equals
  the number of candidate crossbars, the sparsest block is taken out of the
  optimisation (it is the least sensitive to faults) and assigned to the
  cheapest leftover crossbar afterwards, giving the denser blocks more
  freedom.

Performance model
-----------------
The mapper runs once per mini-batch per epoch, so its cost dominates the
pre-processing phase.  Two execution paths produce **identical**
:class:`BatchMapping` outputs (enforced by ``tests/test_core_cost_engine.py``):

* the *seed path* (``use_cost_engine=False``) computes every (block,
  crossbar) pair independently: ``B·M`` Python-level calls, each with two
  dense matmuls and a full assignment solve, materialising all ``B·M``
  permutations even though at most ``B`` survive into the result;
* the *engine path* (default) delegates to
  :class:`~repro.core.cost_engine.MappingCostEngine`, which batches the cost
  tensors, dedupes identical blocks/fault maps, skips fault-free and
  provably-zero pairs, solves the remaining inner assignments in one
  vectorised stack solve (the batched-greedy sweep or a lockstep exact
  solver from :mod:`repro.core.batch_solvers`, per the row method),
  materialises only the ≤ ``B`` selected permutations, and caches every pair
  result by content fingerprint so per-epoch refreshes on unchanged BIST
  maps are near-free.

``benchmarks/test_bench_mapping_throughput.py`` tracks the blocks-per-second
ratio between the two paths for the greedy row method and
``benchmarks/test_bench_exact_matching.py`` for the exact ones; the overall
layering is documented in ``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cost_engine import (
    MappingCostEngine,
    PlanContext,
    block_row_cost_matrix,
)
from repro.hardware.faults import FaultMap
from repro.matching.bipartite import solve_assignment
from repro.matching.hungarian import hungarian_assignment

__all__ = [
    "BatchMapping",
    "BlockMapping",
    "FaultAwareMapper",
    "MapperPlanState",
    "block_crossbar_cost",
    "block_row_cost_matrix",  # re-exported single source: core.cost_engine
    "permutation_mismatch_cost",
    "sequential_mapping",
]


def block_crossbar_cost(
    block: np.ndarray,
    fault_map: FaultMap,
    sa1_weight: float = 1.0,
    method: str = "greedy",
) -> Tuple[float, np.ndarray, float]:
    """Best achievable (weighted) mismatch of a block on a crossbar.

    Returns ``(total_cost, row_permutation, sa1_mismatch)`` where
    ``row_permutation[i]`` is the crossbar row that block row ``i`` should be
    written to, and ``sa1_mismatch`` is the (unweighted) number of spurious
    edges the chosen permutation still incurs.
    """
    if fault_map.is_fault_free():
        n = block.shape[0]
        return 0.0, np.arange(n, dtype=np.int64), 0.0
    total, _, sa1_cost = block_row_cost_matrix(block, fault_map, sa1_weight)
    permutation, cost = solve_assignment(total, method=method)
    sa1_mismatch = float(sa1_cost[np.arange(len(permutation)), permutation].sum())
    return float(cost), permutation.astype(np.int64), sa1_mismatch


def permutation_mismatch_cost(
    block: np.ndarray,
    fault_map: FaultMap,
    permutation: Optional[np.ndarray] = None,
    sa1_weight: float = 1.0,
) -> Tuple[float, float]:
    """Weighted mismatch of storing ``block`` under a *given* row permutation.

    ``permutation[i]`` is the crossbar row block row ``i`` is written to
    (identity when ``None``).  Returns ``(total_cost, sa1_mismatch)`` — the
    cost a mapping that did **not** optimise the permutation actually incurs,
    which is what the fault-unaware baselines should report instead of NaN.
    """
    if fault_map.is_fault_free():
        return 0.0, 0.0
    block = np.asarray(block, dtype=np.float64)
    if block.shape != fault_map.shape:
        raise ValueError(
            f"block shape {block.shape} does not match fault map {fault_map.shape}"
        )
    ones = block > 0
    if permutation is None:
        sa0_rows = fault_map.sa0
        sa1_rows = fault_map.sa1
    else:
        permutation = np.asarray(permutation, dtype=np.int64)
        sa0_rows = fault_map.sa0[permutation]
        sa1_rows = fault_map.sa1[permutation]
    sa0_mismatch = float(np.count_nonzero(ones & sa0_rows))
    sa1_mismatch = float(np.count_nonzero(~ones & sa1_rows))
    return sa0_mismatch + sa1_weight * sa1_mismatch, sa1_mismatch


# --------------------------------------------------------------------------- #
# Mapping data structures
# --------------------------------------------------------------------------- #
@dataclass
class BlockMapping:
    """Placement of one adjacency block onto one crossbar."""

    block_index: int
    crossbar_index: int
    row_permutation: np.ndarray
    cost: float
    sa1_mismatch: float = 0.0


@dataclass
class BatchMapping:
    """Placement of every block of one mini-batch adjacency matrix."""

    blocks: List[BlockMapping]
    pruned_crossbars: List[int] = field(default_factory=list)
    relaxed_blocks: List[int] = field(default_factory=list)
    #: Lazily built block index → list position lookup (``crossbar_for_block``
    #: used to be a linear scan per call, O(B²) over a batch readback).
    #: Positions (not objects) are cached so slot replacements in ``blocks``
    #: are always served the current object.
    _block_lookup: Optional[dict] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def total_cost(self) -> float:
        return float(sum(b.cost for b in self.blocks))

    @property
    def total_sa1_mismatch(self) -> float:
        return float(sum(b.sa1_mismatch for b in self.blocks))

    def _rebuild_lookup(self) -> dict:
        self._block_lookup = {
            m.block_index: position for position, m in enumerate(self.blocks)
        }
        return self._block_lookup

    def _lookup_position(self, lookup: dict, block_index: int) -> Optional[BlockMapping]:
        position = lookup.get(block_index)
        if position is None or position >= len(self.blocks):
            return None
        mapping = self.blocks[position]
        return mapping if mapping.block_index == block_index else None

    def crossbar_for_block(self, block_index: int) -> BlockMapping:
        lookup = self._block_lookup
        if lookup is None or len(lookup) != len(self.blocks):
            lookup = self._rebuild_lookup()
        mapping = self._lookup_position(lookup, block_index)
        if mapping is None:
            # ``blocks`` was reordered or renumbered since the lookup was
            # built — rebuild once and retry before giving up.
            mapping = self._lookup_position(self._rebuild_lookup(), block_index)
        if mapping is None:
            raise KeyError(f"no mapping recorded for block {block_index}")
        return mapping

    def __len__(self) -> int:
        return len(self.blocks)


@dataclass
class MapperPlanState:
    """Opaque warm-start state of one :meth:`FaultAwareMapper.plan_blocks` call.

    Carries one engine :class:`~repro.core.cost_engine.PlanContext` per block
    chunk (blocks are mapped ``num_crossbars`` at a time when the batch has
    more blocks than crossbars).  Feed it back into
    :meth:`FaultAwareMapper.replan_blocks` after a fault-map delta; it is
    never required for correctness — a missing or stale state simply means a
    cold re-plan.
    """

    num_crossbars: int
    chunk_contexts: List[Optional[PlanContext]]


def sequential_mapping(
    num_blocks: int,
    crossbar_rows: int,
    num_crossbars: int,
    blocks: Optional[Sequence[np.ndarray]] = None,
    fault_maps: Optional[Sequence[FaultMap]] = None,
    sa1_weight: float = 1.0,
) -> BatchMapping:
    """The fault-unaware default: block ``i`` → crossbar ``i % m``, identity rows.

    When ``blocks`` and ``fault_maps`` are provided, each
    :class:`BlockMapping` carries the *true* identity-permutation mismatch
    cost of its placement (0.0 on fault-free crossbars).  Without them the
    cost is 0.0 — historically it was ``NaN``, which silently poisoned
    :attr:`BatchMapping.total_cost` for every baseline run.
    """
    if num_crossbars <= 0:
        raise ValueError("num_crossbars must be positive")
    if (blocks is None) != (fault_maps is None):
        raise ValueError(
            "blocks and fault_maps must be supplied together (a half-specified "
            "call would silently report cost 0.0 for a faulty placement)"
        )
    if fault_maps is not None and len(fault_maps) != num_crossbars:
        raise ValueError(
            f"fault_maps length {len(fault_maps)} does not match "
            f"num_crossbars {num_crossbars}"
        )
    if blocks is not None and len(blocks) != num_blocks:
        raise ValueError(
            f"blocks length {len(blocks)} does not match num_blocks {num_blocks}"
        )
    identity = np.arange(crossbar_rows, dtype=np.int64)
    mappings = []
    for i in range(num_blocks):
        crossbar = i % num_crossbars
        cost, sa1 = 0.0, 0.0
        if blocks is not None and fault_maps is not None:
            cost, sa1 = permutation_mismatch_cost(
                blocks[i], fault_maps[crossbar], sa1_weight=sa1_weight
            )
        mappings.append(
            BlockMapping(
                block_index=i,
                crossbar_index=crossbar,
                row_permutation=identity.copy(),
                cost=cost,
                sa1_mismatch=sa1,
            )
        )
    return BatchMapping(blocks=mappings)


# --------------------------------------------------------------------------- #
# Algorithm 1
# --------------------------------------------------------------------------- #
class FaultAwareMapper:
    """Implements the fault-aware adjacency mapping of the FARe framework.

    Parameters
    ----------
    sa1_weight:
        Multiplier applied to SA1 mismatches in the cost function (SA1 faults
        are more damaging; Section V-B).
    row_method:
        Assignment solver used for the inner row-to-row matching
        (``'bsuitor'`` as in the paper, ``'hungarian'`` for exact,
        ``'greedy'`` for speed).
    assignment_method:
        Solver for the outer block → crossbar assignment (default exact
        Hungarian; the problem is small).
    prune_crossbars:
        Enable the crossbar-pruning heuristic (Algorithm 1, line 12).
    relax_sparsest_block:
        Enable the sparsest-block relaxation (Algorithm 1, line 14).
    use_cost_engine:
        Route the inner-loop cost computation through the batched
        :class:`~repro.core.cost_engine.MappingCostEngine` (default).  The
        seed per-pair loop is kept (``False``) as the reference path for the
        equivalence tests and the throughput benchmark; both paths return
        identical mappings.
    use_batched_exact:
        With the cost engine enabled, solve ``'hungarian'``/``'bsuitor'``
        pair stacks with the lockstep batched solvers of
        :mod:`repro.core.batch_solvers` (default).  ``False`` keeps one
        scalar solver call per pair inside the engine — again bit-identical,
        kept reachable for the exact-matching speedup benchmark.
    """

    def __init__(
        self,
        sa1_weight: float = 4.0,
        row_method: str = "greedy",
        assignment_method: str = "hungarian",
        prune_crossbars: bool = True,
        relax_sparsest_block: bool = True,
        use_cost_engine: bool = True,
        use_batched_exact: bool = True,
    ) -> None:
        if sa1_weight < 1.0:
            raise ValueError(
                f"sa1_weight should be >= 1 (SA1 faults are at least as bad as "
                f"SA0), got {sa1_weight}"
            )
        self.sa1_weight = float(sa1_weight)
        self.row_method = row_method
        self.assignment_method = assignment_method
        self.prune_crossbars = bool(prune_crossbars)
        self.relax_sparsest_block = bool(relax_sparsest_block)
        self.cost_engine: Optional[MappingCostEngine] = (
            MappingCostEngine(
                sa1_weight=self.sa1_weight,
                row_method=row_method,
                use_batched_exact=use_batched_exact,
            )
            if use_cost_engine
            else None
        )

    # ------------------------------------------------------------------ #
    def _pairwise_costs(
        self, blocks: Sequence[np.ndarray], fault_maps: Sequence[FaultMap]
    ) -> Tuple[np.ndarray, np.ndarray, Callable[[int, int], np.ndarray]]:
        """Cost(i, j) and SA1 mismatch for all pairs, plus a lazy permutation
        provider (``provider(i, j)`` → row permutation of that pair)."""
        if self.cost_engine is not None:
            return self.cost_engine.pairwise_costs(blocks, fault_maps)
        return self._pairwise_costs_reference(blocks, fault_maps)

    def _pairwise_costs_reference(
        self, blocks: Sequence[np.ndarray], fault_maps: Sequence[FaultMap]
    ) -> Tuple[np.ndarray, np.ndarray, Callable[[int, int], np.ndarray]]:
        """The seed per-pair loop: every permutation solved eagerly."""
        num_blocks = len(blocks)
        num_crossbars = len(fault_maps)
        costs = np.zeros((num_blocks, num_crossbars))
        sa1_mismatches = np.zeros((num_blocks, num_crossbars))
        permutations: List[List[np.ndarray]] = [
            [None] * num_crossbars for _ in range(num_blocks)
        ]
        for j, fmap in enumerate(fault_maps):
            for i, block in enumerate(blocks):
                cost, perm, sa1 = block_crossbar_cost(
                    block, fmap, self.sa1_weight, method=self.row_method
                )
                costs[i, j] = cost
                sa1_mismatches[i, j] = sa1
                permutations[i][j] = perm
        return costs, sa1_mismatches, lambda i, j: permutations[i][j]

    @staticmethod
    def _block_densities(blocks: Sequence[np.ndarray]) -> np.ndarray:
        return np.array(
            [float((np.asarray(b) > 0).mean()) if np.asarray(b).size else 0.0 for b in blocks]
        )

    # ------------------------------------------------------------------ #
    def map_blocks(
        self,
        blocks: Sequence[np.ndarray],
        fault_maps: Sequence[FaultMap],
        crossbar_ids: Optional[Sequence[int]] = None,
    ) -> BatchMapping:
        """Run Algorithm 1 for one batch of adjacency blocks.

        Parameters
        ----------
        blocks:
            Dense binary blocks (all of crossbar shape).
        fault_maps:
            Fault maps of the candidate crossbars (as reported by the BIST).
        crossbar_ids:
            Physical ids of the candidate crossbars; defaults to
            ``0..len(fault_maps)-1``.
        """
        mapping, _ = self._plan(
            blocks, fault_maps, crossbar_ids, prev_state=None, capture=False
        )
        return mapping

    def plan_blocks(
        self,
        blocks: Sequence[np.ndarray],
        fault_maps: Sequence[FaultMap],
        crossbar_ids: Optional[Sequence[int]] = None,
    ) -> Tuple[BatchMapping, Optional[MapperPlanState]]:
        """:meth:`map_blocks` that also returns warm-start state for re-plans.

        The mapping is bit-identical to :meth:`map_blocks`; the extra
        :class:`MapperPlanState` seeds :meth:`replan_blocks` after a fault-map
        delta.  Without a cost engine the state is an empty shell and every
        re-plan runs cold.
        """
        return self._plan(blocks, fault_maps, crossbar_ids, None, capture=True)

    def replan_blocks(
        self,
        blocks: Sequence[np.ndarray],
        fault_maps: Sequence[FaultMap],
        crossbar_ids: Optional[Sequence[int]] = None,
        prev_state: Optional[MapperPlanState] = None,
    ) -> Tuple[BatchMapping, Optional[MapperPlanState]]:
        """Re-run Algorithm 1 after a fault-map delta, warm-started.

        Only the (block, crossbar) pairs whose fault maps changed since
        ``prev_state`` was produced are re-solved; the outer block → crossbar
        assignment, pruning, and relaxation are re-run on the spliced cost
        grid, so the result is bit-identical to a cold :meth:`map_blocks` on
        the new maps.  A stale or missing ``prev_state`` degrades to that
        cold plan (counted in ``delta_full_replans``).
        """
        return self._plan(blocks, fault_maps, crossbar_ids, prev_state, capture=True)

    def _plan(
        self,
        blocks: Sequence[np.ndarray],
        fault_maps: Sequence[FaultMap],
        crossbar_ids: Optional[Sequence[int]],
        prev_state: Optional[MapperPlanState],
        capture: bool,
    ) -> Tuple[BatchMapping, Optional[MapperPlanState]]:
        num_blocks = len(blocks)
        num_crossbars = len(fault_maps)
        if num_blocks == 0:
            return BatchMapping(blocks=[]), (
                MapperPlanState(num_crossbars, []) if capture else None
            )
        if num_crossbars == 0:
            raise ValueError("need at least one crossbar")
        ids = list(crossbar_ids) if crossbar_ids is not None else list(range(num_crossbars))
        if len(ids) != num_crossbars:
            raise ValueError("crossbar_ids length must match fault_maps length")

        # More blocks than crossbars: the crossbars are time-multiplexed —
        # map one chunk of (at most) m blocks at a time, each chunk with an
        # injective assignment, and concatenate the results.
        starts = list(range(0, num_blocks, num_crossbars))
        contexts: List[Optional[PlanContext]] = [None] * len(starts)
        if prev_state is not None:
            if (
                prev_state.num_crossbars == num_crossbars
                and len(prev_state.chunk_contexts) == len(starts)
            ):
                contexts = list(prev_state.chunk_contexts)
            elif self.cost_engine is not None:
                self.cost_engine.stats.delta_full_replans += 1
        if len(starts) == 1:
            mapping, context = self._map_chunk(
                blocks, fault_maps, ids, contexts[0], capture
            )
            return mapping, (
                MapperPlanState(num_crossbars, [context]) if capture else None
            )
        merged = BatchMapping(blocks=[])
        new_contexts: List[Optional[PlanContext]] = []
        for chunk_index, start in enumerate(starts):
            chunk = blocks[start : start + num_crossbars]
            chunk_mapping, context = self._map_chunk(
                chunk, fault_maps, ids, contexts[chunk_index], capture
            )
            new_contexts.append(context)
            for block_mapping in chunk_mapping.blocks:
                block_mapping.block_index += start
            merged.blocks.extend(chunk_mapping.blocks)
            merged.pruned_crossbars.extend(chunk_mapping.pruned_crossbars)
            merged.relaxed_blocks.extend(
                index + start for index in chunk_mapping.relaxed_blocks
            )
        merged.blocks.sort(key=lambda m: m.block_index)
        return merged, (
            MapperPlanState(num_crossbars, new_contexts) if capture else None
        )

    def _map_chunk(
        self,
        blocks: Sequence[np.ndarray],
        fault_maps: Sequence[FaultMap],
        ids: List[int],
        prev_context: Optional[PlanContext],
        capture: bool,
    ) -> Tuple[BatchMapping, Optional[PlanContext]]:
        """Algorithm 1 core for one chunk of at most ``len(fault_maps)`` blocks."""
        num_blocks = len(blocks)
        num_crossbars = len(fault_maps)
        context: Optional[PlanContext] = None
        if capture and self.cost_engine is not None:
            costs, sa1_mismatches, permutation_for, context = (
                self.cost_engine.plan_pairwise(
                    blocks, fault_maps, prev_context=prev_context
                )
            )
        else:
            costs, sa1_mismatches, permutation_for = self._pairwise_costs(
                blocks, fault_maps
            )
        densities = self._block_densities(blocks)
        block_cells = float(np.asarray(blocks[0]).size)

        # --- crossbar pruning (line 12) --------------------------------
        candidate_crossbars = list(range(num_crossbars))
        pruned: List[int] = []
        if self.prune_crossbars and num_crossbars > num_blocks:
            sparsest_density = float(densities.min())
            # Best-case SA1 non-overlap of each crossbar, as a fraction of
            # the block size (to be commensurable with edge density).
            min_sa1_fraction = sa1_mismatches.min(axis=0) / max(block_cells, 1.0)
            for j in sorted(
                range(num_crossbars), key=lambda c: -min_sa1_fraction[c]
            ):
                if len(candidate_crossbars) <= num_blocks:
                    break
                if min_sa1_fraction[j] > sparsest_density and min_sa1_fraction[j] > 0:
                    candidate_crossbars.remove(j)
                    pruned.append(ids[j])

        # --- sparsest-block relaxation (line 14) ------------------------
        active_blocks = list(range(num_blocks))
        relaxed: List[int] = []
        if (
            self.relax_sparsest_block
            and len(candidate_crossbars) == num_blocks
            and num_blocks > 1
        ):
            # Only relax when the best mapping of the sparsest block still
            # has SA1 overlap everywhere (the worst case in the paper).
            sparsest = int(np.argmin(densities))
            if sa1_mismatches[sparsest, candidate_crossbars].min() > 0:
                active_blocks.remove(sparsest)
                relaxed.append(sparsest)

        # --- outer assignment (line 18) ---------------------------------
        sub_cost = costs[np.ix_(active_blocks, candidate_crossbars)]
        if self.assignment_method == "hungarian":
            assignment, _ = hungarian_assignment(sub_cost)
        else:
            assignment, _ = solve_assignment(sub_cost, method=self.assignment_method)

        block_mappings: List[BlockMapping] = []
        used_crossbars = set()
        for local_index, block_index in enumerate(active_blocks):
            crossbar_local = candidate_crossbars[int(assignment[local_index])]
            used_crossbars.add(crossbar_local)
            block_mappings.append(
                BlockMapping(
                    block_index=block_index,
                    crossbar_index=ids[crossbar_local],
                    row_permutation=permutation_for(block_index, crossbar_local),
                    cost=float(costs[block_index, crossbar_local]),
                    sa1_mismatch=float(sa1_mismatches[block_index, crossbar_local]),
                )
            )

        # Relaxed blocks take the cheapest crossbar not used by the others
        # (pruned crossbars become eligible again here — every block must be
        # stored somewhere).
        for block_index in relaxed:
            remaining = [j for j in range(num_crossbars) if j not in used_crossbars]
            best = min(remaining, key=lambda j: costs[block_index, j])
            used_crossbars.add(best)
            block_mappings.append(
                BlockMapping(
                    block_index=block_index,
                    crossbar_index=ids[best],
                    row_permutation=permutation_for(block_index, best),
                    cost=float(costs[block_index, best]),
                    sa1_mismatch=float(sa1_mismatches[block_index, best]),
                )
            )

        block_mappings.sort(key=lambda m: m.block_index)
        return (
            BatchMapping(
                blocks=block_mappings, pruned_crossbars=pruned, relaxed_blocks=relaxed
            ),
            context,
        )

    # ------------------------------------------------------------------ #
    def update_row_permutations(
        self,
        mapping: BatchMapping,
        blocks: Sequence[np.ndarray],
        fault_maps_by_id: dict,
    ) -> BatchMapping:
        """Recompute row permutations for an existing block → crossbar mapping.

        This is the post-deployment refresh (Section IV-A): the block to
        crossbar assignment ``Π`` is kept — the few faults appearing after an
        epoch do not justify recomputing it — and only the within-crossbar row
        permutations are recomputed against the latest BIST fault maps.  The
        matching is linear-time work per block and is overlapped with ReRAM
        execution on the host, so it adds no pipeline time.  With the cost
        engine enabled, refreshes against an *unchanged* fault map are cache
        hits and do no tensor or solver work at all.
        """
        updated: List[BlockMapping] = []
        for block_mapping in mapping.blocks:
            block = blocks[block_mapping.block_index]
            fmap = fault_maps_by_id[block_mapping.crossbar_index]
            if self.cost_engine is not None:
                cost, perm, sa1 = self.cost_engine.block_crossbar_cost(block, fmap)
            else:
                cost, perm, sa1 = block_crossbar_cost(
                    block, fmap, self.sa1_weight, method=self.row_method
                )
            updated.append(
                BlockMapping(
                    block_index=block_mapping.block_index,
                    crossbar_index=block_mapping.crossbar_index,
                    row_permutation=perm,
                    cost=cost,
                    sa1_mismatch=sa1,
                )
            )
        return BatchMapping(
            blocks=updated,
            pruned_crossbars=list(mapping.pruned_crossbars),
            relaxed_blocks=list(mapping.relaxed_blocks),
        )
