"""Weight clipping for the combination phase (paper Section IV-B).

A single SA1 fault near the MSB cell of a weight makes its read-back value
jump towards the extreme of the representable range ("weight explosion").
The clipping threshold is a constant hyperparameter: the tile's 16-bit
comparators and 2:1 muxes clamp every weight read from the crossbars to
``[-threshold, +threshold]`` on the fly, and the digital weight update clamps
the master copy to the same range so the stored values stay representable.
Clipping acts as an implicit regulariser: back-propagation trains the healthy
weights to compensate for the clamped faulty ones.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.tensor.module import Module


class WeightClipper:
    """Clamp weights to a symmetric range ``[-threshold, +threshold]``.

    Parameters
    ----------
    threshold:
        The clipping threshold (constant throughout training).
    """

    def __init__(self, threshold: float = 1.0) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        self.threshold = float(threshold)

    def __repr__(self) -> str:
        return f"WeightClipper(threshold={self.threshold})"

    # ------------------------------------------------------------------ #
    def clip_array(self, values: np.ndarray) -> np.ndarray:
        """Return ``values`` clamped to the clipping range (new array)."""
        return np.clip(np.asarray(values, dtype=np.float64), -self.threshold, self.threshold)

    def clip_model(self, model: Module, parameter_names: Optional[Iterable[str]] = None) -> int:
        """Clamp the master copy of model parameters in place.

        Parameters
        ----------
        model:
            The model whose parameters are clipped.
        parameter_names:
            Restrict clipping to these parameter names (default: every 2-D
            parameter, i.e. the weights mapped onto crossbars).

        Returns
        -------
        Number of scalar weights that were actually clamped.
        """
        names = set(parameter_names) if parameter_names is not None else None
        clipped = 0
        for name, param in model.named_parameters():
            if names is not None and name not in names:
                continue
            if names is None and param.data.ndim != 2:
                continue
            before = param.data
            after = self.clip_array(before)
            clipped += int(np.count_nonzero(before != after))
            param.data = after
        return clipped

    @staticmethod
    def suggest_threshold(model: Module, multiplier: float = 3.0) -> float:
        """Heuristic threshold: ``multiplier`` × the std of the initial weights.

        The paper treats the threshold as a hyperparameter; this helper gives
        a sensible default when the caller does not specify one.
        """
        if multiplier <= 0:
            raise ValueError(f"multiplier must be positive, got {multiplier}")
        stds = [
            float(param.data.std())
            for _, param in model.named_parameters()
            if param.data.ndim == 2 and param.data.size
        ]
        if not stds:
            return 1.0
        return max(multiplier * float(np.mean(stds)), 1e-3)
