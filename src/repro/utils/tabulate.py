"""Minimal plain-text table formatting (no external dependency).

The benchmark harness prints the rows/series of every paper table and figure;
this module renders them as aligned, monospaced tables.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float, None]

#: Placeholder rendered for ``None`` cells — a quarantined sweep spec leaves a
#: hole in the grid, and the tables must say so rather than crash.
MISSING = "(missing)"


def _render_cell(cell: Cell, float_fmt: str) -> str:
    if cell is None:
        return MISSING
    if isinstance(cell, bool):
        return "Y" if cell else "N"
    if isinstance(cell, float):
        return format(cell, float_fmt)
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    float_fmt: str = ".4f",
    title: str = "",
) -> str:
    """Render ``headers``/``rows`` as an aligned plain-text table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of rows; each row must have ``len(headers)`` cells.
    float_fmt:
        Format specifier applied to float cells.
    title:
        Optional title printed above the table.
    """
    str_rows: List[List[str]] = []
    for row in rows:
        row = list(row)
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        str_rows.append([_render_cell(c, float_fmt) for c in row])

    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
