"""Input validation helpers shared across the library."""

from __future__ import annotations

import numbers
from typing import Any

import numpy as np


def check_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_non_negative_int(value: Any, name: str) -> int:
    """Validate that ``value`` is a non-negative integer."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_fraction(value: Any, name: str, inclusive_high: bool = True) -> float:
    """Validate that ``value`` is a fraction in ``[0, 1]`` (or ``[0, 1)``)."""
    if not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if value < 0.0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    if inclusive_high:
        if value > 1.0:
            raise ValueError(f"{name} must be <= 1, got {value}")
    elif value >= 1.0:
        raise ValueError(f"{name} must be < 1, got {value}")
    return value


def check_square_matrix(mat: np.ndarray, name: str) -> np.ndarray:
    """Validate that ``mat`` is a 2-D square numpy array."""
    mat = np.asarray(mat)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise ValueError(f"{name} must be a square 2-D array, got shape {mat.shape}")
    return mat


def check_permutation(perm: Any, n: int, name: str = "permutation") -> np.ndarray:
    """Validate that ``perm`` is a permutation of ``0..n-1`` and return it.

    Runs in O(n) via ``np.bincount`` (the previous idiom at the call sites —
    ``sorted(perm.tolist()) == list(range(n))`` — was O(n log n) plus a
    Python-list round trip, and sat inside per-block hot loops).
    """
    perm = np.asarray(perm, dtype=np.int64)
    if perm.shape != (n,):
        raise ValueError(
            f"{name} must have shape ({n},), got {tuple(perm.shape)}"
        )
    if n == 0:
        return perm
    if perm.min() < 0 or perm.max() >= n:
        raise ValueError(f"{name} must be a permutation of 0..{n - 1}")
    if not np.all(np.bincount(perm, minlength=n) == 1):
        raise ValueError(f"{name} must be a permutation of 0..{n - 1}")
    return perm


def check_probability_ratio(sa0: float, sa1: float) -> tuple:
    """Validate an SA0:SA1 ratio pair and return it normalised to sum to one."""
    if sa0 < 0 or sa1 < 0:
        raise ValueError(f"ratio components must be non-negative, got {sa0}:{sa1}")
    total = sa0 + sa1
    if total <= 0:
        raise ValueError("ratio components must not both be zero")
    return sa0 / total, sa1 / total
