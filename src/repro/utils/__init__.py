"""Shared utilities: RNG handling, logging, table formatting and validation."""

from repro.utils.rng import RngMixin, ensure_rng, spawn_rngs
from repro.utils.logging import get_logger
from repro.utils.tabulate import format_table
from repro.utils.validation import (
    check_fraction,
    check_positive_int,
    check_square_matrix,
)

__all__ = [
    "RngMixin",
    "ensure_rng",
    "spawn_rngs",
    "get_logger",
    "format_table",
    "check_fraction",
    "check_positive_int",
    "check_square_matrix",
]
