"""Random-number-generator helpers.

Every stochastic component in the library (fault injection, dataset synthesis,
weight initialisation, dropout, partitioning tie-breaks) accepts either an
integer seed or a :class:`numpy.random.Generator`.  These helpers normalise the
two forms and derive independent child generators so experiments are
reproducible end to end.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, or an existing generator
        (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = ensure_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


class RngMixin:
    """Mixin giving a class a lazily created ``rng`` attribute.

    Sub-classes call ``self._init_rng(seed)`` in ``__init__`` and then use
    ``self.rng`` everywhere randomness is needed.
    """

    _rng: Optional[np.random.Generator] = None

    def _init_rng(self, seed: SeedLike = None) -> None:
        self._rng = ensure_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = np.random.default_rng()
        return self._rng

    def reseed(self, seed: SeedLike) -> None:
        """Replace the internal generator (useful for repeated experiments)."""
        self._rng = ensure_rng(seed)


def permutation_matrix(perm: Iterable[int]) -> np.ndarray:
    """Return the permutation matrix ``P`` with ``P[i, perm[i]] = 1``.

    Used in tests to verify that row permutations computed by the matching
    algorithms are valid linear operators.
    """
    perm = np.asarray(list(perm), dtype=np.int64)
    n = perm.shape[0]
    if sorted(perm.tolist()) != list(range(n)):
        raise ValueError("perm is not a permutation of 0..n-1")
    mat = np.zeros((n, n), dtype=np.int8)
    mat[np.arange(n), perm] = 1
    return mat
