"""Thin wrapper around :mod:`logging` with a library-wide namespace."""

from __future__ import annotations

import logging
from typing import Optional

_ROOT_NAME = "repro"
_CONFIGURED = False


def _configure_root() -> None:
    global _CONFIGURED
    if _CONFIGURED:
        return
    root = logging.getLogger(_ROOT_NAME)
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        root.addHandler(handler)
    root.setLevel(logging.WARNING)
    _CONFIGURED = True


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``get_logger("hardware.faults")`` returns ``repro.hardware.faults``.
    """
    _configure_root()
    if not name:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def set_verbosity(level: int) -> None:
    """Set the verbosity of the whole library (e.g. ``logging.INFO``)."""
    _configure_root()
    logging.getLogger(_ROOT_NAME).setLevel(level)
