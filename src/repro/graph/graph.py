"""Graph container used throughout the library.

A :class:`Graph` bundles an undirected adjacency (CSR), node features, node
labels and train/validation/test masks — exactly the payload a node
classification dataset such as PPI, Reddit, Amazon2M or OGB-citation2
provides.  A :class:`Subgraph` is the induced graph over a node subset plus
the bookkeeping needed to map results back to the parent graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.graph.sparse import CSRMatrix


@dataclass
class Graph:
    """A node-classification graph.

    Attributes
    ----------
    adjacency:
        Symmetric binary adjacency matrix (no self loops) in CSR form.
    features:
        ``(num_nodes, num_features)`` float array of node features.
    labels:
        ``(num_nodes,)`` integer class labels, or ``(num_nodes, num_classes)``
        binary labels for multi-label tasks (PPI).
    train_mask / val_mask / test_mask:
        Boolean masks over nodes.
    name:
        Dataset name (used in report tables).
    """

    adjacency: CSRMatrix
    features: np.ndarray
    labels: np.ndarray
    train_mask: np.ndarray
    val_mask: np.ndarray
    test_mask: np.ndarray
    name: str = "graph"
    metadata: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=np.float64)
        self.labels = np.asarray(self.labels)
        self.train_mask = np.asarray(self.train_mask, dtype=bool)
        self.val_mask = np.asarray(self.val_mask, dtype=bool)
        self.test_mask = np.asarray(self.test_mask, dtype=bool)
        n = self.adjacency.shape[0]
        if self.adjacency.shape[0] != self.adjacency.shape[1]:
            raise ValueError("adjacency must be square")
        if self.features.shape[0] != n:
            raise ValueError(
                f"features rows ({self.features.shape[0]}) must equal nodes ({n})"
            )
        if self.labels.shape[0] != n:
            raise ValueError(
                f"labels rows ({self.labels.shape[0]}) must equal nodes ({n})"
            )
        for mask_name in ("train_mask", "val_mask", "test_mask"):
            mask = getattr(self, mask_name)
            if mask.shape != (n,):
                raise ValueError(f"{mask_name} must have shape ({n},), got {mask.shape}")

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return self.adjacency.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of directed edges stored (twice the undirected edge count)."""
        return self.adjacency.nnz

    @property
    def num_features(self) -> int:
        return self.features.shape[1]

    @property
    def num_classes(self) -> int:
        if self.labels.ndim == 2:
            return self.labels.shape[1]
        return int(self.labels.max()) + 1 if self.labels.size else 0

    @property
    def is_multilabel(self) -> bool:
        """True for multi-label tasks (PPI-style), False for single-label."""
        return self.labels.ndim == 2

    def degrees(self) -> np.ndarray:
        """Node degrees (count of structural neighbours)."""
        return self.adjacency.to_binary().row_sums()

    def __repr__(self) -> str:
        return (
            f"Graph(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, features={self.num_features}, "
            f"classes={self.num_classes})"
        )

    # ------------------------------------------------------------------ #
    # Subgraph extraction
    # ------------------------------------------------------------------ #
    def subgraph(self, node_ids: np.ndarray) -> "Subgraph":
        """Return the induced subgraph over ``node_ids``."""
        node_ids = np.asarray(node_ids, dtype=np.int64)
        return Subgraph(
            parent=self,
            node_ids=node_ids,
            adjacency=self.adjacency.submatrix(node_ids),
            features=self.features[node_ids],
            labels=self.labels[node_ids],
            train_mask=self.train_mask[node_ids],
            val_mask=self.val_mask[node_ids],
            test_mask=self.test_mask[node_ids],
        )


@dataclass
class Subgraph:
    """Induced subgraph of a :class:`Graph` over a subset of its nodes."""

    parent: Graph
    node_ids: np.ndarray
    adjacency: CSRMatrix
    features: np.ndarray
    labels: np.ndarray
    train_mask: np.ndarray
    val_mask: np.ndarray
    test_mask: np.ndarray

    @property
    def num_nodes(self) -> int:
        return int(self.node_ids.size)

    @property
    def num_edges(self) -> int:
        return self.adjacency.nnz

    def __repr__(self) -> str:
        return f"Subgraph(nodes={self.num_nodes}, edges={self.num_edges})"


def graph_from_edges(
    num_nodes: int,
    edges: np.ndarray,
    features: np.ndarray,
    labels: np.ndarray,
    train_mask: Optional[np.ndarray] = None,
    val_mask: Optional[np.ndarray] = None,
    test_mask: Optional[np.ndarray] = None,
    name: str = "graph",
) -> Graph:
    """Build an undirected :class:`Graph` from an ``(E, 2)`` edge array.

    Edges are symmetrised and self loops are dropped; duplicate edges are
    collapsed.  Missing masks default to all-True (train) / all-False.
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        edges = edges.reshape(0, 2)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError(f"edges must have shape (E, 2), got {edges.shape}")
    src, dst = edges[:, 0], edges[:, 1]
    keep = src != dst
    src, dst = src[keep], dst[keep]
    rows = np.concatenate([src, dst])
    cols = np.concatenate([dst, src])
    vals = np.ones(rows.shape[0])
    adjacency = CSRMatrix.from_coo(rows, cols, vals, (num_nodes, num_nodes))
    adjacency = adjacency.to_binary()
    if train_mask is None:
        train_mask = np.ones(num_nodes, dtype=bool)
    if val_mask is None:
        val_mask = np.zeros(num_nodes, dtype=bool)
    if test_mask is None:
        test_mask = np.zeros(num_nodes, dtype=bool)
    return Graph(
        adjacency=adjacency,
        features=features,
        labels=labels,
        train_mask=train_mask,
        val_mask=val_mask,
        test_mask=test_mask,
        name=name,
    )
