"""A from-scratch compressed-sparse-row (CSR) matrix.

Only the operations the GNN aggregation phase and the FARe mapping algorithm
need are implemented, all on top of plain numpy:

* construction from COO triplets or a dense array,
* sparse × dense products (``dot``) and transposition,
* sub-matrix (block) extraction — used to decompose the adjacency matrix into
  crossbar-sized blocks for Algorithm 1,
* row/column sums, scaling, element count, densification.

The matrix is deliberately immutable: every operation returns a new instance,
which keeps fault-injection experiments free of aliasing surprises.  The
numeric kernels (``dot``, ``transpose``, row sums) delegate to the
segment-reduce layer in :mod:`repro.tensor.kernels`, and immutability is what
makes the lazy ``.T`` memo safe: once computed, a transpose can never go
stale, so it is cached on the instance and shared by every consumer.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.tensor import kernels
from repro.utils.validation import check_positive_int


class CSRMatrix:
    """Immutable CSR sparse matrix with float64 values."""

    __slots__ = ("indptr", "indices", "data", "shape", "_transpose")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        self.shape = (int(shape[0]), int(shape[1]))
        self._transpose: Optional["CSRMatrix"] = None
        self._validate()

    def _validate(self) -> None:
        rows, cols = self.shape
        if rows < 0 or cols < 0:
            raise ValueError(f"invalid shape {self.shape}")
        if self.indptr.shape != (rows + 1,):
            raise ValueError(
                f"indptr must have {rows + 1} entries, got {self.indptr.shape}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.shape[0]:
            raise ValueError("indptr does not start at 0 or end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.shape != self.data.shape:
            raise ValueError("indices and data must have the same length")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= cols
        ):
            raise ValueError("column index out of range")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_coo(
        cls,
        rows: Iterable[int],
        cols: Iterable[int],
        values: Iterable[float],
        shape: Tuple[int, int],
        sum_duplicates: bool = True,
    ) -> "CSRMatrix":
        """Build from coordinate triplets, summing duplicate coordinates."""
        rows = np.asarray(list(rows) if not isinstance(rows, np.ndarray) else rows, dtype=np.int64)
        cols = np.asarray(list(cols) if not isinstance(cols, np.ndarray) else cols, dtype=np.int64)
        values = np.asarray(
            list(values) if not isinstance(values, np.ndarray) else values,
            dtype=np.float64,
        )
        if not (rows.shape == cols.shape == values.shape):
            raise ValueError("rows, cols and values must have identical length")
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if rows.size:
            if rows.min() < 0 or rows.max() >= n_rows:
                raise ValueError("row index out of range")
            if cols.min() < 0 or cols.max() >= n_cols:
                raise ValueError("column index out of range")
        if sum_duplicates and rows.size:
            keys = rows * n_cols + cols
            order = np.argsort(keys, kind="stable")
            keys, rows, cols, values = keys[order], rows[order], cols[order], values[order]
            unique_keys, starts = np.unique(keys, return_index=True)
            summed = np.add.reduceat(values, starts)
            rows = (unique_keys // n_cols).astype(np.int64)
            cols = (unique_keys % n_cols).astype(np.int64)
            values = summed
        else:
            order = np.lexsort((cols, rows))
            rows, cols, values = rows[order], cols[order], values[order]
        counts = np.bincount(rows, minlength=n_rows)
        indptr = np.concatenate(([0], np.cumsum(counts)))
        return cls(indptr, cols, values, (n_rows, n_cols))

    @classmethod
    def from_dense(cls, dense: np.ndarray, tolerance: float = 0.0) -> "CSRMatrix":
        """Build from a dense array, dropping entries with |value| <= tolerance."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError(f"dense must be 2-D, got shape {dense.shape}")
        rows, cols = np.nonzero(np.abs(dense) > tolerance)
        return cls.from_coo(rows, cols, dense[rows, cols], dense.shape)

    @classmethod
    def identity(cls, n: int) -> "CSRMatrix":
        """The n × n identity matrix."""
        n = check_positive_int(n, "n")
        idx = np.arange(n, dtype=np.int64)
        return cls(np.arange(n + 1, dtype=np.int64), idx, np.ones(n), (n, n))

    @classmethod
    def zeros(cls, shape: Tuple[int, int]) -> "CSRMatrix":
        """An all-zero matrix of the given shape."""
        rows = int(shape[0])
        return cls(
            np.zeros(rows + 1, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0),
            shape,
        )

    @classmethod
    def block_diag(
        cls, mats: "Iterable[CSRMatrix]"
    ) -> Tuple["CSRMatrix", np.ndarray]:
        """Stack matrices into one block-diagonal matrix.

        Returns ``(fused, row_offsets)`` where ``row_offsets[k]`` is the
        first fused row of member ``k`` (plus a final sentinel), so a fused
        product ``fused @ X`` splits back into the per-member products via
        ``result[row_offsets[k]:row_offsets[k + 1]]``.  Per-row kernels over
        the fused matrix are bit-identical per member to running them
        separately (rows never mix across blocks — see
        :func:`repro.tensor.kernels.block_diag_csr`); the fusion exists to
        run one kernel call per mini-batch *bucket* instead of one per graph.

        Used by both fused eval and fused training forwards
        (``FaultyTrainer`` train mode ``"fused"``); training additionally
        relies on the structure contract in the *backward* direction — the
        transposed fused matrix is block-diagonal too, so gradient rows
        never mix across members either.  Callers fusing the same member
        set repeatedly should memoise the result against their
        invalidation key (the trainer keys on
        ``HardwareStateCache.state_key()``) rather than re-fusing per call.
        """
        parts = [(m.indptr, m.indices, m.data, m.shape) for m in mats]
        indptr, indices, data, shape, row_offsets = kernels.block_diag_csr(parts)
        return cls(indptr, indices, data, shape), row_offsets

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        """Number of stored (structurally non-zero) entries."""
        return int(self.indices.shape[0])

    @property
    def density(self) -> float:
        """Fraction of non-zero entries (the paper's "edge density")."""
        total = self.shape[0] * self.shape[1]
        return self.nnz / total if total else 0.0

    def row_nnz(self) -> np.ndarray:
        """Number of stored entries per row."""
        return np.diff(self.indptr)

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return (column indices, values) of row ``i``."""
        if not 0 <= i < self.shape[0]:
            raise IndexError(f"row {i} out of range for shape {self.shape}")
        start, stop = self.indptr[i], self.indptr[i + 1]
        return self.indices[start:stop], self.data[start:stop]

    def to_dense(self) -> np.ndarray:
        """Return a dense float64 copy."""
        dense = np.zeros(self.shape, dtype=np.float64)
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        dense[rows, self.indices] = self.data
        return dense

    def __repr__(self) -> str:
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.allclose(self.data, other.data)
        )

    def __hash__(self) -> int:  # pragma: no cover - explicit unhashability
        raise TypeError("CSRMatrix is not hashable")

    # ------------------------------------------------------------------ #
    # Linear algebra
    # ------------------------------------------------------------------ #
    def dot(self, dense: np.ndarray) -> np.ndarray:
        """Sparse × dense product ``self @ dense`` (dense may be 1-D or 2-D)."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.shape[0] != self.shape[1]:
            raise ValueError(
                f"dimension mismatch: {self.shape} @ {dense.shape}"
            )
        single = dense.ndim == 1
        if single:
            dense = dense[:, None]
        out = kernels.csr_matmat(self.indptr, self.indices, self.data, dense)
        return out[:, 0] if single else out

    @property
    def T(self) -> "CSRMatrix":
        """The transposed matrix, computed lazily and memoised.

        Safe because the matrix is immutable: the cached transpose can never
        diverge from ``self``.  The memo is symmetric (``A.T.T is A``), so a
        transpose round-trip allocates nothing.
        """
        if self._transpose is None:
            kernels.COUNTERS.transpose_cache_misses += 1
            indptr_t, indices_t, data_t = kernels.csr_transpose(
                self.indptr, self.indices, self.data, self.shape
            )
            transposed = CSRMatrix(
                indptr_t, indices_t, data_t, (self.shape[1], self.shape[0])
            )
            transposed._transpose = self
            self._transpose = transposed
        else:
            kernels.COUNTERS.transpose_cache_hits += 1
        return self._transpose

    def transpose(self) -> "CSRMatrix":
        """Return the transposed matrix (also in CSR form, memoised)."""
        return self.T

    def scale(self, factor: float) -> "CSRMatrix":
        """Multiply every stored value by ``factor``."""
        return CSRMatrix(self.indptr, self.indices, self.data * factor, self.shape)

    def scale_rows(self, factors: np.ndarray) -> "CSRMatrix":
        """Multiply row ``i`` by ``factors[i]``."""
        factors = np.asarray(factors, dtype=np.float64)
        if factors.shape != (self.shape[0],):
            raise ValueError(
                f"factors must have shape ({self.shape[0]},), got {factors.shape}"
            )
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        return CSRMatrix(self.indptr, self.indices, self.data * factors[rows], self.shape)

    def scale_cols(self, factors: np.ndarray) -> "CSRMatrix":
        """Multiply column ``j`` by ``factors[j]``."""
        factors = np.asarray(factors, dtype=np.float64)
        if factors.shape != (self.shape[1],):
            raise ValueError(
                f"factors must have shape ({self.shape[1]},), got {factors.shape}"
            )
        return CSRMatrix(
            self.indptr, self.indices, self.data * factors[self.indices], self.shape
        )

    def row_sums(self) -> np.ndarray:
        """Sum of stored values per row."""
        return kernels.csr_row_sums(self.indptr, self.data)

    def col_sums(self) -> np.ndarray:
        """Sum of stored values per column."""
        out = np.zeros(self.shape[1], dtype=np.float64)
        if self.nnz:
            np.add.at(out, self.indices, self.data)
        return out

    def add(self, other: "CSRMatrix") -> "CSRMatrix":
        """Element-wise sum of two matrices with identical shape."""
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        self_rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        other_rows = np.repeat(np.arange(other.shape[0]), np.diff(other.indptr))
        return CSRMatrix.from_coo(
            np.concatenate([self_rows, other_rows]),
            np.concatenate([self.indices, other.indices]),
            np.concatenate([self.data, other.data]),
            self.shape,
        )

    # ------------------------------------------------------------------ #
    # Structural extraction (used by the FARe mapping algorithm)
    # ------------------------------------------------------------------ #
    def extract_block(
        self, row_start: int, row_stop: int, col_start: int, col_stop: int
    ) -> np.ndarray:
        """Return the dense ``[row_start:row_stop, col_start:col_stop]`` block.

        Blocks are at most crossbar-sized (128 × 128 by default), so returning
        a dense array is both convenient and cheap.
        """
        if not (0 <= row_start <= row_stop <= self.shape[0]):
            raise ValueError(f"invalid row range [{row_start}, {row_stop})")
        if not (0 <= col_start <= col_stop <= self.shape[1]):
            raise ValueError(f"invalid column range [{col_start}, {col_stop})")
        block = np.zeros((row_stop - row_start, col_stop - col_start), dtype=np.float64)
        start, stop = self.indptr[row_start], self.indptr[row_stop]
        cols = self.indices[start:stop]
        vals = self.data[start:stop]
        local_rows = np.repeat(
            np.arange(row_stop - row_start, dtype=np.int64),
            np.diff(self.indptr[row_start : row_stop + 1]),
        )
        mask = (cols >= col_start) & (cols < col_stop)
        block[local_rows[mask], cols[mask] - col_start] = vals[mask]
        return block

    def submatrix(self, node_ids: np.ndarray) -> "CSRMatrix":
        """Return the induced sub-matrix on ``node_ids`` (rows and columns).

        This is the operation that builds a subgraph adjacency for a
        Cluster-GCN batch.
        """
        node_ids = np.asarray(node_ids, dtype=np.int64)
        if node_ids.size and (node_ids.min() < 0 or node_ids.max() >= self.shape[0]):
            raise ValueError("node id out of range")
        remap = -np.ones(self.shape[1], dtype=np.int64)
        remap[node_ids] = np.arange(node_ids.size)
        starts = self.indptr[node_ids]
        counts = self.indptr[node_ids + 1] - starts
        total = int(counts.sum())
        if total:
            # Flat positions of every selected row's entries: each row's start
            # repeated, plus a within-row offset ramp.
            offsets = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            flat = np.repeat(starts, counts) + offsets
            rows = np.repeat(np.arange(node_ids.size, dtype=np.int64), counts)
            local_cols = remap[self.indices[flat]]
            keep = local_cols >= 0
            rows = rows[keep]
            cols = local_cols[keep]
            vals = self.data[flat][keep]
        else:
            rows = cols = np.zeros(0, dtype=np.int64)
            vals = np.zeros(0)
        return CSRMatrix.from_coo(
            rows, cols, vals, (node_ids.size, node_ids.size), sum_duplicates=False
        )

    def to_binary(self) -> "CSRMatrix":
        """Return the structural (0/1) version of this matrix."""
        return CSRMatrix(self.indptr, self.indices, np.ones_like(self.data), self.shape)

    def coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (rows, cols, values) coordinate arrays."""
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        return rows, self.indices.copy(), self.data.copy()
