"""Graph substrate: sparse matrices, graph containers, partitioning, sampling
and synthetic dataset generation.

The paper trains GNNs on PPI, Reddit, Amazon2M and OGB-citation2 with
METIS-partitioned mini-batches (Cluster-GCN style).  This package provides the
equivalent machinery built from scratch:

* :class:`~repro.graph.sparse.CSRMatrix` — a compressed-sparse-row matrix with
  the operations GNN aggregation needs (SpMM, transpose, block extraction).
* :class:`~repro.graph.graph.Graph` — adjacency + features + labels + splits.
* :mod:`~repro.graph.normalize` — symmetric/random-walk adjacency normalisation.
* :mod:`~repro.graph.partition` — a multilevel METIS-like partitioner.
* :mod:`~repro.graph.sampling` — Cluster-GCN batch construction.
* :mod:`~repro.graph.datasets` — synthetic surrogates for the paper's datasets.
"""

from repro.graph.sparse import CSRMatrix
from repro.graph.graph import Graph, Subgraph
from repro.graph.normalize import (
    add_self_loops,
    normalize_adjacency,
    row_normalize,
)
from repro.graph.partition import partition_graph, PartitionResult
from repro.graph.sampling import ClusterBatchSampler, ClusterBatch
from repro.graph.datasets import (
    DATASET_REGISTRY,
    DatasetSpec,
    load_dataset,
    synthetic_graph,
)

__all__ = [
    "CSRMatrix",
    "Graph",
    "Subgraph",
    "add_self_loops",
    "normalize_adjacency",
    "row_normalize",
    "partition_graph",
    "PartitionResult",
    "ClusterBatchSampler",
    "ClusterBatch",
    "DATASET_REGISTRY",
    "DatasetSpec",
    "load_dataset",
    "synthetic_graph",
]
