"""Cluster-GCN style mini-batch construction.

The paper (Section III-A / Table II) trains with mini-batches built from the
METIS partitions: each batch groups ``batch_size`` clusters, the induced
subgraph over their union is formed, and the GNN processes the subgraph's
adjacency on the ReRAM crossbars.  :class:`ClusterBatchSampler` reproduces
that procedure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.graph.graph import Graph, Subgraph
from repro.graph.partition import PartitionResult, partition_graph
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int


@dataclass
class ClusterBatch:
    """A single training batch: a subgraph plus the clusters it came from."""

    index: int
    cluster_ids: List[int]
    subgraph: Subgraph

    @property
    def num_nodes(self) -> int:
        return self.subgraph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.subgraph.num_edges


class ClusterBatchSampler:
    """Builds mini-batches by grouping graph partitions.

    Parameters
    ----------
    graph:
        The full training graph.
    num_parts:
        Number of clusters produced by the partitioner.
    batch_clusters:
        Number of clusters grouped into one mini-batch (Table II "Batch").
    seed:
        Seed controlling the partitioner and batch shuffling.
    partition:
        Optionally supply a precomputed :class:`PartitionResult` (used by
        tests and by experiments that share partitions across methods).
    """

    def __init__(
        self,
        graph: Graph,
        num_parts: int,
        batch_clusters: int,
        seed: Optional[int] = 0,
        partition: Optional[PartitionResult] = None,
    ) -> None:
        self.graph = graph
        self.num_parts = check_positive_int(num_parts, "num_parts")
        self.batch_clusters = check_positive_int(batch_clusters, "batch_clusters")
        if self.batch_clusters > self.num_parts:
            raise ValueError(
                f"batch_clusters ({batch_clusters}) cannot exceed num_parts "
                f"({num_parts})"
            )
        self._rng = ensure_rng(seed)
        self.partition = partition or partition_graph(
            graph.adjacency, num_parts, seed=seed
        )
        if self.partition.num_parts != self.num_parts:
            raise ValueError(
                "partition.num_parts does not match num_parts "
                f"({self.partition.num_parts} vs {self.num_parts})"
            )
        if self.partition.assignment.shape[0] != graph.num_nodes:
            raise ValueError(
                "injected partition covers "
                f"{self.partition.assignment.shape[0]} nodes but the graph "
                f"has {graph.num_nodes}"
            )

    @property
    def num_batches(self) -> int:
        """Number of batches per epoch."""
        return int(np.ceil(self.num_parts / self.batch_clusters))

    def epoch(self, shuffle: bool = True) -> Iterator[ClusterBatch]:
        """Yield the batches of one training epoch."""
        order = np.arange(self.num_parts)
        if shuffle:
            order = self._rng.permutation(self.num_parts)
        for batch_index in range(self.num_batches):
            start = batch_index * self.batch_clusters
            cluster_ids = order[start : start + self.batch_clusters].tolist()
            node_ids = np.concatenate(
                [self.partition.part_nodes(c) for c in cluster_ids]
            )
            node_ids.sort()
            yield ClusterBatch(
                index=batch_index,
                cluster_ids=cluster_ids,
                subgraph=self.graph.subgraph(node_ids),
            )

    def full_graph_batch(self) -> ClusterBatch:
        """Return the whole graph as a single batch (used for evaluation)."""
        node_ids = np.arange(self.graph.num_nodes)
        return ClusterBatch(
            index=0,
            cluster_ids=list(range(self.num_parts)),
            subgraph=self.graph.subgraph(node_ids),
        )
