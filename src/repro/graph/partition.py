"""Multilevel graph partitioning (METIS surrogate).

The paper partitions each input graph with METIS into a large number of small
clusters which are then grouped into mini-batches (Cluster-GCN style).  METIS
is not available offline, so this module implements the same three-phase
multilevel scheme from scratch:

1. **Coarsening** — heavy-edge matching repeatedly contracts the graph until
   it is small (or no further contraction is possible).
2. **Initial partitioning** — greedy BFS region growing assigns the coarse
   vertices to ``k`` balanced parts.
3. **Uncoarsening + refinement** — the assignment is projected back level by
   level and improved with a boundary Kernighan–Lin style refinement pass that
   moves vertices to reduce edge cut subject to a balance constraint.

The output quality matters only in so far as clusters must be balanced and
edge-local; the FARe algorithm itself is agnostic to the partitioner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.graph.sparse import CSRMatrix
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int


@dataclass
class PartitionResult:
    """Result of partitioning a graph into ``num_parts`` clusters."""

    assignment: np.ndarray
    num_parts: int
    edge_cut: int
    balance: float

    def part_nodes(self, part: int) -> np.ndarray:
        """Return the node ids assigned to ``part``."""
        if not 0 <= part < self.num_parts:
            raise IndexError(f"part {part} out of range (num_parts={self.num_parts})")
        return np.flatnonzero(self.assignment == part)

    def part_sizes(self) -> np.ndarray:
        """Return the number of nodes per part."""
        return np.bincount(self.assignment, minlength=self.num_parts)


# --------------------------------------------------------------------------- #
# Coarsening
# --------------------------------------------------------------------------- #
def _heavy_edge_matching(
    adjacency: CSRMatrix, rng: np.random.Generator
) -> Tuple[np.ndarray, int]:
    """Match each vertex with its heaviest unmatched neighbour.

    Returns ``(match, num_coarse)`` where ``match[v]`` is the coarse vertex id
    of ``v``.
    """
    n = adjacency.shape[0]
    match = -np.ones(n, dtype=np.int64)
    coarse_id = 0
    order = rng.permutation(n)
    for v in order:
        if match[v] >= 0:
            continue
        cols, vals = adjacency.row(v)
        best, best_weight = -1, -1.0
        for u, w in zip(cols, vals):
            if u != v and match[u] < 0 and w > best_weight:
                best, best_weight = int(u), float(w)
        if best >= 0:
            match[v] = coarse_id
            match[best] = coarse_id
        else:
            match[v] = coarse_id
        coarse_id += 1
    return match, coarse_id


def _heavy_edge_matching_streaming(
    adjacency: CSRMatrix, rng: np.random.Generator, rounds: int = 4
) -> Tuple[np.ndarray, int]:
    """Vectorised heavy-edge matching for large graphs (proposer/acceptor).

    Each round splits the unmatched vertices randomly into proposers and
    acceptors (the Luby-style symmetry break — if *every* vertex nominates
    its heaviest neighbour, nominations chase the same hubs and almost none
    are mutual).  Every proposer proposes to its heaviest unmatched
    acceptor-neighbour; every acceptor takes its heaviest proposal; the
    agreed pairs are matched.  Four rounds contract a level by ~45 %.
    Leftovers stay singletons.  Pure ``O(E log E)`` numpy per round — no
    per-vertex Python loop — so one level over a million-node graph costs a
    couple of lexsorts, not minutes.
    """
    n = adjacency.shape[0]
    rows, cols, vals = adjacency.coo()
    keep = rows != cols
    rows, cols, vals = rows[keep], cols[keep], vals[keep]
    matched = np.zeros(n, dtype=bool)
    pair_u: List[np.ndarray] = []
    pair_v: List[np.ndarray] = []
    for _ in range(rounds):
        proposer = rng.random(n) < 0.5
        live = (
            ~matched[rows] & ~matched[cols] & proposer[rows] & ~proposer[cols]
        )
        r, c, w = rows[live], cols[live], vals[live]
        if r.size == 0:
            continue
        priority = rng.permutation(n)
        # Per proposer: sort by (row, weight, priority); the last entry per
        # row is its heaviest live acceptor (random tie-break).
        order = np.lexsort((priority[c], w, r))
        r_s, c_s, w_s = r[order], c[order], w[order]
        last = np.flatnonzero(np.r_[r_s[1:] != r_s[:-1], True])
        prop_u, prop_v, prop_w = r_s[last], c_s[last], w_s[last]
        # Per acceptor: keep the heaviest proposal made to it.
        order = np.lexsort((priority[prop_u], prop_w, prop_v))
        u_s, v_s = prop_u[order], prop_v[order]
        last = np.flatnonzero(np.r_[v_s[1:] != v_s[:-1], True])
        u, v = u_s[last], v_s[last]
        matched[u] = True
        matched[v] = True
        pair_u.append(u)
        pair_v.append(v)
    match = -np.ones(n, dtype=np.int64)
    if pair_u:
        u = np.concatenate(pair_u)
        v = np.concatenate(pair_v)
        match[u] = np.arange(u.size)
        match[v] = match[u]
        num_pairs = u.size
    else:
        num_pairs = 0
    singles = np.flatnonzero(match < 0)
    match[singles] = num_pairs + np.arange(singles.size)
    return match, num_pairs + singles.size


def _contract(adjacency: CSRMatrix, match: np.ndarray, num_coarse: int) -> CSRMatrix:
    """Contract matched vertex pairs into a weighted coarse graph."""
    rows, cols, vals = adjacency.coo()
    coarse_rows = match[rows]
    coarse_cols = match[cols]
    keep = coarse_rows != coarse_cols
    return CSRMatrix.from_coo(
        coarse_rows[keep], coarse_cols[keep], vals[keep], (num_coarse, num_coarse)
    )


# --------------------------------------------------------------------------- #
# Initial partitioning
# --------------------------------------------------------------------------- #
def _region_growing(
    adjacency: CSRMatrix,
    node_weights: np.ndarray,
    num_parts: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Greedy BFS region growing into ``num_parts`` weight-balanced parts."""
    n = adjacency.shape[0]
    target = node_weights.sum() / num_parts
    assignment = -np.ones(n, dtype=np.int64)
    part_weight = np.zeros(num_parts)
    order = rng.permutation(n)
    cursor = 0
    for part in range(num_parts):
        # Find an unassigned seed.
        while cursor < n and assignment[order[cursor]] >= 0:
            cursor += 1
        if cursor >= n:
            break
        frontier = [int(order[cursor])]
        while frontier and part_weight[part] < target:
            v = frontier.pop()
            if assignment[v] >= 0:
                continue
            assignment[v] = part
            part_weight[part] += node_weights[v]
            cols, _ = adjacency.row(v)
            for u in cols:
                if assignment[u] < 0:
                    frontier.append(int(u))
    # Any remaining vertices go to the lightest part.
    for v in np.flatnonzero(assignment < 0):
        part = int(np.argmin(part_weight))
        assignment[v] = part
        part_weight[part] += node_weights[v]
    return assignment


# --------------------------------------------------------------------------- #
# Refinement
# --------------------------------------------------------------------------- #
def _refine(
    adjacency: CSRMatrix,
    node_weights: np.ndarray,
    assignment: np.ndarray,
    num_parts: int,
    max_passes: int = 2,
    imbalance: float = 1.3,
) -> np.ndarray:
    """Boundary refinement: move vertices to the neighbouring part with the
    largest cut-gain while keeping parts below ``imbalance × average``."""
    assignment = assignment.copy()
    n = adjacency.shape[0]
    part_weight = np.zeros(num_parts)
    np.add.at(part_weight, assignment, node_weights)
    limit = imbalance * node_weights.sum() / num_parts
    for _ in range(max_passes):
        moved = 0
        for v in range(n):
            cols, vals = adjacency.row(v)
            if cols.size == 0:
                continue
            current = assignment[v]
            gains = np.zeros(num_parts)
            np.add.at(gains, assignment[cols], vals)
            gains -= gains[current]
            gains[current] = 0.0
            best = int(np.argmax(gains))
            if gains[best] > 0 and part_weight[best] + node_weights[v] <= limit:
                part_weight[current] -= node_weights[v]
                part_weight[best] += node_weights[v]
                assignment[v] = best
                moved += 1
        if moved == 0:
            break
    return assignment


def _fill_empty_parts(
    assignment: np.ndarray, node_weights: np.ndarray, num_parts: int
) -> np.ndarray:
    """Give every empty part one vertex (lightest of the heaviest part).

    Refinement is gain-driven and may drain a small part completely; an
    empty part would later surface as a zero-node mini-batch.  Runs on the
    coarsest graph, so the loop is over at most ``num_parts`` empties.
    """
    counts = np.bincount(assignment, minlength=num_parts)
    empties = np.flatnonzero(counts == 0)
    if empties.size == 0:
        return assignment
    assignment = assignment.copy()
    part_weight = np.zeros(num_parts)
    np.add.at(part_weight, assignment, node_weights)
    for part in empties:
        donor = int(np.argmax(np.where(counts > 1, part_weight, -np.inf)))
        members = np.flatnonzero(assignment == donor)
        vertex = members[np.argmin(node_weights[members])]
        assignment[vertex] = part
        counts[donor] -= 1
        counts[part] += 1
        part_weight[donor] -= node_weights[vertex]
        part_weight[part] += node_weights[vertex]
    return assignment


def _edge_cut(adjacency: CSRMatrix, assignment: np.ndarray) -> int:
    rows, cols, _ = adjacency.coo()
    return int(np.count_nonzero(assignment[rows] != assignment[cols]) // 2)


# --------------------------------------------------------------------------- #
# Public API
# --------------------------------------------------------------------------- #
#: ``method="auto"`` switches to the streaming partitioner at this many nodes
#: (the per-vertex Python loops of the multilevel path stop being practical).
STREAMING_NODE_THRESHOLD = 50_000


def partition_graph(
    adjacency: CSRMatrix,
    num_parts: int,
    seed: Optional[int] = 0,
    coarsen_until: int = 200,
    max_levels: int = 10,
    method: str = "auto",
) -> PartitionResult:
    """Partition ``adjacency`` into ``num_parts`` balanced clusters.

    Parameters
    ----------
    adjacency:
        Symmetric adjacency matrix.
    num_parts:
        Number of clusters (the paper's "Partitions" column of Table II).
    seed:
        RNG seed controlling matching/growing tie-breaks.
    coarsen_until:
        Stop coarsening once the graph has at most ``max(coarsen_until,
        4 * num_parts)`` vertices.
    max_levels:
        Safety bound on the number of coarsening levels (the streaming
        method raises this floor to 16: its mutual matching contracts more
        slowly per level than sequential matching, and large graphs need the
        extra levels to reach the stop size).
    method:
        ``"multilevel"`` — the original three-phase scheme with per-level
        KL refinement (per-vertex Python loops; right for the CI-scale
        graphs).  ``"streaming"`` — fully vectorised coarsening (mutual
        heavy-edge matching), initial partitioning and refinement **on the
        coarsest graph only**, and plain projection back (no per-level
        refinement — the quality trade documented in
        ``docs/ARCHITECTURE.md``), so million-node graphs partition in
        ``O(E log E)`` per level with ``O(E)`` peak scratch.  ``"auto"``
        picks streaming at ``STREAMING_NODE_THRESHOLD`` nodes and above.
    """
    num_parts = check_positive_int(num_parts, "num_parts")
    n = adjacency.shape[0]
    if adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError("adjacency must be square")
    if num_parts > n:
        raise ValueError(f"cannot split {n} nodes into {num_parts} parts")
    if method not in ("auto", "multilevel", "streaming"):
        raise ValueError(
            f"method must be 'auto', 'multilevel' or 'streaming', got {method!r}"
        )
    if method == "auto":
        method = "streaming" if n >= STREAMING_NODE_THRESHOLD else "multilevel"
    rng = ensure_rng(seed)

    if num_parts == 1:
        assignment = np.zeros(n, dtype=np.int64)
        return PartitionResult(assignment, 1, 0, 1.0)

    streaming = method == "streaming"
    if streaming:
        max_levels = max(max_levels, 16)

    # Coarsening phase.  The streaming path stops at a finer coarsest graph
    # (16 coarse vertices per part instead of 4): it refines only there, so
    # it needs enough granularity for region growing to balance — at 4 per
    # part single heavy coarse vertices overshoot the part weight target.
    graphs: List[CSRMatrix] = [adjacency]
    weights: List[np.ndarray] = [np.ones(n)]
    matches: List[np.ndarray] = []
    per_part = 16 if streaming else 4
    stop_size = max(coarsen_until, per_part * num_parts)
    for _ in range(max_levels):
        current = graphs[-1]
        if current.shape[0] <= stop_size:
            break
        if streaming:
            match, num_coarse = _heavy_edge_matching_streaming(current, rng)
        else:
            match, num_coarse = _heavy_edge_matching(current, rng)
        if num_coarse >= current.shape[0]:
            break
        coarse_weights = np.zeros(num_coarse)
        np.add.at(coarse_weights, match, weights[-1])
        graphs.append(_contract(current, match, num_coarse))
        weights.append(coarse_weights)
        matches.append(match)

    # Initial partitioning on the coarsest graph.
    assignment = _region_growing(graphs[-1], weights[-1], num_parts, rng)
    assignment = _refine(graphs[-1], weights[-1], assignment, num_parts)
    if streaming:
        # No further refinement happens below: guarantee no empty parts now
        # (every coarse vertex carries >= 1 node through projection).
        assignment = _fill_empty_parts(assignment, weights[-1], num_parts)

    # Uncoarsening (+ per-level refinement on the multilevel path).
    for level in range(len(matches) - 1, -1, -1):
        assignment = assignment[matches[level]]
        if not streaming:
            assignment = _refine(
                graphs[level], weights[level], assignment, num_parts
            )

    sizes = np.bincount(assignment, minlength=num_parts).astype(np.float64)
    balance = float(sizes.max() / max(sizes.mean(), 1e-12))
    return PartitionResult(
        assignment=assignment,
        num_parts=num_parts,
        edge_cut=_edge_cut(adjacency, assignment),
        balance=balance,
    )
