"""Adjacency normalisation used by the GNN aggregation phase.

GCN uses the symmetric normalisation ``D^{-1/2} (A + I) D^{-1/2}``; GraphSAGE
uses mean aggregation which corresponds to the random-walk normalisation
``D^{-1} A``.  Both operate on the *structural* adjacency, so normalisation
must be recomputed after fault injection flips adjacency bits — the
:mod:`repro.pipeline.mapping_engine` does exactly that.
"""

from __future__ import annotations

import numpy as np

from repro.graph.sparse import CSRMatrix


def add_self_loops(adjacency: CSRMatrix) -> CSRMatrix:
    """Return ``A + I`` (existing self loops are not duplicated)."""
    n = adjacency.shape[0]
    if adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError("adjacency must be square")
    dense_diag = np.zeros(n, dtype=bool)
    rows, cols, _ = adjacency.coo()
    dense_diag[rows[rows == cols]] = True
    missing = np.flatnonzero(~dense_diag)
    if missing.size == 0:
        return adjacency
    eye_part = CSRMatrix.from_coo(missing, missing, np.ones(missing.size), adjacency.shape)
    return adjacency.add(eye_part)


def normalize_adjacency(
    adjacency: CSRMatrix, self_loops: bool = True, symmetric: bool = True
) -> CSRMatrix:
    """Return the normalised adjacency used for GCN-style aggregation.

    Parameters
    ----------
    adjacency:
        Structural adjacency matrix (binary values expected but not required).
    self_loops:
        If True, add ``I`` before normalising (the GCN ``A-hat``).
    symmetric:
        ``True`` → ``D^{-1/2} A D^{-1/2}``; ``False`` → ``D^{-1} A``.
    """
    mat = add_self_loops(adjacency) if self_loops else adjacency
    degrees = mat.row_sums()
    with np.errstate(divide="ignore"):
        if symmetric:
            inv_sqrt = np.where(degrees > 0, 1.0 / np.sqrt(degrees), 0.0)
            return mat.scale_rows(inv_sqrt).scale_cols(inv_sqrt)
        inv = np.where(degrees > 0, 1.0 / degrees, 0.0)
        return mat.scale_rows(inv)


def row_normalize(features: np.ndarray) -> np.ndarray:
    """Row-normalise a feature matrix (each row sums to one where possible)."""
    features = np.asarray(features, dtype=np.float64)
    sums = np.abs(features).sum(axis=1, keepdims=True)
    sums[sums == 0] = 1.0
    return features / sums
