"""Adjacency normalisation used by the GNN aggregation phase.

GCN uses the symmetric normalisation ``D^{-1/2} (A + I) D^{-1/2}``; GraphSAGE
uses mean aggregation which corresponds to the random-walk normalisation
``D^{-1} A``.  Both operate on the *structural* adjacency, so normalisation
must be recomputed after fault injection flips adjacency bits — the
:mod:`repro.pipeline.mapping_engine` does exactly that.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple

import numpy as np

from repro.graph.sparse import CSRMatrix
from repro.tensor import kernels


def add_self_loops(adjacency: CSRMatrix) -> CSRMatrix:
    """Return ``A + I`` (existing self loops are not duplicated)."""
    n = adjacency.shape[0]
    if adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError("adjacency must be square")
    dense_diag = np.zeros(n, dtype=bool)
    rows, cols, _ = adjacency.coo()
    dense_diag[rows[rows == cols]] = True
    missing = np.flatnonzero(~dense_diag)
    if missing.size == 0:
        return adjacency
    eye_part = CSRMatrix.from_coo(missing, missing, np.ones(missing.size), adjacency.shape)
    return adjacency.add(eye_part)


def normalize_adjacency(
    adjacency: CSRMatrix, self_loops: bool = True, symmetric: bool = True
) -> CSRMatrix:
    """Return the normalised adjacency used for GCN-style aggregation.

    Parameters
    ----------
    adjacency:
        Structural adjacency matrix (binary values expected but not required).
    self_loops:
        If True, add ``I`` before normalising (the GCN ``A-hat``).
    symmetric:
        ``True`` → ``D^{-1/2} A D^{-1/2}``; ``False`` → ``D^{-1} A``.
    """
    mat = add_self_loops(adjacency) if self_loops else adjacency
    degrees = mat.row_sums()
    with np.errstate(divide="ignore"):
        if symmetric:
            inv_sqrt = np.where(degrees > 0, 1.0 / np.sqrt(degrees), 0.0)
            return mat.scale_rows(inv_sqrt).scale_cols(inv_sqrt)
        inv = np.where(degrees > 0, 1.0 / degrees, 0.0)
        return mat.scale_rows(inv)


#: Identity-keyed memo of normalised adjacencies.  :class:`CSRMatrix` is
#: immutable, so object identity implies content identity.  Entries hold a
#: strong reference to the keyed matrix, which keeps its ``id()`` from being
#: recycled while the entry lives; the ``is`` check below makes a collision
#: with a *new* object at a reused address impossible.
_NORMALIZE_CACHE: "OrderedDict[Tuple[int, bool, bool], Tuple[CSRMatrix, CSRMatrix]]" = (
    OrderedDict()
)
_NORMALIZE_CACHE_SIZE = 64


def normalize_adjacency_cached(
    adjacency: CSRMatrix, self_loops: bool = True, symmetric: bool = True
) -> CSRMatrix:
    """Memoised :func:`normalize_adjacency`, keyed on object identity.

    The epoch-cached read-back (:mod:`repro.core.hw_state`) returns the
    *same* adjacency object for every batch until the hardware state
    changes, so the per-forward normalisation — recomputed on every model
    call in the seed path — collapses to a dictionary hit.  Fresh matrices
    fall through to one full normalisation (LRU-bounded, so uncached
    training does not accumulate entries indefinitely).
    """
    key = (id(adjacency), bool(self_loops), bool(symmetric))
    hit = _NORMALIZE_CACHE.get(key)
    if hit is not None and hit[0] is adjacency:
        _NORMALIZE_CACHE.move_to_end(key)
        return hit[1]
    result = normalize_adjacency(adjacency, self_loops=self_loops, symmetric=symmetric)
    _NORMALIZE_CACHE[key] = (adjacency, result)
    _NORMALIZE_CACHE.move_to_end(key)
    while len(_NORMALIZE_CACHE) > _NORMALIZE_CACHE_SIZE:
        _NORMALIZE_CACHE.popitem(last=False)
    return result


def clear_normalize_cache() -> None:
    """Release all memoised normalised adjacencies (and their pinned keys).

    The memo holds strong references to up to ``_NORMALIZE_CACHE_SIZE``
    adjacency/normalised pairs; long-running processes that sweep many
    training runs can call this between runs to release them early (the LRU
    bound caps the retention either way).
    """
    _NORMALIZE_CACHE.clear()
    _AGGREGATE_CACHE.clear()


#: Identity-keyed memo of weight-independent first-layer aggregations
#: ``A @ X`` (and the row sums ``A @ 1`` the reassociated GCN bias term
#: needs).  Same safety argument as ``_NORMALIZE_CACHE``: both the adjacency
#: and the feature array are pinned by the entry, so a reused ``id()`` can
#: never collide with a live key, and the ``is`` checks reject stale hits.
_AGGREGATE_CACHE: "OrderedDict[Tuple[int, int], Tuple[CSRMatrix, np.ndarray, np.ndarray, np.ndarray]]" = (
    OrderedDict()
)
_AGGREGATE_CACHE_SIZE = 128


def aggregate_features_cached(
    adjacency: CSRMatrix, features: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Memoised ``(A @ X, A @ 1)`` for a (normalised) adjacency.

    The first GNN layer's aggregation does not depend on the weights, so
    across the many forward passes that reuse one hardware-stable adjacency
    (every epoch between fault events) it can be computed once:
    ``A @ (X W + 1 bᵀ)`` reassociates to ``(A X) W + (A 1) bᵀ``, turning the
    per-step layer-1 spmm (and its backward transpose spmm) into a dense
    GEMM on the cached ``A X``.  The reassociation is covered by the
    documented round-off contract (see ``docs/ARCHITECTURE.md``); GraphSAGE
    consumes ``A X`` directly, which is bit-identical (same ``csr_matmat``
    call).  Hit/miss counts land in the ``kernel_batched_agg_cache_*``
    counters.
    """
    key = (id(adjacency), id(features))
    hit = _AGGREGATE_CACHE.get(key)
    if hit is not None and hit[0] is adjacency and hit[1] is features:
        _AGGREGATE_CACHE.move_to_end(key)
        kernels.COUNTERS.batched_agg_cache_hits += 1
        return hit[2], hit[3]
    kernels.COUNTERS.batched_agg_cache_misses += 1
    aggregated = adjacency.dot(np.asarray(features, dtype=np.float64))
    ones_sum = adjacency.row_sums()
    _AGGREGATE_CACHE[key] = (adjacency, features, aggregated, ones_sum)
    _AGGREGATE_CACHE.move_to_end(key)
    while len(_AGGREGATE_CACHE) > _AGGREGATE_CACHE_SIZE:
        _AGGREGATE_CACHE.popitem(last=False)
    return aggregated, ones_sum


def row_normalize(features: np.ndarray) -> np.ndarray:
    """Row-normalise a feature matrix (each row sums to one where possible)."""
    features = np.asarray(features, dtype=np.float64)
    sums = np.abs(features).sum(axis=1, keepdims=True)
    sums[sums == 0] = 1.0
    return features / sums
