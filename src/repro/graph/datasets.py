"""Synthetic surrogate datasets for PPI, Reddit, Amazon2M and OGB-citation2.

The real datasets require downloads (and, for Amazon2M/OGB, several GB of
storage); this environment is offline, so each dataset is replaced by a
synthetic surrogate generated from a stochastic block model whose node
features are correlated with the community structure.  The surrogates preserve
the properties the FARe experiments actually exercise:

* community structure so that GNN aggregation is informative and a trained
  model reaches high accuracy on clean hardware (giving faults headroom to
  destroy),
* extreme block-level sparsity of the adjacency matrix (the paper reports
  block edge densities as low as 0.001), which is what the fault-aware
  mapping exploits,
* the relative size ordering PPI < Reddit < Amazon2M ≈ Ogbl, scaled down by a
  constant factor so experiments run on a CPU,
* multi-label classification for PPI (trained with BCE / evaluated with
  micro-F1) versus single-label for the rest.

Table II of the paper (dataset statistics + hyperparameters) is reproduced by
:func:`repro.experiments.tables.table2_rows`, which reports both the paper's
figures and the surrogate's actual statistics.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.graph.graph import Graph, graph_from_edges
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fraction, check_positive_int


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a dataset surrogate and its paper counterpart.

    ``paper_nodes``/``paper_edges`` reproduce Table II; the ``surrogate_*``
    fields control the synthetic generator at ``scale='paper'``.  The ``ci``
    scale divides node counts further so the full benchmark suite completes
    in CPU-minutes.
    """

    name: str
    paper_nodes: int
    paper_edges: int
    paper_batch: int
    paper_partitions: int
    models: Tuple[str, ...]
    multilabel: bool
    surrogate_nodes: int
    surrogate_communities: int
    surrogate_features: int
    surrogate_classes: int
    avg_degree: float
    intra_ratio: float = 0.9
    feature_noise: float = 0.6
    ci_nodes: int = 0
    ci_communities: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    def nodes_for_scale(self, scale: str) -> int:
        if scale == "paper":
            return self.surrogate_nodes
        if scale == "ci":
            return self.ci_nodes or max(self.surrogate_nodes // 4, 64)
        raise ValueError(f"unknown scale {scale!r}; expected 'paper' or 'ci'")

    def communities_for_scale(self, scale: str) -> int:
        if scale == "paper":
            return self.surrogate_communities
        if scale == "ci":
            return self.ci_communities or max(self.surrogate_communities // 2, 4)
        raise ValueError(f"unknown scale {scale!r}; expected 'paper' or 'ci'")


#: Registry keyed by the dataset names used throughout the paper.
DATASET_REGISTRY: Dict[str, DatasetSpec] = {
    "ppi": DatasetSpec(
        name="ppi",
        paper_nodes=56_944,
        paper_edges=818_716,
        paper_batch=5,
        paper_partitions=250,
        models=("gcn", "gat"),
        multilabel=True,
        surrogate_nodes=1_200,
        surrogate_communities=24,
        surrogate_features=48,
        surrogate_classes=10,
        avg_degree=14.0,
        ci_nodes=360,
        ci_communities=12,
    ),
    "reddit": DatasetSpec(
        name="reddit",
        paper_nodes=232_965,
        paper_edges=11_606_919,
        paper_batch=10,
        paper_partitions=1_500,
        models=("gcn",),
        multilabel=False,
        surrogate_nodes=1_800,
        surrogate_communities=30,
        surrogate_features=64,
        surrogate_classes=12,
        avg_degree=25.0,
        ci_nodes=480,
        ci_communities=12,
    ),
    "amazon2m": DatasetSpec(
        name="amazon2m",
        paper_nodes=2_449_029,
        paper_edges=61_859_140,
        paper_batch=20,
        paper_partitions=10_000,
        models=("gcn", "sage"),
        multilabel=False,
        surrogate_nodes=2_400,
        surrogate_communities=40,
        surrogate_features=64,
        surrogate_classes=16,
        avg_degree=25.0,
        feature_noise=1.5,
        ci_nodes=600,
        ci_communities=16,
    ),
    "ogbl": DatasetSpec(
        name="ogbl",
        paper_nodes=2_927_963,
        paper_edges=30_561_187,
        paper_batch=16,
        paper_partitions=15_000,
        models=("sage",),
        multilabel=False,
        surrogate_nodes=2_600,
        surrogate_communities=40,
        surrogate_features=64,
        surrogate_classes=16,
        avg_degree=11.0,
        feature_noise=1.5,
        ci_nodes=640,
        ci_communities=16,
    ),
}


# --------------------------------------------------------------------------- #
# Synthetic generator
# --------------------------------------------------------------------------- #
def synthetic_graph(
    num_nodes: int,
    num_communities: int,
    num_features: int,
    num_classes: int,
    avg_degree: float = 12.0,
    intra_ratio: float = 0.9,
    feature_noise: float = 0.6,
    multilabel: bool = False,
    train_fraction: float = 0.6,
    val_fraction: float = 0.2,
    name: str = "synthetic",
    seed: Optional[int] = 0,
) -> Graph:
    """Generate a community-structured node-classification graph.

    The generator draws a planted-partition (stochastic block model) graph:
    each node belongs to one of ``num_communities`` communities; a fraction
    ``intra_ratio`` of its ``avg_degree`` expected edges land inside the
    community and the remainder land anywhere.  Node features are the
    community centroid plus Gaussian noise, projected through a random linear
    map so features are dense and non-trivially correlated.  Labels are the
    community id folded onto ``num_classes`` classes (single-label) or a
    multi-hot encoding of latent attributes (multi-label, PPI-style).
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    num_communities = check_positive_int(num_communities, "num_communities")
    num_features = check_positive_int(num_features, "num_features")
    num_classes = check_positive_int(num_classes, "num_classes")
    check_fraction(train_fraction, "train_fraction")
    check_fraction(val_fraction, "val_fraction")
    if train_fraction + val_fraction >= 1.0:
        raise ValueError("train_fraction + val_fraction must be < 1")
    if avg_degree <= 0:
        raise ValueError(f"avg_degree must be positive, got {avg_degree}")
    check_fraction(intra_ratio, "intra_ratio")
    rng = ensure_rng(seed)

    communities = rng.integers(0, num_communities, size=num_nodes)
    community_nodes = [np.flatnonzero(communities == c) for c in range(num_communities)]

    # --- edges -----------------------------------------------------------
    num_edges_target = int(num_nodes * avg_degree / 2)
    num_intra = int(num_edges_target * intra_ratio)
    num_inter = num_edges_target - num_intra

    src_list = []
    dst_list = []
    # Intra-community edges: pick a community proportional to its size, then
    # two distinct members.
    community_sizes = np.array([len(c) for c in community_nodes], dtype=np.float64)
    eligible = community_sizes >= 2
    if eligible.any():
        probs = np.where(eligible, community_sizes, 0.0)
        probs /= probs.sum()
        chosen = rng.choice(num_communities, size=num_intra, p=probs)
        for c in chosen:
            pair = rng.choice(community_nodes[c], size=2, replace=False)
            src_list.append(pair[0])
            dst_list.append(pair[1])
    # Inter-community (or random) edges.
    src_list.extend(rng.integers(0, num_nodes, size=num_inter).tolist())
    dst_list.extend(rng.integers(0, num_nodes, size=num_inter).tolist())
    edges = np.stack(
        [np.asarray(src_list, dtype=np.int64), np.asarray(dst_list, dtype=np.int64)],
        axis=1,
    )

    # --- features ---------------------------------------------------------
    latent_dim = min(num_features, max(num_communities, 8))
    centroids = rng.normal(0.0, 1.0, size=(num_communities, latent_dim))
    latent = centroids[communities] + feature_noise * rng.normal(
        0.0, 1.0, size=(num_nodes, latent_dim)
    )
    projection = rng.normal(0.0, 1.0 / np.sqrt(latent_dim), size=(latent_dim, num_features))
    features = latent @ projection
    features += 0.05 * rng.normal(0.0, 1.0, size=features.shape)

    # --- labels -----------------------------------------------------------
    if multilabel:
        # Each class is a random half-space over the latent space; a node's
        # label vector marks which half-spaces its latent vector falls into.
        class_dirs = rng.normal(0.0, 1.0, size=(num_classes, latent_dim))
        scores = latent @ class_dirs.T
        thresholds = np.median(scores, axis=0, keepdims=True)
        labels = (scores > thresholds).astype(np.int64)
    else:
        labels = (communities % num_classes).astype(np.int64)

    # --- splits -----------------------------------------------------------
    order = rng.permutation(num_nodes)
    n_train = int(train_fraction * num_nodes)
    n_val = int(val_fraction * num_nodes)
    train_mask = np.zeros(num_nodes, dtype=bool)
    val_mask = np.zeros(num_nodes, dtype=bool)
    test_mask = np.zeros(num_nodes, dtype=bool)
    train_mask[order[:n_train]] = True
    val_mask[order[n_train : n_train + n_val]] = True
    test_mask[order[n_train + n_val :]] = True

    graph = graph_from_edges(
        num_nodes=num_nodes,
        edges=edges,
        features=features,
        labels=labels,
        train_mask=train_mask,
        val_mask=val_mask,
        test_mask=test_mask,
        name=name,
    )
    graph.metadata.update(
        {
            "num_communities": float(num_communities),
            "avg_degree": float(avg_degree),
            "intra_ratio": float(intra_ratio),
        }
    )
    return graph


def synthetic_graph_streaming(
    num_nodes: int,
    num_communities: int,
    num_features: int,
    num_classes: int,
    avg_degree: float = 8.0,
    intra_ratio: float = 0.9,
    feature_noise: float = 0.6,
    train_fraction: float = 0.6,
    val_fraction: float = 0.2,
    name: str = "synthetic-streaming",
    seed: Optional[int] = 0,
    chunk_nodes: int = 262_144,
) -> Graph:
    """Memory-bounded generator for million-node planted-partition graphs.

    Draws the same family of graphs as :func:`synthetic_graph` — community
    structure, community-correlated features, community-derived labels — but
    every step is fully vectorised and the features are filled in chunks of
    ``chunk_nodes`` rows, so peak memory stays at the size of the *outputs*
    (CSR adjacency, feature matrix, masks) plus one chunk of scratch.  No
    dense ``N x N`` intermediate ever exists; at ``10^6`` nodes generation is
    dominated by the ``O(E)`` edge arrays.

    Differences from :func:`synthetic_graph` (deliberate, documented):

    * its own RNG stream — the per-edge Python loop of the small generator
      is replaced by one vectorised distinct-pair draw, so the two
      generators produce different (same-distribution) graphs even for the
      same seed, and the small generator's stream stays untouched;
    * single-label only (multi-label PPI surrogates are small; the streaming
      sizes model Reddit/Amazon2M-class graphs, which are single-label).
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    num_communities = check_positive_int(num_communities, "num_communities")
    num_features = check_positive_int(num_features, "num_features")
    num_classes = check_positive_int(num_classes, "num_classes")
    chunk_nodes = check_positive_int(chunk_nodes, "chunk_nodes")
    check_fraction(train_fraction, "train_fraction")
    check_fraction(val_fraction, "val_fraction")
    if train_fraction + val_fraction >= 1.0:
        raise ValueError("train_fraction + val_fraction must be < 1")
    if avg_degree <= 0:
        raise ValueError(f"avg_degree must be positive, got {avg_degree}")
    check_fraction(intra_ratio, "intra_ratio")
    rng = ensure_rng(seed)

    communities = rng.integers(0, num_communities, size=num_nodes)
    sizes = np.bincount(communities, minlength=num_communities)
    # Nodes grouped by community: members[starts[c]:starts[c]+sizes[c]] are
    # the nodes of community c (stable order = node-id order within c).
    members = np.argsort(communities, kind="stable")
    starts = np.concatenate([[0], np.cumsum(sizes)[:-1]])

    # --- edges (one vectorised draw instead of a per-edge loop) ----------
    num_edges_target = int(num_nodes * avg_degree / 2)
    num_intra = int(num_edges_target * intra_ratio)
    num_inter = num_edges_target - num_intra
    eligible = sizes >= 2
    if eligible.any() and num_intra:
        probs = np.where(eligible, sizes.astype(np.float64), 0.0)
        probs /= probs.sum()
        chosen = rng.choice(num_communities, size=num_intra, p=probs)
        span = sizes[chosen]
        # Distinct ordered pair inside each chosen community: u uniform in
        # [0, s), v uniform over the s-1 remaining slots (shift past u).
        u_local = np.floor(rng.random(num_intra) * span).astype(np.int64)
        v_local = np.floor(rng.random(num_intra) * (span - 1)).astype(np.int64)
        v_local += (v_local >= u_local).astype(np.int64)
        intra_src = members[starts[chosen] + u_local]
        intra_dst = members[starts[chosen] + v_local]
    else:
        intra_src = intra_dst = np.zeros(0, dtype=np.int64)
    inter_src = rng.integers(0, num_nodes, size=num_inter)
    inter_dst = rng.integers(0, num_nodes, size=num_inter)
    edges = np.stack(
        [
            np.concatenate([intra_src, inter_src]),
            np.concatenate([intra_dst, inter_dst]),
        ],
        axis=1,
    )

    # --- features (chunked: scratch is one chunk, not the full matrix) ---
    latent_dim = min(num_features, max(num_communities, 8))
    centroids = rng.normal(0.0, 1.0, size=(num_communities, latent_dim))
    projection = rng.normal(
        0.0, 1.0 / np.sqrt(latent_dim), size=(latent_dim, num_features)
    )
    features = np.empty((num_nodes, num_features), dtype=np.float64)
    for start in range(0, num_nodes, chunk_nodes):
        stop = min(start + chunk_nodes, num_nodes)
        latent = centroids[communities[start:stop]]
        latent += feature_noise * rng.normal(0.0, 1.0, size=latent.shape)
        chunk = latent @ projection
        chunk += 0.05 * rng.normal(0.0, 1.0, size=chunk.shape)
        features[start:stop] = chunk

    labels = (communities % num_classes).astype(np.int64)

    # --- splits -----------------------------------------------------------
    order = rng.permutation(num_nodes)
    n_train = int(train_fraction * num_nodes)
    n_val = int(val_fraction * num_nodes)
    train_mask = np.zeros(num_nodes, dtype=bool)
    val_mask = np.zeros(num_nodes, dtype=bool)
    test_mask = np.zeros(num_nodes, dtype=bool)
    train_mask[order[:n_train]] = True
    val_mask[order[n_train : n_train + n_val]] = True
    test_mask[order[n_train + n_val :]] = True

    graph = graph_from_edges(
        num_nodes=num_nodes,
        edges=edges,
        features=features,
        labels=labels,
        train_mask=train_mask,
        val_mask=val_mask,
        test_mask=test_mask,
        name=name,
    )
    graph.metadata.update(
        {
            "num_communities": float(num_communities),
            "avg_degree": float(avg_degree),
            "intra_ratio": float(intra_ratio),
            "streaming": 1.0,
        }
    )
    return graph


def edge_list_graph_streaming(
    path: str,
    num_features: int = 64,
    num_classes: int = 16,
    feature_noise: float = 0.6,
    train_fraction: float = 0.6,
    val_fraction: float = 0.2,
    name: Optional[str] = None,
    seed: Optional[int] = 0,
    chunk_nodes: int = 262_144,
    chunk_edges: int = 1_048_576,
) -> Graph:
    """Load a real graph file through the streaming-generation contract.

    Reads either a NumPy ``.npz`` archive or a whitespace/comma-separated
    text edge list and produces a :class:`Graph` with exactly the shape
    contract of :func:`synthetic_graph_streaming` — chunked scratch (never
    more than ``chunk_nodes`` feature rows or ``chunk_edges`` parsed edges
    of temporary state beyond the outputs), single-label classes, metadata
    ``streaming`` marker — so Reddit/Amazon2M-class exports run through the
    streaming partitioner/trainer when present without being baked into the
    repo.

    ``.npz`` contents (all optional except the edges):

    * ``edges`` — ``(E, 2)`` int array, or separate ``src``/``dst`` arrays;
    * ``num_nodes`` — scalar (default: max node id + 1);
    * ``features`` — ``(N, F)`` float array; synthesised when absent;
    * ``labels`` — ``(N,)`` int array; synthesised when absent;
    * ``train_mask``/``val_mask``/``test_mask`` — ``(N,)`` bool arrays
      (used only when all three are present; a permutation split is drawn
      otherwise).

    Text edge lists hold one ``src dst`` pair per line (``#``/``%`` comment
    lines and blank lines are skipped) and are parsed in chunks of
    ``chunk_edges`` lines.  Missing features/labels are synthesised with the
    same chunked centroid recipe as the synthetic streaming generator, from
    pseudo-communities drawn per node — a *surrogate* signal for structure-
    only exports, clearly weaker than real features but sufficient to
    exercise the training pipeline end-to-end.
    """
    num_features = check_positive_int(num_features, "num_features")
    num_classes = check_positive_int(num_classes, "num_classes")
    chunk_nodes = check_positive_int(chunk_nodes, "chunk_nodes")
    chunk_edges = check_positive_int(chunk_edges, "chunk_edges")
    check_fraction(train_fraction, "train_fraction")
    check_fraction(val_fraction, "val_fraction")
    if train_fraction + val_fraction >= 1.0:
        raise ValueError("train_fraction + val_fraction must be < 1")
    rng = ensure_rng(seed)
    path = str(path)

    features = labels = None
    masks = None
    num_nodes = None
    if path.endswith(".npz"):
        with np.load(path) as archive:
            if "edges" in archive:
                edges = np.asarray(archive["edges"], dtype=np.int64)
                if edges.ndim != 2 or edges.shape[1] != 2:
                    raise ValueError(
                        f"'edges' must have shape (E, 2), got {edges.shape}"
                    )
            elif "src" in archive and "dst" in archive:
                edges = np.stack(
                    [
                        np.asarray(archive["src"], dtype=np.int64),
                        np.asarray(archive["dst"], dtype=np.int64),
                    ],
                    axis=1,
                )
            else:
                raise ValueError(
                    f"{path}: expected 'edges' or 'src'+'dst' arrays, "
                    f"found {sorted(archive.files)}"
                )
            if "num_nodes" in archive:
                num_nodes = int(np.asarray(archive["num_nodes"]).reshape(-1)[0])
            if "features" in archive:
                features = np.asarray(archive["features"], dtype=np.float64)
            if "labels" in archive:
                labels = np.asarray(archive["labels"], dtype=np.int64)
            mask_names = ("train_mask", "val_mask", "test_mask")
            if all(key in archive for key in mask_names):
                masks = tuple(
                    np.asarray(archive[key], dtype=bool) for key in mask_names
                )
    else:
        src_parts = []
        dst_parts = []
        pending: list = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                text = line.strip()
                if not text or text[0] in "#%":
                    continue
                fields = text.replace(",", " ").split()
                if len(fields) < 2:
                    raise ValueError(f"{path}: malformed edge line {text!r}")
                pending.append((int(fields[0]), int(fields[1])))
                if len(pending) >= chunk_edges:
                    block = np.asarray(pending, dtype=np.int64)
                    pending = []
                    src_parts.append(block[:, 0])
                    dst_parts.append(block[:, 1])
        if pending:
            block = np.asarray(pending, dtype=np.int64)
            src_parts.append(block[:, 0])
            dst_parts.append(block[:, 1])
        if not src_parts:
            raise ValueError(f"{path}: no edges found")
        edges = np.stack(
            [np.concatenate(src_parts), np.concatenate(dst_parts)], axis=1
        )

    if edges.size and edges.min() < 0:
        raise ValueError(f"{path}: negative node id in edge list")
    min_nodes = int(edges.max()) + 1 if edges.size else 0
    if num_nodes is None:
        num_nodes = max(
            min_nodes,
            features.shape[0] if features is not None else 0,
            labels.shape[0] if labels is not None else 0,
        )
    elif num_nodes < min_nodes:
        raise ValueError(
            f"{path}: num_nodes={num_nodes} but edges reference node "
            f"{min_nodes - 1}"
        )
    num_nodes = check_positive_int(num_nodes, "num_nodes")

    if labels is not None:
        if labels.shape != (num_nodes,):
            raise ValueError(
                f"labels must have shape ({num_nodes},), got {labels.shape}"
            )
        communities = labels
        num_classes = int(labels.max()) + 1 if labels.size else num_classes
    else:
        # Structure-only export: pseudo-communities stand in for the label
        # signal, mirroring the synthetic streaming generator.
        communities = rng.integers(0, num_classes, size=num_nodes)
        labels = (communities % num_classes).astype(np.int64)

    if features is not None:
        if features.ndim != 2 or features.shape[0] != num_nodes:
            raise ValueError(
                f"features must have shape ({num_nodes}, F), got "
                f"{features.shape}"
            )
    else:
        # Same chunked centroid recipe as synthetic_graph_streaming: scratch
        # never exceeds one chunk of latent rows.
        latent_dim = min(num_features, max(num_classes, 8))
        centroids = rng.normal(0.0, 1.0, size=(num_classes, latent_dim))
        projection = rng.normal(
            0.0, 1.0 / np.sqrt(latent_dim), size=(latent_dim, num_features)
        )
        features = np.empty((num_nodes, num_features), dtype=np.float64)
        label_bins = communities % num_classes
        for start in range(0, num_nodes, chunk_nodes):
            stop = min(start + chunk_nodes, num_nodes)
            latent = centroids[label_bins[start:stop]]
            latent += feature_noise * rng.normal(0.0, 1.0, size=latent.shape)
            chunk = latent @ projection
            chunk += 0.05 * rng.normal(0.0, 1.0, size=chunk.shape)
            features[start:stop] = chunk

    if masks is not None:
        train_mask, val_mask, test_mask = masks
        for mask_name, mask in zip(
            ("train_mask", "val_mask", "test_mask"), masks
        ):
            if mask.shape != (num_nodes,):
                raise ValueError(
                    f"{mask_name} must have shape ({num_nodes},), got "
                    f"{mask.shape}"
                )
    else:
        order = rng.permutation(num_nodes)
        n_train = int(train_fraction * num_nodes)
        n_val = int(val_fraction * num_nodes)
        train_mask = np.zeros(num_nodes, dtype=bool)
        val_mask = np.zeros(num_nodes, dtype=bool)
        test_mask = np.zeros(num_nodes, dtype=bool)
        train_mask[order[:n_train]] = True
        val_mask[order[n_train : n_train + n_val]] = True
        test_mask[order[n_train + n_val :]] = True

    graph = graph_from_edges(
        num_nodes=num_nodes,
        edges=edges,
        features=features,
        labels=labels,
        train_mask=train_mask,
        val_mask=val_mask,
        test_mask=test_mask,
        name=name or os.path.splitext(os.path.basename(path))[0],
    )
    graph.metadata.update({"streaming": 1.0, "real_edges": 1.0})
    return graph


def load_dataset(name: str, scale: str = "ci", seed: Optional[int] = 0) -> Graph:
    """Instantiate the synthetic surrogate for a paper dataset.

    Parameters
    ----------
    name:
        One of ``ppi``, ``reddit``, ``amazon2m``, ``ogbl``.
    scale:
        ``'paper'`` for the full surrogate size, ``'ci'`` for the scaled-down
        version used in the automated benchmark/test suite.
    seed:
        Generator seed (experiments fix this so every method sees the same
        graph).
    """
    key = name.lower()
    if key not in DATASET_REGISTRY:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_REGISTRY)}"
        )
    spec = DATASET_REGISTRY[key]
    return synthetic_graph(
        num_nodes=spec.nodes_for_scale(scale),
        num_communities=spec.communities_for_scale(scale),
        num_features=spec.surrogate_features,
        num_classes=spec.surrogate_classes,
        avg_degree=spec.avg_degree,
        intra_ratio=spec.intra_ratio,
        feature_noise=spec.feature_noise,
        multilabel=spec.multilabel,
        name=spec.name,
        seed=seed,
    )
