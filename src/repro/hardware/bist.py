"""Built-in self-test (BIST) model.

The FARe mapping algorithm consumes the fault distribution reported by a BIST
circuit (reference [7] of the paper).  The BIST adds ~0.13 % area and, when it
is re-run at the end of each epoch to capture post-deployment faults, ~0.13 %
of execution time.  This module models the *functional* interface — producing
(possibly imperfect) fault maps from the true crossbar state — plus those
overhead constants, which the timing model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.hardware.config import DEFAULT_CONFIG, ReRAMConfig
from repro.hardware.crossbar import Crossbar
from repro.hardware.faults import FaultMap
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fraction


@dataclass
class BISTReport:
    """Result of one BIST scan across a set of crossbars."""

    fault_maps: List[FaultMap]
    scan_index: int
    detected_faults: int
    missed_faults: int
    coverage: float
    time_overhead_fraction: float

    def density(self) -> float:
        """Detected fault density across the scanned crossbars."""
        cells = sum(f.sa0.size for f in self.fault_maps)
        return self.detected_faults / cells if cells else 0.0


class BISTController:
    """Scans crossbars and reports their stuck-at-fault maps.

    Parameters
    ----------
    config:
        Architecture configuration (provides the overhead constants).
    coverage:
        Probability that an individual fault is detected; 1.0 models the
        paper's assumption of an ideal March-test based BIST.
    seed:
        RNG seed used only when ``coverage < 1``.
    """

    def __init__(
        self,
        config: ReRAMConfig = DEFAULT_CONFIG,
        coverage: float = 1.0,
        seed: Optional[int] = None,
    ) -> None:
        self.config = config
        self.coverage = check_fraction(coverage, "coverage")
        self._rng = ensure_rng(seed)
        self.scan_count = 0
        self.history: List[BISTReport] = []

    def scan(self, crossbars: Sequence[Crossbar]) -> BISTReport:
        """Scan ``crossbars`` and return the detected fault maps.

        With full coverage the detected maps equal the true maps; with partial
        coverage each fault is independently missed with probability
        ``1 - coverage`` (missed faults simply do not appear in the report).
        """
        detected_maps: List[FaultMap] = []
        detected = 0
        missed = 0
        for crossbar in crossbars:
            true_map = crossbar.fault_map
            if self.coverage >= 1.0:
                found = true_map.copy()
            else:
                keep_sa0 = true_map.sa0 & (
                    self._rng.random(true_map.shape) < self.coverage
                )
                keep_sa1 = true_map.sa1 & (
                    self._rng.random(true_map.shape) < self.coverage
                )
                found = FaultMap(keep_sa0, keep_sa1)
            detected += found.num_faults
            missed += true_map.num_faults - found.num_faults
            detected_maps.append(found)
        report = BISTReport(
            fault_maps=detected_maps,
            scan_index=self.scan_count,
            detected_faults=detected,
            missed_faults=missed,
            coverage=self.coverage,
            time_overhead_fraction=self.config.bist_time_overhead,
        )
        self.scan_count += 1
        self.history.append(report)
        return report

    @property
    def area_overhead_fraction(self) -> float:
        """Fractional area added by the BIST circuitry (paper: 0.13 %)."""
        return self.config.bist_area_overhead
