"""Write-endurance modelling and post-deployment fault scheduling.

ReRAM cells endure 10^6–10^12 writes before failing (Section IV-A).  During
pipelined mini-batch training the adjacency crossbars are rewritten every
batch, so faults can emerge *post-deployment*.  The paper's worst-case
experiment adds a total of 1 % extra fault density spread uniformly over the
training epochs; :class:`PostDeploymentSchedule` reproduces that protocol, and
:class:`EnduranceModel` links write counts to failure probability for the
finer-grained analyses in the test-suite and ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.utils.validation import check_fraction, check_positive_int


@dataclass(frozen=True)
class EnduranceModel:
    """Log-normal write-endurance model.

    A cell fails once its cumulative write count exceeds its endurance, which
    is drawn (conceptually) from a log-normal distribution centred at
    ``mean_endurance``.  The closed-form helpers below avoid storing a sample
    per cell by working with the population failure probability.
    """

    mean_endurance: float = 1e9
    sigma_log10: float = 0.5

    def __post_init__(self) -> None:
        if self.mean_endurance <= 0:
            raise ValueError("mean_endurance must be positive")
        if self.sigma_log10 <= 0:
            raise ValueError("sigma_log10 must be positive")

    def failure_probability(self, writes: float) -> float:
        """Probability that a cell has failed after ``writes`` write cycles."""
        if writes <= 0:
            return 0.0
        z = (np.log10(writes) - np.log10(self.mean_endurance)) / self.sigma_log10
        # Standard normal CDF via the error function.
        from math import erf, sqrt

        return 0.5 * (1.0 + erf(z / sqrt(2.0)))

    def expected_new_faults(self, writes: float, num_cells: int) -> float:
        """Expected number of failed cells among ``num_cells`` after ``writes``."""
        num_cells = check_positive_int(num_cells, "num_cells")
        return self.failure_probability(writes) * num_cells

    def writes_for_probability(self, probability: float) -> float:
        """Inverse of :meth:`failure_probability` (write count at that P).

        Solved by bisection on ``log10(writes)`` — the CDF is strictly
        monotone there — so no inverse error function dependency is needed.
        """
        if not 0.0 < probability < 1.0:
            raise ValueError(
                f"probability must lie strictly in (0, 1), got {probability}"
            )
        centre = float(np.log10(self.mean_endurance))
        # ±12 sigma brackets every probability representable in float64.
        lo = centre - 12.0 * self.sigma_log10
        hi = centre + 12.0 * self.sigma_log10
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.failure_probability(10.0**mid) < probability:
                lo = mid
            else:
                hi = mid
        return 10.0 ** (0.5 * (lo + hi))


@dataclass(frozen=True)
class WearOutSchedule:
    """Fault-density checkpoints along a device's write-cycle lifetime.

    Where :class:`PostDeploymentSchedule` spreads a fixed extra density
    uniformly over one training run, this schedule follows the endurance
    model itself: at each write-count checkpoint the cumulative population
    fault density equals the model's failure probability, and the per-step
    :meth:`density_increments` drive incremental re-planning in the
    ``lifetime`` experiment (:mod:`repro.experiments.lifetime`).
    """

    model: EnduranceModel
    write_checkpoints: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.write_checkpoints:
            raise ValueError("write_checkpoints must not be empty")
        previous = 0.0
        for writes in self.write_checkpoints:
            if writes <= previous:
                raise ValueError(
                    "write_checkpoints must be positive and strictly increasing"
                )
            previous = writes

    @classmethod
    def log_spaced(
        cls,
        model: EnduranceModel,
        start_probability: float = 0.002,
        stop_probability: float = 0.2,
        num_checkpoints: int = 6,
    ) -> "WearOutSchedule":
        """Checkpoints log-spaced between two failure-probability levels."""
        num_checkpoints = check_positive_int(num_checkpoints, "num_checkpoints")
        if not 0.0 < start_probability < stop_probability < 1.0:
            raise ValueError(
                "need 0 < start_probability < stop_probability < 1, got "
                f"({start_probability}, {stop_probability})"
            )
        start = model.writes_for_probability(start_probability)
        stop = model.writes_for_probability(stop_probability)
        writes = np.logspace(np.log10(start), np.log10(stop), num_checkpoints)
        return cls(model=model, write_checkpoints=tuple(float(w) for w in writes))

    def cumulative_densities(self) -> List[float]:
        """Population fault density expected at each checkpoint."""
        return [
            self.model.failure_probability(writes)
            for writes in self.write_checkpoints
        ]

    def density_increments(self) -> List[float]:
        """Fresh fault density to inject when arriving at each checkpoint."""
        cumulative = self.cumulative_densities()
        return [cumulative[0]] + [
            cumulative[k] - cumulative[k - 1] for k in range(1, len(cumulative))
        ]


@dataclass(frozen=True)
class PostDeploymentSchedule:
    """Spread a total extra fault density uniformly over training epochs.

    The paper's post-deployment experiment (Fig. 6) adds 1 % total extra fault
    density distributed uniformly across the epochs of one training run —
    explicitly a worst case, since real endurance is orders of magnitude above
    the per-epoch write count.
    """

    total_extra_density: float = 0.01
    num_epochs: int = 100

    def __post_init__(self) -> None:
        check_fraction(self.total_extra_density, "total_extra_density")
        check_positive_int(self.num_epochs, "num_epochs")

    @property
    def per_epoch_density(self) -> float:
        """Extra fault density injected at the end of each epoch."""
        return self.total_extra_density / self.num_epochs

    def densities(self) -> List[float]:
        """Per-epoch increments (length ``num_epochs``, sums to the total)."""
        return [self.per_epoch_density] * self.num_epochs

    def cumulative(self) -> List[float]:
        """Cumulative extra density after each epoch."""
        return [(i + 1) * self.per_epoch_density for i in range(self.num_epochs)]
