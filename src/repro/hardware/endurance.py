"""Write-endurance modelling and post-deployment fault scheduling.

ReRAM cells endure 10^6–10^12 writes before failing (Section IV-A).  During
pipelined mini-batch training the adjacency crossbars are rewritten every
batch, so faults can emerge *post-deployment*.  The paper's worst-case
experiment adds a total of 1 % extra fault density spread uniformly over the
training epochs; :class:`PostDeploymentSchedule` reproduces that protocol, and
:class:`EnduranceModel` links write counts to failure probability for the
finer-grained analyses in the test-suite and ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.utils.validation import check_fraction, check_positive_int


@dataclass(frozen=True)
class EnduranceModel:
    """Log-normal write-endurance model.

    A cell fails once its cumulative write count exceeds its endurance, which
    is drawn (conceptually) from a log-normal distribution centred at
    ``mean_endurance``.  The closed-form helpers below avoid storing a sample
    per cell by working with the population failure probability.
    """

    mean_endurance: float = 1e9
    sigma_log10: float = 0.5

    def __post_init__(self) -> None:
        if self.mean_endurance <= 0:
            raise ValueError("mean_endurance must be positive")
        if self.sigma_log10 <= 0:
            raise ValueError("sigma_log10 must be positive")

    def failure_probability(self, writes: float) -> float:
        """Probability that a cell has failed after ``writes`` write cycles."""
        if writes <= 0:
            return 0.0
        z = (np.log10(writes) - np.log10(self.mean_endurance)) / self.sigma_log10
        # Standard normal CDF via the error function.
        from math import erf, sqrt

        return 0.5 * (1.0 + erf(z / sqrt(2.0)))

    def expected_new_faults(self, writes: float, num_cells: int) -> float:
        """Expected number of failed cells among ``num_cells`` after ``writes``."""
        num_cells = check_positive_int(num_cells, "num_cells")
        return self.failure_probability(writes) * num_cells


@dataclass(frozen=True)
class PostDeploymentSchedule:
    """Spread a total extra fault density uniformly over training epochs.

    The paper's post-deployment experiment (Fig. 6) adds 1 % total extra fault
    density distributed uniformly across the epochs of one training run —
    explicitly a worst case, since real endurance is orders of magnitude above
    the per-epoch write count.
    """

    total_extra_density: float = 0.01
    num_epochs: int = 100

    def __post_init__(self) -> None:
        check_fraction(self.total_extra_density, "total_extra_density")
        check_positive_int(self.num_epochs, "num_epochs")

    @property
    def per_epoch_density(self) -> float:
        """Extra fault density injected at the end of each epoch."""
        return self.total_extra_density / self.num_epochs

    def densities(self) -> List[float]:
        """Per-epoch increments (length ``num_epochs``, sums to the total)."""
        return [self.per_epoch_density] * self.num_epochs

    def cumulative(self) -> List[float]:
        """Cumulative extra density after each epoch."""
        return [(i + 1) * self.per_epoch_density for i in range(self.num_epochs)]
