"""Tile and crossbar-pool models.

A :class:`Tile` groups the crossbars and peripheral circuitry described by
Table III.  A :class:`CrossbarPool` aggregates crossbars across tiles and
hands them out to the mapping engine: one partition of the pool stores the
GNN weight matrices, the other receives the per-batch adjacency blocks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.hardware.config import DEFAULT_CONFIG, ReRAMConfig
from repro.hardware.crossbar import Crossbar
from repro.hardware.faults import FaultMap, FaultModel


class Tile:
    """A ReRAM tile: a set of crossbars plus peripheral circuit bookkeeping."""

    def __init__(self, tile_id: int, config: ReRAMConfig = DEFAULT_CONFIG) -> None:
        self.tile_id = int(tile_id)
        self.config = config
        base = tile_id * config.crossbars_per_tile
        self.crossbars: List[Crossbar] = [
            Crossbar(
                crossbar_id=base + i,
                rows=config.crossbar_rows,
                cols=config.crossbar_cols,
                cell_levels=config.cell_levels,
            )
            for i in range(config.crossbars_per_tile)
        ]

    def __repr__(self) -> str:
        return f"Tile(id={self.tile_id}, crossbars={len(self.crossbars)})"

    @property
    def area_mm2(self) -> float:
        return self.config.tile_area_mm2

    @property
    def power_w(self) -> float:
        return self.config.tile_power_w

    def total_writes(self) -> int:
        return sum(xbar.total_writes for xbar in self.crossbars)


class CrossbarPool:
    """All crossbars of the accelerator, with fault injection and allocation.

    Parameters
    ----------
    config:
        Architecture configuration; determines the number and size of
        crossbars.
    fault_model:
        Optional :class:`FaultModel` used to draw pre-deployment fault maps at
        construction time.  Without it the pool starts fault-free.
    seed:
        RNG seed forwarded to the fault model.
    """

    def __init__(
        self,
        config: ReRAMConfig = DEFAULT_CONFIG,
        fault_model: Optional[FaultModel] = None,
        num_crossbars: Optional[int] = None,
    ) -> None:
        self.config = config
        count = num_crossbars if num_crossbars is not None else config.crossbar_count
        if count <= 0:
            raise ValueError(f"pool needs at least one crossbar, got {count}")
        self.crossbars: List[Crossbar] = [
            Crossbar(
                crossbar_id=i,
                rows=config.crossbar_rows,
                cols=config.crossbar_cols,
                cell_levels=config.cell_levels,
            )
            for i in range(count)
        ]
        self.fault_model = fault_model
        if fault_model is not None:
            self.inject_pre_deployment(fault_model)

    def __len__(self) -> int:
        return len(self.crossbars)

    def __getitem__(self, index: int) -> Crossbar:
        return self.crossbars[index]

    def __iter__(self):
        return iter(self.crossbars)

    # ------------------------------------------------------------------ #
    # Fault management
    # ------------------------------------------------------------------ #
    def inject_pre_deployment(self, fault_model: FaultModel) -> None:
        """Draw and install pre-deployment fault maps for every crossbar."""
        maps = fault_model.generate(
            len(self.crossbars), self.config.crossbar_rows, self.config.crossbar_cols
        )
        for crossbar, fmap in zip(self.crossbars, maps):
            crossbar.set_fault_map(fmap)
        self.fault_model = fault_model

    def inject_post_deployment(self, extra_density: float) -> None:
        """Overlay additional (post-deployment) faults on every crossbar."""
        if self.fault_model is None:
            raise RuntimeError(
                "inject_post_deployment requires a fault model; call "
                "inject_pre_deployment first or construct with fault_model"
            )
        current = [xbar.fault_map for xbar in self.crossbars]
        updated = self.fault_model.inject_additional(current, extra_density)
        for crossbar, fmap in zip(self.crossbars, updated):
            crossbar.set_fault_map(fmap)

    def fault_maps(self) -> List[FaultMap]:
        """Return the true fault map of every crossbar."""
        return [xbar.fault_map for xbar in self.crossbars]

    def overall_density(self) -> float:
        """Fraction of faulty cells across the whole pool."""
        cells = sum(x.rows * x.cols for x in self.crossbars)
        faults = sum(x.fault_map.num_faults for x in self.crossbars)
        return faults / cells if cells else 0.0

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #
    def allocate(self, count: int) -> List[Crossbar]:
        """Return the first ``count`` crossbars (simple static allocation)."""
        if count > len(self.crossbars):
            raise ValueError(
                f"requested {count} crossbars but the pool only has "
                f"{len(self.crossbars)}"
            )
        return self.crossbars[:count]

    def split(self, first_count: int) -> Sequence[List[Crossbar]]:
        """Split the pool into two disjoint groups (weights vs adjacency)."""
        if not 0 < first_count < len(self.crossbars):
            raise ValueError(
                f"first_count must be in (0, {len(self.crossbars)}), got {first_count}"
            )
        return self.crossbars[:first_count], self.crossbars[first_count:]

    def total_writes(self) -> int:
        return sum(x.total_writes for x in self.crossbars)
