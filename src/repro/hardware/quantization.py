"""Fixed-point weight representation and bit-slicing onto ReRAM cells.

Weights on the accelerator are 16-bit fixed-point values distributed across
eight 2-bit cells (Section III-A).  The value is stored in *offset-binary*
form — the conductance encodes ``code = round(w / scale) + 2^(bits-1)`` — so a
stuck-at-1 fault in a cell holding the most-significant bits pushes the
reconstructed weight towards the extreme of the representable range ("weight
explosion"), while faults in least-significant cells only perturb the value
slightly.  This is exactly the asymmetry Fig. 1(a) of the paper illustrates
and what the weight-clipping mitigation targets.

The public helpers operate on arbitrary-shaped numpy arrays and are fully
vectorised; the cell axis is always the *last* axis of the returned array,
ordered most-significant cell first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class FixedPointFormat:
    """A symmetric fixed-point format.

    Parameters
    ----------
    total_bits:
        Width of the representation (16 in the paper).
    max_value:
        Largest representable magnitude; the quantisation step is
        ``2 * max_value / 2**total_bits``.
    bits_per_cell:
        Number of bits stored per ReRAM cell (2 in the paper).
    """

    total_bits: int = 16
    max_value: float = 4.0
    bits_per_cell: int = 2

    def __post_init__(self) -> None:
        check_positive_int(self.total_bits, "total_bits")
        check_positive_int(self.bits_per_cell, "bits_per_cell")
        if self.total_bits % self.bits_per_cell != 0:
            raise ValueError(
                f"total_bits ({self.total_bits}) must be divisible by "
                f"bits_per_cell ({self.bits_per_cell})"
            )
        if self.max_value <= 0:
            raise ValueError(f"max_value must be positive, got {self.max_value}")

    @property
    def levels(self) -> int:
        """Number of representable codes."""
        return 2**self.total_bits

    @property
    def scale(self) -> float:
        """Value of one least-significant code step."""
        return 2.0 * self.max_value / self.levels

    @property
    def offset(self) -> int:
        """Code corresponding to the value zero (offset-binary midpoint)."""
        return self.levels // 2

    @property
    def num_cells(self) -> int:
        """Number of cells needed to store one value."""
        return self.total_bits // self.bits_per_cell

    @property
    def cell_levels(self) -> int:
        return 2**self.bits_per_cell


def quantize(values: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Quantise float values to integer codes in ``[0, 2**bits - 1]``.

    Values outside ``[-max_value, max_value)`` saturate, mirroring the
    behaviour of the write driver.
    """
    values = np.asarray(values, dtype=np.float64)
    codes = np.round(values / fmt.scale).astype(np.int64) + fmt.offset
    return np.clip(codes, 0, fmt.levels - 1)


def dequantize(codes: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Convert integer codes back to float values."""
    codes = np.asarray(codes, dtype=np.int64)
    if codes.size and (codes.min() < 0 or codes.max() >= fmt.levels):
        raise ValueError("codes out of range for the given format")
    return (codes - fmt.offset).astype(np.float64) * fmt.scale


def codes_to_cells(codes: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Split codes into per-cell values, most-significant cell first.

    The returned array has shape ``codes.shape + (fmt.num_cells,)`` and each
    entry lies in ``[0, 2**bits_per_cell - 1]``.  Reconstruction corresponds to
    the hardware's shift-and-add over the cell outputs.
    """
    codes = np.asarray(codes, dtype=np.int64)
    cells = np.empty(codes.shape + (fmt.num_cells,), dtype=np.int64)
    mask = fmt.cell_levels - 1
    for position in range(fmt.num_cells):
        shift = fmt.bits_per_cell * (fmt.num_cells - 1 - position)
        cells[..., position] = (codes >> shift) & mask
    return cells


def cells_to_codes(cells: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Inverse of :func:`codes_to_cells` (the shift-and-add reduction)."""
    cells = np.asarray(cells, dtype=np.int64)
    if cells.shape[-1] != fmt.num_cells:
        raise ValueError(
            f"last axis must have {fmt.num_cells} cells, got {cells.shape[-1]}"
        )
    codes = np.zeros(cells.shape[:-1], dtype=np.int64)
    for position in range(fmt.num_cells):
        shift = fmt.bits_per_cell * (fmt.num_cells - 1 - position)
        codes = codes + (cells[..., position] << shift)
    return codes


def _mask_dtype(fmt: FixedPointFormat):
    """Smallest exact integer dtype for whole codes of ``fmt``."""
    return np.int32 if fmt.total_bits <= 24 else np.int64


def fault_code_masks(
    sa0_cells: np.ndarray, sa1_cells: np.ndarray, fmt: FixedPointFormat
) -> Tuple[np.ndarray, np.ndarray]:
    """Collapse per-cell stuck-at masks into per-code clear/set bit masks.

    ``sa0_cells``/``sa1_cells`` are boolean arrays in the *cell matrix* layout
    — last axis of length ``cols * fmt.num_cells``, most-significant cell
    first (the layout :class:`WeightCrossbarMapper` assembles from the
    crossbar fault maps).  Returns ``(clear, set_)`` integer arrays with one
    entry per *value*: a faulty read-back code is ``(code & ~clear) | set_``
    — SA0 zeroes the cell's bit field (cleared, not set), SA1 saturates it
    (cleared, then set).  This is the whole fault-application step of the
    bit-sliced pipeline folded into two integers per weight.
    """
    sa0_cells = np.asarray(sa0_cells, dtype=bool)
    sa1_cells = np.asarray(sa1_cells, dtype=bool)
    if sa0_cells.shape != sa1_cells.shape:
        raise ValueError(
            f"sa0 and sa1 shapes differ: {sa0_cells.shape} vs {sa1_cells.shape}"
        )
    if sa0_cells.shape[-1] % fmt.num_cells != 0:
        raise ValueError(
            f"last axis ({sa0_cells.shape[-1]}) is not a multiple of "
            f"num_cells ({fmt.num_cells})"
        )
    per_value = sa0_cells.shape[:-1] + (
        sa0_cells.shape[-1] // fmt.num_cells,
        fmt.num_cells,
    )
    dtype = _mask_dtype(fmt)
    shifts = fmt.bits_per_cell * (fmt.num_cells - 1 - np.arange(fmt.num_cells))
    cell_masks = ((fmt.cell_levels - 1) << shifts).astype(dtype)
    any_fault = (sa0_cells | sa1_cells).reshape(per_value)
    clear = (any_fault * cell_masks).sum(axis=-1).astype(dtype)
    set_ = (sa1_cells.reshape(per_value) * cell_masks).sum(axis=-1).astype(dtype)
    return clear, set_


def apply_faults_to_codes(
    codes: np.ndarray, clear: np.ndarray, set_: np.ndarray
) -> np.ndarray:
    """Apply precomputed :func:`fault_code_masks` to whole codes."""
    return (codes & ~clear) | set_


def quantize_faulty_dequantize(
    values: np.ndarray,
    clear: np.ndarray,
    set_: np.ndarray,
    fmt: FixedPointFormat,
) -> np.ndarray:
    """Fused quantise → stuck-at-fault application → dequantise.

    Single-pass equivalent of::

        codes  = quantize(values, fmt)
        cells  = codes_to_cells(codes, fmt)
        faulty = apply_faults_to_cells(cells, sa0, sa1, fmt.cell_levels)
        out    = dequantize(cells_to_codes(faulty, fmt), fmt)

    with ``clear``/``set_`` from :func:`fault_code_masks`.  The whole pipeline
    runs on one integer array per value (int32 for formats up to 24 bits) —
    no ``(..., num_cells)`` intermediates, no per-cell Python loop — and is
    bit-identical to the unfused chain: rounding, saturation and the
    per-cell fault semantics are all preserved exactly.
    """
    values = np.asarray(values, dtype=np.float64)
    dtype = _mask_dtype(fmt)
    offset = float(fmt.offset)
    # round/clip in float64 first: integer-valued float64 is exact far beyond
    # any supported format width, and clipping before the cast keeps the
    # narrow dtype safe for arbitrarily large inputs (the seed path clips the
    # already-cast int64 codes — same result, different order).
    codes = np.clip(np.round(values / fmt.scale), -offset, offset - 1.0).astype(dtype)
    codes += dtype(fmt.offset)
    # asarray: no copy when the masks already carry the target dtype (they do
    # when produced by fault_code_masks) — this runs per layer per forward.
    faulty = apply_faults_to_codes(
        codes, np.asarray(clear, dtype=dtype), np.asarray(set_, dtype=dtype)
    )
    return (faulty.astype(np.float64) - offset) * fmt.scale


def quantize_to_cells(values: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Quantise values and split them into cells in one call."""
    return codes_to_cells(quantize(values, fmt), fmt)


def dequantize_from_cells(cells: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Reassemble cells and dequantise back to float values."""
    return dequantize(cells_to_codes(cells, fmt), fmt)


def quantization_error(values: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Element-wise error introduced by a quantise/dequantise round trip."""
    return dequantize(quantize(values, fmt), fmt) - np.asarray(values, dtype=np.float64)
