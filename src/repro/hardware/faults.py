"""Stuck-at-fault modelling for ReRAM crossbars.

Two fault classes are modelled (Section II-A):

* **SA0** — the cell is stuck at its lowest conductance and always reads as
  the minimum cell value (0).  In a crossbar storing the binary adjacency this
  deletes an edge; in a weight crossbar it zeroes the affected 2-bit slice.
* **SA1** — the cell is stuck at its highest conductance and always reads as
  the maximum cell value.  In the adjacency it adds a spurious edge; in a
  weight crossbar it saturates the slice, which near the most-significant
  cell produces the "weight explosion" the paper describes.

Faults follow the distribution the paper adopts from prior defect studies: the
number of faulty cells per crossbar is Poisson distributed (fault clustering),
positions within a crossbar are uniform, and the SA0:SA1 ratio is configurable
(9:1 and 1:1 are the ratios evaluated).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import (
    check_fraction,
    check_permutation,
    check_positive_int,
    check_probability_ratio,
)


@dataclass
class FaultMap:
    """Per-crossbar stuck-at-fault map.

    Attributes
    ----------
    sa0, sa1:
        Boolean arrays of shape ``(rows, cols)``; a cell can carry at most one
        fault type.
    """

    sa0: np.ndarray
    sa1: np.ndarray

    def __post_init__(self) -> None:
        self.sa0 = np.asarray(self.sa0, dtype=bool)
        self.sa1 = np.asarray(self.sa1, dtype=bool)
        if self.sa0.shape != self.sa1.shape:
            raise ValueError(
                f"sa0 and sa1 shapes differ: {self.sa0.shape} vs {self.sa1.shape}"
            )
        if self.sa0.ndim != 2:
            raise ValueError(f"fault masks must be 2-D, got {self.sa0.ndim}-D")
        if np.any(self.sa0 & self.sa1):
            raise ValueError("a cell cannot be both SA0 and SA1")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, rows: int, cols: int) -> "FaultMap":
        """A fault-free map."""
        rows = check_positive_int(rows, "rows")
        cols = check_positive_int(cols, "cols")
        return cls(np.zeros((rows, cols), dtype=bool), np.zeros((rows, cols), dtype=bool))

    @classmethod
    def from_indices(
        cls,
        shape: Tuple[int, int],
        sa0_indices: Sequence[Tuple[int, int]] = (),
        sa1_indices: Sequence[Tuple[int, int]] = (),
    ) -> "FaultMap":
        """Build a map from explicit (row, col) fault coordinates."""
        fmap = cls.empty(shape[0], shape[1])
        for r, c in sa0_indices:
            fmap.sa0[r, c] = True
        for r, c in sa1_indices:
            fmap.sa1[r, c] = True
        if np.any(fmap.sa0 & fmap.sa1):
            raise ValueError("a cell cannot be both SA0 and SA1")
        return fmap

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, int]:
        return self.sa0.shape

    @property
    def num_sa0(self) -> int:
        return int(self.sa0.sum())

    @property
    def num_sa1(self) -> int:
        return int(self.sa1.sum())

    @property
    def num_faults(self) -> int:
        return self.num_sa0 + self.num_sa1

    @property
    def density(self) -> float:
        """Fraction of faulty cells in this crossbar."""
        return self.num_faults / self.sa0.size if self.sa0.size else 0.0

    @property
    def any_fault(self) -> np.ndarray:
        """Boolean mask of cells with either fault type."""
        return self.sa0 | self.sa1

    def is_fault_free(self) -> bool:
        return self.num_faults == 0

    @property
    def fingerprint(self) -> str:
        """Cheap content hash identifying this fault pattern.

        Two maps with equal shape and identical SA0/SA1 masks share the same
        fingerprint, which is what the mapping cost engine keys its result
        cache and its duplicate-crossbar detection on.  The digest is
        recomputed on every access (hashing a crossbar-sized boolean pair is
        micro-seconds), so mutating the masks in place never yields a stale
        key.
        """
        digest = hashlib.blake2b(digest_size=16)
        digest.update(np.asarray(self.shape, dtype=np.int64).tobytes())
        digest.update(np.packbits(self.sa0).tobytes())
        digest.update(np.packbits(self.sa1).tobytes())
        return digest.hexdigest()

    def copy(self) -> "FaultMap":
        return FaultMap(self.sa0.copy(), self.sa1.copy())

    def permuted_rows(self, permutation: np.ndarray) -> "FaultMap":
        """Return the fault map seen by a block whose rows are permuted.

        ``permutation[i]`` gives the crossbar row that block row ``i`` is
        written to; the returned map is expressed in *block* row order.
        """
        permutation = check_permutation(
            permutation, self.shape[0], "crossbar row permutation"
        )
        return FaultMap(self.sa0[permutation], self.sa1[permutation])

    def merge(self, other: "FaultMap") -> "FaultMap":
        """Union of two fault maps (SA1 wins if both types collide).

        Used to overlay post-deployment faults on the pre-deployment map.
        """
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        sa1 = self.sa1 | other.sa1
        sa0 = (self.sa0 | other.sa0) & ~sa1
        return FaultMap(sa0, sa1)


# --------------------------------------------------------------------------- #
# Applying faults to stored data
# --------------------------------------------------------------------------- #
def apply_faults_to_binary(block: np.ndarray, fault_map: FaultMap) -> np.ndarray:
    """Return the binary block as read back from a faulty crossbar.

    SA1 cells read as 1 (spurious edge), SA0 cells read as 0 (deleted edge).
    """
    block = np.asarray(block, dtype=np.float64)
    if block.shape != fault_map.shape:
        raise ValueError(
            f"block shape {block.shape} does not match fault map {fault_map.shape}"
        )
    out = block.copy()
    out[fault_map.sa1] = 1.0
    out[fault_map.sa0] = 0.0
    return out


def apply_faults_to_binary_batch(
    blocks: np.ndarray, sa0: np.ndarray, sa1: np.ndarray
) -> np.ndarray:
    """Vectorised :func:`apply_faults_to_binary` over stacked arrays.

    ``blocks`` holds 0/1 values of shape ``(..., rows, cols)``; ``sa0``/``sa1``
    are boolean masks of the same shape (typically gathered per block with the
    block's row permutation already applied).  One ``np.where`` chain replaces
    the per-block program/read round trip of the seed loop.
    """
    blocks = np.asarray(blocks, dtype=np.float64)
    sa0 = np.asarray(sa0, dtype=bool)
    sa1 = np.asarray(sa1, dtype=bool)
    if sa0.shape != blocks.shape or sa1.shape != blocks.shape:
        raise ValueError(
            f"fault mask shapes {sa0.shape}/{sa1.shape} do not match blocks "
            f"{blocks.shape}"
        )
    return np.where(sa1, 1.0, np.where(sa0, 0.0, blocks))


def apply_faults_to_cells(
    cells: np.ndarray, sa0: np.ndarray, sa1: np.ndarray, cell_levels: int
) -> np.ndarray:
    """Return cell values as read back from faulty cells.

    ``cells`` holds integer cell values; SA0 forces 0 and SA1 forces
    ``cell_levels - 1``.  Masks must match ``cells``' shape.
    """
    cells = np.asarray(cells, dtype=np.int64)
    sa0 = np.asarray(sa0, dtype=bool)
    sa1 = np.asarray(sa1, dtype=bool)
    if sa0.shape != cells.shape or sa1.shape != cells.shape:
        raise ValueError("fault masks must match the cells array shape")
    out = cells.copy()
    out[sa0] = 0
    out[sa1] = cell_levels - 1
    return out


# --------------------------------------------------------------------------- #
# Fault generation
# --------------------------------------------------------------------------- #
class FaultModel:
    """Generates stuck-at-fault maps for a population of crossbars.

    Parameters
    ----------
    fault_density:
        Expected fraction of faulty cells over the whole crossbar population
        (the paper evaluates 0.01–0.05).
    sa0_sa1_ratio:
        Relative likelihood of SA0 vs SA1 faults, e.g. ``(9, 1)`` or ``(1, 1)``.
    clustered:
        If True (default) the per-crossbar fault count is Poisson distributed
        (fault clustering across crossbars); if False every crossbar gets the
        same expected count.
    """

    def __init__(
        self,
        fault_density: float,
        sa0_sa1_ratio: Tuple[float, float] = (9.0, 1.0),
        clustered: bool = True,
        seed: Optional[int] = None,
    ) -> None:
        self.fault_density = check_fraction(fault_density, "fault_density")
        self.sa0_fraction, self.sa1_fraction = check_probability_ratio(*sa0_sa1_ratio)
        self.clustered = bool(clustered)
        self._rng = ensure_rng(seed)

    def __repr__(self) -> str:
        return (
            f"FaultModel(density={self.fault_density}, "
            f"sa0={self.sa0_fraction:.2f}, sa1={self.sa1_fraction:.2f}, "
            f"clustered={self.clustered})"
        )

    @property
    def rng_state(self) -> dict:
        """Snapshot of the generator state (see ``experiments/sweeps.py``).

        Restoring a captured state into a fresh model makes subsequent draws
        (e.g. post-deployment :meth:`inject_additional`) continue the exact
        random stream of the original — what lets the sweep engine rebuild a
        hardware environment from cached fault maps without re-sampling.
        """
        return self._rng.bit_generator.state

    @rng_state.setter
    def rng_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state

    # ------------------------------------------------------------------ #
    def _sample_fault_map(
        self, rows: int, cols: int, num_faults: int, rng: np.random.Generator
    ) -> FaultMap:
        cells = rows * cols
        num_faults = min(num_faults, cells)
        fmap = FaultMap.empty(rows, cols)
        if num_faults == 0:
            return fmap
        flat = rng.choice(cells, size=num_faults, replace=False)
        is_sa1 = rng.random(num_faults) < self.sa1_fraction
        sa1_flat = flat[is_sa1]
        sa0_flat = flat[~is_sa1]
        fmap.sa0.flat[sa0_flat] = True
        fmap.sa1.flat[sa1_flat] = True
        return fmap

    def generate(
        self,
        num_crossbars: int,
        rows: int,
        cols: int,
        rng: Optional[np.random.Generator] = None,
    ) -> List[FaultMap]:
        """Generate pre-deployment fault maps for ``num_crossbars`` crossbars."""
        num_crossbars = check_positive_int(num_crossbars, "num_crossbars")
        rows = check_positive_int(rows, "rows")
        cols = check_positive_int(cols, "cols")
        rng = rng if rng is not None else self._rng
        mean_per_crossbar = self.fault_density * rows * cols
        maps: List[FaultMap] = []
        for _ in range(num_crossbars):
            if self.clustered:
                count = int(rng.poisson(mean_per_crossbar))
            else:
                count = int(round(mean_per_crossbar))
            maps.append(self._sample_fault_map(rows, cols, count, rng))
        return maps

    def inject_additional(
        self,
        fault_maps: Sequence[FaultMap],
        extra_density: float,
        rng: Optional[np.random.Generator] = None,
    ) -> List[FaultMap]:
        """Overlay post-deployment faults of density ``extra_density``.

        Returns new fault maps; the inputs are not modified.  Newly drawn
        fault positions that collide with existing faults keep the existing
        fault type.
        """
        extra_density = check_fraction(extra_density, "extra_density")
        rng = rng if rng is not None else self._rng
        result: List[FaultMap] = []
        for fmap in fault_maps:
            rows, cols = fmap.shape
            mean = extra_density * rows * cols
            count = int(rng.poisson(mean)) if self.clustered else int(round(mean))
            extra = self._sample_fault_map(rows, cols, count, rng)
            # Existing faults take precedence over newly emerged ones.
            extra.sa0 &= ~fmap.any_fault
            extra.sa1 &= ~fmap.any_fault
            merged = FaultMap(fmap.sa0 | extra.sa0, fmap.sa1 | extra.sa1)
            result.append(merged)
        return result


def population_density(fault_maps: Sequence[FaultMap]) -> float:
    """Overall fault density across a collection of fault maps."""
    total_cells = sum(f.sa0.size for f in fault_maps)
    if total_cells == 0:
        return 0.0
    total_faults = sum(f.num_faults for f in fault_maps)
    return total_faults / total_cells


def population_counts(fault_maps: Sequence[FaultMap]) -> Tuple[int, int]:
    """Return (total SA0, total SA1) counts across a collection of maps."""
    return (
        int(sum(f.num_sa0 for f in fault_maps)),
        int(sum(f.num_sa1 for f in fault_maps)),
    )
