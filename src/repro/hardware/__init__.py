"""ReRAM processing-in-memory hardware substrate.

Models the portion of the ReRAM-based PIM accelerator that the FARe paper
depends on:

* :mod:`~repro.hardware.config` — architecture specification (Table III).
* :mod:`~repro.hardware.quantization` — 16-bit fixed-point weights split into
  2-bit cells with shift-and-add reconstruction.
* :mod:`~repro.hardware.faults` — stuck-at-0 / stuck-at-1 fault maps, Poisson
  clustering across crossbars and uniform placement within a crossbar.
* :mod:`~repro.hardware.crossbar` / :mod:`~repro.hardware.tile` — crossbar and
  tile storage models with write counting.
* :mod:`~repro.hardware.bist` — built-in self-test producing fault maps.
* :mod:`~repro.hardware.endurance` — write-endurance and post-deployment fault
  scheduling.
* :mod:`~repro.hardware.energy` — NeuroSim-style latency/area/power constants.
"""

from repro.hardware.config import ReRAMConfig, DEFAULT_CONFIG
from repro.hardware.quantization import (
    FixedPointFormat,
    quantize,
    dequantize,
    codes_to_cells,
    cells_to_codes,
    quantize_to_cells,
    dequantize_from_cells,
)
from repro.hardware.faults import (
    FaultMap,
    FaultModel,
    apply_faults_to_binary,
    apply_faults_to_cells,
)
from repro.hardware.crossbar import Crossbar
from repro.hardware.tile import Tile, CrossbarPool
from repro.hardware.bist import BISTController, BISTReport
from repro.hardware.endurance import EnduranceModel, PostDeploymentSchedule
from repro.hardware.energy import TileCostModel

__all__ = [
    "ReRAMConfig",
    "DEFAULT_CONFIG",
    "FixedPointFormat",
    "quantize",
    "dequantize",
    "codes_to_cells",
    "cells_to_codes",
    "quantize_to_cells",
    "dequantize_from_cells",
    "FaultMap",
    "FaultModel",
    "apply_faults_to_binary",
    "apply_faults_to_cells",
    "Crossbar",
    "Tile",
    "CrossbarPool",
    "BISTController",
    "BISTReport",
    "EnduranceModel",
    "PostDeploymentSchedule",
    "TileCostModel",
]
