"""Crossbar storage model.

A :class:`Crossbar` stores either a binary adjacency block or a slice of a
quantised weight matrix, tracks how many times each cell has been written
(endurance accounting), and returns the *faulty* view of its contents when
read — SA0 cells read as the minimum cell value and SA1 cells as the maximum,
regardless of what was programmed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.hardware.faults import FaultMap, apply_faults_to_binary, apply_faults_to_cells
from repro.utils.validation import check_permutation, check_positive_int


class Crossbar:
    """A single ReRAM crossbar array.

    Parameters
    ----------
    crossbar_id:
        Stable identifier within the accelerator (used by mapping algorithms).
    rows, cols:
        Physical dimensions (128 × 128 in the paper's tile).
    cell_levels:
        Number of conductance levels per cell (4 for 2-bit cells).
    fault_map:
        Stuck-at-fault map; defaults to fault-free.
    """

    def __init__(
        self,
        crossbar_id: int,
        rows: int = 128,
        cols: int = 128,
        cell_levels: int = 4,
        fault_map: Optional[FaultMap] = None,
    ) -> None:
        self.crossbar_id = int(crossbar_id)
        self.rows = check_positive_int(rows, "rows")
        self.cols = check_positive_int(cols, "cols")
        self.cell_levels = check_positive_int(cell_levels, "cell_levels")
        self.fault_map = fault_map if fault_map is not None else FaultMap.empty(rows, cols)
        if self.fault_map.shape != (rows, cols):
            raise ValueError(
                f"fault map shape {self.fault_map.shape} does not match crossbar "
                f"({rows}, {cols})"
            )
        self._stored = np.zeros((rows, cols), dtype=np.int64)
        self.write_counts = np.zeros((rows, cols), dtype=np.int64)
        self.total_writes = 0
        #: Monotonic counter bumped whenever the fault map is replaced; any
        #: cached derivation of this crossbar's faulty read-back keys on it.
        self.fault_epoch = 0

    def __repr__(self) -> str:
        return (
            f"Crossbar(id={self.crossbar_id}, shape=({self.rows}, {self.cols}), "
            f"faults={self.fault_map.num_faults}, writes={self.total_writes})"
        )

    # ------------------------------------------------------------------ #
    # Fault management
    # ------------------------------------------------------------------ #
    def set_fault_map(self, fault_map: FaultMap) -> None:
        """Replace the crossbar's fault map (e.g. after post-deployment faults)."""
        if fault_map.shape != (self.rows, self.cols):
            raise ValueError(
                f"fault map shape {fault_map.shape} does not match crossbar "
                f"({self.rows}, {self.cols})"
            )
        self.fault_map = fault_map
        self.fault_epoch += 1

    # ------------------------------------------------------------------ #
    # Programming / reading
    # ------------------------------------------------------------------ #
    def _check_region(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        if values.ndim != 2:
            raise ValueError(f"values must be 2-D, got {values.ndim}-D")
        if values.shape[0] > self.rows or values.shape[1] > self.cols:
            raise ValueError(
                f"values of shape {values.shape} do not fit in crossbar "
                f"({self.rows}, {self.cols})"
            )
        return values

    def program(self, values: np.ndarray, row_offset: int = 0, col_offset: int = 0) -> None:
        """Write integer cell values into the crossbar (write counts increase).

        Values exceeding ``cell_levels - 1`` are clipped by the write driver.
        """
        values = self._check_region(values)
        rows, cols = values.shape
        r0, c0 = int(row_offset), int(col_offset)
        if r0 + rows > self.rows or c0 + cols > self.cols:
            raise ValueError("programmed region exceeds crossbar bounds")
        clipped = np.clip(values.astype(np.int64), 0, self.cell_levels - 1)
        self._stored[r0 : r0 + rows, c0 : c0 + cols] = clipped
        self.write_counts[r0 : r0 + rows, c0 : c0 + cols] += 1
        self.total_writes += 1

    def read(self) -> np.ndarray:
        """Read the full crossbar content with faults applied."""
        return apply_faults_to_cells(
            self._stored, self.fault_map.sa0, self.fault_map.sa1, self.cell_levels
        )

    def read_region(self, rows: int, cols: int, row_offset: int = 0, col_offset: int = 0) -> np.ndarray:
        """Read a sub-region of the crossbar with faults applied.

        Only the requested region is materialised — faults are applied to the
        slice, not to the whole array followed by a slice.
        """
        r0, c0 = int(row_offset), int(col_offset)
        if r0 + rows > self.rows or c0 + cols > self.cols:
            raise ValueError("read region exceeds crossbar bounds")
        row_slice = slice(r0, r0 + rows)
        col_slice = slice(c0, c0 + cols)
        return apply_faults_to_cells(
            self._stored[row_slice, col_slice],
            self.fault_map.sa0[row_slice, col_slice],
            self.fault_map.sa1[row_slice, col_slice],
            self.cell_levels,
        )

    def read_ideal(self) -> np.ndarray:
        """Read the stored values ignoring faults (for analysis/tests only)."""
        return self._stored.copy()

    # ------------------------------------------------------------------ #
    # Binary (adjacency) convenience API
    # ------------------------------------------------------------------ #
    def program_binary(
        self, block: np.ndarray, row_permutation: Optional[np.ndarray] = None
    ) -> None:
        """Program a binary adjacency block, optionally permuting its rows.

        ``row_permutation[i]`` gives the crossbar row that logical block row
        ``i`` is written to (the FARe row-permutation output).  The block must
        exactly fill the crossbar.
        """
        self.store_binary(block, row_permutation=row_permutation)
        # Full-array write: same accounting as program() over the whole
        # crossbar (the binary values never need the write driver's clip).
        self.write_counts += 1
        self.total_writes += 1

    def store_binary(
        self, block: np.ndarray, row_permutation: Optional[np.ndarray] = None
    ) -> None:
        """Set the stored contents exactly like :meth:`program_binary`, but
        without any write accounting.

        The batched read-back path uses this together with
        :meth:`record_simulated_writes`: the block contents land in one bulk
        assignment per crossbar while the endurance counters advance by the
        full number of simulated per-batch writes.  :meth:`program_binary`
        delegates here, so the two paths cannot drift apart.
        """
        block = np.asarray(block)
        if block.shape != (self.rows, self.cols):
            raise ValueError(
                f"binary block shape {block.shape} must equal crossbar shape "
                f"({self.rows}, {self.cols})"
            )
        binary = (block > 0).astype(np.int64) * (self.cell_levels - 1)
        if row_permutation is not None:
            row_permutation = check_permutation(
                row_permutation, self.rows, "row_permutation"
            )
            placed = np.zeros_like(binary)
            placed[row_permutation] = binary
            binary = placed
        self._stored[:, :] = binary

    def read_binary(self, row_permutation: Optional[np.ndarray] = None) -> np.ndarray:
        """Read back a binary block (faults applied), undoing a row permutation."""
        read = self.read()
        binary = (read >= (self.cell_levels / 2.0)).astype(np.float64)
        if row_permutation is not None:
            row_permutation = np.asarray(row_permutation, dtype=np.int64)
            binary = binary[row_permutation]
        return binary

    # ------------------------------------------------------------------ #
    # Endurance accounting
    # ------------------------------------------------------------------ #
    def record_simulated_writes(self, count: int) -> None:
        """Account ``count`` full-array writes without touching stored data.

        The epoch-cached read-back serves repeated batches from cache, but the
        *simulated hardware* still re-programs its blocks every batch — the
        endurance counters (which feed the Fig. 7 timing model and the
        endurance analyses) must advance exactly as if each write happened.
        """
        # Hot path (called per crossbar per cache hit): plain int coercion
        # instead of the ABC-backed check_non_negative_int.
        count = int(count)
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count:
            self.write_counts += count
            self.total_writes += count

    @property
    def max_cell_writes(self) -> int:
        """Largest write count over all cells (endurance wear indicator)."""
        return int(self.write_counts.max()) if self.write_counts.size else 0
