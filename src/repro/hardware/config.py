"""ReRAM-PIM architecture specification (paper Table III).

The paper's tile contains 96 crossbars of 128 × 128 cells at 2 bits/cell,
96 8-bit ADCs, 12 × 128 × 8 1-bit DACs, eight 16-bit comparators at 2 GHz and
eight 2:1 multiplexers used to implement weight clipping, clocked at 10 MHz.
Each tile consumes 0.34 W and occupies 0.157 mm².
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class ReRAMConfig:
    """Architecture parameters for the simulated ReRAM PIM accelerator."""

    crossbar_rows: int = 128
    crossbar_cols: int = 128
    bits_per_cell: int = 2
    weight_bits: int = 16
    crossbars_per_tile: int = 96
    num_tiles: int = 8
    adc_bits: int = 8
    adcs_per_tile: int = 96
    dac_bits: int = 1
    dacs_per_tile: int = 12 * 128 * 8
    comparator_bits: int = 16
    comparators_per_tile: int = 8
    comparator_frequency_hz: float = 2e9
    mux_ratio: int = 2
    muxes_per_tile: int = 8
    clock_frequency_hz: float = 10e6
    tile_power_w: float = 0.34
    tile_area_mm2: float = 0.157
    bist_time_overhead: float = 0.0013
    bist_area_overhead: float = 0.0013
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive_int(self.crossbar_rows, "crossbar_rows")
        check_positive_int(self.crossbar_cols, "crossbar_cols")
        check_positive_int(self.bits_per_cell, "bits_per_cell")
        check_positive_int(self.weight_bits, "weight_bits")
        check_positive_int(self.crossbars_per_tile, "crossbars_per_tile")
        check_positive_int(self.num_tiles, "num_tiles")
        if self.weight_bits % self.bits_per_cell != 0:
            raise ValueError(
                "weight_bits must be a multiple of bits_per_cell "
                f"({self.weight_bits} % {self.bits_per_cell} != 0)"
            )
        if self.clock_frequency_hz <= 0:
            raise ValueError("clock_frequency_hz must be positive")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def cells_per_weight(self) -> int:
        """Number of ReRAM cells used to store one fixed-point weight."""
        return self.weight_bits // self.bits_per_cell

    @property
    def cell_levels(self) -> int:
        """Number of distinct conductance levels per cell."""
        return 2**self.bits_per_cell

    @property
    def cells_per_crossbar(self) -> int:
        return self.crossbar_rows * self.crossbar_cols

    @property
    def crossbar_count(self) -> int:
        """Total number of crossbars across all tiles."""
        return self.crossbars_per_tile * self.num_tiles

    @property
    def total_cells(self) -> int:
        return self.crossbar_count * self.cells_per_crossbar

    @property
    def weights_per_crossbar_row(self) -> int:
        """How many full 16-bit weights fit in one crossbar row."""
        return self.crossbar_cols // self.cells_per_weight

    @property
    def total_power_w(self) -> float:
        return self.tile_power_w * self.num_tiles

    @property
    def total_area_mm2(self) -> float:
        return self.tile_area_mm2 * self.num_tiles

    def describe(self) -> Dict[str, str]:
        """Return the rows of Table III as an ordered mapping."""
        return {
            "ADCs": f"{self.adcs_per_tile} x {self.adc_bits}-bit",
            "DACs": f"{self.dacs_per_tile} x {self.dac_bits}-bit",
            "Crossbars": f"{self.crossbars_per_tile} x "
            f"{self.crossbar_rows}x{self.crossbar_cols}",
            "Cell resolution": f"{self.bits_per_cell}-bit/cell",
            "Clock": f"{self.clock_frequency_hz / 1e6:.0f} MHz",
            "Comparators": f"{self.comparators_per_tile} x "
            f"{self.comparator_bits}-bit @ "
            f"{self.comparator_frequency_hz / 1e9:.0f} GHz",
            "Muxes": f"{self.muxes_per_tile} x {self.mux_ratio}:1",
            "Tile power": f"{self.tile_power_w:.2f} W",
            "Tile area": f"{self.tile_area_mm2:.3f} mm^2",
        }


#: The configuration matching the paper's Table III.
DEFAULT_CONFIG = ReRAMConfig()
