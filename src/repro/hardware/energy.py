"""Latency / area / power cost model (NeuroSim surrogate).

The paper obtains the latency, area and power of on-chip buffers and
peripheral circuits from NeuroSim v2.1.  NeuroSim is not available here, so
this module exposes an analytical cost model parameterised by the
:class:`~repro.hardware.config.ReRAMConfig` (Table III) with per-operation
constants in the range NeuroSim reports for 32 nm ReRAM tiles.  The absolute
numbers only need to be self-consistent: every Fig. 7 result is *normalised*
to fault-free training, so what matters is the ratio between pipeline-stage
latency, crossbar write latency, the clipping comparator latency, the BIST
overhead and the host-side mapping/reordering cost — each of which is modelled
explicitly below.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.config import DEFAULT_CONFIG, ReRAMConfig


@dataclass(frozen=True)
class TileCostModel:
    """Per-operation latency/energy constants for one tile.

    Parameters
    ----------
    config:
        Architecture configuration.
    read_cycles_per_mvm:
        Crossbar read cycles needed for one matrix-vector multiplication
        (input bits are streamed through 1-bit DACs).
    write_cycles_per_row:
        Cycles needed to program one crossbar row.
    host_matching_time_per_block_s:
        Host-side time to evaluate one (block, crossbar) candidate pair of
        Algorithm 1.  The pairs are evaluated as batched dense boolean
        products on the host GPU, so the amortised per-pair cost is tens of
        nanoseconds; the value is calibrated so the one-time pre-processing
        stays around (or below) the ~1 % of training time the paper reports
        even for the Amazon2M workload with its ~1500 blocks per batch.
    host_reorder_time_per_unit_s:
        Host-side time per neuron-reordering unit used by the NR baseline;
        the pipeline must stall for the full reordering after every batch,
        which is what produces NR's 2.5-4x slow-down in Fig. 7.
    """

    config: ReRAMConfig = DEFAULT_CONFIG
    read_cycles_per_mvm: int = 16
    write_cycles_per_row: int = 2
    adc_cycles_per_mvm: int = 8
    comparator_cycles_per_clip: int = 1
    host_matching_time_per_block_s: float = 1.2e-8
    host_reorder_time_per_unit_s: float = 1.0e-5
    energy_per_mvm_j: float = 1.2e-9
    energy_per_write_j: float = 5.0e-10

    # ------------------------------------------------------------------ #
    # Latencies
    # ------------------------------------------------------------------ #
    @property
    def cycle_time_s(self) -> float:
        """One ReRAM clock cycle (10 MHz tile clock)."""
        return 1.0 / self.config.clock_frequency_hz

    def mvm_latency_s(self) -> float:
        """Latency of one crossbar MVM including ADC conversion."""
        return (self.read_cycles_per_mvm + self.adc_cycles_per_mvm) * self.cycle_time_s

    def crossbar_write_latency_s(self, rows: int | None = None) -> float:
        """Latency of programming ``rows`` crossbar rows (default: all rows)."""
        rows = rows if rows is not None else self.config.crossbar_rows
        return rows * self.write_cycles_per_row * self.cycle_time_s

    def clipping_latency_s(self, num_weights: int) -> float:
        """Latency of the comparator+mux clipping stage for ``num_weights``.

        The tile has ``comparators_per_tile`` 16-bit comparators at 2 GHz, so
        throughput is high; the cost shows up as one extra pipeline stage
        rather than a per-weight penalty (Section V-E).
        """
        comparators = self.config.comparators_per_tile * self.config.num_tiles
        per_weight = self.comparator_cycles_per_clip / self.config.comparator_frequency_hz
        return num_weights * per_weight / max(comparators, 1)

    def pipeline_stage_latency_s(self, crossbars_per_stage: int) -> float:
        """Latency of one pipeline stage processing ``crossbars_per_stage`` MVMs.

        Crossbars within a tile operate in parallel, so the stage latency is
        one MVM plus the write of the next batch's adjacency block (double
        buffered -> the max of the two, approximated by their sum for a
        conservative stage time).
        """
        if crossbars_per_stage <= 0:
            raise ValueError("crossbars_per_stage must be positive")
        parallel = self.config.crossbars_per_tile * self.config.num_tiles
        waves = -(-crossbars_per_stage // parallel)  # ceil division
        return waves * (self.mvm_latency_s() + self.crossbar_write_latency_s())

    # ------------------------------------------------------------------ #
    # Host-side costs
    # ------------------------------------------------------------------ #
    def mapping_preprocess_time_s(self, num_blocks: int, num_crossbars: int) -> float:
        """One-time Algorithm 1 cost on the host (cost matrix + assignment)."""
        pairs = max(num_blocks, 1) * max(num_crossbars, 1)
        return pairs * self.host_matching_time_per_block_s

    def row_permutation_time_s(self, num_blocks: int) -> float:
        """Per-epoch host cost of re-running row permutations (overlapped)."""
        return num_blocks * self.host_matching_time_per_block_s

    def neuron_reorder_time_s(self, num_units: int) -> float:
        """Per-batch host cost of the NR baseline's reordering."""
        return num_units * self.host_reorder_time_per_unit_s

    # ------------------------------------------------------------------ #
    # Energy / area
    # ------------------------------------------------------------------ #
    def mvm_energy_j(self, num_mvms: int) -> float:
        return num_mvms * self.energy_per_mvm_j

    def write_energy_j(self, num_writes: int) -> float:
        return num_writes * self.energy_per_write_j

    def total_area_mm2(self, include_bist: bool = True) -> float:
        """Accelerator area including (optionally) the BIST overhead."""
        area = self.config.total_area_mm2
        if include_bist:
            area *= 1.0 + self.config.bist_area_overhead
        return area

    def total_power_w(self) -> float:
        return self.config.total_power_w
