"""High-level convenience API.

Most users only need three calls:

* :func:`train_on_faulty_hardware` — train one GNN on one (synthetic
  surrogate) dataset under one fault-handling strategy and fault scenario,
  returning a :class:`~repro.pipeline.trainer.TrainingResult`.
* :func:`compare_strategies` — run several strategies on the same graph and
  the same injected faults and return their results side by side (the shape
  of the paper's Fig. 5/6 comparisons).
* :func:`run_sweep` — execute a whole (strategy × density × seed × …) grid
  through the declarative sweep engine: shared preprocessing artifacts,
  optional process-parallel execution and an optional persistent on-disk
  result store (see :mod:`repro.experiments.sweeps`).

For the multi-client service surface (shared queue + leases over the run
cache, see :mod:`repro.experiments.service`):

* :func:`submit_sweep` — queue a grid idempotently for any running server
  (or a later ``drain``) to execute.
* :func:`sweep_status` — counter snapshot of the shared service root.

All are thin wrappers over :mod:`repro.experiments`, which the benchmark
harness uses directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.pipeline.trainer import TrainingResult


def train_on_faulty_hardware(
    dataset: str = "reddit",
    model: str = "gcn",
    strategy: str = "fare",
    fault_density: float = 0.05,
    sa_ratio: Tuple[float, float] = (9.0, 1.0),
    epochs: Optional[int] = None,
    scale: str = "ci",
    seed: int = 0,
    post_deployment_extra: Optional[float] = None,
    **strategy_kwargs,
) -> TrainingResult:
    """Train a GNN on faulty ReRAM hardware with the chosen strategy.

    Parameters
    ----------
    dataset:
        ``ppi`` / ``reddit`` / ``amazon2m`` / ``ogbl`` (synthetic surrogates).
    model:
        ``gcn`` / ``gat`` / ``sage``.
    strategy:
        ``fault_free`` / ``fault_unaware`` / ``nr`` / ``clipping`` / ``fare``.
    fault_density:
        Pre-deployment stuck-at-fault density (paper range: 0.01-0.05).
    sa_ratio:
        SA0:SA1 likelihood ratio, e.g. ``(9, 1)`` or ``(1, 1)``.
    epochs:
        Override the scale's default epoch count.
    scale:
        ``'ci'`` (small, fast) or ``'paper'`` (full surrogate size).
    seed:
        Controls dataset synthesis, fault injection and training randomness.
    post_deployment_extra:
        If given, total extra fault density injected uniformly across epochs
        (the paper's worst-case post-deployment scenario uses 0.01).
    strategy_kwargs:
        Extra arguments forwarded to the strategy constructor (e.g.
        ``clipping_threshold`` or ``sa1_weight`` for FARe).
    """
    from repro.experiments.runner import run_single

    return run_single(
        dataset=dataset,
        model=model,
        strategy_name=strategy,
        fault_density=fault_density,
        sa_ratio=sa_ratio,
        scale=scale,
        seed=seed,
        epochs=epochs,
        post_deployment_extra=post_deployment_extra,
        strategy_kwargs=strategy_kwargs or None,
    )


def compare_strategies(
    dataset: str = "reddit",
    model: str = "gcn",
    strategies: Iterable[str] = ("fault_free", "fault_unaware", "nr", "clipping", "fare"),
    fault_density: float = 0.05,
    sa_ratio: Tuple[float, float] = (9.0, 1.0),
    epochs: Optional[int] = None,
    scale: str = "ci",
    seed: int = 0,
) -> Dict[str, TrainingResult]:
    """Run several strategies under identical fault conditions.

    Every strategy sees the same synthetic graph and the same injected fault
    maps (the hardware RNG is seeded identically), so differences in final
    test accuracy are attributable to the strategy alone.
    """
    from repro.experiments.runner import run_single

    results: Dict[str, TrainingResult] = {}
    for strategy in strategies:
        results[strategy] = run_single(
            dataset=dataset,
            model=model,
            strategy_name=strategy,
            fault_density=fault_density,
            sa_ratio=sa_ratio,
            scale=scale,
            seed=seed,
            epochs=epochs,
        )
    return results


def run_sweep(
    datasets: Iterable[Tuple[str, str]] = (("reddit", "gcn"),),
    strategies: Iterable[str] = ("fault_free", "fault_unaware", "nr", "clipping", "fare"),
    fault_densities: Iterable[float] = (0.01, 0.03, 0.05),
    sa_ratio: Tuple[float, float] = (9.0, 1.0),
    seeds: Iterable[int] = (0,),
    scale: str = "ci",
    epochs: Optional[int] = None,
    max_workers: int = 1,
    use_store: bool = False,
    max_attempts: int = 3,
    group_timeout: Optional[float] = None,
):
    """Execute a (workload × strategy × density × seed) grid declaratively.

    Returns a :class:`~repro.experiments.sweeps.SweepResult`: a mapping from
    each grid cell's canonical :class:`~repro.experiments.sweeps.RunSpec` to
    its :class:`~repro.pipeline.trainer.TrainingResult`.  Preprocessing
    artifacts (dataset, partition, block decomposition, BIST scan, mapping
    plans) are shared across cells; ``max_workers > 1`` distributes whole
    workload groups over spawned processes (results are keyed by spec, so
    parallel and serial execution are bit-identical); ``use_store=True``
    persists results under ``benchmarks/results/runcache/`` keyed by the
    run-signature hash, so repeated sweeps skip finished cells across
    sessions.

    Execution is supervised (see :mod:`repro.experiments.failures`):
    transient/infra failures retry up to ``max_attempts`` with deterministic
    seeded backoff, ``group_timeout`` bounds each workload group's wall
    clock under parallel execution, and specs that exhaust their retries are
    quarantined into ``SweepResult.failed_specs`` instead of aborting the
    grid (check ``sweep.complete()``).

    Example — a multi-seed accuracy sweep with error bars::

        from repro.api import run_sweep
        from repro.experiments.tables import mean_std

        sweep = run_sweep(strategies=("fault_unaware", "fare"),
                          fault_densities=(0.05,), seeds=(0, 1, 2))
        by_strategy = {}
        for spec, result in sweep.results.items():
            by_strategy.setdefault(spec.strategy, []).append(
                result.final_test_accuracy)
        for strategy, accs in by_strategy.items():
            print(f"{strategy:14s} {mean_std(accs)}")
    """
    from repro.experiments.failures import RetryPolicy
    from repro.experiments.sweeps import (
        ResultStore,
        SweepEngine,
        SweepPlan,
        default_engine,
    )

    plan = SweepPlan.grid(
        datasets=list(datasets),
        strategies=list(strategies),
        fault_densities=list(fault_densities),
        sa_ratio=sa_ratio,
        seeds=list(seeds),
        scale=scale,
        epochs=epochs,
    )
    # Store-less sweeps with default fault handling share the process-wide
    # engine (one memo + artifact cache with run_single/compare_strategies
    # and the figure drivers); custom persistence or fault settings get a
    # dedicated engine.
    default_faults = max_attempts == 3 and group_timeout is None
    if use_store or not default_faults:
        engine = SweepEngine(
            store=ResultStore() if use_store else None,
            retry_policy=RetryPolicy(max_attempts=max_attempts),
            group_timeout=group_timeout,
        )
    else:
        engine = default_engine()
    return engine.run(plan, max_workers=max_workers)


def submit_sweep(
    datasets: Iterable[Tuple[str, str]] = (("reddit", "gcn"),),
    strategies: Iterable[str] = ("fault_free", "fault_unaware", "nr", "clipping", "fare"),
    fault_densities: Iterable[float] = (0.01, 0.03, 0.05),
    sa_ratio: Tuple[float, float] = (9.0, 1.0),
    seeds: Iterable[int] = (0,),
    scale: str = "ci",
    epochs: Optional[int] = None,
    root=None,
    client_id: Optional[str] = None,
) -> Dict[str, int]:
    """Queue a grid on the shared sweep service, idempotently.

    Submission is keyed by run signature: specs whose results already sit
    in the shared store are skipped (``already_done``), specs already
    queued by any client are counted dedupe hits (``deduped``), the rest
    become persistent job files (``submitted``) claimable by any
    ``python -m repro.experiments serve`` / ``drain`` process pointed at
    the same ``root`` (default: the run cache; ``REPRO_RUNCACHE_DIR``
    aware).  Returns the ``{submitted, deduped, already_done}`` receipt.
    """
    from repro.experiments.service import SweepService
    from repro.experiments.sweeps import SweepPlan

    plan = SweepPlan.grid(
        datasets=list(datasets),
        strategies=list(strategies),
        fault_densities=list(fault_densities),
        sa_ratio=sa_ratio,
        seeds=list(seeds),
        scale=scale,
        epochs=epochs,
    )
    return SweepService(root=root, client_id=client_id).submit(plan)


def sweep_status(root=None) -> Dict[str, float]:
    """Counter snapshot of the shared sweep-service root.

    Flat ``name → number`` mapping: queue depth and dedupe hits, lease
    counters (``lease_acquired`` / ``lease_reclaimed`` / …), store
    hit/miss/race counters, journal state and quarantined-job count — the
    same channel as :meth:`repro.experiments.sweeps.SweepEngine.summary`.
    """
    from repro.experiments.service import SweepService

    return SweepService(root=root).status()
