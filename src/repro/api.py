"""High-level convenience API.

Most users only need two calls:

* :func:`train_on_faulty_hardware` — train one GNN on one (synthetic
  surrogate) dataset under one fault-handling strategy and fault scenario,
  returning a :class:`~repro.pipeline.trainer.TrainingResult`.
* :func:`compare_strategies` — run several strategies on the same graph and
  the same injected faults and return their results side by side (the shape
  of the paper's Fig. 5/6 comparisons).

Both are thin wrappers over :mod:`repro.experiments.runner`, which the
benchmark harness uses directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.pipeline.trainer import TrainingResult


def train_on_faulty_hardware(
    dataset: str = "reddit",
    model: str = "gcn",
    strategy: str = "fare",
    fault_density: float = 0.05,
    sa_ratio: Tuple[float, float] = (9.0, 1.0),
    epochs: Optional[int] = None,
    scale: str = "ci",
    seed: int = 0,
    post_deployment_extra: Optional[float] = None,
    **strategy_kwargs,
) -> TrainingResult:
    """Train a GNN on faulty ReRAM hardware with the chosen strategy.

    Parameters
    ----------
    dataset:
        ``ppi`` / ``reddit`` / ``amazon2m`` / ``ogbl`` (synthetic surrogates).
    model:
        ``gcn`` / ``gat`` / ``sage``.
    strategy:
        ``fault_free`` / ``fault_unaware`` / ``nr`` / ``clipping`` / ``fare``.
    fault_density:
        Pre-deployment stuck-at-fault density (paper range: 0.01-0.05).
    sa_ratio:
        SA0:SA1 likelihood ratio, e.g. ``(9, 1)`` or ``(1, 1)``.
    epochs:
        Override the scale's default epoch count.
    scale:
        ``'ci'`` (small, fast) or ``'paper'`` (full surrogate size).
    seed:
        Controls dataset synthesis, fault injection and training randomness.
    post_deployment_extra:
        If given, total extra fault density injected uniformly across epochs
        (the paper's worst-case post-deployment scenario uses 0.01).
    strategy_kwargs:
        Extra arguments forwarded to the strategy constructor (e.g.
        ``clipping_threshold`` or ``sa1_weight`` for FARe).
    """
    from repro.experiments.runner import run_single

    return run_single(
        dataset=dataset,
        model=model,
        strategy_name=strategy,
        fault_density=fault_density,
        sa_ratio=sa_ratio,
        scale=scale,
        seed=seed,
        epochs=epochs,
        post_deployment_extra=post_deployment_extra,
        strategy_kwargs=strategy_kwargs or None,
    )


def compare_strategies(
    dataset: str = "reddit",
    model: str = "gcn",
    strategies: Iterable[str] = ("fault_free", "fault_unaware", "nr", "clipping", "fare"),
    fault_density: float = 0.05,
    sa_ratio: Tuple[float, float] = (9.0, 1.0),
    epochs: Optional[int] = None,
    scale: str = "ci",
    seed: int = 0,
) -> Dict[str, TrainingResult]:
    """Run several strategies under identical fault conditions.

    Every strategy sees the same synthetic graph and the same injected fault
    maps (the hardware RNG is seeded identically), so differences in final
    test accuracy are attributable to the strategy alone.
    """
    from repro.experiments.runner import run_single

    results: Dict[str, TrainingResult] = {}
    for strategy in strategies:
        results[strategy] = run_single(
            dataset=dataset,
            model=model,
            strategy_name=strategy,
            fault_density=fault_density,
            sa_ratio=sa_ratio,
            scale=scale,
            seed=seed,
            epochs=epochs,
        )
    return results
