"""Fig. 3 — impact of SA0-only vs SA1-only faults on each computation phase.

The paper injects 5 % pre-deployment faults of a single type (SA0 only or SA1
only) separately into the crossbars storing the weights and those storing the
adjacency matrix, trains SAGE on Amazon2M without any mitigation, and compares
the final test accuracy against the fault-free model.  The expected shape:

* faults in either phase hurt accuracy (motivating mitigation in both),
* SA1-only faults hurt substantially more than SA0-only faults.

The grid is declared as a :class:`~repro.experiments.sweeps.SweepPlan`
(:func:`plan_fig3`) and executed through the sweep engine; use
:func:`run_fig3_seeds` for seed-replicated results with error bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.sweeps import (
    RunSpec,
    SweepEngine,
    SweepPlan,
    default_engine,
    run_seed_replicates,
)
from repro.utils.tabulate import format_table

#: The four faulted cells of Fig. 3: (region, label, SA0:SA1 ratio).
FIG3_CELLS: Tuple[Tuple[str, str, Tuple[float, float]], ...] = (
    ("weights", "SA0 only", (1.0, 0.0)),
    ("weights", "SA1 only", (0.0, 1.0)),
    ("adjacency", "SA0 only", (1.0, 0.0)),
    ("adjacency", "SA1 only", (0.0, 1.0)),
)

#: Column headers matching :meth:`Fig3Result.rows` (shared with the CLI).
FIG3_HEADERS: Tuple[str, ...] = ("Faulted matrix", "Fault type", "Test accuracy")


@dataclass(frozen=True)
class Fig3Result:
    """Accuracy of every (region, fault type) combination plus the reference.

    Cells whose spec was quarantined by the fault-tolerant engine are
    ``None`` and render as ``(missing)`` instead of raising.
    """

    dataset: str
    model: str
    fault_density: float
    fault_free_accuracy: Optional[float]
    accuracies: Dict[Tuple[str, str], Optional[float]]

    def rows(self) -> List[List]:
        rows = [["-", "fault-free", self.fault_free_accuracy]]
        for (region, fault_type), acc in sorted(self.accuracies.items()):
            rows.append([region, fault_type, acc])
        return rows


def _fig3_specs(
    dataset: str,
    model: str,
    fault_density: float,
    scale: str,
    seed: int,
    epochs: Optional[int],
) -> Dict[Optional[Tuple[str, str]], RunSpec]:
    """Specs keyed by figure cell (``None`` is the fault-free reference)."""
    specs: Dict[Optional[Tuple[str, str]], RunSpec] = {
        None: RunSpec.make(
            dataset, model, "fault_free", 0.0, scale=scale, seed=seed, epochs=epochs
        )
    }
    for region, fault_type, ratio in FIG3_CELLS:
        specs[(region, fault_type)] = RunSpec.make(
            dataset,
            model,
            "fault_unaware",
            fault_density,
            sa_ratio=ratio,
            scale=scale,
            seed=seed,
            epochs=epochs,
            fault_region=region,
        )
    return specs


def plan_fig3(
    dataset: str = "amazon2m",
    model: str = "sage",
    fault_density: float = 0.05,
    scale: str = "ci",
    seed: int = 0,
    epochs: int = None,
) -> SweepPlan:
    """The Fig. 3 grid as a declarative plan."""
    return SweepPlan(
        _fig3_specs(dataset, model, fault_density, scale, seed, epochs).values()
    )


def run_fig3(
    dataset: str = "amazon2m",
    model: str = "sage",
    fault_density: float = 0.05,
    scale: str = "ci",
    seed: int = 0,
    epochs: int = None,
    engine: Optional[SweepEngine] = None,
) -> Fig3Result:
    """Regenerate Fig. 3 (per-phase SA0/SA1 sensitivity)."""
    if engine is None:
        engine = default_engine()
    specs = _fig3_specs(dataset, model, fault_density, scale, seed, epochs)
    results = engine.run(SweepPlan(specs.values()))
    acc = lambda r: r.final_test_accuracy  # noqa: E731
    return Fig3Result(
        dataset=dataset,
        model=model,
        fault_density=fault_density,
        fault_free_accuracy=results.value(specs[None], acc),
        accuracies={
            cell: results.value(spec, acc)
            for cell, spec in specs.items()
            if cell is not None
        },
    )


def run_fig3_seeds(
    seeds: Sequence[int] = (0, 1, 2), **kwargs
) -> Dict[int, Fig3Result]:
    """Seed-replicated Fig. 3 (one engine pass over the union grid)."""
    return run_seed_replicates(plan_fig3, run_fig3, seeds, **kwargs)


def format_fig3(result: Fig3Result) -> str:
    return format_table(
        list(FIG3_HEADERS),
        result.rows(),
        title=(
            f"Fig. 3 — {result.dataset} ({result.model.upper()}), "
            f"{result.fault_density:.0%} fault density"
        ),
    )
