"""Fig. 3 — impact of SA0-only vs SA1-only faults on each computation phase.

The paper injects 5 % pre-deployment faults of a single type (SA0 only or SA1
only) separately into the crossbars storing the weights and those storing the
adjacency matrix, trains SAGE on Amazon2M without any mitigation, and compares
the final test accuracy against the fault-free model.  The expected shape:

* faults in either phase hurt accuracy (motivating mitigation in both),
* SA1-only faults hurt substantially more than SA0-only faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.runner import run_single
from repro.utils.tabulate import format_table


@dataclass(frozen=True)
class Fig3Result:
    """Accuracy of every (region, fault type) combination plus the reference."""

    dataset: str
    model: str
    fault_density: float
    fault_free_accuracy: float
    accuracies: Dict[Tuple[str, str], float]

    def rows(self) -> List[List]:
        rows = [["-", "fault-free", self.fault_free_accuracy]]
        for (region, fault_type), acc in sorted(self.accuracies.items()):
            rows.append([region, fault_type, acc])
        return rows


def run_fig3(
    dataset: str = "amazon2m",
    model: str = "sage",
    fault_density: float = 0.05,
    scale: str = "ci",
    seed: int = 0,
    epochs: int = None,
) -> Fig3Result:
    """Regenerate Fig. 3 (per-phase SA0/SA1 sensitivity)."""
    fault_free = run_single(
        dataset, model, "fault_free", 0.0, scale=scale, seed=seed, epochs=epochs
    )
    accuracies: Dict[Tuple[str, str], float] = {}
    for region in ("weights", "adjacency"):
        for fault_type, ratio in (("SA0 only", (1.0, 0.0)), ("SA1 only", (0.0, 1.0))):
            result = run_single(
                dataset,
                model,
                "fault_unaware",
                fault_density,
                sa_ratio=ratio,
                scale=scale,
                seed=seed,
                epochs=epochs,
                fault_region=region,
            )
            accuracies[(region, fault_type)] = result.final_test_accuracy
    return Fig3Result(
        dataset=dataset,
        model=model,
        fault_density=fault_density,
        fault_free_accuracy=fault_free.final_test_accuracy,
        accuracies=accuracies,
    )


def format_fig3(result: Fig3Result) -> str:
    return format_table(
        ["Faulted matrix", "Fault type", "Test accuracy"],
        result.rows(),
        title=(
            f"Fig. 3 — {result.dataset} ({result.model.upper()}), "
            f"{result.fault_density:.0%} fault density"
        ),
    )
