"""Declarative sweep engine: run plans, shared preprocessing, parallel runs.

The paper's results are all *sweeps* — grids over (strategy × fault density ×
region × seed).  This module turns those grids into data:

* :class:`RunSpec` — a frozen, canonicalised description of one training run
  (exactly the signature :func:`repro.experiments.runner.run_single` keys on).
* :class:`SweepPlan` — an ordered, de-duplicated collection of specs; figure
  drivers declare their grids as plans instead of nested ``run_single`` loops.
* :class:`SweepEngine` — executes a plan with

  - **shared preprocessing artifacts**: the dataset, the cluster partition,
    the mini-batches, the adjacency block decomposition and the mapping plans
    are content-keyed on ``(dataset, scale, seed)`` (+ the hardware geometry /
    plan signature where relevant); the hardware fault maps and the
    pre-deployment BIST scan are keyed on the *fault signature*
    ``(scale, density, sa_ratio, seed, fault_region)``.  Runs that share a key
    reuse the artifact instead of rebuilding it per grid cell.
  - **process-parallel execution**: ``max_workers=N`` distributes whole
    artifact groups to spawned worker processes.  Results are keyed by spec
    and merged in plan order, so serial and parallel execution produce
    bit-identical result mappings.
  - **a persistent on-disk result store** (:class:`ResultStore`, JSON files
    under ``benchmarks/results/runcache/`` keyed by the run-signature hash)
    that replaces the session-only result dict of the seed ``run_single``.

Equivalence contract
--------------------
Artifact sharing never changes a run's *outcome*: every shared object is
either immutable in practice (graphs, batches, blocks, BIST reports, mapping
plans — all consumed read-only by the trainer) or rebuilt per run from a
deterministic snapshot (crossbar fault maps + the fault model's RNG state, so
post-deployment injection continues the exact random stream of the unshared
path).  Loss/accuracy histories are bit-identical with and without sharing;
work counters (``mapping_*``) reflect the planning work *actually performed*,
so a run that reuses a shared mapping plan reports the plan work once, on the
run that computed it.

Cache invalidation (the third protocol, next to ``hw_state`` version counters
and cost-engine content fingerprints — see ``docs/ARCHITECTURE.md``): the
on-disk store names files by :meth:`RunSpec.signature`, a SHA-256 over the
canonical spec payload and :data:`SIGNATURE_VERSION`.  Bump the version
whenever a semantic change makes old results stale; stored files whose
embedded signature no longer matches their spec are deleted on load.

Fault tolerance (see :mod:`repro.experiments.failures` and
``docs/ARCHITECTURE.md``): execution is *supervised*.  Per-spec exceptions
are classified (transient / deterministic / infra) and retried under a
deterministic :class:`~repro.experiments.failures.RetryPolicy`; the parallel
executor detects dead and hung workers (per-group wall-clock timeouts),
respawns the pool and requeues in-flight artifact groups; specs that exhaust
their retries are quarantined into :attr:`SweepResult.failed` with full
context instead of aborting the sweep.  Results publish to the memo, the
store and the :class:`SweepJournal` *as they complete*, so an interrupted
sweep resumes from its completed runs (``python -m repro.experiments
--resume``).
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import time
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass, field, fields, replace
from multiprocessing import get_context
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.strategies import Strategy, build_strategy
from repro.experiments import configs
from repro.experiments.failures import (
    FailureKind,
    FailureRecord,
    FaultInjector,
    GroupTimeoutError,
    RetryPolicy,
    SpecExecutionError,
    WorkerCrashError,
    format_failure_report,
)
from repro.graph.datasets import load_dataset
from repro.graph.partition import PartitionResult, partition_graph
from repro.graph.sampling import ClusterBatch, ClusterBatchSampler
from repro.hardware.bist import BISTReport
from repro.hardware.endurance import PostDeploymentSchedule
from repro.hardware.faults import FaultMap, FaultModel
from repro.hardware.quantization import FixedPointFormat
from repro.pipeline.mapping_engine import HardwareEnvironment, decompose_adjacency
from repro.pipeline.trainer import FaultyTrainer, TrainerArtifacts, TrainingResult
from repro.utils.logging import get_logger
from repro.utils.rng import spawn_rngs

logger = get_logger("experiments.sweeps")

#: Bump on any semantic change that invalidates previously stored results.
SIGNATURE_VERSION = 1

#: Canonical SA0:SA1 ratio used when the ratio cannot affect the outcome.
DEFAULT_SA_RATIO: Tuple[float, float] = (9.0, 1.0)

_VALID_FAULT_REGIONS = ("both", "weights", "adjacency")


# --------------------------------------------------------------------------- #
# RunSpec
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class RunSpec:
    """One training run, canonicalised so equal configurations compare equal.

    Use :meth:`make` instead of the raw constructor: it lower-cases names,
    rounds the fault density, resolves the scale's default strategy kwargs
    and canonicalises fields that cannot affect the outcome (the SA ratio and
    fault region of a fault-free run), so specs de-duplicate across figures.
    """

    dataset: str
    model: str
    strategy: str
    fault_density: float
    sa_ratio: Tuple[float, float] = DEFAULT_SA_RATIO
    scale: str = "ci"
    seed: int = 0
    epochs: Optional[int] = None
    post_deployment_extra: Optional[float] = None
    fault_region: str = "both"
    strategy_kwargs: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(
        cls,
        dataset: str,
        model: str,
        strategy: str,
        fault_density: float,
        sa_ratio: Tuple[float, float] = DEFAULT_SA_RATIO,
        scale: str = "ci",
        seed: int = 0,
        epochs: Optional[int] = None,
        post_deployment_extra: Optional[float] = None,
        fault_region: str = "both",
        strategy_kwargs: Optional[Dict] = None,
    ) -> "RunSpec":
        if fault_region not in _VALID_FAULT_REGIONS:
            raise ValueError(
                f"fault_region must be one of {_VALID_FAULT_REGIONS}, got "
                f"{fault_region!r}"
            )
        strategy = str(strategy).lower()
        density = round(float(fault_density), 6)
        # Falsy kwargs (None or {}) resolve to the scale-tuned defaults —
        # exactly the seed runner's `strategy_kwargs or strategy_kwargs_for`
        # behaviour, so both call patterns land on the same canonical spec.
        kwargs = (
            dict(strategy_kwargs)
            if strategy_kwargs
            else configs.strategy_kwargs_for(strategy, scale)
        )
        ratio = tuple(float(x) for x in sa_ratio)
        extra = (
            None if not post_deployment_extra else round(float(post_deployment_extra), 6)
        )
        if density == 0.0:
            # No fault model is built: the ratio and region cannot influence
            # the run, so canonicalise them and let fault-free baselines from
            # different panels collapse into one spec.
            ratio = DEFAULT_SA_RATIO
            fault_region = "both"
        return cls(
            dataset=str(dataset).lower(),
            model=str(model).lower(),
            strategy=strategy,
            fault_density=density,
            sa_ratio=ratio,
            scale=str(scale),
            seed=int(seed),
            epochs=None if epochs is None else int(epochs),
            post_deployment_extra=extra,
            fault_region=fault_region,
            strategy_kwargs=tuple(sorted(kwargs.items())),
        )

    # ------------------------------------------------------------------ #
    def artifact_group(self) -> Tuple:
        """Key of the graph-side artifacts (dataset, partition, batches)."""
        return (self.dataset, self.scale, self.seed)

    def fault_signature(self) -> Tuple:
        """Key of the hardware-side artifacts (fault maps, BIST report)."""
        return (
            self.scale,
            self.fault_density,
            self.sa_ratio,
            self.seed,
            self.fault_region,
        )

    def to_dict(self) -> Dict:
        """JSON-friendly representation (inverse of :meth:`from_dict`)."""
        payload = asdict(self)
        payload["sa_ratio"] = list(self.sa_ratio)
        payload["strategy_kwargs"] = [[k, v] for k, v in self.strategy_kwargs]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "RunSpec":
        return cls.make(
            dataset=payload["dataset"],
            model=payload["model"],
            strategy=payload["strategy"],
            fault_density=payload["fault_density"],
            sa_ratio=tuple(payload["sa_ratio"]),
            scale=payload["scale"],
            seed=payload["seed"],
            epochs=payload["epochs"],
            post_deployment_extra=payload["post_deployment_extra"],
            fault_region=payload["fault_region"],
            strategy_kwargs=dict(
                (k, v) for k, v in payload.get("strategy_kwargs", [])
            ),
        )

    def signature(self) -> str:
        """Content hash naming this run in the on-disk result store."""
        payload = {"signature_version": SIGNATURE_VERSION, **self.to_dict()}
        blob = json.dumps(payload, sort_keys=True, default=repr)
        return hashlib.sha256(blob.encode()).hexdigest()[:24]


# --------------------------------------------------------------------------- #
# SweepPlan
# --------------------------------------------------------------------------- #
class SweepPlan:
    """An ordered, de-duplicated sequence of :class:`RunSpec`."""

    def __init__(self, specs: Iterable[RunSpec] = ()) -> None:
        unique: "OrderedDict[RunSpec, None]" = OrderedDict()
        for spec in specs:
            if not isinstance(spec, RunSpec):
                raise TypeError(f"SweepPlan takes RunSpec instances, got {spec!r}")
            unique.setdefault(spec, None)
        self.specs: Tuple[RunSpec, ...] = tuple(unique)

    @classmethod
    def grid(
        cls,
        datasets: Sequence[Tuple[str, str]],
        strategies: Sequence[str],
        fault_densities: Sequence[float],
        sa_ratio: Tuple[float, float] = DEFAULT_SA_RATIO,
        seeds: Sequence[int] = (0,),
        scale: str = "ci",
        epochs: Optional[int] = None,
        post_deployment_extra: Optional[float] = None,
        fault_region: str = "both",
    ) -> "SweepPlan":
        """Expand a figure-shaped axis grid into a plan.

        ``datasets`` is a sequence of ``(dataset, model)`` pairs.  Following
        the figure drivers' convention, the ``fault_free`` strategy is run at
        density 0 with no post-deployment schedule regardless of the density
        axis (one baseline per workload/seed, de-duplicated by construction).
        """
        specs: List[RunSpec] = []
        for seed in seeds:
            for dataset, model in datasets:
                for density in fault_densities:
                    for strategy in strategies:
                        reference = strategy == "fault_free"
                        specs.append(
                            RunSpec.make(
                                dataset,
                                model,
                                strategy,
                                0.0 if reference else density,
                                sa_ratio=sa_ratio,
                                scale=scale,
                                seed=seed,
                                epochs=epochs,
                                post_deployment_extra=(
                                    None if reference else post_deployment_extra
                                ),
                                fault_region=fault_region,
                            )
                        )
        return cls(specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def __add__(self, other: "SweepPlan") -> "SweepPlan":
        return SweepPlan(self.specs + tuple(other.specs))

    def groups(self) -> "OrderedDict[Tuple, List[RunSpec]]":
        """Specs grouped by :meth:`RunSpec.artifact_group` (first-seen order)."""
        grouped: "OrderedDict[Tuple, List[RunSpec]]" = OrderedDict()
        for spec in self.specs:
            grouped.setdefault(spec.artifact_group(), []).append(spec)
        return grouped

    def __repr__(self) -> str:
        return f"SweepPlan({len(self.specs)} specs)"


# --------------------------------------------------------------------------- #
# Hardware construction (shared with runner.build_hardware)
# --------------------------------------------------------------------------- #
def _environment_for_scale(scale: str) -> HardwareEnvironment:
    """Fault-free :class:`HardwareEnvironment` with the scale's geometry."""
    settings = configs.scale_settings(scale)
    hw_config = configs.hardware_config(scale)
    return HardwareEnvironment(
        config=hw_config,
        fault_model=None,
        weight_fraction=settings.weight_fraction,
        fmt=FixedPointFormat(
            total_bits=hw_config.weight_bits,
            max_value=settings.weight_max_value,
            bits_per_cell=hw_config.bits_per_cell,
        ),
        num_crossbars=settings.num_crossbars,
    )


def build_hardware(
    scale: str,
    fault_density: float,
    sa_ratio: Tuple[float, float],
    seed: int,
    fault_region: str = "both",
) -> HardwareEnvironment:
    """Create a :class:`HardwareEnvironment` with injected pre-deployment faults.

    Parameters
    ----------
    fault_region:
        ``'both'`` (default) injects faults everywhere; ``'weights'`` or
        ``'adjacency'`` clears the fault maps of the other region — used by
        the Fig. 3 per-phase sensitivity study.
    """
    if fault_region not in _VALID_FAULT_REGIONS:
        raise ValueError(
            f"fault_region must be 'both', 'weights' or 'adjacency', got {fault_region!r}"
        )
    hardware = _environment_for_scale(scale)
    if fault_density > 0:
        fault_model = FaultModel(fault_density, sa0_sa1_ratio=sa_ratio, seed=seed)
        hardware.pool.inject_pre_deployment(fault_model)
        hardware.fault_model = fault_model
    if fault_region != "both":
        cleared = (
            hardware.adjacency_crossbars
            if fault_region == "weights"
            else hardware.weight_crossbars
        )
        for crossbar in cleared:
            crossbar.set_fault_map(FaultMap.empty(crossbar.rows, crossbar.cols))
    return hardware


@dataclass
class HardwareSnapshot:
    """Deterministic state needed to rebuild one fault scenario.

    ``fault_maps`` are the post-injection (and post region-clearing) maps of
    the whole pool; ``rng_state`` is the fault model's generator state *after*
    pre-deployment sampling, so a rebuilt environment's post-deployment
    injection continues the exact random stream of a freshly built one.
    """

    fault_maps: List[FaultMap]
    fault_density: float
    sa_ratio: Tuple[float, float]
    rng_state: Optional[dict]

    @classmethod
    def capture(cls, hardware: HardwareEnvironment, spec: RunSpec) -> "HardwareSnapshot":
        model = hardware.pool.fault_model
        return cls(
            fault_maps=[fmap.copy() for fmap in hardware.pool.fault_maps()],
            fault_density=spec.fault_density,
            sa_ratio=spec.sa_ratio,
            rng_state=None if model is None else copy.deepcopy(model.rng_state),
        )

    def restore(self, scale: str) -> HardwareEnvironment:
        hardware = _environment_for_scale(scale)
        if len(self.fault_maps) != len(hardware.pool):
            raise ValueError(
                f"snapshot holds {len(self.fault_maps)} fault maps but the "
                f"pool has {len(hardware.pool)} crossbars"
            )
        for crossbar, fmap in zip(hardware.pool.crossbars, self.fault_maps):
            crossbar.set_fault_map(fmap.copy())
        if self.rng_state is not None:
            model = FaultModel(self.fault_density, sa0_sa1_ratio=self.sa_ratio)
            model.rng_state = copy.deepcopy(self.rng_state)
            hardware.pool.fault_model = model
            hardware.fault_model = model
        return hardware


# --------------------------------------------------------------------------- #
# Artifact cache
# --------------------------------------------------------------------------- #
class _LRU:
    """Small LRU dict with hit/miss/eviction counters."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def get(self, key, compute):
        if key in self._entries:
            self.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]
        self.misses += 1
        value = compute()
        self.put(key, value)
        return value

    def peek(self, key):
        """Return the cached value (refreshing recency) or ``None``."""
        if key not in self._entries:
            return None
        self._entries.move_to_end(key)
        return self._entries[key]

    def put(self, key, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()


class ArtifactCache:
    """Content-keyed, LRU-bounded cache of shared preprocessing artifacts.

    One instance serves one process (the engine's for serial execution, a
    process-global one inside each spawned worker).  Every artifact is keyed
    by the spec fields it actually depends on, never by the spec itself, so
    runs from different grid cells share aggressively:

    ===============  =====================================================
    artifact         key
    ===============  =====================================================
    graph            (dataset, scale, seed)
    partition        (dataset, scale, seed, num_parts)
    batches          (dataset, scale, seed, num_parts, batch_clusters)
    decomposition    batches key + (crossbar_rows, crossbar_cols)
    hardware         (scale, density, sa_ratio, seed, fault_region)
    bist report      hardware key
    mapping plans    decomposition key + hardware key + plan signature
    ===============  =====================================================

    Graphs, batches, blocks, reports and plans are handed out as shared
    read-only objects; hardware environments are rebuilt per run from a
    :class:`HardwareSnapshot` because training mutates crossbar state.
    """

    #: Per-kind LRU capacities (entries, not bytes): graph-side artifacts are
    #: the big ones, a handful of groups in flight is plenty.
    CAPACITIES = {
        "graph": 4,
        "partition": 8,
        "batches": 4,
        "decomposition": 4,
        "hardware": 8,
        "bist": 8,
        "plans": 16,
    }

    def __init__(self, capacities: Optional[Dict[str, int]] = None) -> None:
        caps = dict(self.CAPACITIES)
        if capacities:
            caps.update(capacities)
        self._caches: Dict[str, _LRU] = {
            kind: _LRU(capacity) for kind, capacity in caps.items()
        }

    # ------------------------------------------------------------------ #
    def _batch_shape(self, spec: RunSpec) -> Tuple[int, int]:
        config = configs.training_config(
            spec.dataset, spec.scale, seed=spec.seed, epochs=spec.epochs
        )
        return config.num_parts, config.batch_clusters

    def graph(self, spec: RunSpec):
        key = spec.artifact_group()
        return self._caches["graph"].get(
            key, lambda: load_dataset(spec.dataset, scale=spec.scale, seed=spec.seed)
        )

    def partition(self, spec: RunSpec) -> PartitionResult:
        num_parts, _ = self._batch_shape(spec)
        key = spec.artifact_group() + (num_parts,)

        def compute() -> PartitionResult:
            graph = self.graph(spec)
            # Replay the trainer's RNG derivation: the sampler stream is the
            # second of the three children spawned from the training seed.
            _, rng_sampler, _ = spawn_rngs(spec.seed, 3)
            return partition_graph(graph.adjacency, num_parts, seed=rng_sampler)

        return self._caches["partition"].get(key, compute)

    def batches(self, spec: RunSpec) -> List[ClusterBatch]:
        num_parts, batch_clusters = self._batch_shape(spec)
        key = spec.artifact_group() + (num_parts, batch_clusters)

        def compute() -> List[ClusterBatch]:
            sampler = ClusterBatchSampler(
                self.graph(spec),
                num_parts=num_parts,
                batch_clusters=batch_clusters,
                seed=None,
                partition=self.partition(spec),
            )
            return list(sampler.epoch(shuffle=False))

        return self._caches["batches"].get(key, compute)

    def decomposition(self, spec: RunSpec):
        """Per-batch ``(blocks, grid)`` decompositions for the scale's geometry."""
        hw_config = configs.hardware_config(spec.scale)
        num_parts, batch_clusters = self._batch_shape(spec)
        key = spec.artifact_group() + (
            num_parts,
            batch_clusters,
            hw_config.crossbar_rows,
            hw_config.crossbar_cols,
        )

        def compute():
            blocks_per_batch = []
            grids = []
            for batch in self.batches(spec):
                blocks, grid = decompose_adjacency(
                    batch.subgraph.adjacency,
                    hw_config.crossbar_rows,
                    hw_config.crossbar_cols,
                )
                blocks_per_batch.append(blocks)
                grids.append(grid)
            return blocks_per_batch, grids

        return self._caches["decomposition"].get(key, compute)

    def hardware(self, spec: RunSpec) -> HardwareEnvironment:
        """A fresh environment for ``spec`` (fault maps/RNG from snapshot)."""
        key = spec.fault_signature()
        snapshot = self._caches["hardware"].peek(key)
        if snapshot is None:
            self._caches["hardware"].misses += 1
            hardware = build_hardware(
                spec.scale,
                spec.fault_density,
                spec.sa_ratio,
                seed=spec.seed,
                fault_region=spec.fault_region,
            )
            self._caches["hardware"].put(key, HardwareSnapshot.capture(hardware, spec))
            return hardware
        self._caches["hardware"].hits += 1
        return snapshot.restore(spec.scale)

    def bist_report(self, spec: RunSpec, hardware: HardwareEnvironment) -> BISTReport:
        key = spec.fault_signature()
        return self._caches["bist"].get(
            key, lambda: hardware.bist.scan(hardware.adjacency_crossbars)
        )

    def plans(
        self,
        spec: RunSpec,
        strategy: Strategy,
        blocks_per_batch,
        report: BISTReport,
        crossbar_ids: Sequence[int],
        crossbar_rows: int,
    ):
        """Shared adjacency mapping plans, or ``None`` when not shareable.

        Keyed by the strategy's :meth:`~repro.core.strategies.Strategy.plan_signature`
        (strategies whose planning coincides — e.g. fault-unaware and weight
        clipping both use the sequential mapping — share one plan; FARe plans
        are additionally shared across *models*, since adjacency planning
        does not depend on the model).  The plan is computed with the
        caller's strategy instance, so planning work counters land on the run
        that actually did the work.
        """
        plan_signature = strategy.plan_signature()
        if plan_signature is None:
            return None
        hw_config = configs.hardware_config(spec.scale)
        num_parts, batch_clusters = self._batch_shape(spec)
        key = (
            spec.artifact_group()
            + (num_parts, batch_clusters, hw_config.crossbar_rows, hw_config.crossbar_cols)
            + spec.fault_signature()
            + plan_signature
        )
        return self._caches["plans"].get(
            key,
            lambda: strategy.plan_adjacency(
                blocks_per_batch, report.fault_maps, crossbar_ids, crossbar_rows
            ),
        )

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, float]:
        """Flat ``artifact_<kind>_{hits,misses,evictions}`` counters."""
        stats: Dict[str, float] = {}
        for kind, cache in self._caches.items():
            stats[f"artifact_{kind}_hits"] = float(cache.hits)
            stats[f"artifact_{kind}_misses"] = float(cache.misses)
            if cache.evictions:
                stats[f"artifact_{kind}_evictions"] = float(cache.evictions)
        return stats

    def clear(self) -> None:
        for cache in self._caches.values():
            cache.clear()


# --------------------------------------------------------------------------- #
# Single-run execution
# --------------------------------------------------------------------------- #
def execute_spec(
    spec: RunSpec,
    artifacts: Optional[ArtifactCache] = None,
    injector: Optional[FaultInjector] = None,
    attempt: int = 0,
) -> TrainingResult:
    """Train one spec and return its result.

    With ``artifacts=None`` every input is rebuilt from scratch — byte-for-byte
    the seed ``run_single`` behaviour, kept as the reference path for the
    equivalence tests and the sweep benchmark baseline.  With an
    :class:`ArtifactCache`, shared preprocessing is reused as described in the
    module docstring; the training outcome is bit-identical either way.

    ``injector``/``attempt`` are the deterministic fault-injection hook used
    by the chaos tests: a scheduled per-spec failure raises before any work
    happens (attempt-gated, so retries replay exactly).
    """
    if injector is not None:
        injector.on_spec_start(spec.signature(), attempt)
    strategy_kwargs = dict(spec.strategy_kwargs)
    training_config = configs.training_config(
        spec.dataset, spec.scale, seed=spec.seed, epochs=spec.epochs
    )
    strategy = build_strategy(spec.strategy, **strategy_kwargs)

    hardware = None
    post_deployment = None
    trainer_artifacts = None
    if artifacts is None:
        graph = load_dataset(spec.dataset, scale=spec.scale, seed=spec.seed)
        if strategy.requires_hardware:
            hardware = build_hardware(
                spec.scale,
                spec.fault_density,
                spec.sa_ratio,
                seed=spec.seed,
                fault_region=spec.fault_region,
            )
    else:
        graph = artifacts.graph(spec)
        trainer_artifacts = TrainerArtifacts(
            partition=artifacts.partition(spec),
            batches=artifacts.batches(spec),
        )
        if strategy.requires_hardware:
            hardware = artifacts.hardware(spec)
            blocks_per_batch, grids = artifacts.decomposition(spec)
            report = artifacts.bist_report(spec, hardware)
            crossbar_ids = [x.crossbar_id for x in hardware.adjacency_crossbars]
            trainer_artifacts = replace(
                trainer_artifacts,
                blocks_per_batch=blocks_per_batch,
                grids=grids,
                bist_report=report,
                plans=artifacts.plans(
                    spec,
                    strategy,
                    blocks_per_batch,
                    report,
                    crossbar_ids,
                    hardware.config.crossbar_rows,
                ),
            )
    if strategy.requires_hardware and spec.post_deployment_extra:
        post_deployment = PostDeploymentSchedule(
            total_extra_density=spec.post_deployment_extra,
            num_epochs=training_config.epochs,
        )

    trainer = FaultyTrainer(
        graph=graph,
        model_name=spec.model,
        strategy=strategy,
        config=training_config,
        hardware=hardware,
        post_deployment=post_deployment,
        artifacts=trainer_artifacts,
    )
    logger.info(
        "training %s/%s strategy=%s density=%.3f ratio=%s scale=%s seed=%d",
        spec.dataset,
        spec.model,
        spec.strategy,
        spec.fault_density,
        spec.sa_ratio,
        spec.scale,
        spec.seed,
    )
    return trainer.train()


# --------------------------------------------------------------------------- #
# On-disk result store
# --------------------------------------------------------------------------- #
def serialize_result(result: TrainingResult) -> Dict:
    """JSON-friendly representation of a :class:`TrainingResult`."""
    return {f.name: getattr(result, f.name) for f in fields(TrainingResult)}


def deserialize_result(payload: Dict) -> TrainingResult:
    kwargs = {f.name: payload[f.name] for f in fields(TrainingResult)}
    kwargs["counters"] = {k: float(v) for k, v in kwargs["counters"].items()}
    for name in ("train_accuracy_history", "test_accuracy_history", "loss_history"):
        kwargs[name] = [float(v) for v in kwargs[name]]
    return TrainingResult(**kwargs)


def default_store_dir() -> Path:
    """Resolve the default on-disk store location.

    ``REPRO_RUNCACHE_DIR`` wins; otherwise ``benchmarks/results/runcache/``
    next to the source tree (the repository layout), falling back to a local
    ``.repro_runcache`` directory for installed copies.
    """
    override = os.environ.get("REPRO_RUNCACHE_DIR")
    if override:
        return Path(override)
    root = Path(__file__).resolve().parents[3]
    if (root / "benchmarks").is_dir():
        return root / "benchmarks" / "results" / "runcache"
    return Path.cwd() / ".repro_runcache"


def fsync_directory(directory: Path) -> None:
    """fsync a directory entry so a rename/create survives a crash.

    ``os.replace`` is atomic against concurrent readers, but the *rename
    itself* is only durable once the containing directory's entry is synced.
    Best-effort: platforms that cannot open a directory simply skip it.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _atomic_write(path: Path, text: str) -> None:
    """Durably publish ``text`` at ``path`` via fsync'd temp-file + rename."""
    temp = path.with_suffix(f".tmp.{os.getpid()}")
    with temp.open("w") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)
    fsync_directory(path.parent)


class ResultStore:
    """Persistent JSON result store keyed by :meth:`RunSpec.signature`.

    Each result lands in ``<directory>/<signature>.json`` together with the
    spec that produced it and the signature version.  Loading validates that
    the stored signature still matches the spec's current signature; stale
    files (version bumps, semantic changes) are deleted and reported as
    invalidations.

    The store is **multi-process safe**: publishes are fsync'd temp-file +
    ``os.replace`` (a reader never sees a torn file), readers tolerate a
    concurrent process deleting or replacing an entry at any point between
    existence check and read (counted as a miss, never a crash), and a
    duplicate publish of the same signature — two processes that both
    executed a spec because single-flight was broken or bypassed — is
    counted in ``races_lost`` (content-addressed results are bit-identical,
    so the last write is harmless).
    """

    #: Age (seconds) below which an atomic-write temp file is presumed to
    #: belong to a live in-flight save of another process and is left alone.
    TEMP_TTL = 60.0

    def __init__(self, directory: Optional[Path] = None) -> None:
        self.directory = Path(directory) if directory is not None else default_store_dir()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.invalidations = 0
        self.races_lost = 0
        self._pruned = False

    def path(self, spec: RunSpec) -> Path:
        return self.directory / f"{spec.signature()}.json"

    def prune_stale(self) -> int:
        """Delete stored results from other signature versions.

        A :data:`SIGNATURE_VERSION` bump changes every filename, so outdated
        files would never be looked up (and thus never invalidated) by
        :meth:`load`; this garbage-collects them instead of letting the
        store grow by one result set per version bump.  Runs automatically
        once per store instance, on the first :meth:`save` or the first
        :meth:`load` against an existing directory.
        """
        removed = 0
        for path in self.directory.glob("*.json"):
            try:
                version = json.loads(path.read_text()).get("signature_version")
            except FileNotFoundError:
                # A concurrent process deleted/replaced the entry between the
                # directory listing and the read — nothing left to prune.
                continue
            except (OSError, json.JSONDecodeError):
                version = None
            if version != SIGNATURE_VERSION:
                self._invalidate(path)
                removed += 1
        # Orphaned atomic-write temp files (crash between write and replace).
        # Age-gated: a *fresh* temp file belongs to another process's
        # in-flight save and deleting it would make that save's os.replace
        # fail from under it.
        now = time.time()
        for path in self.directory.glob("*.tmp.*"):
            try:
                if now - path.stat().st_mtime < self.TEMP_TTL:
                    continue
            except OSError:
                continue
            self._invalidate(path)
            removed += 1
        return removed

    def load(self, spec: RunSpec) -> Optional[TrainingResult]:
        if not self._pruned and self.directory.is_dir():
            self._pruned = True
            self.prune_stale()
        path = self.path(spec)
        try:
            # Read without an existence pre-check: a concurrent process may
            # delete/replace the entry (e.g. invalidating a corrupt file) at
            # any moment, so FileNotFoundError is an ordinary miss here.
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self._invalidate(path)
            self.misses += 1
            return None
        if (
            payload.get("signature") != spec.signature()
            or payload.get("signature_version") != SIGNATURE_VERSION
        ):
            self._invalidate(path)
            self.misses += 1
            return None
        try:
            result = deserialize_result(payload["result"])
        except (KeyError, TypeError, ValueError):
            self._invalidate(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def save(self, spec: RunSpec, result: TrainingResult) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        if not self._pruned:
            self._pruned = True
            self.prune_stale()
        payload = {
            "signature": spec.signature(),
            "signature_version": SIGNATURE_VERSION,
            "spec": spec.to_dict(),
            "result": serialize_result(result),
        }
        # Atomic publish: a concurrent reader must never see (and then
        # invalidate-delete) a half-written file, and a crash mid-write must
        # not leave a truncated one behind.
        path = self.path(spec)
        if path.exists():
            # Another process published this signature first (duplicate
            # execution — single-flight was bypassed or its lease reclaimed).
            # Results are bit-identical per signature, so replacing is safe;
            # the counter is what surfaces the lost race.
            self.races_lost += 1
        try:
            _atomic_write(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
        except FileNotFoundError:
            # Our temp file vanished (an over-eager concurrent prune): the
            # result is recomputable and likely already published by the
            # other side — count the lost race instead of crashing the run.
            self.races_lost += 1
            return
        self.writes += 1

    def _invalidate(self, path: Path) -> None:
        self.invalidations += 1
        try:
            path.unlink()
        except OSError:
            pass

    def stats(self) -> Dict[str, float]:
        return {
            "store_hits": float(self.hits),
            "store_misses": float(self.misses),
            "store_writes": float(self.writes),
            "store_invalidations": float(self.invalidations),
            "store_races_lost": float(self.races_lost),
        }


# --------------------------------------------------------------------------- #
# Crash-safe sweep journal
# --------------------------------------------------------------------------- #
def default_journal_path(store_directory: Optional[Path] = None) -> Path:
    """The journal's default home: next to the ``runcache/`` result store."""
    directory = Path(store_directory) if store_directory else default_store_dir()
    return directory / "sweep_journal.jsonl"


class SweepJournal:
    """Append-only progress journal making interrupted sweeps resumable.

    One JSON line per event (``done`` when a spec's result was published to
    the store, ``quarantined`` when it exhausted its retries), tagged with
    the run signature and :data:`SIGNATURE_VERSION`.  Appends are flushed
    and fsync'd per record; a crash can at worst tear the *last* line, which
    the loader skips (and compacts away with an atomic fsync'd
    temp-file+rename rewrite, the same publish discipline as
    :meth:`ResultStore.save`, so a crash mid-compaction can never lose the
    journal).

    **Per-client journals.**  With a ``client_id`` the journal appends to its
    own file (``<stem>.<client_id>.jsonl`` next to the base path) and *merges*
    every sibling client journal on load, so N concurrent processes each own
    one append-only file (no cross-process interleaving, no torn lines from
    concurrent appends) while all of them see the union of completed work.
    Merge rule: ``done`` from any client beats ``quarantined`` from any other
    (the result exists in the store); compaction rewrites only the *own*
    file, never a sibling's.  Without a ``client_id`` the journal writes the
    base path directly — the single-process behaviour of earlier sessions —
    but still merges any sibling client files left by service runs.

    Resume semantics: the journal is the audit trail, the store holds the
    data.  On ``--resume`` the engine serves every journaled-``done`` spec
    from the store (counted as ``journal_hits``) and recomputes only the
    rest; ``quarantined`` entries are *re-attempted* (a new session gets a
    fresh retry budget — the failure may have been environmental).
    """

    VERSION = 1

    def __init__(
        self, path: Optional[Path] = None, client_id: Optional[str] = None
    ) -> None:
        self.base_path = Path(path) if path is not None else default_journal_path()
        self.client_id = client_id
        if client_id is None:
            self.path = self.base_path
        else:
            if "/" in client_id or client_id.startswith("."):
                raise ValueError(f"invalid journal client_id {client_id!r}")
            self.path = self.base_path.with_name(
                f"{self.base_path.stem}.{client_id}{self.base_path.suffix}"
            )
        #: Merged view across every client journal (status queries).
        self._entries: "OrderedDict[str, Dict]" = OrderedDict()
        #: Entries owned by this journal's write path (what compaction keeps).
        self._own: "OrderedDict[str, Dict]" = OrderedDict()
        self.writes = 0
        self.hits = 0
        self.corrupt_lines = 0
        self.merged_clients = 0
        self._load()

    # ------------------------------------------------------------------ #
    def _sibling_paths(self) -> List[Path]:
        """Every journal file of this base path, own file last.

        Own-last ordering makes this journal's own entries win same-status
        ties in the merged view (the ``done``-beats-``quarantined`` rule is
        applied per entry regardless of order).
        """
        pattern = f"{self.base_path.stem}*{self.base_path.suffix}"
        siblings = sorted(
            p for p in self.base_path.parent.glob(pattern) if p != self.path
        )
        return siblings + [self.path]

    def _merge_entry(self, entry: Dict) -> None:
        signature = entry["signature"]
        current = self._entries.get(signature)
        if (
            current is not None
            and current.get("status") == "done"
            and entry.get("status") != "done"
        ):
            # A quarantine report from one client never shadows another
            # client's completed result — the data is in the store.
            return
        self._entries[signature] = entry

    def _load(self) -> None:
        own_dirty = False
        for file in self._sibling_paths():
            is_own = file == self.path
            try:
                text = file.read_text()
            except OSError:
                continue
            if not is_own:
                self.merged_clients += 1
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    # Torn tail of a crashed writer.  Only the owner compacts
                    # a file; a sibling's torn line is skipped and left for
                    # its owner to clean up.
                    self.corrupt_lines += 1
                    own_dirty = own_dirty or is_own
                    continue
                if (
                    entry.get("journal_version") != self.VERSION
                    or entry.get("signature_version") != SIGNATURE_VERSION
                    or "signature" not in entry
                ):
                    own_dirty = own_dirty or is_own
                    continue
                self._merge_entry(entry)
                if is_own:
                    self._own[entry["signature"]] = entry
        if own_dirty:
            self._compact()

    def _compact(self) -> None:
        """Atomically rewrite *this client's* journal from its own entries.

        Write-to-temp in the same directory, ``os.replace``, then fsync the
        directory entry (via :func:`_atomic_write`) — a crash at any point
        leaves either the old or the new journal, never neither.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write(
            self.path,
            "".join(
                json.dumps(entry, sort_keys=True) + "\n"
                for entry in self._own.values()
            ),
        )

    def _record(self, signature: str, payload: Dict) -> None:
        entry = {
            "journal_version": self.VERSION,
            "signature_version": SIGNATURE_VERSION,
            "signature": signature,
            **payload,
        }
        first = signature not in self._own
        self._own[signature] = entry
        self._merge_entry(entry)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if first:
            # Append-only fast path: one flushed+fsync'd line per event.
            with self.path.open("a") as handle:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        else:
            # Status change (quarantined → done on resume): atomic rewrite.
            self._compact()
        self.writes += 1

    # ------------------------------------------------------------------ #
    def record_done(self, spec: RunSpec) -> None:
        self._record(spec.signature(), {"status": "done", "spec": spec.to_dict()})

    def record_quarantined(self, record: FailureRecord) -> None:
        self._record(record.signature, {"status": "quarantined", **record.to_dict()})

    def status(self, spec: RunSpec) -> Optional[str]:
        entry = self._entries.get(spec.signature())
        return None if entry is None else entry.get("status")

    def completed(self, spec: RunSpec) -> bool:
        return self.status(spec) == "done"

    def __len__(self) -> int:
        return len(self._entries)

    def done_count(self) -> int:
        return sum(1 for e in self._entries.values() if e.get("status") == "done")

    def stats(self) -> Dict[str, float]:
        return {
            "journal_entries": float(len(self._entries)),
            "journal_done": float(self.done_count()),
            "journal_writes": float(self.writes),
            "journal_hits": float(self.hits),
            "journal_corrupt_lines": float(self.corrupt_lines),
            "journal_merged_clients": float(self.merged_clients),
        }


# --------------------------------------------------------------------------- #
# Parallel worker plumbing
# --------------------------------------------------------------------------- #
#: Per-worker-process artifact cache (created lazily on first task).
_WORKER_ARTIFACTS: Optional[ArtifactCache] = None


def _run_group_in_worker(task: Tuple):
    """Execute one artifact-group task inside a spawned worker process.

    ``task`` is ``(group_index, attempt, specs, injector)``.  Returns
    ``(pairs, failures, stats_delta)``: ``pairs`` is ``[(spec, result)]``
    for the specs that succeeded, ``failures`` the classified
    :class:`FailureRecord`\\ s (full remote traceback included) for those
    that raised — a per-spec exception never aborts the group, let alone
    the sweep — and ``stats_delta`` the artifact counters this task added.
    Sharing is scoped to the group (plans and graph artifacts key on the
    group itself), so per-run results are identical no matter which process
    a group lands in.
    """
    group_index, attempt, specs, injector = task
    global _WORKER_ARTIFACTS
    if _WORKER_ARTIFACTS is None:
        _WORKER_ARTIFACTS = ArtifactCache()
    if injector is not None:
        injector.on_group_start(group_index, attempt, in_worker=True)
    before = _WORKER_ARTIFACTS.stats()
    pairs: List[Tuple[RunSpec, TrainingResult]] = []
    failures: List[FailureRecord] = []
    for spec in specs:
        try:
            pairs.append(
                (spec, execute_spec(spec, _WORKER_ARTIFACTS, injector, attempt))
            )
        except Exception as error:
            failures.append(FailureRecord.from_exception(spec, error, attempt + 1))
    after = _WORKER_ARTIFACTS.stats()
    delta = {key: after[key] - before.get(key, 0.0) for key in after}
    return pairs, failures, delta


@dataclass
class _GroupTask:
    """One supervised unit of parallel work: an artifact group attempt."""

    index: int
    specs: Tuple[RunSpec, ...]
    attempt: int = 0
    ready_at: float = 0.0


# --------------------------------------------------------------------------- #
# Sweep engine
# --------------------------------------------------------------------------- #
@dataclass
class SweepResult:
    """Spec-keyed results of one :meth:`SweepEngine.run` call.

    ``failed`` holds the quarantined specs (retries exhausted, or
    deterministic failures) with their classified
    :class:`~repro.experiments.failures.FailureRecord`.  Indexing a failed
    spec raises :class:`~repro.experiments.failures.SpecExecutionError`
    with the full remote context; callers that can render partial grids
    use :meth:`get`/:meth:`value` instead.
    """

    plan: SweepPlan
    results: Dict[RunSpec, TrainingResult] = field(default_factory=dict)
    failed: Dict[RunSpec, FailureRecord] = field(default_factory=dict)

    def __getitem__(self, spec: RunSpec) -> TrainingResult:
        if spec in self.results:
            return self.results[spec]
        if spec in self.failed:
            raise SpecExecutionError(self.failed[spec])
        raise KeyError(spec)

    def get(
        self, spec: RunSpec, default: Optional[TrainingResult] = None
    ) -> Optional[TrainingResult]:
        return self.results.get(spec, default)

    def value(self, spec: RunSpec, getter):
        """``getter(result)`` or ``None`` when the spec is missing/failed.

        The figure drivers' accessor for rendering partial grids: a
        quarantined cell becomes ``None`` (tabulated as ``(missing)``)
        instead of raising.
        """
        result = self.results.get(spec)
        return None if result is None else getter(result)

    @property
    def failed_specs(self) -> List[FailureRecord]:
        """Quarantined specs in plan order (the structured failure report)."""
        return [self.failed[spec] for spec in self.plan if spec in self.failed]

    def complete(self) -> bool:
        return not self.failed

    def __len__(self) -> int:
        return len(self.results)


class SweepEngine:
    """Executes :class:`SweepPlan`\\ s with caching, sharing and parallelism.

    Parameters
    ----------
    store:
        Optional :class:`ResultStore` for cross-session persistence.  ``None``
        (default) keeps results in-process only, like the seed runner.
    memo_capacity:
        LRU bound of the in-process result memo (the seed runner's unbounded
        ``_RESULT_CACHE``, now capped and instrumented).
    max_workers:
        Default process count for :meth:`run`; 1 executes in-process.
    share_artifacts:
        Disable to rebuild every input per run (the seed behaviour) while
        keeping memo/store semantics — used by equivalence tests.
    retry_policy:
        Failure handling (see :mod:`repro.experiments.failures`): transient
        and infra failures retry with deterministic seeded backoff,
        deterministic failures quarantine immediately.  The default policy
        allows 3 attempts.
    group_timeout:
        Per-artifact-group wall-clock budget (seconds) for the parallel
        executor, measured from task submission.  A group that overruns is
        presumed hung: its workers are killed, the pool respawned and the
        in-flight groups requeued.  ``None`` (default) disables timeouts.
    journal:
        Optional :class:`SweepJournal` recording per-spec completion and
        quarantine events as they happen, making interrupted sweeps
        resumable (pair it with a ``store`` so results survive the crash).
    fault_injector:
        Deterministic chaos hook (tests/benchmarks only).
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        memo_capacity: int = 128,
        max_workers: int = 1,
        share_artifacts: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
        group_timeout: Optional[float] = None,
        journal: Optional[SweepJournal] = None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        self.store = store
        self.memo = _LRU(memo_capacity)
        self.max_workers = max(1, int(max_workers))
        self.share_artifacts = bool(share_artifacts)
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.group_timeout = group_timeout
        self.journal = journal
        self.fault_injector = fault_injector
        self.artifacts = ArtifactCache()
        self.runs_executed = 0
        #: Session-wide quarantine ledger (negative memo): a spec that
        #: exhausted its retries is not re-executed by later plans of this
        #: engine — figure drivers sharing an engine would otherwise re-fail
        #: the same cell once per figure.
        self.failed: Dict[RunSpec, FailureRecord] = {}
        self._parallel_artifact_stats: Dict[str, float] = {}
        self._fault_counters: Dict[str, float] = {
            "retry_attempts": 0.0,
            "retry_transient": 0.0,
            "retry_infra": 0.0,
            "quarantine_specs": 0.0,
            "quarantine_memo_hits": 0.0,
            "worker_crashes": 0.0,
            "group_timeouts": 0.0,
            "pool_respawns": 0.0,
        }
        self._published = 0
        #: External counter providers (e.g. the sweep service's queue and
        #: lease manager) merged into :meth:`summary` — same flat
        #: ``name → number`` convention as every other stats source.
        self._stats_providers: List[Callable[[], Dict[str, float]]] = []

    # ------------------------------------------------------------------ #
    def register_stats(self, provider: Callable[[], Dict[str, float]]) -> None:
        """Merge ``provider()`` (flat ``name → number``) into :meth:`summary`.

        The sweep service registers its queue and lease counters here so
        ``lease_acquired`` / ``queue_dedupe_hits`` flow through the same
        :meth:`summary` / :meth:`format_summary` channel as the engine's own
        counters.  Later registrations win on key collisions.
        """
        self._stats_providers.append(provider)

    def clear_memo(self) -> None:
        """Drop memoised results, shared artifacts and the quarantine ledger."""
        self.memo.clear()
        self.artifacts.clear()
        self.failed.clear()

    def clear_failures(self) -> None:
        """Forget quarantined specs so the next plan re-attempts them."""
        self.failed.clear()

    def memo_size(self) -> int:
        return len(self.memo)

    # ------------------------------------------------------------------ #
    def run(
        self,
        plan: SweepPlan,
        max_workers: Optional[int] = None,
    ) -> SweepResult:
        """Execute every spec of ``plan`` and return spec-keyed results.

        Specs already memoised (or present in the store) are served from
        cache; the rest execute grouped by :meth:`RunSpec.artifact_group`,
        either in-process or across ``max_workers`` spawned processes.
        Results are keyed by spec, so serial and parallel execution produce
        bit-identical result mappings.  Each result publishes to the memo,
        the store and the journal *as it completes* — an interrupt loses at
        most the in-flight runs.  Specs whose retries exhaust land in
        :attr:`SweepResult.failed` instead of raising.
        """
        workers = self.max_workers if max_workers is None else max(1, int(max_workers))
        sweep = SweepResult(plan=plan)
        pending: List[RunSpec] = []
        for spec in plan:
            if spec in self.failed:
                # Quarantined earlier this session: report, don't re-fail.
                sweep.failed[spec] = self.failed[spec]
                self._fault_counters["quarantine_memo_hits"] += 1
                continue
            cached = self.memo.peek(spec)
            if cached is not None:
                self.memo.hits += 1
            else:
                self.memo.misses += 1
                if self.store is not None:
                    cached = self.store.load(spec)
                    if cached is not None:
                        self.memo.put(spec, cached)
                        if self.journal is not None:
                            if self.journal.completed(spec):
                                self.journal.hits += 1
                            else:
                                self.journal.record_done(spec)
            if cached is not None:
                sweep.results[spec] = cached
            else:
                pending.append(spec)

        if pending:
            groups = SweepPlan(pending).groups()
            # Parallelism distributes whole artifact groups; with a single
            # group there is nothing to overlap and a spawned worker would
            # only add interpreter-start + re-import + pickling overhead.
            if workers > 1 and len(groups) > 1:
                self._run_parallel(groups, workers, sweep)
            else:
                self._run_serial(groups, sweep)
        return sweep

    # ------------------------------------------------------------------ #
    def _publish(self, sweep: SweepResult, spec: RunSpec, result: TrainingResult) -> None:
        """Durably record one completed run the moment it exists."""
        sweep.results[spec] = result
        self.memo.put(spec, result)
        if self.store is not None:
            self.store.save(spec, result)
        if self.journal is not None:
            self.journal.record_done(spec)
        self.runs_executed += 1
        self._published += 1
        if self.fault_injector is not None and self.fault_injector.should_abort(
            self._published
        ):
            raise KeyboardInterrupt(
                f"sweep aborted by fault injector after {self._published} published runs"
            )

    def _quarantine(self, sweep: SweepResult, record: FailureRecord) -> None:
        spec = record.spec
        sweep.failed[spec] = record
        self.failed[spec] = record
        self._fault_counters["quarantine_specs"] += 1
        if self.journal is not None:
            self.journal.record_quarantined(record)
        logger.warning("quarantined %s", record.describe())

    def _count_retry(self, kind: FailureKind) -> None:
        self._fault_counters["retry_attempts"] += 1
        key = "retry_transient" if kind is FailureKind.TRANSIENT else "retry_infra"
        self._fault_counters[key] += 1

    # ------------------------------------------------------------------ #
    def _run_serial(self, groups, sweep: Optional[SweepResult] = None) -> SweepResult:
        if sweep is None:
            sweep = SweepResult(plan=SweepPlan([]))
        artifacts = self.artifacts if self.share_artifacts else None
        policy = self.retry_policy
        injector = self.fault_injector
        for specs in groups.values():
            for spec in specs:
                attempt = 0
                while True:
                    try:
                        result = execute_spec(spec, artifacts, injector, attempt)
                    except Exception as error:
                        record = FailureRecord.from_exception(spec, error, attempt + 1)
                        if policy.should_retry(record.kind, attempt):
                            self._count_retry(record.kind)
                            time.sleep(policy.delay(record.signature, attempt))
                            attempt += 1
                            continue
                        self._quarantine(sweep, record)
                        break
                    self._publish(sweep, spec, result)
                    break
        return sweep

    def _run_parallel(
        self, groups, workers, sweep: Optional[SweepResult] = None
    ) -> SweepResult:
        """Supervised distribution of artifact groups over spawned workers.

        Spawn (not fork) keeps workers deterministic and safe with threaded
        BLAS.  One task per group: each group's runs execute in order inside
        one process, so the intra-group artifact reuse pattern — the only
        sharing that can influence per-run work counters — matches serial
        execution exactly.

        Supervision: at most ``workers`` tasks are in flight (so the
        per-group wall-clock deadline, measured from submission, tracks
        actual execution).  A worker death (``BrokenProcessPool``) or a
        deadline overrun kills and respawns the pool and requeues every
        in-flight group with its attempt count bumped; per-spec failures
        returned by healthy workers requeue just that spec.  Requeued work
        waits out the retry policy's deterministic backoff before
        resubmission; exhausted specs quarantine.  One bad worker therefore
        never crashes the sweep.
        """
        if not self.share_artifacts:
            raise ValueError("parallel execution requires share_artifacts=True")
        if sweep is None:
            sweep = SweepResult(plan=SweepPlan([]))
        policy = self.retry_policy
        injector = self.fault_injector
        queue = deque(
            _GroupTask(index, tuple(specs))
            for index, specs in enumerate(groups.values())
        )
        n_workers = min(workers, len(queue))
        pool: Optional[ProcessPoolExecutor] = None
        running: Dict[object, Tuple[_GroupTask, float]] = {}

        def spawn_pool() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=n_workers, mp_context=get_context("spawn")
            )

        def kill_pool() -> None:
            nonlocal pool
            if pool is None:
                return
            for process in list(getattr(pool, "_processes", {}).values()):
                try:
                    process.terminate()
                except Exception:  # pragma: no cover - best effort cleanup
                    pass
            pool.shutdown(wait=False, cancel_futures=True)
            pool = None

        def requeue_or_quarantine(task: _GroupTask, error: Exception, now: float) -> None:
            """Whole-task failure: retry the group or quarantine its specs."""
            kind = FailureKind.TRANSIENT
            if policy.should_retry(kind, task.attempt):
                self._count_retry(kind)
                delay = policy.delay(task.specs[0].signature(), task.attempt)
                queue.append(
                    _GroupTask(task.index, task.specs, task.attempt + 1, now + delay)
                )
                return
            for spec in task.specs:
                self._quarantine(
                    sweep,
                    FailureRecord(
                        spec=spec,
                        signature=spec.signature(),
                        kind=kind,
                        error_type=type(error).__name__,
                        message=str(error),
                        attempts=task.attempt + 1,
                    ),
                )

        try:
            while queue or running:
                now = time.monotonic()
                # Fill idle workers with ready tasks (in queue order).
                while queue and len(running) < n_workers:
                    ready = next(
                        (i for i, t in enumerate(queue) if t.ready_at <= now), None
                    )
                    if ready is None:
                        break
                    task = queue[ready]
                    del queue[ready]
                    if pool is None:
                        pool = spawn_pool()
                    future = pool.submit(
                        _run_group_in_worker,
                        (task.index, task.attempt, task.specs, injector),
                    )
                    running[future] = (task, time.monotonic())
                if not running:
                    # Every remaining task is waiting out its backoff.
                    next_ready = min(task.ready_at for task in queue)
                    time.sleep(min(max(next_ready - now, 0.0), 0.25))
                    continue

                timeout = 0.25
                if self.group_timeout is not None:
                    next_deadline = min(
                        submitted + self.group_timeout
                        for _, submitted in running.values()
                    )
                    timeout = min(timeout, max(next_deadline - now, 0.0))
                done, _ = wait(set(running), timeout=timeout, return_when=FIRST_COMPLETED)
                now = time.monotonic()

                pool_broken = False
                for future in done:
                    task, _submitted = running.pop(future)
                    try:
                        pairs, failures, stats_delta = future.result()
                    except Exception as error:
                        # The future died with the worker (or the result did
                        # not survive the pipe): the pool is suspect.
                        self._fault_counters["worker_crashes"] += 1
                        pool_broken = True
                        requeue_or_quarantine(
                            task,
                            WorkerCrashError(
                                f"worker died while running group {task.index} "
                                f"(attempt {task.attempt}): {error!r}"
                            ),
                            now,
                        )
                        continue
                    for key, value in stats_delta.items():
                        self._parallel_artifact_stats[key] = (
                            self._parallel_artifact_stats.get(key, 0.0) + value
                        )
                    for spec, result in pairs:
                        self._publish(sweep, spec, result)
                    for record in failures:
                        if policy.should_retry(record.kind, task.attempt):
                            self._count_retry(record.kind)
                            delay = policy.delay(record.signature, task.attempt)
                            queue.append(
                                _GroupTask(
                                    task.index,
                                    (record.spec,),
                                    task.attempt + 1,
                                    now + delay,
                                )
                            )
                        else:
                            self._quarantine(sweep, record)

                if pool_broken:
                    # Every other in-flight task died with the pool: requeue
                    # them all and start a fresh pool lazily.
                    self._fault_counters["pool_respawns"] += 1
                    for task, _submitted in running.values():
                        requeue_or_quarantine(
                            task,
                            WorkerCrashError(
                                f"pool respawn while group {task.index} in flight"
                            ),
                            now,
                        )
                    running.clear()
                    kill_pool()
                    continue

                if self.group_timeout is not None and running:
                    expired = {
                        future
                        for future, (_task, submitted) in running.items()
                        if now - submitted > self.group_timeout
                    }
                    if expired:
                        # A hung worker cannot be cancelled through the pool
                        # API: kill the processes, respawn, requeue everything
                        # that was in flight.
                        self._fault_counters["group_timeouts"] += len(expired)
                        self._fault_counters["pool_respawns"] += 1
                        for future, (task, _submitted) in list(running.items()):
                            if future in expired:
                                error: Exception = GroupTimeoutError(
                                    f"group {task.index} exceeded "
                                    f"{self.group_timeout:.1f}s wall clock "
                                    f"(attempt {task.attempt})"
                                )
                            else:
                                error = WorkerCrashError(
                                    f"pool respawn while group {task.index} in flight"
                                )
                            requeue_or_quarantine(task, error, now)
                        running.clear()
                        kill_pool()
        except BaseException:
            kill_pool()
            raise
        if pool is not None:
            pool.shutdown(wait=True)
        return sweep

    # ------------------------------------------------------------------ #
    def failure_report(self) -> str:
        """Human-readable report of this session's quarantined specs."""
        return format_failure_report(
            [self.failed[spec] for spec in self.failed]
        )

    def summary(self) -> Dict[str, float]:
        """Flat counter mapping: memo, store, artifact and fault counters.

        Same stats-plumbing convention as the ``kernel_*`` / cost-engine
        counters: plain ``name → number`` so callers can merge it into
        benchmark metrics or print it directly.  The ``retry_*`` /
        ``quarantine_*`` / ``worker_crashes`` / ``group_timeouts`` /
        ``pool_respawns`` counters come from the supervised executor; the
        ``journal_*`` counters from the crash-safe journal when attached.
        """
        stats: Dict[str, float] = {
            "runs_executed": float(self.runs_executed),
            "memo_hits": float(self.memo.hits),
            "memo_misses": float(self.memo.misses),
            "memo_evictions": float(self.memo.evictions),
        }
        stats.update(self._fault_counters)
        artifact_stats = dict(self.artifacts.stats())
        for key, value in self._parallel_artifact_stats.items():
            artifact_stats[key] = artifact_stats.get(key, 0.0) + value
        stats.update(artifact_stats)
        if self.store is not None:
            stats.update(self.store.stats())
        if self.journal is not None:
            stats.update(self.journal.stats())
        for provider in self._stats_providers:
            stats.update(provider())
        return stats

    def format_summary(self) -> str:
        lines = ["sweep engine summary:"]
        for key, value in sorted(self.summary().items()):
            lines.append(f"  {key:32s} {value:g}")
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Seed replication
# --------------------------------------------------------------------------- #
def default_engine() -> SweepEngine:
    """The process-wide engine shared by ``run_single`` and figure drivers.

    Lazy accessor (the engine lives in :mod:`repro.experiments.runner`, which
    imports this module) — the single place that resolves the fallback for
    every ``engine=None`` entry point, so all of them share one memo and one
    artifact cache.
    """
    from repro.experiments.runner import DEFAULT_ENGINE

    return DEFAULT_ENGINE


def run_seed_replicates(
    plan_fn,
    run_fn,
    seeds: Sequence[int],
    engine: Optional[SweepEngine] = None,
    max_workers: Optional[int] = None,
    **kwargs,
):
    """Run one figure driver at several seeds through a single combined plan.

    ``plan_fn(seed=…, **kwargs)`` must return the figure's
    :class:`SweepPlan` and ``run_fn(seed=…, engine=…, **kwargs)`` its
    assembled result.  The union plan executes in one engine pass (so seeds
    parallelise across workers and shared specs — e.g. seed-independent
    baselines — de-duplicate), then each seed's result is assembled from the
    warm memo.  Returns ``{seed: figure result}`` in ``seeds`` order; feed
    the per-seed ``rows()`` to
    :func:`repro.experiments.tables.aggregate_seed_rows` for mean±std tables.
    """
    if engine is None:
        engine = default_engine()
    combined = SweepPlan([])
    for seed in seeds:
        combined = combined + plan_fn(seed=seed, **kwargs)
    # The per-seed assembly below is a pure memo read only if the memo can
    # hold the whole combined plan — otherwise evicted cells would silently
    # re-train.  Grow the cap for the duration of the assembly (results are
    # KB-sized records), then restore it so the engine's advertised LRU
    # bound holds again once this replicate set is done.
    saved_capacity = engine.memo.capacity
    engine.memo.capacity = max(saved_capacity, len(combined) + len(engine.memo))
    try:
        engine.run(combined, max_workers=max_workers)
        return {seed: run_fn(seed=seed, engine=engine, **kwargs) for seed in seeds}
    finally:
        engine.memo.capacity = saved_capacity
